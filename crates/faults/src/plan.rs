//! Seed-driven fault plans.
//!
//! A [`FaultPlan`] is a declarative, integer-valued schedule of fault
//! injections: *what* goes wrong ([`FaultKind`]), *where*
//! ([`FaultTarget`]), and *when* (a `start/period/repeats` pulse train in
//! engine ticks). Plans carry no floating-point state and no resolved
//! core identities — a [`Seeded`](FaultTarget::Seeded) target is bound to
//! a concrete core only when a campaign trial resolves the plan against
//! its `(seed, trial)` pair, so the same plan replays bit-identically for
//! a given seed and explores different cores across seeds.

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

/// What kind of fault a spec injects. All parameters are integers so
/// plans are `Eq`-comparable and hash-stable; the campaign hook converts
/// them to the substrate fault types at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// CPM readout latch stuck at `units` quantum units.
    CpmStuckAt {
        /// The latched readout value, in quantum units.
        units: u32,
    },
    /// CPM sample lost entirely (the loop sees nothing, staleness grows).
    CpmDropout,
    /// CPM calibration drift of `delta_units` quantum units (positive
    /// over-reports margin — the dangerous direction).
    CpmDrift {
        /// Signed readout shift in quantum units.
        delta_units: i32,
    },
    /// DPLL slew interface stuck: the frequency freezes.
    DpllSlewStuck,
    /// DPLL slew rates scaled to `scale_pct`% of the commanded value.
    DpllMisstep {
        /// Slew-rate multiplier in percent (e.g. `10` under-actuates,
        /// `300` over-actuates).
        scale_pct: u32,
    },
    /// VRM rail sag of `offset_mv` millivolts across the whole socket.
    RailSag {
        /// Sag magnitude in millivolts.
        offset_mv: u32,
    },
    /// A deterministic load-step droop burst on one core.
    LoadBurst {
        /// Full droop magnitude in millivolts.
        magnitude_mv: u32,
        /// Leading-edge sharpness in percent of the magnitude escaping
        /// the loop's response window.
        sharpness_pct: u32,
    },
    /// A workload-phase-triggered timing failure the margin machinery
    /// cannot see coming: fires as a system crash on the target core.
    PhaseFailure,
    /// A hard whole-chip failure cascading from the target core: the run
    /// aborts and the serving layer above must treat the chip as dead
    /// until it is resurrected from a checkpoint (see the fleet layer's
    /// failover machinery).
    ChipHardFail,
}

/// Which core (or socket, for rail faults) a spec hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A fixed core. Rail faults hit the core's whole socket.
    Core(CoreId),
    /// A core drawn deterministically from the campaign's `(seed, trial,
    /// spec-index)` tuple — same seed, same core, every run.
    Seeded,
}

/// One pulse train of fault injections.
///
/// The spec fires at engine ticks `start + k × period` for
/// `k ∈ [0, repeats)`; each firing arms the fault for `duration` ticks.
/// A `period` of zero collapses the train to a single firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Where the fault lands.
    pub target: FaultTarget,
    /// What goes wrong.
    pub kind: FaultKind,
    /// First firing, in ticks from trial start.
    pub start: u64,
    /// Tick gap between firings (0 = fire once).
    pub period: u64,
    /// Number of firings (floored at 1).
    pub repeats: u32,
    /// Ticks each firing stays armed (floored at 1 by the engine).
    pub duration: u32,
}

impl FaultSpec {
    /// Number of firings this spec performs.
    #[must_use]
    pub fn firings(&self) -> u32 {
        if self.period == 0 {
            1
        } else {
            self.repeats.max(1)
        }
    }

    /// The tick of firing `k`, if the spec has that many firings.
    #[must_use]
    pub fn firing_tick(&self, k: u32) -> Option<u64> {
        (k < self.firings()).then(|| self.start + u64::from(k) * self.period)
    }
}

/// A named, deterministic fault-injection schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable plan name (appears in campaign reports).
    pub name: String,
    /// The pulse trains, in injection-priority order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new(name: &str) -> Self {
        FaultPlan {
            name: name.to_owned(),
            specs: Vec::new(),
        }
    }

    /// Appends a spec (builder-style).
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Total number of injections the plan performs per trial.
    #[must_use]
    pub fn total_firings(&self) -> u64 {
        self.specs.iter().map(|s| u64::from(s.firings())).sum()
    }
}

/// The droop-storm plan: dense load-step bursts on three seeded cores
/// plus a socket-wide rail sag — the serving layer's worst afternoon.
#[must_use]
pub fn droop_storm() -> FaultPlan {
    let burst = |start: u64| FaultSpec {
        target: FaultTarget::Seeded,
        kind: FaultKind::LoadBurst {
            magnitude_mv: 45,
            sharpness_pct: 85,
        },
        start,
        period: 40,
        repeats: 24,
        duration: 3,
    };
    FaultPlan::new("droop-storm")
        .with(burst(20))
        .with(burst(35))
        .with(burst(50))
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::RailSag { offset_mv: 12 },
            start: 200,
            period: 500,
            repeats: 3,
            duration: 60,
        })
}

/// The sensor-chaos plan: stuck-at, dropout and drifting CPM readouts
/// across seeded cores — the margin loop flying on bad instruments.
#[must_use]
pub fn sensor_chaos() -> FaultPlan {
    FaultPlan::new("sensor-chaos")
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::CpmStuckAt { units: 30 },
            start: 50,
            period: 300,
            repeats: 6,
            duration: 40,
        })
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::CpmDropout,
            start: 120,
            period: 250,
            repeats: 8,
            duration: 30,
        })
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::CpmDrift { delta_units: 8 },
            start: 400,
            period: 0,
            repeats: 1,
            duration: 200,
        })
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::PhaseFailure,
            start: 700,
            period: 900,
            repeats: 2,
            duration: 1,
        })
}

/// The actuator-flap plan: DPLL slew interfaces sticking and mis-stepping
/// in bursts, with an occasional forced phase failure.
#[must_use]
pub fn actuator_flap() -> FaultPlan {
    FaultPlan::new("actuator-flap")
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::DpllSlewStuck,
            start: 60,
            period: 200,
            repeats: 10,
            duration: 25,
        })
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::DpllMisstep { scale_pct: 300 },
            start: 150,
            period: 320,
            repeats: 6,
            duration: 20,
        })
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::PhaseFailure,
            start: 500,
            period: 0,
            repeats: 1,
            duration: 1,
        })
}

/// Every standard plan, in campaign order.
#[must_use]
pub fn standard_plans() -> Vec<FaultPlan> {
    vec![droop_storm(), sensor_chaos(), actuator_flap()]
}

/// The chip-killer plan: one hard whole-chip failure cascading from a
/// seeded core at tick `start` — the failover machinery's canonical
/// adversary. Not part of [`standard_plans`]: a hard fail aborts every
/// run after it, so single-chip campaigns would report nothing but the
/// outage.
#[must_use]
pub fn chip_killer(start: u64) -> FaultPlan {
    FaultPlan::new("chip-killer").with(FaultSpec {
        target: FaultTarget::Seeded,
        kind: FaultKind::ChipHardFail,
        start,
        period: 0,
        repeats: 1,
        duration: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_train_arithmetic() {
        let spec = FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::CpmDropout,
            start: 100,
            period: 50,
            repeats: 3,
            duration: 10,
        };
        assert_eq!(spec.firings(), 3);
        assert_eq!(spec.firing_tick(0), Some(100));
        assert_eq!(spec.firing_tick(2), Some(200));
        assert_eq!(spec.firing_tick(3), None);
    }

    #[test]
    fn zero_period_is_one_shot() {
        let spec = FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::DpllSlewStuck,
            start: 7,
            period: 0,
            repeats: 99,
            duration: 1,
        };
        assert_eq!(spec.firings(), 1);
        assert_eq!(spec.firing_tick(0), Some(7));
        assert_eq!(spec.firing_tick(1), None);
    }

    #[test]
    fn standard_plans_are_nonempty_and_named() {
        let plans = standard_plans();
        assert_eq!(plans.len(), 3);
        for plan in &plans {
            assert!(!plan.specs.is_empty(), "{} has no specs", plan.name);
            assert!(plan.total_firings() > 0);
        }
        assert_eq!(plans[0].name, "droop-storm");
    }

    #[test]
    fn plans_are_value_types() {
        // Rebuilding a standard plan yields an identical value — the
        // foundation of cross-run campaign determinism.
        assert_eq!(droop_storm(), droop_storm());
        assert_eq!(sensor_chaos(), sensor_chaos());
        assert_eq!(actuator_flap(), actuator_flap());
        assert_ne!(droop_storm(), actuator_flap());
    }
}
