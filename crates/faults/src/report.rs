//! All-integer campaign reports.

use std::fmt;

use atm_serve::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Integer summary of a time-to-X distribution, in engine ticks.
///
/// Quantiles come from [`atm_serve::LatencyHistogram`]'s log-linear
/// buckets, so equal sample streams always produce equal summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicksSummary {
    /// Number of samples.
    pub count: u64,
    /// Median, in ticks (bucket floor).
    pub p50: u64,
    /// 99th percentile, in ticks (bucket floor).
    pub p99: u64,
    /// Exact maximum, in ticks.
    pub max: u64,
}

impl TicksSummary {
    /// Summarizes `samples` (order-insensitive; all-zero when empty).
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut hist = LatencyHistogram::new();
        for &s in samples {
            hist.record(s);
        }
        TicksSummary {
            count: hist.count(),
            p50: hist.quantile(0.5),
            p99: hist.quantile(0.99),
            max: hist.max(),
        }
    }
}

impl fmt::Display for TicksSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={}t p99={}t max={}t",
            self.count, self.p50, self.p99, self.max
        )
    }
}

/// The outcome of one fault campaign: what was injected, what the
/// supervisor noticed, and how fast it contained the damage.
///
/// Every field is an integer (or a `String` name), so two reports from
/// the same `(plan, seed)` pair can be compared with `assert_eq!` — the
/// campaign determinism contract is `Eq`-checkable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCampaignReport {
    /// The plan that ran.
    pub plan: String,
    /// The campaign seed.
    pub seed: u64,
    /// Trials merged into this report.
    pub trials: u32,
    /// Faults injected across all trials.
    pub injected: u64,
    /// Injections the supervisor reacted to (any action on the faulted
    /// core after the injection).
    pub detected: u64,
    /// Detections later resolved — the core re-probed back to its
    /// fine-tuned setting, or contained in safe mode / quarantine.
    pub recovered: u64,
    /// Cores dropped to the static-margin safe mode.
    pub safe_modes: u64,
    /// Cores quarantined.
    pub quarantines: u64,
    /// Time from injection to the supervisor's first reaction.
    pub time_to_detect: TicksSummary,
    /// Time from detection to resolution.
    pub time_to_recover: TicksSummary,
}

impl FaultCampaignReport {
    /// Detected fraction of injected faults, in percent (0 when nothing
    /// was injected).
    #[must_use]
    pub fn detection_pct(&self) -> u64 {
        (self.detected * 100)
            .checked_div(self.injected)
            .unwrap_or(0)
    }
}

impl fmt::Display for FaultCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign '{}' seed {} ({} trials):",
            self.plan, self.seed, self.trials
        )?;
        writeln!(
            f,
            "  injected {}  detected {} ({}%)  recovered {}",
            self.injected,
            self.detected,
            self.detection_pct(),
            self.recovered
        )?;
        writeln!(
            f,
            "  safe modes {}  quarantines {}",
            self.safe_modes, self.quarantines
        )?;
        writeln!(f, "  time-to-detect  {}", self.time_to_detect)?;
        write!(f, "  time-to-recover {}", self.time_to_recover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        let s = TicksSummary::from_samples(&[]);
        assert_eq!(
            s,
            TicksSummary {
                count: 0,
                p50: 0,
                p99: 0,
                max: 0
            }
        );
    }

    #[test]
    fn summary_orders_quantiles() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = TicksSummary::from_samples(&samples);
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn detection_pct_handles_zero() {
        let report = FaultCampaignReport {
            plan: "x".into(),
            seed: 0,
            trials: 0,
            injected: 0,
            detected: 0,
            recovered: 0,
            safe_modes: 0,
            quarantines: 0,
            time_to_detect: TicksSummary::from_samples(&[]),
            time_to_recover: TicksSummary::from_samples(&[]),
        };
        assert_eq!(report.detection_pct(), 0);
    }
}
