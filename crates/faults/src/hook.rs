//! The campaign's [`FaultHook`]: a resolved, deterministic injector.

use atm_chip::{FailureKind, FaultAction, FaultHook};
use atm_cpm::SensorFault;
use atm_dpll::ActuatorFault;
use atm_pdn::{LoadStep, RailTransient};
use atm_units::{CoreId, Nanos};

use crate::plan::{FaultKind, FaultPlan, FaultTarget};

/// The number of cores a seeded target can land on.
const NUM_CORES: usize = atm_units::NUM_PROCS * atm_units::CORES_PER_PROC;

/// SplitMix64: the one-shot integer mixer behind every seeded choice.
#[must_use]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One delivered injection, for campaign bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Engine tick (cumulative across a trial's windows) of the firing.
    pub tick: u64,
    /// The core the fault landed on (rail faults: a core of the socket).
    pub core: CoreId,
}

/// A plan spec bound to a concrete core with live pulse-train state.
#[derive(Debug, Clone, Copy)]
struct Resolved {
    core: CoreId,
    kind: FaultKind,
    next: u64,
    period: u64,
    remaining: u32,
    duration: u32,
}

/// A [`FaultPlan`] resolved against a `(seed, trial)` pair: seeded
/// targets are bound to concrete cores, and the pulse trains replay on a
/// tick counter that accumulates across every timed run of the trial —
/// so a trial split into observation windows sees exactly the same
/// injections as one long run.
///
/// # Examples
///
/// ```
/// use atm_chip::FaultHook;
/// use atm_faults::{droop_storm, CampaignHook};
///
/// let hook = CampaignHook::resolve(&droop_storm(), 42, 0);
/// assert!(hook.armed());
/// assert_eq!(
///     hook.planned_injections(),
///     droop_storm().total_firings()
/// );
/// ```
#[derive(Debug, Clone)]
pub struct CampaignHook {
    specs: Vec<Resolved>,
    tick: u64,
    injections: Vec<Injection>,
}

impl CampaignHook {
    /// Resolves `plan` for one `(seed, trial)` pair. The binding is a
    /// pure function of `(plan, seed, trial)` — same inputs, same cores,
    /// same schedule, every run.
    #[must_use]
    pub fn resolve(plan: &FaultPlan, seed: u64, trial: u32) -> Self {
        let specs = plan
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let core = match spec.target {
                    FaultTarget::Core(core) => core,
                    FaultTarget::Seeded => {
                        let draw = mix(seed ^ mix(u64::from(trial)) ^ mix(i as u64 + 1));
                        CoreId::from_flat_index((draw % NUM_CORES as u64) as usize)
                    }
                };
                Resolved {
                    core,
                    kind: spec.kind,
                    next: spec.start,
                    period: spec.period,
                    remaining: spec.firings(),
                    duration: spec.duration,
                }
            })
            .collect();
        CampaignHook {
            specs,
            tick: 0,
            injections: Vec::new(),
        }
    }

    /// Total injections the resolved schedule will perform.
    #[must_use]
    pub fn planned_injections(&self) -> u64 {
        self.injections.len() as u64
            + self
                .specs
                .iter()
                .map(|s| u64::from(s.remaining))
                .sum::<u64>()
    }

    /// The injections delivered so far, in firing order.
    #[must_use]
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Cumulative ticks this hook has observed across every run.
    #[must_use]
    pub fn ticks_seen(&self) -> u64 {
        self.tick
    }

    /// Whether every pulse train has finished firing.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.specs.iter().all(|s| s.remaining == 0)
    }

    /// Fast-forwards the cumulative tick counter to `tick` without
    /// observing the skipped ticks — the checkpoint-replay shortcut for a
    /// hook whose schedule provably fires nothing before `tick`. The
    /// fast-forwarded hook then behaves exactly like one driven through
    /// those ticks one by one.
    ///
    /// # Panics
    ///
    /// Panics if the counter would move backwards, or if a pending firing
    /// is scheduled before `tick` (skipping it would change the
    /// campaign — replay from an earlier checkpoint instead).
    pub fn advance_to_tick(&mut self, tick: u64) {
        assert!(
            tick >= self.tick,
            "cannot rewind a campaign hook ({} -> {tick})",
            self.tick
        );
        for spec in &self.specs {
            assert!(
                spec.remaining == 0 || spec.next >= tick,
                "a firing at tick {} would be skipped by fast-forward to {tick}",
                spec.next
            );
        }
        self.tick = tick;
    }

    fn action_for(core: CoreId, kind: FaultKind, duration: u32) -> FaultAction {
        let ticks = duration.max(1);
        match kind {
            FaultKind::CpmStuckAt { units } => FaultAction::CpmFault {
                core,
                fault: SensorFault::StuckAt { units },
                ticks,
            },
            FaultKind::CpmDropout => FaultAction::CpmFault {
                core,
                fault: SensorFault::Dropout,
                ticks,
            },
            FaultKind::CpmDrift { delta_units } => FaultAction::CpmFault {
                core,
                fault: SensorFault::Drift { delta_units },
                ticks,
            },
            FaultKind::DpllSlewStuck => FaultAction::DpllFault {
                core,
                fault: ActuatorFault::SlewStuck,
                ticks,
            },
            FaultKind::DpllMisstep { scale_pct } => FaultAction::DpllFault {
                core,
                fault: ActuatorFault::Misstep {
                    scale: f64::from(scale_pct) / 100.0,
                },
                ticks,
            },
            FaultKind::RailSag { offset_mv } => FaultAction::RailTransient {
                proc: core.proc_id(),
                transient: RailTransient::new(f64::from(offset_mv)),
                ticks,
            },
            FaultKind::LoadBurst {
                magnitude_mv,
                sharpness_pct,
            } => FaultAction::LoadStep {
                core,
                step: LoadStep::new(
                    f64::from(magnitude_mv),
                    f64::from(sharpness_pct.min(100)) / 100.0,
                ),
                ticks,
            },
            FaultKind::PhaseFailure => FaultAction::ForceFailure {
                core,
                kind: FailureKind::SystemCrash,
            },
            FaultKind::ChipHardFail => FaultAction::ChipHardFail { core },
        }
    }
}

impl FaultHook for CampaignHook {
    fn armed(&self) -> bool {
        // A hook resolved from a spec-less plan stays armed forever: it
        // injects nothing but counts every tick, which makes it the pure
        // tick-position witness the bisection baseline arms on every chip
        // (the exact path it forces is byte-identical to the plain path,
        // so observation is free).
        self.specs.is_empty() || !self.exhausted()
    }

    fn on_tick(&mut self, _now: Nanos, _tick: u64, out: &mut Vec<FaultAction>) {
        for spec in &mut self.specs {
            if spec.remaining > 0 && self.tick >= spec.next {
                out.push(Self::action_for(spec.core, spec.kind, spec.duration));
                self.injections.push(Injection {
                    tick: self.tick,
                    core: spec.core,
                });
                spec.remaining -= 1;
                spec.next = spec.next.saturating_add(spec.period.max(1));
            }
        }
        self.tick += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{standard_plans, FaultSpec};

    fn drive(hook: &mut CampaignHook, ticks: u64) -> Vec<FaultAction> {
        let mut all = Vec::new();
        for t in 0..ticks {
            let mut out = Vec::new();
            hook.on_tick(Nanos::new(t as f64 * 50.0), t, &mut out);
            all.extend(out);
        }
        all
    }

    #[test]
    fn resolution_is_deterministic_and_seed_sensitive() {
        let plan = sensor_chaosish();
        let a = CampaignHook::resolve(&plan, 7, 0);
        let b = CampaignHook::resolve(&plan, 7, 0);
        assert_eq!(
            drive(&mut { a }, 2000),
            drive(&mut { b }, 2000),
            "same seed, same schedule"
        );
        // Across many trials at least one resolves to a different core.
        let base: Vec<_> = CampaignHook::resolve(&plan, 7, 0)
            .specs
            .iter()
            .map(|s| s.core)
            .collect();
        assert!(
            (1..32).any(|t| CampaignHook::resolve(&plan, 7, t)
                .specs
                .iter()
                .map(|s| s.core)
                .collect::<Vec<_>>()
                != base),
            "seeded targets never moved"
        );
    }

    #[test]
    fn tick_counter_accumulates_across_windows() {
        let plan = sensor_chaosish();
        let mut whole = CampaignHook::resolve(&plan, 3, 1);
        let whole_actions = drive(&mut whole, 1000);

        let mut windowed = CampaignHook::resolve(&plan, 3, 1);
        let mut windowed_actions = Vec::new();
        for _ in 0..10 {
            windowed_actions.extend(drive(&mut windowed, 100));
        }
        assert_eq!(whole_actions, windowed_actions);
        assert_eq!(whole.ticks_seen(), windowed.ticks_seen());
    }

    #[test]
    fn exhaustion_disarms_the_hook() {
        for plan in standard_plans() {
            let mut hook = CampaignHook::resolve(&plan, 11, 2);
            assert!(hook.armed());
            let _ = drive(&mut hook, 5_000);
            assert!(hook.exhausted(), "{} never exhausted", plan.name);
            assert!(!hook.armed());
            assert_eq!(hook.injections().len() as u64, plan.total_firings());
        }
    }

    fn sensor_chaosish() -> FaultPlan {
        FaultPlan::new("test").with(FaultSpec {
            target: crate::plan::FaultTarget::Seeded,
            kind: FaultKind::CpmDropout,
            start: 5,
            period: 40,
            repeats: 4,
            duration: 8,
        })
    }
}
