//! `atm-faults` — deterministic fault-injection campaigns over the ATM
//! stack.
//!
//! Fine-tuning shaves timing guardband; this crate asks, systematically,
//! *what happens when the hardware lies*. A [`FaultPlan`] composes
//! seed-driven fault pulse trains — CPM sensor faults (stuck-at, dropout,
//! calibration drift), DPLL actuator faults (slews stuck or mis-stepped),
//! VRM rail sags, load-step droop bursts, and workload-phase-triggered
//! timing failures. A [`FaultCampaign`] replays a plan against fleets of
//! supervised servers: each trial deploys a fine-tuned
//! [`AtmManager`](atm_core::AtmManager), arms the plan through the chip's
//! [`FaultHook`](atm_chip::FaultHook) seam (which disables the stride
//! fast path so injected corruption is always simulated), and lets the
//! [`MarginSupervisor`](atm_core::MarginSupervisor) detect, roll back,
//! safe-mode, or quarantine the damage.
//!
//! Everything is a pure function of `(plan, seed)`: trial resolution,
//! injection schedules, supervisor decisions and the merged
//! [`FaultCampaignReport`] are all integer-valued and worker-count
//! independent, so campaign regressions are `assert_eq!`-detectable.
//!
//! # Examples
//!
//! ```
//! use atm_faults::{standard_plans, FaultTarget};
//!
//! let plans = standard_plans();
//! assert_eq!(plans.len(), 3);
//! // Standard plans use seeded targets: the same plan roams across
//! // cores as the campaign seed changes.
//! assert!(plans
//!     .iter()
//!     .flat_map(|p| &p.specs)
//!     .all(|s| s.target == FaultTarget::Seeded));
//! ```
//!
//! Running a campaign (takes a few seconds per plan):
//!
//! ```no_run
//! use atm_faults::{sensor_chaos, FaultCampaign};
//!
//! let report = FaultCampaign::new(sensor_chaos(), 7).trials(3).run(4);
//! println!("{report}");
//! assert!(report.detected > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod fleet;
mod hook;
mod plan;
mod report;

pub use campaign::FaultCampaign;
pub use fleet::FleetFaultPlan;
pub use hook::{CampaignHook, Injection};
pub use plan::{
    actuator_flap, chip_killer, droop_storm, sensor_chaos, standard_plans, FaultKind, FaultPlan,
    FaultSpec, FaultTarget,
};
pub use report::{FaultCampaignReport, TicksSummary};
