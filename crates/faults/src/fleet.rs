//! Fleet-wide fault campaigns: one plan, deterministically scattered
//! over the chips of a fleet.
//!
//! A single-chip [`FaultPlan`] describes *what* goes wrong; a
//! [`FleetFaultPlan`] adds *where*: a seeded `1-in-N` choice of which
//! chips are afflicted at all. Each afflicted chip resolves the plan
//! through [`CampaignHook::resolve`] with its own chip index as the trial
//! number, so the same trick that lets campaign trials roam across cores
//! lets fleet chips fail in decorrelated ways — and the whole affliction
//! map is a pure function of `(plan, seed)`.

use crate::hook::{mix, CampaignHook};
use crate::plan::FaultPlan;

/// A [`FaultPlan`] scattered across a fleet (see the module docs).
///
/// # Examples
///
/// ```
/// use atm_faults::{droop_storm, FleetFaultPlan};
///
/// let fleet_plan = FleetFaultPlan::new(droop_storm(), 4);
/// let afflicted = (0..64)
///     .filter(|c| fleet_plan.hook_for_chip(42, *c).is_some())
///     .count();
/// // Roughly a quarter of the fleet, exactly reproducible.
/// assert!(afflicted > 0 && afflicted < 40);
/// assert_eq!(
///     afflicted,
///     (0..64)
///         .filter(|c| fleet_plan.hook_for_chip(42, *c).is_some())
///         .count()
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FleetFaultPlan {
    /// The per-chip fault plan armed on afflicted chips.
    pub plan: FaultPlan,
    /// Affliction rate: each chip is afflicted with probability `1/one_in`
    /// (seeded, deterministic). `1` afflicts every chip.
    pub one_in: u32,
}

impl FleetFaultPlan {
    /// A fleet plan afflicting roughly one chip in `one_in` (floored at
    /// 1, i.e. every chip).
    #[must_use]
    pub fn new(plan: FaultPlan, one_in: u32) -> Self {
        FleetFaultPlan {
            plan,
            one_in: one_in.max(1),
        }
    }

    /// Whether chip `chip` of a fleet seeded `seed` is afflicted.
    #[must_use]
    pub fn afflicts(&self, seed: u64, chip: u32) -> bool {
        mix(seed ^ mix(0xF1EE_7000 ^ u64::from(chip))).is_multiple_of(u64::from(self.one_in))
    }

    /// The resolved injection hook for `chip`, or `None` when the chip is
    /// spared. The hook is a pure function of `(plan, seed, chip)`.
    #[must_use]
    pub fn hook_for_chip(&self, seed: u64, chip: u32) -> Option<CampaignHook> {
        self.afflicts(seed, chip)
            .then(|| CampaignHook::resolve(&self.plan, seed, chip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::standard_plans;

    #[test]
    fn affliction_is_deterministic_and_seed_sensitive() {
        let plan = FleetFaultPlan::new(standard_plans().remove(0), 3);
        let map = |seed: u64| -> Vec<bool> { (0..256).map(|c| plan.afflicts(seed, c)).collect() };
        assert_eq!(map(7), map(7));
        assert_ne!(map(7), map(8), "affliction map ignored the seed");
        let hit = map(7).iter().filter(|b| **b).count();
        assert!((40..140).contains(&hit), "1-in-3 rate wildly off: {hit}");
    }

    #[test]
    fn one_in_one_afflicts_everyone() {
        let plan = FleetFaultPlan::new(standard_plans().remove(1), 1);
        assert!((0..64).all(|c| plan.hook_for_chip(11, c).is_some()));
    }

    #[test]
    fn afflicted_chips_resolve_decorrelated_hooks() {
        let plan = FleetFaultPlan::new(standard_plans().remove(2), 1);
        let a = plan.hook_for_chip(5, 0).unwrap();
        let b = plan.hook_for_chip(5, 1).unwrap();
        assert_eq!(a.planned_injections(), b.planned_injections());
    }
}
