//! The campaign engine: trials × windows × supervisor, in parallel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use atm_chip::{ChipConfig, MarginMode, System};
use atm_core::charact::CharactConfig;
use atm_core::{AtmManager, Governor, MarginSupervisor, SupervisorAction, SupervisorConfig};
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, MegaHz, Nanos};
use std::collections::BTreeMap;

use crate::hook::{mix, CampaignHook};
use crate::plan::FaultPlan;
use crate::report::{FaultCampaignReport, TicksSummary};

/// One trial's integer bookkeeping, merged in trial order.
#[derive(Debug, Default)]
struct TrialOutcome {
    injected: u64,
    detected: u64,
    recovered: u64,
    safe_modes: u64,
    quarantines: u64,
    ttd: Vec<u64>,
    ttr: Vec<u64>,
}

/// A deterministic fault-injection campaign: `trials` independent
/// supervised servers, each minted from a seed-derived silicon lot, each
/// subjected to the same [`FaultPlan`] (re-resolved per trial so seeded
/// targets roam), observed over fixed windows by a
/// [`MarginSupervisor`] whose decisions the [`AtmManager`] applies.
///
/// The report is a pure function of `(plan, seed, trials, windows)`:
/// trials are claimed by worker threads but merged in trial order, so
/// [`FaultCampaign::run`] returns byte-identical
/// [`FaultCampaignReport`]s for every worker count.
///
/// # Examples
///
/// ```no_run
/// use atm_faults::{droop_storm, FaultCampaign};
///
/// let report = FaultCampaign::new(droop_storm(), 42).trials(3).run(4);
/// assert_eq!(report.injected, 3 * droop_storm().total_firings());
/// assert!(report.detected <= report.injected);
/// ```
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    plan: FaultPlan,
    seed: u64,
    trials: u32,
    windows: u32,
    window: Nanos,
    droop_alarm: MegaHz,
    supervisor: SupervisorConfig,
}

impl FaultCampaign {
    /// A campaign over `plan` with the default shape: 3 trials of 20
    /// five-microsecond observation windows, 30 MHz droop-alarm
    /// threshold, default supervisor ladder.
    #[must_use]
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultCampaign {
            plan,
            seed,
            trials: 3,
            windows: 20,
            window: Nanos::new(5_000.0),
            droop_alarm: MegaHz::new(30.0),
            supervisor: SupervisorConfig::default(),
        }
    }

    /// Sets the trial count (floored at 1).
    #[must_use]
    pub fn trials(mut self, trials: u32) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the observation-window count per trial (floored at 1).
    #[must_use]
    pub fn windows(mut self, windows: u32) -> Self {
        self.windows = windows.max(1);
        self
    }

    /// Overrides the supervisor thresholds.
    #[must_use]
    pub fn supervisor(mut self, config: SupervisorConfig) -> Self {
        self.supervisor = config;
        self
    }

    /// Runs the campaign on up to `workers` threads and merges the
    /// per-trial outcomes, in trial order, into one report.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn run(&self, workers: usize) -> FaultCampaignReport {
        assert!(workers > 0, "need at least one worker");
        let trials = self.trials as usize;
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(u32, TrialOutcome)>> = Mutex::new(Vec::with_capacity(trials));

        std::thread::scope(|scope| {
            for _ in 0..workers.min(trials) {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= trials {
                        break;
                    }
                    let outcome = self.run_trial(t as u32);
                    results
                        .lock()
                        .expect("no poisoned trials")
                        .push((t as u32, outcome));
                });
            }
        });

        let mut outcomes = results.into_inner().expect("no poisoned trials");
        outcomes.sort_by_key(|(t, _)| *t);

        let mut merged = TrialOutcome::default();
        for (_, o) in outcomes {
            merged.injected += o.injected;
            merged.detected += o.detected;
            merged.recovered += o.recovered;
            merged.safe_modes += o.safe_modes;
            merged.quarantines += o.quarantines;
            merged.ttd.extend(o.ttd);
            merged.ttr.extend(o.ttr);
        }
        FaultCampaignReport {
            plan: self.plan.name.clone(),
            seed: self.seed,
            trials: self.trials,
            injected: merged.injected,
            detected: merged.detected,
            recovered: merged.recovered,
            safe_modes: merged.safe_modes,
            quarantines: merged.quarantines,
            time_to_detect: TicksSummary::from_samples(&merged.ttd),
            time_to_recover: TicksSummary::from_samples(&merged.ttr),
        }
    }

    /// One supervised trial: deploy, arm the resolved plan, observe.
    fn run_trial(&self, trial: u32) -> TrialOutcome {
        let lot = mix(self.seed ^ mix(u64::from(trial)));
        let sys = System::new(ChipConfig::power7_plus(lot));
        let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
        mgr.system_mut().set_droop_alarm(Some(self.droop_alarm));
        mgr.system_mut().set_mode_all(MarginMode::Atm);
        mgr.system_mut().drain_events();

        let mut sup = MarginSupervisor::new(self.supervisor);
        sup.attach(mgr.system());
        let mut hook = CampaignHook::resolve(&self.plan, self.seed, trial);

        let mut out = TrialOutcome::default();
        let mut pending_detect: BTreeMap<CoreId, Vec<u64>> = BTreeMap::new();
        let mut pending_recover: BTreeMap<CoreId, Vec<u64>> = BTreeMap::new();
        let mut seen_injections = 0usize;

        for _ in 0..self.windows {
            let _ = mgr
                .system_mut()
                .run_faulted(self.window, &mut hook, &mut NullRecorder);
            let t_end = hook.ticks_seen();
            let events = mgr.system_mut().drain_events();
            let actions = sup.observe_window(mgr.system(), &events);
            let _ = mgr.apply_supervisor_actions(&actions, &mut NullRecorder);

            for inj in &hook.injections()[seen_injections..] {
                pending_detect.entry(inj.core).or_default().push(inj.tick);
            }
            seen_injections = hook.injections().len();

            // Recoveries first: an action resolves only detections from
            // earlier windows, never the ones it creates below.
            for action in &actions {
                let resolves = matches!(
                    action,
                    SupervisorAction::Reprobe { .. }
                        | SupervisorAction::SafeMode { .. }
                        | SupervisorAction::Quarantine { .. }
                );
                match action {
                    SupervisorAction::SafeMode { .. } => out.safe_modes += 1,
                    SupervisorAction::Quarantine { .. } => out.quarantines += 1,
                    _ => {}
                }
                if !resolves {
                    continue;
                }
                if let Some(detections) = pending_recover.remove(&action.core()) {
                    for t_detect in detections {
                        out.recovered += 1;
                        out.ttr.push(t_end.saturating_sub(t_detect));
                    }
                }
            }

            // Detections: the supervisor's first reaction on a faulted
            // core claims every injection delivered to it so far.
            for action in &actions {
                let core = action.core();
                if let Some(ticks) = pending_detect.remove(&core) {
                    for tick in ticks {
                        out.detected += 1;
                        out.ttd.push(t_end.saturating_sub(tick));
                        pending_recover.entry(core).or_default().push(t_end);
                    }
                }
            }
        }

        out.injected = hook.injections().len() as u64;
        out
    }
}
