//! Ablation: ATM loop threshold and up-slew rate.
//!
//! A larger threshold wastes margin (lower equilibrium frequency); a
//! faster up-slew recovers from droop responses quicker but measures the
//! same equilibrium. The printed sweep quantifies the design point the
//! paper's platform chose (5 units, 0.2%/step).

use atm_bench::criterion;
use atm_chip::{ChipConfig, MarginMode, System};
use atm_dpll::AtmLoopConfig;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use criterion::Criterion;
use std::hint::black_box;

fn equilibrium_at(threshold_units: u32, up_rate: f64) -> (f64, u64) {
    let mut cfg = ChipConfig::power7_plus(atm_bench::BENCH_SEED);
    cfg.loop_config = AtmLoopConfig {
        threshold_units,
        up_rate,
        ..AtmLoopConfig::power7_plus()
    };
    let mut sys = System::new(cfg);
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    sys.assign(core, atm_workloads::by_name("x264").unwrap().clone());
    let report = sys.run(Nanos::new(50_000.0), &mut NullRecorder);
    (
        report.core(core).mean_freq.get(),
        report.core(core).violations,
    )
}

fn bench(c: &mut Criterion) {
    eprintln!("\n===== ablation: loop threshold (units) -> x264 mean MHz =====");
    for thr in [2u32, 5, 8, 12] {
        let (f, v) = equilibrium_at(thr, 0.002);
        eprintln!("threshold {thr:>2}: {f:.0} MHz, {v} loop violations");
    }
    eprintln!("===== ablation: up-slew rate -> x264 mean MHz =====");
    for rate in [0.0005, 0.002, 0.008] {
        let (f, v) = equilibrium_at(5, rate);
        eprintln!("up-rate {rate:>7.4}: {f:.0} MHz, {v} loop violations");
    }

    let mut sys = System::new(ChipConfig::power7_plus(atm_bench::BENCH_SEED));
    sys.set_mode(CoreId::new(0, 0), MarginMode::Atm);
    c.bench_function("ablation_loop/run_50us", |b| {
        b.iter(|| black_box(sys.run(Nanos::new(50_000.0), &mut NullRecorder)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
