//! Substrate bench: simulator throughput as a function of how many cores
//! run in ATM mode (the tick cost is dominated by the alpha-power-law
//! evaluations of active control loops).

use atm_bench::criterion;
use atm_chip::{ChipConfig, MarginMode, System};
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use criterion::{BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for atm_cores in [1usize, 8, 16] {
        let mut sys = System::new(ChipConfig::power7_plus(atm_bench::BENCH_SEED));
        for (i, core) in CoreId::all().enumerate() {
            if i < atm_cores {
                sys.set_mode(core, MarginMode::Atm);
            }
        }
        let duration = Nanos::new(10_000.0); // 200 ticks
        group.throughput(Throughput::Elements(200));
        group.bench_with_input(BenchmarkId::new("ticks", atm_cores), &atm_cores, |b, _| {
            b.iter(|| black_box(sys.run(duration, &mut NullRecorder)))
        });
    }
    group.finish();
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
