//! Fig. 1 bench: regenerates the margin-scheme frequency ranges and times
//! the fine-tuned system's settle kernel.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_chip::MarginMode;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig01::run(&mut ctx);
    print_exhibit("Fig. 1 — margin schemes", &fig.to_string());

    let mut sys = ctx.deployed_system();
    sys.set_mode_all(MarginMode::Atm);
    c.bench_function("fig01/settle_finetuned_system", |b| {
        b.iter(|| black_box(sys.settle()))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
