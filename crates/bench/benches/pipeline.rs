//! End-to-end pipeline bench: how long the paper's full methodology takes
//! on the simulator — idle characterization of a socket and a complete
//! stress-test deployment.

use atm_bench::criterion;
use atm_chip::{ChipConfig, System};
use atm_core::charact::{idle_characterization, CharactConfig};
use atm_core::stress::stress_test_deploy;
use atm_telemetry::NullRecorder;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = CharactConfig::quick();
    c.bench_function("pipeline/idle_characterization_16_cores", |b| {
        b.iter(|| {
            let mut sys = System::new(ChipConfig::power7_plus(atm_bench::BENCH_SEED));
            black_box(idle_characterization(&mut sys, &cfg, &mut NullRecorder))
        })
    });
    c.bench_function("pipeline/stress_test_deploy_16_cores", |b| {
        b.iter(|| {
            let mut sys = System::new(ChipConfig::power7_plus(atm_bench::BENCH_SEED));
            black_box(stress_test_deploy(&mut sys, 0, &cfg))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
