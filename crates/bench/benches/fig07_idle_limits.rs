//! Fig. 7 bench: regenerates the idle-limit distributions and times the
//! per-core limit search.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_core::charact::{find_limit, CharactConfig};
use atm_telemetry::NullRecorder;
use atm_units::CoreId;
use atm_workloads::Workload;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig07::run(&mut ctx);
    print_exhibit("Fig. 7 — idle limits", &fig.to_string());

    let mut sys = ctx.fresh_system();
    let idle = Workload::idle();
    let cfg = CharactConfig::quick();
    c.bench_function("fig07/idle_limit_search_one_core", |b| {
        b.iter(|| {
            black_box(find_limit(
                &mut sys,
                CoreId::new(0, 0),
                &[&idle],
                4,
                &cfg,
                &mut NullRecorder,
            ))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
