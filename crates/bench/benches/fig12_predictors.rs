//! Fig. 12 bench: regenerates both predictor fits and times frequency-
//! predictor training (an eight-point settle sweep).

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_core::predictor::{FreqPredictor, PerfPredictor};
use atm_units::{CoreId, MegaHz};
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig12::run(&mut ctx);
    print_exhibit("Fig. 12 — predictors", &fig.to_string());

    let mut sys = ctx.deployed_system();
    c.bench_function("fig12/freq_predictor_train", |b| {
        b.iter(|| black_box(FreqPredictor::train(&mut sys, CoreId::new(0, 0))))
    });
    let mcf = atm_workloads::by_name("mcf").unwrap();
    c.bench_function("fig12/perf_predictor_train", |b| {
        b.iter(|| black_box(PerfPredictor::train(mcf, MegaHz::new(4200.0))))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
