//! Fig. 4b bench: regenerates the preset inserted delays and times the
//! test-time CPM calibration.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_cpm::CoreCpmSet;
use atm_silicon::{SiliconFactory, SiliconParams};
use atm_units::{Celsius, CoreId, MegaHz, Picos, Volts};
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig04::run(&mut ctx);
    print_exhibit("Fig. 4b — preset CPM inserted delays", &fig.to_string());

    let factory = SiliconFactory::new(SiliconParams::power7_plus(), atm_bench::BENCH_SEED);
    let silicon = factory.core(CoreId::new(0, 0));
    c.bench_function("fig04/cpm_calibration", |b| {
        b.iter(|| {
            black_box(CoreCpmSet::calibrate(
                &silicon,
                Volts::new(1.235),
                Celsius::new(45.0),
                MegaHz::new(4600.0),
                Picos::new(10.0),
            ))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
