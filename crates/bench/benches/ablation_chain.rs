//! Ablation: manufactured (non-linear) vs. ideal linear inverter chains.
//!
//! The paper's Sec. IV-C attributes part of the inter-core heterogeneity
//! to chain non-linearity: a big step can force a core to leave hundreds
//! of MHz untapped. This ablation quantifies the quantization loss.

use atm_bench::criterion;
use atm_cpm::CoreCpmSet;
use atm_silicon::{AlphaPowerLaw, CoreSilicon, InverterChain, SiliconFactory, SiliconParams};
use atm_units::{Celsius, CoreId, MegaHz, Picos, Volts};
use criterion::Criterion;
use std::hint::black_box;

fn with_chain(base: &CoreSilicon, chain: InverterChain) -> CoreSilicon {
    let mimic: Vec<f64> = (0..5).map(|i| base.mimic_ratio(i)).collect();
    CoreSilicon::new(
        base.id(),
        AlphaPowerLaw::power7_plus(base.real_path().d0()),
        [mimic[0], mimic[1], mimic[2], mimic[3], mimic[4]],
        base.coverage_gap(0.0),
        0.0,
        chain,
    )
}

fn bench(c: &mut Criterion) {
    let factory = SiliconFactory::new(SiliconParams::power7_plus(), atm_bench::BENCH_SEED);
    let v = Volts::new(1.235);
    let t = Celsius::new(45.0);
    let thr = Picos::new(10.0);

    eprintln!("\n===== ablation: manufactured vs linear inverter chain =====");
    eprintln!("core   manufactured-step-quantization-loss vs linear (MHz at 5 steps)");
    for idx in [0usize, 4, 9, 13] {
        let silicon = factory.core(CoreId::from_flat_index(idx));
        let scale = silicon.inverter_chain().mean_step().get();
        let linear = with_chain(&silicon, InverterChain::linear(scale));

        let freq_at = |si: &CoreSilicon| {
            let mut cpms = CoreCpmSet::calibrate(si, v, t, MegaHz::new(4600.0), thr);
            let r = 5.min(cpms.max_reduction());
            cpms.set_reduction(r).unwrap();
            cpms.equilibrium_period(si, v, t, thr).frequency().get()
        };
        let f_manu = freq_at(&silicon);
        let f_lin = freq_at(&linear);
        eprintln!(
            "{}   manufactured {f_manu:.0} MHz vs linear {f_lin:.0} MHz (delta {:+.0})",
            silicon.id(),
            f_manu - f_lin
        );
    }

    let silicon = factory.core(CoreId::new(0, 0));
    c.bench_function("ablation_chain/equilibrium_period", |b| {
        let cpms = CoreCpmSet::calibrate(&silicon, v, t, MegaHz::new(4600.0), thr);
        b.iter(|| black_box(cpms.equilibrium_period(&silicon, v, t, thr)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
