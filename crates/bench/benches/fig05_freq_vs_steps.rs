//! Fig. 5 bench: regenerates the frequency-vs-reduction sweeps and times
//! one sweep.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_core::FineTuner;
use atm_units::CoreId;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig05::run(&mut ctx);
    print_exhibit(
        "Fig. 5 — frequency vs. CPM delay reduction",
        &fig.to_string(),
    );

    let mut sys = ctx.fresh_system();
    c.bench_function("fig05/frequency_sweep_6_steps", |b| {
        b.iter(|| black_box(FineTuner::new(&mut sys).frequency_sweep(CoreId::new(0, 1), 6)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
