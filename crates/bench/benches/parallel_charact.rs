//! Parallel characterization engine bench: full-chip characterization at
//! 1/2/4/8 workers plus the memoized rerun, with the measured speedups
//! emitted into the bench JSON trajectory.
//!
//! Worker-count speedup is a property of the host: on a single-CPU
//! machine the threads serialize and the speedup is honestly ≈1×. The
//! memoized-rerun speedup is machine-independent — a rerun replays the
//! sweep cache and simulates nothing.

use atm_bench::{criterion, print_exhibit, record_metric, BENCH_SEED};
use atm_chip::ChipConfig;
use atm_core::charact::CharactConfig;
use atm_core::CharactEngine;
use atm_workloads::Workload;
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn apps() -> Vec<&'static Workload> {
    vec![atm_workloads::by_name("x264").expect("known app")]
}

fn fresh_engine() -> CharactEngine {
    CharactEngine::new(ChipConfig::power7_plus(BENCH_SEED), CharactConfig::quick())
}

/// Best-of-3 wall-clock of a cold (fresh-cache) full-chip run.
fn cold_wall_ns(workers: usize) -> u128 {
    let apps = apps();
    (0..3)
        .map(|_| {
            let engine = fresh_engine();
            let start = Instant::now();
            black_box(engine.run_parallel(&apps, workers));
            start.elapsed().as_nanos()
        })
        .min()
        .expect("three samples")
}

fn bench(c: &mut Criterion) {
    let apps = apps();

    // Criterion timings: cold characterization per worker count.
    let mut group = c.benchmark_group("parallel_charact");
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("cold", workers),
            &workers,
            |b, &workers| {
                b.iter(|| black_box(fresh_engine().run_parallel(&apps, workers)));
            },
        );
    }
    // Warm rerun: every trial and settle point answered from the cache.
    let warm = fresh_engine();
    let first = warm.run_parallel(&apps, 8);
    group.bench_function("memoized_rerun", |b| {
        b.iter(|| black_box(warm.run_parallel(&apps, 8)));
    });
    group.finish();

    // Speedup metrics into the trajectory, measured directly so the
    // derived numbers land next to the raw timings.
    let t: Vec<u128> = WORKER_COUNTS.iter().map(|&k| cold_wall_ns(k)).collect();
    for (i, &k) in WORKER_COUNTS.iter().enumerate().skip(1) {
        record_metric(
            &format!("parallel_charact/speedup_{k}w"),
            t[0] as f64 / t[i] as f64,
        );
    }
    let warm_start = Instant::now();
    let rerun = warm.run_parallel(&apps, 8);
    let warm_ns = warm_start.elapsed().as_nanos().max(1);
    record_metric(
        "parallel_charact/memoized_rerun_speedup",
        t[3] as f64 / warm_ns as f64,
    );

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rows = String::new();
    rows.push_str(&format!("host parallelism: {cpus} CPU(s)\n"));
    for (i, &k) in WORKER_COUNTS.iter().enumerate() {
        rows.push_str(&format!(
            "{k} worker(s): {:8.2} ms cold  (speedup {:.2}x)\n",
            t[i] as f64 / 1e6,
            t[0] as f64 / t[i] as f64,
        ));
    }
    rows.push_str(&format!(
        "memoized rerun: {:8.3} ms ({:.0}x vs cold 8w), {} points simulated, {} cache hits\n",
        warm_ns as f64 / 1e6,
        t[3] as f64 / warm_ns as f64,
        rerun.stats.points_simulated,
        rerun.stats.cache_hits,
    ));
    rows.push_str(&format!(
        "cold run work: {} points simulated, hit rate {:.1}%\n",
        first.stats.points_simulated,
        first.stats.hit_rate() * 100.0,
    ));
    print_exhibit("Parallel characterization engine", &rows);
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
