//! Serving-layer throughput bench: the deterministic serving simulator
//! at 1-, 4-, and 8-core deployments, with completed requests/sec and
//! the critical stream's p99 latency emitted into the bench trajectory.
//!
//! The 1-core run serves the critical stream alone (every background
//! request is shed); adding background cores raises total throughput
//! while the critical p99 stays governed by its own core's queue — the
//! isolation the managed posture buys.

use atm_bench::{criterion, print_exhibit, record_metric, BENCH_SEED};
use atm_chip::{ChipConfig, System};
use atm_core::charact::CharactConfig;
use atm_core::{AtmManager, Governor};
use atm_serve::{ArrivalPattern, ServeConfig, ServeReport, ServeSim, StreamSpec};
use atm_telemetry::NullRecorder;
use atm_workloads::by_name;
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

const CORE_COUNTS: [u32; 3] = [1, 4, 8];

fn streams() -> Vec<StreamSpec> {
    let sq = by_name("squeezenet").expect("catalog");
    let x264 = by_name("x264").expect("catalog");
    let lu = by_name("lu_cb").expect("catalog");
    vec![
        StreamSpec::critical(
            sq,
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            250_000_000,
        ),
        StreamSpec::background(
            x264,
            ArrivalPattern::Bursty {
                mean_gap: 20_000_000,
                burst_gap: 5_000_000,
                phase: 100_000_000,
            },
        ),
        StreamSpec::background(
            lu,
            ArrivalPattern::Poisson {
                mean_gap: 15_000_000,
            },
        ),
    ]
}

fn serve(cores: u32) -> ServeReport {
    let sys = System::new(ChipConfig::power7_plus(BENCH_SEED));
    let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    let mut cfg = ServeConfig::quick(BENCH_SEED);
    cfg.serving_cores = Some(cores);
    ServeSim::new(mgr, cfg, streams())
        .expect("valid serving setup")
        .run(4, &mut NullRecorder)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    for cores in CORE_COUNTS {
        group.bench_with_input(BenchmarkId::new("cores", cores), &cores, |b, &cores| {
            b.iter(|| black_box(serve(cores)));
        });
    }
    group.finish();

    let mut rows = String::new();
    for cores in CORE_COUNTS {
        let report = serve(cores);
        let rps = report.requests_per_sec();
        let crit = report.critical();
        record_metric(&format!("serve_throughput/{cores}c_requests_per_sec"), rps);
        record_metric(
            &format!("serve_throughput/{cores}c_critical_p99_ms"),
            crit.p99_ns as f64 / 1e6,
        );
        rows.push_str(&format!(
            "{cores} core(s): {rps:7.1} req/s, {} completed, {} shed, critical p99 {:.1} ms ({})\n",
            report.completed,
            report.shed,
            crit.p99_ns as f64 / 1e6,
            if crit.slo_met() {
                "SLO met"
            } else {
                "SLO missed"
            },
        ));
    }
    print_exhibit("Serving throughput vs deployment size", &rows);
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
