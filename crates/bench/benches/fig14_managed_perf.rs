//! Fig. 14 bench: regenerates the managed-performance comparison and
//! times one managed-pair evaluation.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_core::charact::CharactConfig;
use atm_core::manager::Strategy;
use atm_core::{AtmManager, Governor};
use atm_telemetry::NullRecorder;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig14::run(&mut ctx);
    print_exhibit("Fig. 14 — managed critical performance", &fig.to_string());

    let mut mgr = AtmManager::deploy(
        ctx.fresh_system(),
        Governor::Default,
        &CharactConfig::quick(),
    );
    let critical = atm_workloads::by_name("squeezenet").unwrap();
    let background = atm_workloads::by_name("x264").unwrap();
    c.bench_function("fig14/evaluate_managed_max_pair", |b| {
        b.iter(|| {
            black_box(mgr.evaluate_pair(
                critical,
                background,
                Strategy::ManagedMax,
                &mut NullRecorder,
            ))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
