//! Fig. 10 bench: regenerates the app × core rollback heat map and times
//! the characterization of one ⟨app, core⟩ cell.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_core::charact::{realistic_characterization, CharactConfig};
use atm_telemetry::NullRecorder;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let ubench = ctx.ubench_limits();
    let fig = atm_experiments::fig10::run(&mut ctx);
    print_exhibit("Fig. 10 — rollback heat map", &fig.to_string());

    let mut sys = ctx.fresh_system();
    let leela = atm_workloads::by_name("leela").unwrap();
    let cfg = CharactConfig::quick();
    c.bench_function("fig10/one_app_sixteen_cores", |b| {
        b.iter(|| {
            black_box(realistic_characterization(
                &mut sys,
                &ubench,
                &[leela],
                &cfg,
                &mut NullRecorder,
            ))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
