//! Telemetry overhead: the cost of threading a recorder through the chip
//! hot loop.
//!
//! Two variants of the same 50 µs ATM run through the consolidated
//! recorder-generic entry point: the zero-cost [`NullRecorder`] — which
//! monomorphizes to the bare loop and is the baseline — and a live
//! [`RingRecorder`], whose cost bounds what "telemetry on" buys.

use atm_bench::{criterion, print_exhibit, record_metric, BENCH_SEED};
use atm_chip::{ChipConfig, MarginMode, System};
use atm_telemetry::{NullRecorder, RingRecorder};
use atm_units::{CoreId, Nanos};
use criterion::Criterion;
use std::hint::black_box;
use std::time::Instant;

const TRIAL: f64 = 50_000.0;

fn system() -> System {
    let mut sys = System::new(ChipConfig::power7_plus(BENCH_SEED));
    sys.set_mode(CoreId::new(0, 0), MarginMode::Atm);
    sys.assign(
        CoreId::new(0, 0),
        atm_workloads::by_name("x264").unwrap().clone(),
    );
    sys
}

fn time_per_run<F: FnMut() -> f64>(mut f: F, reps: u32) -> f64 {
    let start = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        acc += f();
    }
    black_box(acc);
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("null_recorder_50us", |b| {
        let mut sys = system();
        b.iter(|| black_box(sys.run(Nanos::new(TRIAL), &mut NullRecorder)));
    });
    group.bench_function("ring_recorder_50us", |b| {
        let mut sys = system();
        let mut rec = RingRecorder::with_capacity(4096);
        b.iter(|| black_box(sys.run(Nanos::new(TRIAL), &mut rec)));
    });
    group.finish();

    let reps = 20;
    let mut null_sys = system();
    let null = time_per_run(
        || {
            null_sys
                .run(Nanos::new(TRIAL), &mut NullRecorder)
                .core(CoreId::new(0, 0))
                .mean_freq
                .get()
        },
        reps,
    );
    let mut ring_sys = system();
    let mut rec = RingRecorder::with_capacity(4096);
    let ring = time_per_run(
        || {
            ring_sys
                .run(Nanos::new(TRIAL), &mut rec)
                .core(CoreId::new(0, 0))
                .mean_freq
                .get()
        },
        reps,
    );

    record_metric("telemetry_overhead/null_ms", null * 1e3);
    record_metric("telemetry_overhead/ring_ms", ring * 1e3);
    record_metric("telemetry_overhead/ring_over_null", ring / null);

    print_exhibit(
        "Telemetry overhead (50 us chip run)",
        &format!(
            "NullRecorder (default) : {:8.3} ms/run (baseline)\n\
             RingRecorder (cap 4096): {:8.3} ms/run ({:+5.1}% vs null)\n",
            null * 1e3,
            ring * 1e3,
            (ring / null - 1.0) * 100.0,
        ),
    );
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
