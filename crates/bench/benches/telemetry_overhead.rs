//! Telemetry overhead: the cost of threading a recorder through the chip
//! hot loop.
//!
//! Three variants of the same 50 µs ATM run: the pre-telemetry entry
//! point (`System::run`), the recorded entry point with the zero-cost
//! [`NullRecorder`], and a live [`RingRecorder`]. The first two must be
//! within noise of each other — `NullRecorder` monomorphizes to the
//! original loop — while the ring's cost bounds what "telemetry on"
//! buys.

use atm_bench::{criterion, print_exhibit, record_metric, BENCH_SEED};
use atm_chip::{ChipConfig, MarginMode, System};
use atm_telemetry::{NullRecorder, RingRecorder};
use atm_units::{CoreId, Nanos};
use criterion::Criterion;
use std::hint::black_box;
use std::time::Instant;

const TRIAL: f64 = 50_000.0;

fn system() -> System {
    let mut sys = System::new(ChipConfig::power7_plus(BENCH_SEED));
    sys.set_mode(CoreId::new(0, 0), MarginMode::Atm);
    sys.assign(
        CoreId::new(0, 0),
        atm_workloads::by_name("x264").unwrap().clone(),
    );
    sys
}

fn time_per_run<F: FnMut() -> f64>(mut f: F, reps: u32) -> f64 {
    let start = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        acc += f();
    }
    black_box(acc);
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("plain_run_50us", |b| {
        let mut sys = system();
        b.iter(|| black_box(sys.run(Nanos::new(TRIAL))));
    });
    group.bench_function("null_recorder_50us", |b| {
        let mut sys = system();
        b.iter(|| black_box(sys.run_recorded(Nanos::new(TRIAL), &mut NullRecorder)));
    });
    group.bench_function("ring_recorder_50us", |b| {
        let mut sys = system();
        let mut rec = RingRecorder::with_capacity(4096);
        b.iter(|| black_box(sys.run_recorded(Nanos::new(TRIAL), &mut rec)));
    });
    group.finish();

    let reps = 20;
    let mut plain_sys = system();
    let plain = time_per_run(
        || {
            plain_sys
                .run(Nanos::new(TRIAL))
                .core(CoreId::new(0, 0))
                .mean_freq
                .get()
        },
        reps,
    );
    let mut null_sys = system();
    let null = time_per_run(
        || {
            null_sys
                .run_recorded(Nanos::new(TRIAL), &mut NullRecorder)
                .core(CoreId::new(0, 0))
                .mean_freq
                .get()
        },
        reps,
    );
    let mut ring_sys = system();
    let mut rec = RingRecorder::with_capacity(4096);
    let ring = time_per_run(
        || {
            ring_sys
                .run_recorded(Nanos::new(TRIAL), &mut rec)
                .core(CoreId::new(0, 0))
                .mean_freq
                .get()
        },
        reps,
    );

    record_metric("telemetry_overhead/plain_ms", plain * 1e3);
    record_metric("telemetry_overhead/null_ms", null * 1e3);
    record_metric("telemetry_overhead/ring_ms", ring * 1e3);
    record_metric("telemetry_overhead/null_over_plain", null / plain);
    record_metric("telemetry_overhead/ring_over_plain", ring / plain);

    print_exhibit(
        "Telemetry overhead (50 us chip run)",
        &format!(
            "plain System::run      : {:8.3} ms/run\n\
             NullRecorder (default) : {:8.3} ms/run ({:+5.1}% vs plain)\n\
             RingRecorder (cap 4096): {:8.3} ms/run ({:+5.1}% vs plain)\n",
            plain * 1e3,
            null * 1e3,
            (null / plain - 1.0) * 100.0,
            ring * 1e3,
            (ring / plain - 1.0) * 100.0,
        ),
    );
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
