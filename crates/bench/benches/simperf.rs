//! Single-thread hot-path throughput regression harness.
//!
//! Measures simulated-nanoseconds-per-wall-second on the stress-deploy
//! scenario, requests-per-wall-second on the serving scenario (four
//! times: bare; with the no-op `NullAdapter` explicitly installed — the
//! `adapt_overhead` row prices the adaptation seam; with the standard
//! `EnergyModel` explicitly installed — the `energy_accounting_overhead`
//! row prices the always-on picojoule meter, and both must stay within
//! noise of `serving`; and with a binding steady power cap — the
//! `capping_epoch` row prices the regulated epoch loop, integral
//! controller plus throttle-ladder actuation included),
//! chips-simulated-per-wall-second on sharded fleets of 16/64/256
//! chips, and sealed-checkpoints-per-wall-second on a mid-run fleet —
//! the `recovery_checkpoint` row prices one full clone/digest/verify/
//! thaw cycle of the recovery machinery — then writes every row into
//! `BENCH_simperf.json` at the repo root.
//!
//! The file is stateful across runs: the `before` column is preserved
//! from the first capture (taken on the tree *before* the tick-loop
//! overhaul) and only `after`/`speedup` are refreshed, so the JSON always
//! reads as a before/after trajectory for the hot-path work.
//!
//! ```text
//! cargo bench -p atm-bench --bench simperf           # full measurement
//! cargo bench -p atm-bench --bench simperf -- --test # CI smoke
//! ```

use std::time::Instant;

use atm_adapt::NullAdapter;
use atm_bench::{record_metric, BENCH_SEED};
use atm_capping::{CapConfig, EnergyModel, PowerBudget};
use atm_chip::{ChipConfig, MarginMode, System};
use atm_core::charact::CharactConfig;
use atm_core::stress::stress_test_deploy;
use atm_core::{AtmManager, Governor};
use atm_fleet::{FleetConfig, FleetSim};
use atm_recovery::Snapshot;
use atm_serve::{ArrivalPattern, ServeConfig, ServeSim, StreamSpec};
use atm_telemetry::NullRecorder;
use atm_units::Nanos;
use atm_workloads::by_name;

fn charact_config(smoke: bool) -> CharactConfig {
    if smoke {
        CharactConfig::builder()
            .trial(Nanos::new(2_000.0))
            .repeats(1)
            .build()
            .expect("valid smoke campaign")
    } else {
        CharactConfig::quick()
    }
}

/// Simulated span of one steady-state measurement iteration.
const STEADY_NS: f64 = 100_000.0;
/// Measurement repeats (best-of, to shed scheduler noise).
const REPEATS: usize = 5;

fn steady_sim_ns_per_wall_s(smoke: bool) -> f64 {
    let mut sys = System::new(ChipConfig::power7_plus(BENCH_SEED));
    let cfg = charact_config(smoke);
    let t0 = Instant::now();
    let _deploy = stress_test_deploy(&mut sys, 0, &cfg);
    let deploy_s = t0.elapsed().as_secs_f64();
    eprintln!("stress-deploy characterization: {deploy_s:.3} wall-s");

    sys.assign_all(by_name("x264").expect("catalog"));
    sys.set_mode_all(MarginMode::Atm);
    let span = if smoke {
        Nanos::new(5_000.0)
    } else {
        Nanos::new(STEADY_NS)
    };
    let repeats = if smoke { 1 } else { REPEATS };
    let mut best = f64::MAX;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let report = sys.run(span, &mut NullRecorder);
        let wall = t0.elapsed().as_secs_f64();
        assert!(report.is_ok(), "steady run must stay failure-free");
        best = best.min(wall);
    }
    span.get() / best
}

/// Which seam the serving scenario is priced with. Every variant runs
/// the identical traffic and chip; the variants differ only in which
/// epoch-loop hook is explicitly exercised, so each row isolates one
/// overhead.
#[derive(Clone, Copy)]
enum ServingVariant {
    /// The default epoch loop, untouched — the reference row.
    Bare,
    /// The no-op adapter explicitly installed: prices the adaptation
    /// seam (must be within noise of [`ServingVariant::Bare`]).
    NullAdapter,
    /// The standard picojoule meter explicitly installed: prices the
    /// always-on energy account (must be within noise of
    /// [`ServingVariant::Bare`] — the default run meters identically).
    EnergyModel,
    /// A binding steady cap armed: prices the full regulated epoch —
    /// integral controller, depth split, throttle-ladder actuation.
    CappedEpoch,
}

/// Steady chip budget for [`ServingVariant::CappedEpoch`], well below
/// the scenario's ~136 W uncapped draw so the regulator genuinely
/// integrates, throttles and holds every epoch.
const CAP_MW: u64 = 60_000;

/// Best-of-`SERVE_REPEATS` wrapper: one-shot serving walls on a busy
/// host swing 3× — the per-variant minimum is the stable signal.
fn serving_req_per_wall_s(smoke: bool, variant: ServingVariant) -> f64 {
    let repeats = if smoke { 1 } else { SERVE_REPEATS };
    (0..repeats)
        .map(|_| serving_req_per_wall_s_once(smoke, variant))
        .fold(0.0_f64, f64::max)
}

/// Serving measurement repeats (best-of, to shed scheduler noise).
const SERVE_REPEATS: usize = 3;

fn serving_req_per_wall_s_once(smoke: bool, variant: ServingVariant) -> f64 {
    let sq = by_name("squeezenet").expect("catalog");
    let x264 = by_name("x264").expect("catalog");
    let lu = by_name("lu_cb").expect("catalog");
    let streams = vec![
        StreamSpec::critical(
            sq,
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            250_000_000,
        ),
        StreamSpec::background(
            x264,
            ArrivalPattern::Bursty {
                mean_gap: 20_000_000,
                burst_gap: 5_000_000,
                phase: 100_000_000,
            },
        ),
        StreamSpec::background(
            lu,
            ArrivalPattern::Poisson {
                mean_gap: 15_000_000,
            },
        ),
    ];
    let charact = charact_config(smoke);
    let sys = System::new(ChipConfig::power7_plus(BENCH_SEED));
    let mgr = AtmManager::deploy(sys, Governor::Default, &charact);
    let cfg = if smoke {
        ServeConfig::builder(BENCH_SEED)
            .epochs(2)
            .epoch_ns(50_000_000)
            .build()
            .expect("valid smoke config")
    } else {
        ServeConfig::quick(BENCH_SEED)
    };
    let epoch_ns = cfg.epoch_ns;
    let mut sim = ServeSim::new(mgr, cfg, streams).expect("valid serving setup");
    match variant {
        ServingVariant::Bare => {}
        ServingVariant::NullAdapter => {
            // Re-install the default no-op adapter explicitly: the
            // measured path is byte-for-byte the adapter-wired epoch
            // loop, so this row prices the `enabled()` seam and nothing
            // else.
            sim.set_adapter(Box::new(NullAdapter));
        }
        ServingVariant::EnergyModel => {
            // Re-install the default meter explicitly: the run already
            // integrates picojoules either way, so this row prices the
            // always-on accounting against the bare reference.
            sim.set_energy_model(EnergyModel::standard(epoch_ns))
                .expect("valid energy model");
        }
        ServingVariant::CappedEpoch => {
            sim.set_cap(CapConfig::standard(PowerBudget::steady(CAP_MW)))
                .expect("valid cap");
        }
    }
    let t0 = Instant::now();
    let report = sim.run(1, &mut NullRecorder);
    let wall = t0.elapsed().as_secs_f64();
    assert!(report.completed > 0, "the run must actually serve traffic");
    if matches!(variant, ServingVariant::CappedEpoch) {
        let cap = report.cap.as_ref().expect("the cap must actually arm");
        assert!(cap.epochs > 0, "the regulator must actually regulate");
    }
    #[allow(clippy::cast_precision_loss)]
    let rate = report.completed as f64 / wall;
    rate
}

/// Whole-fleet throughput: chips simulated per wall-second for a sharded
/// `chips`-chip fleet (deploy + epoch loop + merge, 2 workers — the host
/// pins the worker count, the report doesn't depend on it).
fn fleet_chips_per_wall_s(chips: u32, smoke: bool) -> f64 {
    let mut cfg = FleetConfig::quick(BENCH_SEED).with_chips(chips);
    if smoke {
        cfg = cfg.with_chips(chips.min(4)).with_epochs(2);
    }
    let chips = cfg.chips;
    let t0 = Instant::now();
    let report = FleetSim::new(cfg).expect("valid fleet").run(2);
    let wall = t0.elapsed().as_secs_f64();
    assert!(report.conservation_holds(), "fleet books must balance");
    assert!(report.completed() > 0, "the fleet must actually serve");
    f64::from(chips) / wall
}

/// Sealed-checkpoint cycles per wall-second on a quick fleet paused at
/// its mid-run epoch: each cycle clones the whole managed state, seals
/// it under the FNV-1a digest, re-verifies the seal and thaws it back —
/// the complete round trip the failover ladder and the bisection driver
/// pay per checkpoint.
fn recovery_checkpoints_per_wall_s(smoke: bool) -> f64 {
    let mut cfg = FleetConfig::quick(BENCH_SEED);
    if smoke {
        cfg = cfg.with_chips(4).with_epochs(2);
    }
    let mid = cfg.epochs / 2;
    let mut run = FleetSim::new(cfg).expect("valid fleet").start(2);
    while run.epoch() < mid {
        run.step_epoch(2);
    }
    let cycles = if smoke { 2 } else { 50 };
    let t0 = Instant::now();
    for _ in 0..cycles {
        let sealed = Snapshot::seal(run.checkpoint());
        let thawed = sealed.state().expect("a fresh seal verifies").thaw();
        assert_eq!(thawed.epoch(), run.epoch(), "thawed at the wrong epoch");
    }
    let wall = t0.elapsed().as_secs_f64();
    f64::from(cycles) / wall
}

/// One before/after row of `BENCH_simperf.json`.
struct Row {
    name: &'static str,
    metric: &'static str,
    after: f64,
}

/// Fleet sizes measured by the `fleet_scale` scenario family.
const FLEET_SIZES: [u32; 3] = [16, 64, 256];

/// Repo root = the parent of the enclosing `target/` directory.
fn simperf_path() -> std::path::PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name() == Some(std::ffi::OsStr::new("target")) {
                if let Some(root) = dir.parent() {
                    return root.join("BENCH_simperf.json");
                }
            }
        }
    }
    std::path::Path::new("BENCH_simperf.json").to_path_buf()
}

/// Pulls the preserved `before` value for `name` out of a prior capture.
fn prior_before(existing: &str, name: &str) -> Option<f64> {
    let anchor = format!("\"name\": \"{name}\"");
    let tail = &existing[existing.find(&anchor)? + anchor.len()..];
    let tail = &tail[tail.find("\"before\": ")? + "\"before\": ".len()..];
    let end = tail.find([',', '\n', '}'])?;
    tail[..end].trim().parse().ok()
}

fn write_report(rows: &[Row]) {
    let path = simperf_path();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let mut out = String::from("{\n  \"benchmark\": \"simperf\",\n");
    out.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    out.push_str("  \"unit\": \"higher is better\",\n  \"scenarios\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let before = prior_before(&existing, row.name).unwrap_or(row.after);
        let speedup = row.after / before;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"metric\": \"{}\", \"before\": {:.1}, \"after\": {:.1}, \"speedup\": {:.2}}}{}\n",
            row.name,
            row.metric,
            before,
            row.after,
            speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
        record_metric(&format!("simperf.{}.speedup", row.name), speedup);
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, &out).expect("write BENCH_simperf.json");
    eprintln!("wrote {}:\n{out}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let steady = steady_sim_ns_per_wall_s(smoke);
    let serving = serving_req_per_wall_s(smoke, ServingVariant::Bare);
    let adapt_overhead = serving_req_per_wall_s(smoke, ServingVariant::NullAdapter);
    let energy_overhead = serving_req_per_wall_s(smoke, ServingVariant::EnergyModel);
    let capping_epoch = serving_req_per_wall_s(smoke, ServingVariant::CappedEpoch);
    eprintln!("stress_deploy steady: {steady:.0} sim-ns/wall-s");
    eprintln!("serving: {serving:.0} req/wall-s");
    eprintln!("adapt_overhead (explicit NullAdapter): {adapt_overhead:.0} req/wall-s");
    eprintln!("energy_accounting_overhead (explicit EnergyModel): {energy_overhead:.0} req/wall-s");
    eprintln!("capping_epoch (steady {CAP_MW} mW cap): {capping_epoch:.0} req/wall-s");
    let recovery_checkpoint = recovery_checkpoints_per_wall_s(smoke);
    eprintln!("recovery_checkpoint (seal + verify + thaw): {recovery_checkpoint:.1} cycles/wall-s");
    let fleet_sizes: &[u32] = if smoke {
        &FLEET_SIZES[..1]
    } else {
        &FLEET_SIZES
    };
    let mut fleet_rates = Vec::new();
    for &chips in fleet_sizes {
        let rate = fleet_chips_per_wall_s(chips, smoke);
        eprintln!("fleet_scale_{chips}: {rate:.1} chips/wall-s");
        fleet_rates.push(rate);
    }
    if smoke {
        eprintln!("--test smoke: skipping BENCH_simperf.json update");
        return;
    }
    let mut rows = vec![
        Row {
            name: "stress_deploy",
            metric: "sim_ns_per_wall_s",
            after: steady,
        },
        Row {
            name: "serving",
            metric: "req_per_wall_s",
            after: serving,
        },
        // The zero-cost-when-off law, priced: the same serving scenario
        // with the no-op adapter explicitly installed must sit within
        // noise of the `serving` row.
        Row {
            name: "adapt_overhead",
            metric: "req_per_wall_s",
            after: adapt_overhead,
        },
        // The always-on meter, priced: explicitly installing the
        // standard `EnergyModel` changes nothing about the measured
        // path, so this row must also sit within noise of `serving`.
        Row {
            name: "energy_accounting_overhead",
            metric: "req_per_wall_s",
            after: energy_overhead,
        },
        // The regulated epoch, priced: a binding steady cap runs the
        // integral controller and throttle-ladder actuation every
        // epoch (throughput also drops because throttled cores serve
        // slower — this row is the cost of serving *under* a cap, not
        // a pure harness overhead).
        Row {
            name: "capping_epoch",
            metric: "req_per_wall_s",
            after: capping_epoch,
        },
        // The recovery machinery, priced: one full checkpoint round
        // trip (clone + FNV-1a seal + verify + thaw) of a mid-run quick
        // fleet — the unit cost behind periodic failover checkpoints
        // and checkpointed bisection replay.
        Row {
            name: "recovery_checkpoint",
            metric: "checkpoint_cycles_per_wall_s",
            after: recovery_checkpoint,
        },
    ];
    let fleet_names: [&'static str; 3] = ["fleet_scale_16", "fleet_scale_64", "fleet_scale_256"];
    for (name, rate) in fleet_names.into_iter().zip(fleet_rates) {
        rows.push(Row {
            name,
            metric: "chips_per_wall_s",
            after: rate,
        });
    }
    write_report(&rows);
}
