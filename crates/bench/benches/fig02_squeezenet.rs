//! Fig. 2 bench: regenerates the SqueezeNet latency scenarios and times a
//! measured scheduling run.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_chip::MarginMode;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig02::run(&mut ctx);
    print_exhibit("Fig. 2 — SqueezeNet latency", &fig.to_string());

    let mut sys = ctx.deployed_system();
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    sys.assign(core, atm_workloads::by_name("squeezenet").unwrap().clone());
    c.bench_function("fig02/measured_run_20us", |b| {
        b.iter(|| black_box(sys.run(Nanos::new(20_000.0), &mut NullRecorder)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
