//! Table I bench: regenerates the four-row limit table and times a single
//! pass/fail characterization trial.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_chip::MarginMode;
use atm_core::charact::passes;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let t = atm_experiments::table1::run(&mut ctx);
    print_exhibit("Table I — ATM limits", &t.to_string());

    let mut sys = ctx.fresh_system();
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    let x264 = atm_workloads::by_name("x264").unwrap();
    c.bench_function("table1/single_trial_20us", |b| {
        b.iter(|| {
            black_box(passes(
                &mut sys,
                core,
                x264,
                2,
                Nanos::new(20_000.0),
                &mut NullRecorder,
            ))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
