//! Ablation: the di/dt fast (loop-escaping) component.
//!
//! With sharpness forced to zero every droop is fully tracked by the loop
//! and realistic workloads stop forcing CPM rollback — demonstrating that
//! the rollback requirement (Figs. 9–10) is driven by the droop leading
//! edge, not by average voltage.

use atm_bench::criterion;
use atm_chip::{ChipConfig, MarginMode, System};
use atm_core::charact::{find_limit, CharactConfig};
use atm_pdn::DiDtParams;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use atm_workloads::{by_name, Workload, WorkloadKind};
use criterion::Criterion;
use std::hint::black_box;

fn softened(w: &Workload) -> Workload {
    let d = w.didt();
    Workload::new(
        format!("{}-soft", w.name()),
        WorkloadKind::Spec,
        w.activity(),
        w.mem_fraction(),
        w.path_stress(),
        DiDtParams::new(d.events_per_us(), d.magnitude_mean().get(), 0.0, 0.0),
        1.0,
        None,
    )
}

fn bench(c: &mut Criterion) {
    let mut sys = System::new(ChipConfig::power7_plus(atm_bench::BENCH_SEED));
    let cfg = CharactConfig::quick();
    let core = CoreId::new(0, 0);
    let x264 = by_name("x264").unwrap();
    let soft = softened(x264);

    let sharp_limit = find_limit(&mut sys, core, &[x264], 4, &cfg, &mut NullRecorder).limit();
    let soft_limit = find_limit(&mut sys, core, &[&soft], 4, &cfg, &mut NullRecorder).limit();
    eprintln!("\n===== ablation: di/dt fast component ({core}) =====");
    eprintln!("x264 with sharp droop edges: limit {sharp_limit} steps");
    eprintln!("x264 with fully-tracked droops: limit {soft_limit} steps");
    assert!(soft_limit >= sharp_limit);

    sys.set_mode(core, MarginMode::Atm);
    sys.assign(core, x264.clone());
    c.bench_function("ablation_didt/x264_run_20us", |b| {
        b.iter(|| black_box(sys.run(Nanos::new(20_000.0), &mut NullRecorder)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
