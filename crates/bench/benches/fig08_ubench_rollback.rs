//! Fig. 8 bench: regenerates the uBench rollback distributions and times
//! a three-program uBench validation at a candidate configuration.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_chip::MarginMode;
use atm_core::charact::passes;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use atm_workloads::ubench_set;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig08::run(&mut ctx);
    print_exhibit("Fig. 8 — uBench rollback", &fig.to_string());

    let mut sys = ctx.fresh_system();
    let core = CoreId::new(0, 3);
    sys.set_mode(core, MarginMode::Atm);
    let set = ubench_set();
    c.bench_function("fig08/ubench_validation_three_programs", |b| {
        b.iter(|| {
            for w in &set {
                black_box(passes(
                    &mut sys,
                    core,
                    w,
                    2,
                    Nanos::new(10_000.0),
                    &mut NullRecorder,
                ));
            }
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
