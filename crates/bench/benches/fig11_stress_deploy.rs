//! Fig. 11 bench: regenerates the stress-test deployment frequencies and
//! times one stressmark trial in the worst-case environment.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_chip::MarginMode;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use atm_workloads::voltage_virus;
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig11::run(&mut ctx);
    print_exhibit("Fig. 11 — stress-test deployment", &fig.to_string());

    let mut sys = ctx.deployed_system();
    sys.assign_all(&voltage_virus());
    sys.set_mode(CoreId::new(0, 0), MarginMode::Atm);
    c.bench_function("fig11/virus_trial_20us", |b| {
        b.iter(|| black_box(sys.run(Nanos::new(20_000.0), &mut NullRecorder)))
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
