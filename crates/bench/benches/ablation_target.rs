//! Ablation: the manufacturer's uniform calibration target.
//!
//! The paper's machines calibrate default ATM to 4.6 GHz idle. A lower
//! target leaves more preset inserted delay (more protection, more
//! fine-tuning headroom in steps); a higher target ships faster defaults
//! but leaves less to reclaim. The sweep shows the trade-off on the
//! minted silicon.

use atm_bench::criterion;
use atm_chip::{ChipConfig, MarginMode, System};
use atm_cpm::CpmUnit;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, MegaHz, Nanos};
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    eprintln!("\n===== ablation: default-ATM calibration target =====");
    eprintln!("target MHz   preset range (steps)   idle freq range (MHz)");
    for target in [4400.0, 4600.0, 4800.0] {
        let mut cfg = ChipConfig::power7_plus(atm_bench::BENCH_SEED);
        cfg.calibration_target = MegaHz::new(target);
        let mut sys = System::new(cfg);
        let presets: Vec<usize> = CoreId::all()
            .map(|id| {
                CpmUnit::ALL
                    .iter()
                    .filter(|u| **u != CpmUnit::Cache)
                    .map(|u| sys.core(id).cpms().preset(*u))
                    .min()
                    .unwrap()
            })
            .collect();
        sys.set_mode_all(MarginMode::Atm);
        let report = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
        let freqs: Vec<f64> = report.cores.iter().map(|c| c.mean_freq.get()).collect();
        eprintln!(
            "{target:>10.0}   {:>3}..{:<3}                {:>5.0}..{:<5.0}",
            presets.iter().min().unwrap(),
            presets.iter().max().unwrap(),
            freqs.iter().copied().fold(f64::MAX, f64::min),
            freqs.iter().copied().fold(f64::MIN, f64::max),
        );
    }

    let mut sys = System::new(ChipConfig::power7_plus(atm_bench::BENCH_SEED));
    c.bench_function("ablation_target/system_mint", |b| {
        b.iter(|| black_box(System::new(ChipConfig::power7_plus(atm_bench::BENCH_SEED))))
    });
    let _ = &mut sys;
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
