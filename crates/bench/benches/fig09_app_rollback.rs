//! Fig. 9 bench: regenerates the x264-vs-gcc rollback contrast and times
//! a realistic-workload trial at a fine-tuned configuration.

use atm_bench::{criterion, print_exhibit, quick_context};
use atm_chip::MarginMode;
use atm_core::charact::passes;
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos};
use criterion::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ctx = quick_context();
    let fig = atm_experiments::fig09::run(&mut ctx);
    print_exhibit("Fig. 9 — x264 vs gcc rollback", &fig.to_string());

    let mut sys = ctx.fresh_system();
    let core = CoreId::new(0, 5);
    sys.set_mode(core, MarginMode::Atm);
    let gcc = atm_workloads::by_name("gcc").unwrap();
    c.bench_function("fig09/gcc_trial_20us", |b| {
        b.iter(|| {
            black_box(passes(
                &mut sys,
                core,
                gcc,
                3,
                Nanos::new(20_000.0),
                &mut NullRecorder,
            ))
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
