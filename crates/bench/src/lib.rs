//! Shared helpers for the benchmark harness.
//!
//! Every paper exhibit has a bench target that (1) regenerates and prints
//! the exhibit's rows — so `cargo bench` output contains the full
//! reproduction — and (2) times the experiment's computational kernel
//! with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atm_experiments::{Context, ExpConfig};
use criterion::Criterion;

/// The seed every bench uses (the calibration seed of the repo).
pub const BENCH_SEED: u64 = 42;

/// A reduced-effort context suitable for bench setup.
#[must_use]
pub fn quick_context() -> Context {
    Context::new(ExpConfig::quick(BENCH_SEED))
}

/// Criterion tuned for heavy setups: few samples, short measurement.
#[must_use]
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

/// Prints an exhibit banner followed by its rendered rows.
pub fn print_exhibit(name: &str, rendered: &str) {
    eprintln!("\n================ {name} ================");
    eprintln!("{rendered}");
}
