//! Shared helpers for the benchmark harness.
//!
//! Every paper exhibit has a bench target that (1) regenerates and prints
//! the exhibit's rows — so `cargo bench` output contains the full
//! reproduction — and (2) times the experiment's computational kernel
//! with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atm_experiments::{Context, ExpConfig};
use criterion::Criterion;

/// The seed every bench uses (the calibration seed of the repo).
pub const BENCH_SEED: u64 = 42;

/// A reduced-effort context suitable for bench setup.
#[must_use]
pub fn quick_context() -> Context {
    Context::new(ExpConfig::quick(BENCH_SEED))
}

/// Criterion tuned for heavy setups: few samples, short measurement.
#[must_use]
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

/// Prints an exhibit banner followed by its rendered rows.
pub fn print_exhibit(name: &str, rendered: &str) {
    eprintln!("\n================ {name} ================");
    eprintln!("{rendered}");
}

/// Appends a named scalar metric to the bench JSON trajectory
/// (`target/bench-trajectory.json`, one JSON object per line — the same
/// file Criterion's estimates land in), so derived quantities like
/// speedups ride alongside the raw timings.
pub fn record_metric(name: &str, value: f64) {
    use std::io::Write as _;
    let path = trajectory_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{{\"metric\":\"{name}\",\"value\":{value:.4}}}");
    }
    eprintln!("metric {name} = {value:.4}");
}

/// The trajectory file Criterion's estimates land in. `CARGO_TARGET_DIR`
/// if set, else the enclosing `target/` of the running bench executable
/// (cargo runs benches with cwd = the *package* root, so a relative
/// `target` would miss the shared workspace directory).
fn trajectory_path() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::Path::new(&dir).join("bench-trajectory.json");
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name() == Some(std::ffi::OsStr::new("target")) {
                return dir.join("bench-trajectory.json");
            }
        }
    }
    std::path::Path::new("target").join("bench-trajectory.json")
}
