//! `atm-fleet` — fleet-scale sharded simulation of managed ATM chips.
//!
//! One fine-tuned POWER7+ server is a solved problem three crates down;
//! this crate asks what happens when a *fleet* of them serves shared
//! traffic. A [`FleetSim`] shards hundreds of whole managed chips — each
//! with its own silicon lot, margin supervisor, and serving queues —
//! across worker threads, joined by a deterministic epoch-barrier router:
//!
//! - the **traffic generator** splits seeded aggregate streams into
//!   per-chip sub-streams with SplitMix64-derived lane seeds
//!   (collision-free by construction, see [`lane_seed`]);
//! - the **placement policy** routes critical traffic to the chips with
//!   the fastest healthy cores, backfills background traffic onto the
//!   least-backlogged chips, and drains chips whose supervisors have
//!   quarantined too much silicon;
//! - the **epoch barrier** collects per-chip snapshots in chip order, so
//!   worker scheduling can never leak into the results.
//!
//! The determinism contract one level up from the serving layer's: the
//! [`FleetReport`] is a pure function of `(FleetConfig, seed)`,
//! byte-identical across runs *and across worker counts* — property- and
//! golden-tested in `tests/fleet.rs` and `tests/properties.rs`.
//!
//! # Examples
//!
//! ```no_run
//! use atm_fleet::{FleetConfig, FleetSim};
//!
//! let report = FleetSim::new(FleetConfig::quick(42)).unwrap().run(4);
//! assert!(report.conservation_holds());
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod placement;
mod report;
mod sim;
mod traffic;

pub use config::{FailoverConfig, FleetConfig, FleetConfigBuilder};
pub use placement::{route, PlacementConfig, RouteTable};
pub use report::{ChipRow, FleetReport, LatencyBands, RoutingCounters};
pub use sim::{FleetRun, FleetRunCheckpoint, FleetSim};
pub use traffic::{generate_fleet, generate_lane, lane_seed, LaneRequest, TrafficSpec};
