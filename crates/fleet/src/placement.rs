//! Fleet-level placement: which chip serves which lane, recomputed at
//! every epoch barrier.
//!
//! The policy is the ControlPULP shape — a slow fleet loop above the fast
//! per-chip ATM loops: at each barrier the router reads every chip's
//! [`ChipSnapshot`] and derives a lane→chip table for the next epoch.
//! Critical lanes go to the chips with the *fastest healthy cores*
//! (supervisor-excluded cores don't count); background lanes go to the
//! least-backlogged chips. Chips whose supervisors have quarantined too
//! many cores are **draining**: they receive no new traffic at all, so
//! their queues empty and the fleet sheds load away from sick silicon.

use atm_serve::ChipSnapshot;
use serde::{Deserialize, Serialize};

/// Fleet-placement thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// A chip with at least this many quarantined cores drains:
    /// excluded from every lane map until the end of the run.
    pub drain_quarantined: u32,
    /// Defer (rather than route) a fresh request whose target chip's
    /// barrier-time backlog exceeds this many nanoseconds. A request is
    /// deferred at most once.
    pub defer_backlog_ns: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            drain_quarantined: 2,
            defer_backlog_ns: 200_000_000,
        }
    }
}

/// One epoch's routing decision: lane→chip maps plus the drain set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    /// Chip serving each critical lane (`None` when every chip drains).
    pub critical: Vec<Option<u32>>,
    /// Chip serving each background lane (`None` when every chip drains).
    pub background: Vec<Option<u32>>,
    /// Whether each chip is draining this epoch.
    pub drained: Vec<bool>,
}

/// Builds the route table for one epoch from the barrier snapshots.
///
/// Critical lanes are dealt round-robin over the eligible chips ranked by
/// descending fastest-healthy-core frequency (ties to the lower chip id);
/// background lanes over the same chips ranked by ascending backlog. The
/// table is a pure function of the snapshots, so routing is deterministic.
///
/// Dead chips (hard-failed, `!alive`) are excluded from both lane maps
/// without being marked drained — death is recoverable, drain is not.
/// `probation` flags chips freshly resurrected from a checkpoint: they
/// are excluded from the *critical* map until their cold queues have
/// proven themselves, but still take background traffic (the re-warm).
/// An empty slice means no chip is on probation.
#[must_use]
pub fn route(
    snapshots: &[ChipSnapshot],
    cfg: &PlacementConfig,
    lanes: u32,
    probation: &[bool],
) -> RouteTable {
    let drained: Vec<bool> = snapshots
        .iter()
        .map(|s| s.quarantined >= cfg.drain_quarantined)
        .collect();
    let on_probation = |c: u32| probation.get(c as usize).copied().unwrap_or(false);

    let mut by_speed: Vec<u32> = (0..snapshots.len() as u32)
        .filter(|c| !drained[*c as usize] && snapshots[*c as usize].alive && !on_probation(*c))
        .collect();
    by_speed.sort_by_key(|c| {
        (
            std::cmp::Reverse(snapshots[*c as usize].fastest_healthy_mhz),
            *c,
        )
    });
    let mut by_backlog: Vec<u32> = (0..snapshots.len() as u32)
        .filter(|c| !drained[*c as usize] && snapshots[*c as usize].alive)
        .collect();
    by_backlog.sort_by_key(|c| (snapshots[*c as usize].backlog_ns, *c));

    let deal = |ranked: &[u32]| -> Vec<Option<u32>> {
        (0..lanes)
            .map(|l| {
                if ranked.is_empty() {
                    None
                } else {
                    Some(ranked[l as usize % ranked.len()])
                }
            })
            .collect()
    };
    RouteTable {
        critical: deal(&by_speed),
        background: deal(&by_backlog),
        drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(fastest: u64, backlog: u64, quarantined: u32) -> ChipSnapshot {
        ChipSnapshot {
            alive: true,
            fastest_healthy_mhz: fastest,
            backlog_ns: backlog,
            quarantined,
            safe_mode: 0,
            min_health: 100,
        }
    }

    #[test]
    fn critical_lanes_favour_the_fastest_chips() {
        let snaps = vec![snap(4500, 0, 0), snap(4700, 0, 0), snap(4600, 0, 0)];
        let table = route(&snaps, &PlacementConfig::default(), 3, &[]);
        assert_eq!(table.critical, vec![Some(1), Some(2), Some(0)]);
    }

    #[test]
    fn background_lanes_favour_the_empty_chips() {
        let snaps = vec![snap(4700, 9_000, 0), snap(4500, 0, 0), snap(4600, 4_000, 0)];
        let table = route(&snaps, &PlacementConfig::default(), 3, &[]);
        assert_eq!(table.background, vec![Some(1), Some(2), Some(0)]);
    }

    #[test]
    fn drained_chips_receive_nothing() {
        let snaps = vec![snap(4700, 0, 2), snap(4500, 0, 0)];
        let table = route(&snaps, &PlacementConfig::default(), 4, &[]);
        assert!(table.drained[0] && !table.drained[1]);
        assert!(table.critical.iter().all(|c| *c == Some(1)));
        assert!(table.background.iter().all(|c| *c == Some(1)));
    }

    #[test]
    fn a_fully_drained_fleet_routes_nowhere() {
        let snaps = vec![snap(4700, 0, 3), snap(4500, 0, 2)];
        let table = route(&snaps, &PlacementConfig::default(), 2, &[]);
        assert!(table.critical.iter().all(Option::is_none));
        assert!(table.background.iter().all(Option::is_none));
    }

    #[test]
    fn dead_chips_are_excluded_without_draining() {
        let mut snaps = vec![snap(4700, 0, 0), snap(4500, 0, 0)];
        snaps[0].alive = false;
        let table = route(&snaps, &PlacementConfig::default(), 4, &[]);
        assert!(!table.drained[0], "death is not drain");
        assert!(table.critical.iter().all(|c| *c == Some(1)));
        assert!(table.background.iter().all(|c| *c == Some(1)));
    }

    #[test]
    fn probation_blocks_critical_but_not_background() {
        let snaps = vec![snap(4700, 0, 0), snap(4500, 9_000, 0)];
        let table = route(&snaps, &PlacementConfig::default(), 2, &[true, false]);
        assert!(table.critical.iter().all(|c| *c == Some(1)));
        // The probation chip still re-warms on background traffic — and
        // with an empty queue it is the preferred background target.
        assert!(table.background.contains(&Some(0)));
    }
}
