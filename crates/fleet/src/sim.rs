//! The sharded fleet simulation loop.
//!
//! [`FleetSim`] steps hundreds of whole managed chips — each with its own
//! silicon lot, [`MarginSupervisor`](atm_core::MarginSupervisor) ladder,
//! and serving queues — through a shared epoch-barrier timeline:
//!
//! 1. **Route** (serial): the placement policy reads every chip's
//!    barrier snapshot and maps each traffic lane onto a chip. Drained
//!    and dead chips get nothing; overloaded targets defer fresh requests
//!    by one epoch; a fully drained fleet sheds.
//! 2. **Step** (parallel): chips absorb their routed batches
//!    independently — one [`ChipServer::step_epoch`] each, distributed
//!    round-robin over `std::thread::scope` workers. No cross-chip state
//!    is touched, so the schedule cannot leak into the results.
//! 3. **Barrier** (serial): snapshots and epoch outcomes are collected
//!    *in chip order* and feed the next epoch's routing. Everything that
//!    reacts to a chip failure — retry ladders, periodic checkpoints,
//!    resurrection, probation — happens here, serially, so failover
//!    decisions are worker-count independent too.
//!
//! Because routing is a pure function of the snapshots, each chip is a
//! pure function of its lot seed and routed batches, and the merge at
//! every barrier is order-fixed, the [`FleetReport`] is a pure function
//! of `(FleetConfig, seed)` — byte-identical for any worker count.
//!
//! The loop itself is externally steppable: [`FleetSim::start`] returns a
//! [`FleetRun`] that advances one epoch per [`FleetRun::step_epoch`]
//! call, can be checkpointed and restored mid-run (byte-identically — the
//! engine behind `atm-recovery`'s resume identity and fault-campaign
//! bisection), and [`FleetRun::finish`]es into the same report
//! [`FleetSim::run`] produces.

use atm_adapt::OnlineAdapter;
use atm_capping::{CapConfig, EnergyModel, EnergyReport};
use atm_chip::{ChipConfig, FaultHook, System};
use atm_core::{AtmManager, Governor};
use atm_faults::{CampaignHook, FleetFaultPlan};
use atm_serve::{
    ChipRequest, ChipServer, ChipServerCheckpoint, ChipSnapshot, EpochOutcome, LatencyHistogram,
};
use atm_units::AtmError;

use crate::config::{FailoverConfig, FleetConfig};
use crate::placement::route;
use crate::report::{ChipRow, FleetReport, LatencyBands, RoutingCounters};
use crate::traffic::{generate_fleet, mix, LaneRequest};

/// One chip of the running fleet: the steppable server plus the routing
/// bookkeeping the fleet report needs.
#[derive(Debug, Clone)]
struct ChipState {
    server: ChipServer,
    hook: Option<CampaignHook>,
    lot: u64,
    critical_routed: u64,
    background_routed: u64,
    /// Last epoch a critical request was routed here (`-1` = never).
    last_critical_epoch: i64,
    /// First epoch whose routing drained this chip (`-1` = never).
    drained_from_epoch: i64,
}

/// A request in flight between routing decisions: deferred for one epoch,
/// queued in a per-chip batch before the deterministic sort, or riding
/// the failover retry ladder. The `(stream, lane, seq)` triple makes
/// every batch order total and schedule-independent; `attempts` counts
/// how many times a dead chip has bounced it.
#[derive(Debug, Clone, Copy)]
struct Pending {
    stream: u32,
    lane: u32,
    critical: bool,
    attempts: u32,
    req: LaneRequest,
}

/// One parked retry: the bounced request plus the epoch its backoff
/// expires.
#[derive(Debug, Clone, Copy)]
struct Retry {
    pending: Pending,
    not_before: u32,
}

/// A sharded fleet run (see the module docs).
#[derive(Debug)]
pub struct FleetSim {
    cfg: FleetConfig,
}

impl FleetSim {
    /// Validates the configuration and prepares a run.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if the config fails
    /// [`FleetConfig::check`].
    pub fn new(cfg: FleetConfig) -> Result<Self, AtmError> {
        cfg.check()?;
        Ok(FleetSim { cfg })
    }

    /// Runs the fleet to completion on up to `workers` threads and
    /// returns the deterministic report.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn run(self, workers: usize) -> FleetReport {
        let mut run = self.start(workers);
        while !run.done() {
            run.step_epoch(workers);
        }
        run.finish()
    }

    /// Deploys the fleet (in parallel over up to `workers` threads) and
    /// returns the steppable run positioned before epoch 0. Stepping it
    /// to completion and finishing is byte-identical to [`FleetSim::run`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn start(self, workers: usize) -> FleetRun {
        assert!(workers > 0, "need at least one worker");
        let cfg = self.cfg;
        let chips = cfg.chips as usize;

        // Deploy the fleet: each chip is fine-tuned on its own silicon
        // lot, independent of every other chip, so deploys parallelize.
        let states = build_fleet(&cfg, workers);

        let horizon = u64::from(cfg.epochs) * cfg.epoch_ns;
        let traces = generate_fleet(&cfg.traffic, cfg.chips, cfg.seed, horizon, workers);
        let routing = RoutingCounters {
            generated: traces
                .iter()
                .flat_map(|lanes| lanes.iter().map(|l| l.len() as u64))
                .sum(),
            ..RoutingCounters::default()
        };

        let cursors: Vec<Vec<usize>> = traces.iter().map(|l| vec![0; l.len()]).collect();
        let snapshots: Vec<ChipSnapshot> = states.iter().map(|s| s.server.snapshot(0)).collect();
        FleetRun {
            states,
            traces,
            cursors,
            snapshots,
            deferred: Vec::new(),
            retries: Vec::new(),
            prev_critical: Vec::new(),
            routing,
            epoch: 0,
            machine_cps: vec![None; chips],
            dead_epoch: vec![None; chips],
            probation_until: vec![-1; chips],
            cfg,
        }
    }
}

/// A fleet run in flight: everything between two epoch barriers, as one
/// deep-clonable value.
///
/// The struct exists so the loop can be *paused*: `checkpoint()` seals a
/// deep copy (chips, queues, hooks, retry ladders, counters — all of it)
/// and `restore()` rewinds to one, with the guarantee that
/// `step… ≡ step…; restore(checkpoint); step…` byte-for-byte. Its `Debug`
/// rendering is exhaustive and deterministic on purpose — it is the
/// canonical byte-identity witness `atm-recovery` checksums.
#[derive(Debug, Clone)]
pub struct FleetRun {
    cfg: FleetConfig,
    states: Vec<ChipState>,
    traces: Vec<Vec<Vec<LaneRequest>>>,
    cursors: Vec<Vec<usize>>,
    snapshots: Vec<ChipSnapshot>,
    deferred: Vec<Pending>,
    retries: Vec<Retry>,
    prev_critical: Vec<Option<u32>>,
    routing: RoutingCounters,
    epoch: u32,
    /// Latest periodic machine checkpoint per chip (failover only).
    machine_cps: Vec<Option<ChipServerCheckpoint>>,
    /// The epoch each dead chip's failure was detected (`None` = alive).
    dead_epoch: Vec<Option<u32>>,
    /// First epoch each resurrected chip may take critical traffic again
    /// (`-1` = not on probation).
    probation_until: Vec<i64>,
}

/// A sealed deep copy of a [`FleetRun`] at an epoch boundary.
#[derive(Debug, Clone)]
pub struct FleetRunCheckpoint {
    state: FleetRun,
}

impl FleetRunCheckpoint {
    /// Materializes a fresh run from the checkpoint — equivalent to
    /// [`FleetRun::restore`] without needing a run to restore into.
    #[must_use]
    pub fn thaw(&self) -> FleetRun {
        self.state.clone()
    }
}

impl FleetRun {
    /// The next epoch to be stepped (0-based).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Whether every configured epoch has been stepped.
    #[must_use]
    pub fn done(&self) -> bool {
        self.epoch >= self.cfg.epochs
    }

    /// The barrier snapshots routing will read next.
    #[must_use]
    pub fn snapshots(&self) -> &[ChipSnapshot] {
        &self.snapshots
    }

    /// The run's configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The largest cumulative fault-hook tick counter across the fleet
    /// (zero when no chip carries a hook). The bisection driver uses this
    /// to pick a checkpoint boundary that provably precedes a fault
    /// subset's first firing.
    #[must_use]
    pub fn max_hook_ticks(&self) -> u64 {
        self.states
            .iter()
            .filter_map(|s| s.hook.as_ref().map(CampaignHook::ticks_seen))
            .max()
            .unwrap_or(0)
    }

    /// Seals a deep copy of the whole run.
    #[must_use]
    pub fn checkpoint(&self) -> FleetRunCheckpoint {
        FleetRunCheckpoint {
            state: self.clone(),
        }
    }

    /// Rewinds the run to `cp`, exactly.
    pub fn restore(&mut self, cp: &FleetRunCheckpoint) {
        *self = cp.state.clone();
    }

    /// Replaces every chip's fault hook with `plan` resolved afresh, each
    /// hook fast-forwarded to the tick position the chip's current hook
    /// has reached — the bisection replay shortcut. Chips the plan does
    /// not afflict keep their current hook (typically the empty
    /// tick-counter hook of a bisection baseline), so the harvest path
    /// stays identical across subsets.
    ///
    /// # Panics
    ///
    /// Panics if a chip carries no hook (the run must have been started
    /// with a fault plan armed, even an empty one), or if a firing of the
    /// new plan lands before the chip's current tick position (restore an
    /// earlier checkpoint instead — see [`CampaignHook::advance_to_tick`]).
    pub fn rearm_faults(&mut self, plan: &FleetFaultPlan) {
        for (chip, state) in self.states.iter_mut().enumerate() {
            let ticks = state
                .hook
                .as_ref()
                .expect("rearm_faults needs a hook on every chip")
                .ticks_seen();
            if let Some(mut hook) = plan.hook_for_chip(self.cfg.seed, chip as u32) {
                hook.advance_to_tick(ticks);
                state.hook = Some(hook);
            }
        }
    }

    /// Steps one fleet epoch on up to `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the run is already [`done`](Self::done).
    pub fn step_epoch(&mut self, workers: usize) {
        assert!(workers > 0, "need at least one worker");
        assert!(!self.done(), "the run has already finished");
        let epoch = self.epoch;
        let chips = self.cfg.chips as usize;
        let epoch_end = (u64::from(epoch) + 1) * self.cfg.epoch_ns;

        // Failover, part 1 (serial): resurrect chips that have served
        // their outage, cold, from their last machine checkpoint.
        if let Some(failover) = self.cfg.failover {
            self.resurrect_due(epoch, failover);
        }
        let probation: Vec<bool> = self
            .probation_until
            .iter()
            .map(|&until| until > i64::from(epoch))
            .collect();

        let table = route(
            &self.snapshots,
            &self.cfg.placement,
            self.cfg.chips,
            &probation,
        );
        // Split the global cap over the same barrier snapshots the
        // router reads: backlog-weighted, exact, worker-independent.
        // Dead chips draw nothing, so their share reflows to the living.
        if let Some(budget) = &self.cfg.budget {
            let loads: Vec<u64> = self
                .snapshots
                .iter()
                .map(|s| if s.alive { s.backlog_ns } else { 0 })
                .collect();
            let shares = budget.split(epoch, &loads);
            for (state, share) in self.states.iter_mut().zip(&shares) {
                state.server.set_epoch_cap_mw(Some(*share));
            }
        }
        for (chip, drained) in table.drained.iter().enumerate() {
            if *drained && self.states[chip].drained_from_epoch < 0 {
                self.states[chip].drained_from_epoch = i64::from(epoch);
            }
        }
        if epoch > 0 {
            self.routing.critical_reroutes += table
                .critical
                .iter()
                .zip(&self.prev_critical)
                .filter(|(now, before)| now != before)
                .count() as u64;
        }
        self.prev_critical.clone_from(&table.critical);

        let mut batches: Vec<Vec<Pending>> = vec![Vec::new(); chips];
        // Failover, part 2 (serial): re-route retries whose backoff has
        // expired. Critical retries pick their own target — the fastest
        // live chip that is neither on probation nor quarantine-heavy —
        // because the one request we cannot lose twice must not land on
        // silicon that is already struggling.
        if !self.retries.is_empty() {
            let due: Vec<Retry> = {
                let (due, later): (Vec<Retry>, Vec<Retry>) =
                    self.retries.drain(..).partition(|r| r.not_before <= epoch);
                self.retries = later;
                due
            };
            let failover = self.cfg.failover.unwrap_or_default();
            for retry in due {
                let p = retry.pending;
                let target = if p.critical {
                    self.best_retry_target(&probation, failover.quarantine_avoid)
                } else {
                    table.background[p.lane as usize]
                };
                match target {
                    Some(t) => {
                        self.routing.retried += 1;
                        batches[t as usize].push(p);
                    }
                    None => self.routing.retry_shed += 1,
                }
            }
        }
        // Re-route last epoch's deferrals: a request defers at most once,
        // so this time it lands or sheds.
        for p in std::mem::take(&mut self.deferred) {
            let target = if p.critical {
                table.critical[p.lane as usize]
            } else {
                table.background[p.lane as usize]
            };
            match target {
                Some(t) => batches[t as usize].push(p),
                None => self.routing.shed += 1,
            }
        }
        // Fresh arrivals of this epoch, lane by lane.
        for (stream, spec) in self.cfg.traffic.iter().enumerate() {
            for lane in 0..chips {
                let trace = &self.traces[stream][lane];
                let cursor = &mut self.cursors[stream][lane];
                let target = if spec.critical {
                    table.critical[lane]
                } else {
                    table.background[lane]
                };
                while *cursor < trace.len() && trace[*cursor].time < epoch_end {
                    let p = Pending {
                        stream: stream as u32,
                        lane: lane as u32,
                        critical: spec.critical,
                        attempts: 0,
                        req: trace[*cursor],
                    };
                    *cursor += 1;
                    match target {
                        Some(t)
                            if self.snapshots[t as usize].backlog_ns
                                > self.cfg.placement.defer_backlog_ns =>
                        {
                            self.routing.deferred += 1;
                            self.deferred.push(p);
                        }
                        Some(t) => batches[t as usize].push(p),
                        None => self.routing.shed += 1,
                    }
                }
            }
        }

        // Freeze each batch into a schedule-independent total order.
        for batch in &mut batches {
            batch.sort_by_key(|p| (p.req.time, p.stream, p.lane, p.req.seq));
        }
        let requests: Vec<Vec<ChipRequest>> = batches
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|p| ChipRequest {
                        at: p.req.time,
                        critical: p.critical,
                        draw: p.req.draw,
                    })
                    .collect()
            })
            .collect();

        let outcomes = step_epoch_sharded(&mut self.states, requests, workers);

        // The barrier: close the books in chip order, whatever schedule
        // the workers ran. Absorbed batches are routed; bounced batches
        // climb the retry ladder (or are shed when no failover is armed).
        for (chip, (batch, outcome)) in batches.into_iter().zip(outcomes).enumerate() {
            if outcome.rejected.is_empty() {
                let state = &mut self.states[chip];
                for p in &batch {
                    self.routing.routed += 1;
                    if p.critical {
                        state.critical_routed += 1;
                        state.last_critical_epoch = i64::from(epoch);
                    } else {
                        state.background_routed += 1;
                    }
                }
            } else {
                debug_assert_eq!(
                    outcome.rejected.len(),
                    batch.len(),
                    "a dead chip bounces all or nothing"
                );
                for p in batch {
                    self.requeue_bounced(p, epoch);
                }
            }
            if self.states[chip].server.is_dead() && self.dead_epoch[chip].is_none() {
                self.dead_epoch[chip] = Some(epoch);
                self.routing.hard_failed_chips += 1;
            }
        }

        // Barrier snapshots, in chip order.
        self.snapshots = self
            .states
            .iter()
            .map(|s| s.server.snapshot(epoch_end))
            .collect();

        // Failover, part 3 (serial): periodic machine checkpoints of
        // every live chip, the capsule resurrection restores from.
        if let Some(failover) = self.cfg.failover {
            if failover.checkpoint_every > 0
                && (epoch + 1).is_multiple_of(failover.checkpoint_every)
            {
                for (chip, state) in self.states.iter().enumerate() {
                    if !state.server.is_dead() {
                        self.machine_cps[chip] = Some(state.server.checkpoint());
                    }
                }
            }
        }

        self.epoch += 1;
    }

    /// Closes the run's books and merges the per-chip accounts into the
    /// deterministic fleet report. Finishing early (before [`done`](Self::done))
    /// is allowed — in-flight deferred and retried requests simply land
    /// in their `*_unserved` buckets.
    #[must_use]
    pub fn finish(self) -> FleetReport {
        let mut routing = self.routing;
        // Scope the ledger to arrivals the stepped epochs actually
        // consumed, so the conservation law is checkable at any barrier.
        // Every trace entry lands strictly inside the horizon, so a
        // completed run's count equals the planned total from `start`.
        routing.generated = self
            .cursors
            .iter()
            .flat_map(|lanes| lanes.iter().map(|&c| c as u64))
            .sum();
        routing.deferred_unserved = self.deferred.len() as u64;
        routing.retry_unserved = self.retries.len() as u64;
        routing.drained_chips = self
            .states
            .iter()
            .filter(|s| s.drained_from_epoch >= 0)
            .count() as u32;
        finish(&self.cfg, self.states, routing)
    }

    /// The fastest live chip eligible for a critical retry: not draining,
    /// not on probation, and with fewer than `quarantine_avoid`
    /// quarantined cores. Ties go to the lower chip id.
    fn best_retry_target(&self, probation: &[bool], quarantine_avoid: u32) -> Option<u32> {
        (0..self.snapshots.len() as u32)
            .filter(|&c| {
                let s = &self.snapshots[c as usize];
                s.alive
                    && s.quarantined < self.cfg.placement.drain_quarantined
                    && s.quarantined < quarantine_avoid
                    && !probation[c as usize]
            })
            .min_by_key(|&c| {
                (
                    std::cmp::Reverse(self.snapshots[c as usize].fastest_healthy_mhz),
                    c,
                )
            })
    }

    /// Puts one bounced request onto the retry ladder: attempt `a` waits
    /// `backoff_base_epochs << (a − 1)` epochs, saturating; past the
    /// budget (or with no failover armed) the request is permanently
    /// shed.
    fn requeue_bounced(&mut self, mut p: Pending, epoch: u32) {
        let Some(failover) = self.cfg.failover else {
            self.routing.retry_shed += 1;
            return;
        };
        p.attempts += 1;
        if p.attempts > failover.retry_budget {
            self.routing.retry_shed += 1;
            return;
        }
        let backoff = failover
            .backoff_base_epochs
            .checked_shl(p.attempts - 1)
            .unwrap_or(u32::MAX);
        self.retries.push(Retry {
            pending: p,
            not_before: epoch.saturating_add(backoff),
        });
    }

    /// Resurrects every chip whose outage has lasted `resurrect_after`
    /// epochs and that has a machine checkpoint to come back from. The
    /// account (completions, sheds, histograms, meters) survives; the
    /// queues come back cold; the chip starts a probation window barred
    /// from critical traffic.
    fn resurrect_due(&mut self, epoch: u32, failover: FailoverConfig) {
        for chip in 0..self.states.len() {
            let Some(died) = self.dead_epoch[chip] else {
                continue;
            };
            if epoch.saturating_sub(died) < failover.resurrect_after {
                continue;
            }
            let Some(cp) = &self.machine_cps[chip] else {
                continue; // nothing to come back from: stays dead
            };
            self.states[chip].server.resurrect_from(cp);
            self.dead_epoch[chip] = None;
            self.probation_until[chip] =
                i64::from(epoch).saturating_add(i64::from(failover.probation_epochs));
            self.routing.resurrected_chips += 1;
            // The chip re-enters routing at this barrier: refresh its
            // snapshot at the same instant the others were taken.
            self.snapshots[chip] = self.states[chip]
                .server
                .snapshot(u64::from(epoch) * self.cfg.epoch_ns);
        }
    }
}

/// Deploys every chip of the fleet, round-robin over `workers` threads.
/// Chip `c`'s silicon lot is `mix`-derived from the fleet seed, so fleets
/// with different seeds draw different silicon.
fn build_fleet(cfg: &FleetConfig, workers: usize) -> Vec<ChipState> {
    let mut slots: Vec<Option<ChipState>> = (0..cfg.chips).map(|_| None).collect();
    let workers = workers.min(slots.len()).max(1);
    let mut chunks: Vec<Vec<(u32, &mut Option<ChipState>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (chip, slot) in slots.iter_mut().enumerate() {
        chunks[chip % workers].push((chip as u32, slot));
    }
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(|| {
                for (chip, slot) in chunk {
                    *slot = Some(build_chip(cfg, chip));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chip slot filled"))
        .collect()
}

/// Deploys one chip: mint the lot's silicon, fine-tune, posture, and arm
/// the fault hook when the fleet plan afflicts this chip.
fn build_chip(cfg: &FleetConfig, chip: u32) -> ChipState {
    let lot = mix(cfg.seed ^ mix(0xC417_5000 ^ u64::from(chip)));
    let mut sys = System::new(ChipConfig::power7_plus(lot));
    sys.set_stride(cfg.stride);
    let mgr = AtmManager::deploy(sys, Governor::Default, &cfg.charact);
    let mut chip_cfg = cfg.chip.clone();
    // Every fleet chip meters energy over the fleet's epoch span, and a
    // global budget arms a fleet-driven regulator on chips without one.
    if chip_cfg.energy.is_none() {
        chip_cfg.energy = Some(EnergyModel::standard(cfg.epoch_ns));
    }
    if cfg.budget.is_some() && chip_cfg.capping.is_none() {
        chip_cfg.capping = Some(CapConfig::fleet_driven());
    }
    let mut server = ChipServer::new(mgr, chip_cfg).expect("config validated in FleetSim::new");
    if let Some(drift) = cfg.drift {
        // Rebase the model per chip: every chip ages from its own seed,
        // still a pure function of the fleet seed.
        server.set_drift(drift.with_seed(mix(drift.seed() ^ mix(0xAD4A_7000 ^ u64::from(chip)))));
    }
    if let Some(adapt) = cfg.adapt {
        server.set_adapter(Box::new(OnlineAdapter::new(adapt)));
    }
    let hook = cfg
        .faults
        .as_ref()
        .and_then(|f| f.hook_for_chip(cfg.seed, chip));
    ChipState {
        server,
        hook,
        lot,
        critical_routed: 0,
        background_routed: 0,
        last_critical_epoch: -1,
        drained_from_epoch: -1,
    }
}

/// Steps every chip through one epoch, round-robin over `workers`
/// threads, and collects each chip's [`EpochOutcome`] *in chip order*.
/// Chips touch only their own state, so the worker schedule cannot affect
/// any result.
fn step_epoch_sharded(
    states: &mut [ChipState],
    batches: Vec<Vec<ChipRequest>>,
    workers: usize,
) -> Vec<EpochOutcome> {
    let workers = workers.min(states.len()).max(1);
    let mut outcomes: Vec<EpochOutcome> = vec![EpochOutcome::default(); states.len()];
    let mut chunks: Vec<Vec<(&mut ChipState, Vec<ChipRequest>, &mut EpochOutcome)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (chip, ((state, batch), slot)) in states
        .iter_mut()
        .zip(batches)
        .zip(outcomes.iter_mut())
        .enumerate()
    {
        chunks[chip % workers].push((state, batch, slot));
    }
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(|| {
                for (state, batch, slot) in chunk {
                    let hook = state.hook.as_mut().map(|h| h as &mut dyn FaultHook);
                    *slot = state.server.step_epoch(&batch, hook);
                }
            });
        }
    });
    outcomes
}

/// Merges the per-chip accounts into the fleet report, in chip order.
fn finish(cfg: &FleetConfig, states: Vec<ChipState>, routing: RoutingCounters) -> FleetReport {
    let mut crit = LatencyHistogram::new();
    let mut bg = LatencyHistogram::new();
    let mut rows = Vec::with_capacity(states.len());
    let mut energy = EnergyReport::default();
    let mut caps = Vec::new();
    for (chip, state) in states.iter().enumerate() {
        let (c, b) = state.server.histograms();
        crit.merge(c);
        bg.merge(b);
        let summary = state.server.summary();
        if let Some(e) = &summary.energy {
            energy.merge(e);
        }
        if let Some(cap) = &summary.cap {
            caps.push(cap.clone());
        }
        rows.push(ChipRow {
            energy_pj: summary.energy.map_or(0, |e| e.total_pj),
            chip: chip as u32,
            lot: state.lot,
            completed: summary.completed,
            shed: summary.shed,
            critical_routed: state.critical_routed,
            background_routed: state.background_routed,
            critical_slo_violations: summary.critical_slo_violations,
            p99_ns: summary.p99_ns,
            transitions: summary.transitions,
            quarantined: summary.quarantined,
            safe_mode: summary.safe_mode,
            fastest_healthy_mhz: summary.fastest_healthy_mhz,
            drained_from_epoch: state.drained_from_epoch,
            last_critical_epoch: state.last_critical_epoch,
        });
    }
    let adapt = if cfg.adapt.is_some() {
        states
            .iter()
            .map(|s| {
                s.server
                    .adapt_report()
                    .expect("every chip runs an adapter when cfg.adapt is set")
            })
            .collect()
    } else {
        Vec::new()
    };
    FleetReport {
        seed: cfg.seed,
        chips: cfg.chips,
        epochs: cfg.epochs,
        epoch_ns: cfg.epoch_ns,
        routing,
        critical: LatencyBands::from_histogram(&crit),
        background: LatencyBands::from_histogram(&bg),
        rows,
        adapt,
        energy,
        caps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_faults::{chip_killer, FaultPlan};

    fn tiny(seed: u64) -> FleetConfig {
        FleetConfig::quick(seed).with_chips(3).with_epochs(2)
    }

    #[test]
    fn a_tiny_fleet_runs_and_balances_the_books() {
        let report = FleetSim::new(tiny(42)).unwrap().run(2);
        assert_eq!(report.chips, 3);
        assert!(report.routing.generated > 0);
        assert!(report.completed() > 0);
        assert!(report.conservation_holds(), "{:?}", report.routing);
        assert!(report.drained_respected());
    }

    #[test]
    fn worker_count_cannot_leak_into_the_report() {
        let a = FleetSim::new(tiny(7)).unwrap().run(1);
        let b = FleetSim::new(tiny(7)).unwrap().run(3);
        assert_eq!(a, b);
    }

    #[test]
    fn the_seed_reaches_the_silicon_and_the_traffic() {
        let a = FleetSim::new(tiny(7)).unwrap().run(2);
        let b = FleetSim::new(tiny(8)).unwrap().run(2);
        assert_ne!(a.rows[0].lot, b.rows[0].lot);
        assert_ne!(a.routing.generated, b.routing.generated);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(FleetSim::new(tiny(1).with_chips(0)).is_err());
    }

    #[test]
    fn stepping_matches_the_one_shot_run() {
        let gold = FleetSim::new(tiny(42)).unwrap().run(2);
        let mut run = FleetSim::new(tiny(42)).unwrap().start(2);
        while !run.done() {
            run.step_epoch(2);
        }
        assert_eq!(run.finish(), gold);
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let mut run = FleetSim::new(tiny(42)).unwrap().start(1);
        run.step_epoch(1);
        let cp = run.checkpoint();
        run.step_epoch(1);
        let gold = format!("{run:#?}");
        run.restore(&cp);
        run.step_epoch(1);
        assert_eq!(format!("{run:#?}"), gold);
    }

    #[test]
    fn a_hard_failed_chip_fails_over_and_the_law_holds() {
        // A 4-epoch fleet where the plan kills one chip's harvest early;
        // the failover ladder retries the bounced batch elsewhere.
        let cfg = FleetConfig::quick(42)
            .with_chips(3)
            .with_epochs(4)
            .with_faults(FleetFaultPlan::new(chip_killer(5), 3))
            .with_failover(FailoverConfig::default());
        let report = FleetSim::new(cfg).unwrap().run(2);
        assert!(
            report.routing.hard_failed_chips >= 1,
            "{:?}",
            report.routing
        );
        assert!(report.routing.retried > 0, "{:?}", report.routing);
        assert!(report.conservation_holds(), "{:?}", report.routing);
    }

    #[test]
    fn without_failover_bounced_requests_are_shed() {
        let cfg = FleetConfig::quick(42)
            .with_chips(3)
            .with_epochs(4)
            .with_faults(FleetFaultPlan::new(chip_killer(5), 3));
        let report = FleetSim::new(cfg).unwrap().run(2);
        assert!(
            report.routing.hard_failed_chips >= 1,
            "{:?}",
            report.routing
        );
        assert_eq!(report.routing.retried, 0);
        assert!(report.routing.retry_shed > 0, "{:?}", report.routing);
        assert!(report.conservation_holds(), "{:?}", report.routing);
    }

    #[test]
    fn an_empty_fault_plan_counts_ticks_without_changing_the_books() {
        // The bisection baseline: every chip armed with a spec-less hook.
        let plain = FleetSim::new(tiny(7)).unwrap().run(2);
        let counted =
            FleetSim::new(tiny(7).with_faults(FleetFaultPlan::new(FaultPlan::new("baseline"), 1)))
                .unwrap();
        let mut run = counted.start(2);
        while !run.done() {
            run.step_epoch(2);
        }
        assert!(run.max_hook_ticks() > 0, "the hooks saw the harvests");
        assert_eq!(run.finish(), plain, "tick counting is observation-free");
    }
}
