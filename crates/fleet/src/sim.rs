//! The sharded fleet simulation loop.
//!
//! [`FleetSim`] steps hundreds of whole managed chips — each with its own
//! silicon lot, [`MarginSupervisor`](atm_core::MarginSupervisor) ladder,
//! and serving queues — through a shared epoch-barrier timeline:
//!
//! 1. **Route** (serial): the placement policy reads every chip's
//!    barrier snapshot and maps each traffic lane onto a chip. Drained
//!    chips get nothing; overloaded targets defer fresh requests by one
//!    epoch; a fully drained fleet sheds.
//! 2. **Step** (parallel): chips absorb their routed batches
//!    independently — one [`ChipServer::step_epoch`] each, distributed
//!    round-robin over `std::thread::scope` workers. No cross-chip state
//!    is touched, so the schedule cannot leak into the results.
//! 3. **Barrier** (serial): snapshots are collected *in chip order* and
//!    feed the next epoch's routing.
//!
//! Because routing is a pure function of the snapshots, each chip is a
//! pure function of its lot seed and routed batches, and the merge at
//! every barrier is order-fixed, the [`FleetReport`] is a pure function
//! of `(FleetConfig, seed)` — byte-identical for any worker count.

use atm_adapt::OnlineAdapter;
use atm_capping::{CapConfig, EnergyModel, EnergyReport};
use atm_chip::{ChipConfig, FaultHook, System};
use atm_core::{AtmManager, Governor};
use atm_faults::CampaignHook;
use atm_serve::{ChipRequest, ChipServer, ChipSnapshot, LatencyHistogram};
use atm_units::AtmError;

use crate::config::FleetConfig;
use crate::placement::route;
use crate::report::{ChipRow, FleetReport, LatencyBands, RoutingCounters};
use crate::traffic::{generate_fleet, mix, LaneRequest};

/// One chip of the running fleet: the steppable server plus the routing
/// bookkeeping the fleet report needs.
struct ChipState {
    server: ChipServer,
    hook: Option<CampaignHook>,
    lot: u64,
    critical_routed: u64,
    background_routed: u64,
    /// Last epoch a critical request was routed here (`-1` = never).
    last_critical_epoch: i64,
    /// First epoch whose routing drained this chip (`-1` = never).
    drained_from_epoch: i64,
}

/// A request parked for one epoch by backlog-based deferral, or queued in
/// a per-chip batch before the deterministic sort. The `(stream, lane,
/// seq)` triple makes the batch order total and schedule-independent.
#[derive(Debug, Clone, Copy)]
struct Pending {
    stream: u32,
    lane: u32,
    critical: bool,
    req: LaneRequest,
}

/// A sharded fleet run (see the module docs).
#[derive(Debug)]
pub struct FleetSim {
    cfg: FleetConfig,
}

impl FleetSim {
    /// Validates the configuration and prepares a run.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if the config fails
    /// [`FleetConfig::check`].
    pub fn new(cfg: FleetConfig) -> Result<Self, AtmError> {
        cfg.check()?;
        Ok(FleetSim { cfg })
    }

    /// Runs the fleet to completion on up to `workers` threads and
    /// returns the deterministic report.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn run(self, workers: usize) -> FleetReport {
        assert!(workers > 0, "need at least one worker");
        let cfg = self.cfg;
        let chips = cfg.chips as usize;

        // Deploy the fleet: each chip is fine-tuned on its own silicon
        // lot, independent of every other chip, so deploys parallelize.
        let mut states = build_fleet(&cfg, workers);

        let horizon = u64::from(cfg.epochs) * cfg.epoch_ns;
        let traces = generate_fleet(&cfg.traffic, cfg.chips, cfg.seed, horizon, workers);
        let mut routing = RoutingCounters {
            generated: traces
                .iter()
                .flat_map(|lanes| lanes.iter().map(|l| l.len() as u64))
                .sum(),
            ..RoutingCounters::default()
        };

        let mut cursors: Vec<Vec<usize>> = traces.iter().map(|l| vec![0; l.len()]).collect();
        let mut snapshots: Vec<ChipSnapshot> =
            states.iter().map(|s| s.server.snapshot(0)).collect();
        let mut deferred: Vec<Pending> = Vec::new();
        let mut prev_critical: Vec<Option<u32>> = Vec::new();

        for epoch in 0..cfg.epochs {
            let table = route(&snapshots, &cfg.placement, cfg.chips);
            // Split the global cap over the same barrier snapshots the
            // router reads: backlog-weighted, exact, worker-independent.
            if let Some(budget) = &cfg.budget {
                let loads: Vec<u64> = snapshots.iter().map(|s| s.backlog_ns).collect();
                let shares = budget.split(epoch, &loads);
                for (state, share) in states.iter_mut().zip(&shares) {
                    state.server.set_epoch_cap_mw(Some(*share));
                }
            }
            for (chip, drained) in table.drained.iter().enumerate() {
                if *drained && states[chip].drained_from_epoch < 0 {
                    states[chip].drained_from_epoch = i64::from(epoch);
                }
            }
            if epoch > 0 {
                routing.critical_reroutes += table
                    .critical
                    .iter()
                    .zip(&prev_critical)
                    .filter(|(now, before)| now != before)
                    .count() as u64;
            }
            prev_critical.clone_from(&table.critical);

            let mut batches: Vec<Vec<Pending>> = vec![Vec::new(); chips];
            // Re-route last epoch's deferrals first: a request defers at
            // most once, so this time it lands or sheds.
            for p in std::mem::take(&mut deferred) {
                let target = if p.critical {
                    table.critical[p.lane as usize]
                } else {
                    table.background[p.lane as usize]
                };
                match target {
                    Some(t) => batches[t as usize].push(p),
                    None => routing.shed += 1,
                }
            }
            // Fresh arrivals of this epoch, lane by lane.
            let epoch_end = (u64::from(epoch) + 1) * cfg.epoch_ns;
            for (stream, spec) in cfg.traffic.iter().enumerate() {
                for lane in 0..chips {
                    let trace = &traces[stream][lane];
                    let cursor = &mut cursors[stream][lane];
                    let target = if spec.critical {
                        table.critical[lane]
                    } else {
                        table.background[lane]
                    };
                    while *cursor < trace.len() && trace[*cursor].time < epoch_end {
                        let p = Pending {
                            stream: stream as u32,
                            lane: lane as u32,
                            critical: spec.critical,
                            req: trace[*cursor],
                        };
                        *cursor += 1;
                        match target {
                            Some(t)
                                if snapshots[t as usize].backlog_ns
                                    > cfg.placement.defer_backlog_ns =>
                            {
                                routing.deferred += 1;
                                deferred.push(p);
                            }
                            Some(t) => batches[t as usize].push(p),
                            None => routing.shed += 1,
                        }
                    }
                }
            }

            // Freeze each batch into a schedule-independent total order
            // and close the routing books for the epoch.
            let batches: Vec<Vec<ChipRequest>> = batches
                .into_iter()
                .enumerate()
                .map(|(chip, mut batch)| {
                    batch.sort_by_key(|p| (p.req.time, p.stream, p.lane, p.req.seq));
                    let state = &mut states[chip];
                    for p in &batch {
                        routing.routed += 1;
                        if p.critical {
                            state.critical_routed += 1;
                            state.last_critical_epoch = i64::from(epoch);
                        } else {
                            state.background_routed += 1;
                        }
                    }
                    batch
                        .into_iter()
                        .map(|p| ChipRequest {
                            at: p.req.time,
                            critical: p.critical,
                            draw: p.req.draw,
                        })
                        .collect()
                })
                .collect();

            step_epoch_sharded(&mut states, batches, workers);

            // The barrier: snapshots collected in chip order, whatever
            // schedule the workers ran.
            snapshots = states
                .iter()
                .map(|s| s.server.snapshot(epoch_end))
                .collect();
        }
        routing.deferred_unserved = deferred.len() as u64;
        routing.drained_chips = states.iter().filter(|s| s.drained_from_epoch >= 0).count() as u32;

        finish(&cfg, states, routing)
    }
}

/// Deploys every chip of the fleet, round-robin over `workers` threads.
/// Chip `c`'s silicon lot is `mix`-derived from the fleet seed, so fleets
/// with different seeds draw different silicon.
fn build_fleet(cfg: &FleetConfig, workers: usize) -> Vec<ChipState> {
    let mut slots: Vec<Option<ChipState>> = (0..cfg.chips).map(|_| None).collect();
    let workers = workers.min(slots.len()).max(1);
    let mut chunks: Vec<Vec<(u32, &mut Option<ChipState>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (chip, slot) in slots.iter_mut().enumerate() {
        chunks[chip % workers].push((chip as u32, slot));
    }
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(|| {
                for (chip, slot) in chunk {
                    *slot = Some(build_chip(cfg, chip));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chip slot filled"))
        .collect()
}

/// Deploys one chip: mint the lot's silicon, fine-tune, posture, and arm
/// the fault hook when the fleet plan afflicts this chip.
fn build_chip(cfg: &FleetConfig, chip: u32) -> ChipState {
    let lot = mix(cfg.seed ^ mix(0xC417_5000 ^ u64::from(chip)));
    let mut sys = System::new(ChipConfig::power7_plus(lot));
    sys.set_stride(cfg.stride);
    let mgr = AtmManager::deploy(sys, Governor::Default, &cfg.charact);
    let mut chip_cfg = cfg.chip.clone();
    // Every fleet chip meters energy over the fleet's epoch span, and a
    // global budget arms a fleet-driven regulator on chips without one.
    if chip_cfg.energy.is_none() {
        chip_cfg.energy = Some(EnergyModel::standard(cfg.epoch_ns));
    }
    if cfg.budget.is_some() && chip_cfg.capping.is_none() {
        chip_cfg.capping = Some(CapConfig::fleet_driven());
    }
    let mut server = ChipServer::new(mgr, chip_cfg).expect("config validated in FleetSim::new");
    if let Some(drift) = cfg.drift {
        // Rebase the model per chip: every chip ages from its own seed,
        // still a pure function of the fleet seed.
        server.set_drift(drift.with_seed(mix(drift.seed() ^ mix(0xAD4A_7000 ^ u64::from(chip)))));
    }
    if let Some(adapt) = cfg.adapt {
        server.set_adapter(Box::new(OnlineAdapter::new(adapt)));
    }
    let hook = cfg
        .faults
        .as_ref()
        .and_then(|f| f.hook_for_chip(cfg.seed, chip));
    ChipState {
        server,
        hook,
        lot,
        critical_routed: 0,
        background_routed: 0,
        last_critical_epoch: -1,
        drained_from_epoch: -1,
    }
}

/// Steps every chip through one epoch, round-robin over `workers`
/// threads. Chips touch only their own state, so the worker schedule
/// cannot affect any result.
fn step_epoch_sharded(states: &mut [ChipState], batches: Vec<Vec<ChipRequest>>, workers: usize) {
    let workers = workers.min(states.len()).max(1);
    let mut chunks: Vec<Vec<(&mut ChipState, Vec<ChipRequest>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (chip, (state, batch)) in states.iter_mut().zip(batches).enumerate() {
        chunks[chip % workers].push((state, batch));
    }
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(|| {
                for (state, batch) in chunk {
                    let hook = state.hook.as_mut().map(|h| h as &mut dyn FaultHook);
                    state.server.step_epoch(&batch, hook);
                }
            });
        }
    });
}

/// Merges the per-chip accounts into the fleet report, in chip order.
fn finish(cfg: &FleetConfig, states: Vec<ChipState>, routing: RoutingCounters) -> FleetReport {
    let mut crit = LatencyHistogram::new();
    let mut bg = LatencyHistogram::new();
    let mut rows = Vec::with_capacity(states.len());
    let mut energy = EnergyReport::default();
    let mut caps = Vec::new();
    for (chip, state) in states.iter().enumerate() {
        let (c, b) = state.server.histograms();
        crit.merge(c);
        bg.merge(b);
        let summary = state.server.summary();
        if let Some(e) = &summary.energy {
            energy.merge(e);
        }
        if let Some(cap) = &summary.cap {
            caps.push(cap.clone());
        }
        rows.push(ChipRow {
            energy_pj: summary.energy.map_or(0, |e| e.total_pj),
            chip: chip as u32,
            lot: state.lot,
            completed: summary.completed,
            shed: summary.shed,
            critical_routed: state.critical_routed,
            background_routed: state.background_routed,
            critical_slo_violations: summary.critical_slo_violations,
            p99_ns: summary.p99_ns,
            transitions: summary.transitions,
            quarantined: summary.quarantined,
            safe_mode: summary.safe_mode,
            fastest_healthy_mhz: summary.fastest_healthy_mhz,
            drained_from_epoch: state.drained_from_epoch,
            last_critical_epoch: state.last_critical_epoch,
        });
    }
    let adapt = if cfg.adapt.is_some() {
        states
            .iter()
            .map(|s| {
                s.server
                    .adapt_report()
                    .expect("every chip runs an adapter when cfg.adapt is set")
            })
            .collect()
    } else {
        Vec::new()
    };
    FleetReport {
        seed: cfg.seed,
        chips: cfg.chips,
        epochs: cfg.epochs,
        epoch_ns: cfg.epoch_ns,
        routing,
        critical: LatencyBands::from_histogram(&crit),
        background: LatencyBands::from_histogram(&bg),
        rows,
        adapt,
        energy,
        caps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> FleetConfig {
        FleetConfig::quick(seed).with_chips(3).with_epochs(2)
    }

    #[test]
    fn a_tiny_fleet_runs_and_balances_the_books() {
        let report = FleetSim::new(tiny(42)).unwrap().run(2);
        assert_eq!(report.chips, 3);
        assert!(report.routing.generated > 0);
        assert!(report.completed() > 0);
        assert!(report.conservation_holds(), "{:?}", report.routing);
        assert!(report.drained_respected());
    }

    #[test]
    fn worker_count_cannot_leak_into_the_report() {
        let a = FleetSim::new(tiny(7)).unwrap().run(1);
        let b = FleetSim::new(tiny(7)).unwrap().run(3);
        assert_eq!(a, b);
    }

    #[test]
    fn the_seed_reaches_the_silicon_and_the_traffic() {
        let a = FleetSim::new(tiny(7)).unwrap().run(2);
        let b = FleetSim::new(tiny(8)).unwrap().run(2);
        assert_ne!(a.rows[0].lot, b.rows[0].lot);
        assert_ne!(a.routing.generated, b.routing.generated);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(FleetSim::new(tiny(1).with_chips(0)).is_err());
    }
}
