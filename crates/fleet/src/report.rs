//! The fleet run's full account, in integers.
//!
//! Like [`ServeReport`](atm_serve::ServeReport) one level down, every
//! field of [`FleetReport`] is an integer, so the report derives `Eq` and
//! the fleet determinism contract — *same `(FleetConfig, seed)` ⇒
//! byte-identical report, for any worker count* — is checkable with a
//! plain `assert_eq!` (and, rendered through `{:#?}`, byte-comparable
//! against a checked-in golden file).

use std::fmt;

use atm_adapt::AdaptReport;
use atm_capping::{CapReport, EnergyReport};
use atm_serve::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Latency quantile bands of one merged request class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBands {
    /// Completions recorded.
    pub count: u64,
    /// Median latency (ns).
    pub p50_ns: u64,
    /// 95th-percentile latency (ns).
    pub p95_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_ns: u64,
    /// Worst latency (ns).
    pub max_ns: u64,
    /// Mean latency (ns).
    pub mean_ns: u64,
}

impl LatencyBands {
    /// Reads the bands out of a (merged) histogram.
    #[must_use]
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencyBands {
            count: h.count(),
            p50_ns: h.quantile(0.5),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
            max_ns: h.max(),
            mean_ns: h.mean(),
        }
    }
}

/// Exactly-once accounting of every generated request.
///
/// The conservation law `generated = routed + shed + retry_shed +
/// deferred_unserved + retry_unserved` holds by construction: each
/// request reaches exactly one terminal state (absorbed by a live chip,
/// shed because no chip was eligible, permanently shed by the failover
/// ladder, or still parked in the defer/retry queue when the run ended).
/// `routed` counts *absorptions* — a request bounced by a dead chip was
/// never routed in this accounting, it moved to the retry ladder.
/// `deferred` and `retried` count *events* and are informational — a
/// deferred or retried request later lands in one of the terminal
/// buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingCounters {
    /// Requests produced by the traffic generator.
    pub generated: u64,
    /// Requests absorbed by a chip.
    pub routed: u64,
    /// Requests dropped because no chip was eligible.
    pub shed: u64,
    /// Defer events (a request defers at most once).
    pub deferred: u64,
    /// Requests still deferred when the run ended.
    pub deferred_unserved: u64,
    /// Retry events: re-routes of requests bounced by dead chips.
    pub retried: u64,
    /// Requests permanently shed by the failover ladder (budget
    /// exhausted, no eligible retry target, or no failover armed).
    pub retry_shed: u64,
    /// Requests still waiting in the retry queue when the run ended.
    pub retry_unserved: u64,
    /// Epoch-over-epoch changes of a critical lane's assigned chip.
    pub critical_reroutes: u64,
    /// Chips draining when the run ended.
    pub drained_chips: u32,
    /// Chips that hard-failed during the run.
    pub hard_failed_chips: u32,
    /// Chips resurrected from a machine checkpoint during the run.
    pub resurrected_chips: u32,
}

/// One chip's final account within the fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipRow {
    /// Chip index within the fleet.
    pub chip: u32,
    /// The chip's silicon-lot seed (derived from the fleet seed).
    pub lot: u64,
    /// Requests served to completion on this chip.
    pub completed: u64,
    /// Requests stranded on this chip (background tier fully gated).
    pub shed: u64,
    /// Critical requests routed here.
    pub critical_routed: u64,
    /// Background requests routed here.
    pub background_routed: u64,
    /// Critical completions that violated the chip SLO.
    pub critical_slo_violations: u64,
    /// p99 latency over the chip's completions (ns).
    pub p99_ns: u64,
    /// Supervisor/degradation actions applied on this chip.
    pub transitions: u64,
    /// Cores quarantined at the end of the run.
    pub quarantined: u32,
    /// Cores in supervisor safe mode at the end of the run.
    pub safe_mode: u32,
    /// Final fastest healthy core frequency (whole MHz).
    pub fastest_healthy_mhz: u64,
    /// First epoch whose routing excluded this chip as draining
    /// (quarantine is terminal, so draining is too); `-1` = never drained.
    pub drained_from_epoch: i64,
    /// Last epoch a critical request was routed here; `-1` = never.
    pub last_critical_epoch: i64,
    /// Total energy metered on this chip (integer picojoules).
    pub energy_pj: u64,
}

/// The complete, deterministic account of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The fleet root seed (silicon lots, traffic, and fault scatter all
    /// derive from it).
    pub seed: u64,
    /// Number of chips simulated.
    pub chips: u32,
    /// Number of epochs simulated.
    pub epochs: u32,
    /// Virtual nanoseconds per epoch.
    pub epoch_ns: u64,
    /// Exactly-once request accounting.
    pub routing: RoutingCounters,
    /// Merged latency bands of every critical completion fleet-wide.
    pub critical: LatencyBands,
    /// Merged latency bands of every background completion fleet-wide.
    pub background: LatencyBands,
    /// Per-chip accounts, in chip order.
    pub rows: Vec<ChipRow>,
    /// Per-chip adapter accounts, in chip order (empty — and absent from
    /// serialized reports — unless the fleet ran with adaptation on).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub adapt: Vec<AdaptReport>,
    /// Fleet-wide integer picojoule energy account, merged over every
    /// chip — `energy_per_request` across the whole fleet.
    #[serde(default)]
    pub energy: EnergyReport,
    /// Per-chip power-regulator accounts, in chip order (empty — and
    /// absent from serialized reports — unless a budget was armed).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub caps: Vec<CapReport>,
}

impl FleetReport {
    /// Whether exactly-once accounting held: every generated request is in
    /// precisely one terminal bucket, and the routed total matches what
    /// the chips actually absorbed. Retries count separately (they are
    /// events, not terminal states), so the law survives chip failures
    /// and resurrections unchanged.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        let r = &self.routing;
        let absorbed: u64 = self.rows.iter().map(|row| row.completed + row.shed).sum();
        r.generated == r.routed + r.shed + r.retry_shed + r.deferred_unserved + r.retry_unserved
            && r.routed == absorbed
    }

    /// Whether no chip ever received a critical request at or after the
    /// epoch its drain began (vacuously true for chips that never
    /// drained).
    #[must_use]
    pub fn drained_respected(&self) -> bool {
        self.rows
            .iter()
            .filter(|row| row.drained_from_epoch >= 0)
            .all(|row| row.last_critical_epoch < row.drained_from_epoch)
    }

    /// Total completions across the fleet.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.rows.iter().map(|row| row.completed).sum()
    }

    /// Whether the per-chip energy rows sum exactly to the fleet total —
    /// the picojoule conservation law the property tests lean on.
    #[must_use]
    pub fn energy_conserved(&self) -> bool {
        let per_chip: u64 = self.rows.iter().map(|row| row.energy_pj).sum();
        per_chip == self.energy.total_pj
    }

    /// Fleet-wide energy per completed request, in nanojoules.
    #[must_use]
    pub fn energy_per_request_nj(&self) -> u64 {
        self.energy.energy_per_request_nj()
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet seed={} chips={} epochs={}×{} ns",
            self.seed, self.chips, self.epochs, self.epoch_ns
        )?;
        let r = &self.routing;
        writeln!(
            f,
            "  routing: {} generated = {} routed + {} shed + {} retry-shed + {} unserved ({} defers, {} retries, {} reroutes, {} draining)",
            r.generated,
            r.routed,
            r.shed,
            r.retry_shed,
            r.deferred_unserved + r.retry_unserved,
            r.deferred,
            r.retried,
            r.critical_reroutes,
            r.drained_chips
        )?;
        if r.hard_failed_chips > 0 {
            writeln!(
                f,
                "  failover: {} chips hard-failed, {} resurrected",
                r.hard_failed_chips, r.resurrected_chips
            )?;
        }
        writeln!(
            f,
            "  critical:   {:>8} done  p50 {:>10} ns  p99 {:>10} ns  max {:>10} ns",
            self.critical.count, self.critical.p50_ns, self.critical.p99_ns, self.critical.max_ns
        )?;
        writeln!(
            f,
            "  background: {:>8} done  p50 {:>10} ns  p99 {:>10} ns  max {:>10} ns",
            self.background.count,
            self.background.p50_ns,
            self.background.p99_ns,
            self.background.max_ns
        )?;
        let quarantined: u32 = self.rows.iter().map(|row| row.quarantined).sum();
        let transitions: u64 = self.rows.iter().map(|row| row.transitions).sum();
        writeln!(
            f,
            "  health: {} cores quarantined, {} supervisor/degrade transitions",
            quarantined, transitions
        )?;
        writeln!(
            f,
            "  energy: {} pJ total, {} nJ/request",
            self.energy.total_pj,
            self.energy.energy_per_request_nj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FleetReport {
        let row = ChipRow {
            chip: 0,
            lot: 99,
            completed: 8,
            shed: 1,
            critical_routed: 3,
            background_routed: 6,
            critical_slo_violations: 0,
            p99_ns: 1_000,
            transitions: 0,
            quarantined: 0,
            safe_mode: 0,
            fastest_healthy_mhz: 4_600,
            drained_from_epoch: -1,
            last_critical_epoch: 2,
            energy_pj: 0,
        };
        let bands = LatencyBands {
            count: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            max_ns: 0,
            mean_ns: 0,
        };
        FleetReport {
            seed: 42,
            chips: 1,
            epochs: 3,
            epoch_ns: 1_000_000,
            routing: RoutingCounters {
                generated: 10,
                routed: 9,
                shed: 1,
                deferred: 2,
                ..RoutingCounters::default()
            },
            critical: bands,
            background: bands,
            rows: vec![row],
            adapt: Vec::new(),
            energy: EnergyReport::default(),
            caps: Vec::new(),
        }
    }

    #[test]
    fn conservation_checks_both_sides() {
        let good = report();
        assert!(good.conservation_holds());
        let mut leak = report();
        leak.routing.generated += 1;
        assert!(!leak.conservation_holds());
        let mut phantom = report();
        phantom.rows[0].completed += 1;
        assert!(!phantom.conservation_holds());
    }

    #[test]
    fn retry_buckets_enter_the_law() {
        let mut r = report();
        r.routing.generated += 3;
        r.routing.retry_shed += 2;
        r.routing.retry_unserved += 1;
        r.routing.retried += 5; // events, outside the law
        assert!(r.conservation_holds());
        r.routing.retry_unserved += 1;
        assert!(!r.conservation_holds());
    }

    #[test]
    fn drain_invariant_spots_late_criticals() {
        let mut r = report();
        assert!(r.drained_respected());
        r.rows[0].drained_from_epoch = 2;
        assert!(!r.drained_respected(), "critical at the drain epoch");
        r.rows[0].drained_from_epoch = 3;
        assert!(r.drained_respected());
    }

    #[test]
    fn display_summarises_the_account() {
        let text = report().to_string();
        assert!(text.contains("10 generated"));
        assert!(text.contains("chips=1"));
    }
}
