//! Fleet-run configuration.

use atm_adapt::AdaptConfig;
use atm_capping::FleetBudget;
use atm_core::charact::CharactConfig;
use atm_faults::FleetFaultPlan;
use atm_serve::{ArrivalPattern, ChipServeConfig};
use atm_silicon::DriftModel;
use atm_units::{AtmError, Nanos};
use atm_workloads::by_name;

use serde::{Deserialize, Serialize};

use crate::placement::PlacementConfig;
use crate::traffic::TrafficSpec;

/// Knobs of the fleet's chip-failure failover ladder.
///
/// When armed (see [`FleetConfig::with_failover`]), a request bounced by
/// a hard-failed chip enters a bounded retry ladder instead of being
/// dropped: attempt `a` waits `backoff_base_epochs << (a − 1)` epochs,
/// and a request past `retry_budget` attempts is permanently shed (the
/// `retry_shed` bucket of the extended conservation law). The fleet also
/// checkpoints every chip's machine state periodically so a dead chip can
/// be resurrected cold after `resurrect_after` epochs, serving only
/// background traffic through a probation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverConfig {
    /// Maximum delivery attempts per request (first bounce = attempt 1).
    pub retry_budget: u32,
    /// Epochs before the first retry; each further attempt doubles the
    /// wait. Zero retries on the very next epoch.
    pub backoff_base_epochs: u32,
    /// Epochs between periodic per-chip machine checkpoints (0 disables
    /// checkpointing — a dead chip then stays dead).
    pub checkpoint_every: u32,
    /// Epochs a chip stays dead before resurrection is attempted (needs
    /// a checkpoint to exist).
    pub resurrect_after: u32,
    /// Epochs a resurrected chip is barred from critical traffic while
    /// its cold queues re-warm on background work.
    pub probation_epochs: u32,
    /// Critical-stream retries are never routed to a chip with at least
    /// this many quarantined cores (its margin ladder is already
    /// struggling; the retried request is the one we cannot lose twice).
    pub quarantine_avoid: u32,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            retry_budget: 3,
            backoff_base_epochs: 1,
            checkpoint_every: 1,
            resurrect_after: 2,
            probation_epochs: 2,
            quarantine_avoid: 2,
        }
    }
}

/// Knobs of a fleet simulation.
///
/// Everything a [`FleetSim`](crate::FleetSim) run depends on lives here —
/// the [`FleetReport`](crate::FleetReport) is a pure function of
/// `(FleetConfig, seed)`, independent of the worker count the run is
/// sharded over.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of chips in the fleet.
    pub chips: u32,
    /// Fleet root seed: per-chip silicon lots, traffic lane seeds, and
    /// the fault-affliction map all derive from it.
    pub seed: u64,
    /// Number of fleet epochs (routing intervals).
    pub epochs: u32,
    /// Virtual nanoseconds of traffic per epoch.
    pub epoch_ns: u64,
    /// The fleet's aggregate request streams.
    pub traffic: Vec<TrafficSpec>,
    /// Per-chip serving knobs (every chip runs the same recipe; silicon
    /// variation comes from the per-chip lot seeds).
    pub chip: ChipServeConfig,
    /// Characterization recipe used to fine-tune each chip at deploy.
    pub charact: CharactConfig,
    /// Fleet-placement thresholds.
    pub placement: PlacementConfig,
    /// Optional fleet-wide fault campaign.
    pub faults: Option<FleetFaultPlan>,
    /// Whether chips use the stride fast path (report-identical either
    /// way; `false` exercises the reference tick loop).
    pub stride: bool,
    /// Optional fleet-wide silicon drift: each chip gets this model
    /// rebased on a per-chip seed, so aging scatter differs chip to chip
    /// while staying a pure function of the fleet seed.
    pub drift: Option<DriftModel>,
    /// Optional online recharacterization recipe; when set, every chip
    /// runs an `OnlineAdapter` and the fleet report carries one
    /// `AdaptReport` per chip.
    pub adapt: Option<AdaptConfig>,
    /// Optional global power budget: the cap in force is split across
    /// chips at every epoch barrier, proportional to their snapshot
    /// backlog, and each chip's regulator tracks its share. The split is
    /// exact largest-remainder apportionment over the same snapshots
    /// routing reads, so the whole allocation stays a pure function of
    /// `(FleetConfig, seed)`.
    pub budget: Option<FleetBudget>,
    /// Optional chip-failure failover: bounded retry/backoff for requests
    /// bounced by hard-failed chips, periodic machine checkpoints, and
    /// checkpoint resurrection with a probation window. Without it a
    /// hard-failed chip stays dead and its bounced requests are
    /// immediately `retry_shed`.
    pub failover: Option<FailoverConfig>,
}

impl FleetConfig {
    /// A small fleet for tests and smoke runs: 8 chips × 4 epochs of
    /// 50 ms, one critical and one background stream, 2 µs single-repeat
    /// characterization trials.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in workload catalog is missing its
    /// standard entries (a build defect).
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        FleetConfig {
            chips: 8,
            seed,
            epochs: 4,
            epoch_ns: 50_000_000,
            traffic: vec![
                // SqueezeNet inference runs ~42 ms on a critical core, so
                // an 80 ms per-lane gap keeps each chip's critical queue
                // loaded but sustainable (ρ ≈ 0.5).
                TrafficSpec::critical(
                    "inference",
                    ArrivalPattern::Poisson {
                        mean_gap: 80_000_000,
                    },
                ),
                TrafficSpec::background(
                    "batch",
                    ArrivalPattern::Bursty {
                        mean_gap: 3_000_000,
                        burst_gap: 800_000,
                        phase: 20_000_000,
                    },
                ),
            ],
            chip: ChipServeConfig::standard(
                by_name("squeezenet").expect("catalog").clone(),
                vec![by_name("x264").expect("catalog").clone()],
            ),
            charact: CharactConfig::builder()
                .trial(Nanos::new(2_000.0))
                .repeats(1)
                .build()
                .expect("valid quick characterization"),
            placement: PlacementConfig::default(),
            faults: None,
            stride: true,
            drift: None,
            adapt: None,
            budget: None,
            failover: None,
        }
    }

    /// The standard fleet: 64 chips × 10 epochs of 100 ms over the quick
    /// recipe.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        FleetConfig {
            chips: 64,
            epochs: 10,
            epoch_ns: 100_000_000,
            ..FleetConfig::quick(seed)
        }
    }

    /// Replaces the chip count (chainable).
    #[must_use]
    pub fn with_chips(mut self, chips: u32) -> Self {
        self.chips = chips;
        self
    }

    /// Replaces the epoch count (chainable).
    #[must_use]
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }

    /// Arms fleet-wide silicon drift (chainable).
    #[must_use]
    pub fn with_drift(mut self, drift: DriftModel) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Arms per-chip online recharacterization (chainable).
    #[must_use]
    pub fn with_adapt(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = Some(adapt);
        self
    }

    /// Arms a fleet-wide fault campaign (chainable).
    #[must_use]
    pub fn with_faults(mut self, faults: FleetFaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Arms a global power budget, split across chips each epoch
    /// (chainable). Chips without their own cap config get a
    /// fleet-driven regulator automatically.
    #[must_use]
    pub fn with_budget(mut self, budget: FleetBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Arms the chip-failure failover ladder (chainable).
    #[must_use]
    pub fn with_failover(mut self, failover: FailoverConfig) -> Self {
        self.failover = Some(failover);
        self
    }

    /// Sets the stride fast path on or off (chainable).
    #[must_use]
    pub fn with_stride(mut self, stride: bool) -> Self {
        self.stride = stride;
        self
    }

    /// Replaces the placement thresholds (chainable).
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementConfig) -> Self {
        self.placement = placement;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if the fleet is empty (no
    /// chips, no epochs, zero-length epochs, or no traffic) or the
    /// per-chip knobs fail [`ChipServeConfig::check`].
    pub fn check(&self) -> Result<(), AtmError> {
        if self.chips == 0 {
            return Err(AtmError::invalid_config("chips", "need at least one chip"));
        }
        if self.epochs == 0 {
            return Err(AtmError::invalid_config(
                "epochs",
                "need at least one epoch",
            ));
        }
        if self.epoch_ns == 0 {
            return Err(AtmError::invalid_config(
                "epoch_ns",
                "epochs must span time",
            ));
        }
        if self.traffic.is_empty() {
            return Err(AtmError::invalid_config(
                "traffic",
                "need at least one stream",
            ));
        }
        if let Some(adapt) = &self.adapt {
            adapt.check()?;
        }
        if let Some(budget) = &self.budget {
            budget.check()?;
        }
        self.chip.check()
    }

    /// A validating builder seeded from [`FleetConfig::quick`] — the
    /// preferred way to compose a fleet run out of the optional
    /// subsystems (drift, adaptation, faults, a power budget).
    ///
    /// # Examples
    ///
    /// ```
    /// use atm_capping::FleetBudget;
    /// use atm_fleet::FleetConfig;
    ///
    /// let cfg = FleetConfig::builder(42)
    ///     .chips(4)
    ///     .epochs(3)
    ///     .budget(FleetBudget::steady(200_000))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.chips, 4);
    /// assert!(FleetConfig::builder(42).chips(0).build().is_err());
    /// ```
    #[must_use]
    pub fn builder(seed: u64) -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: FleetConfig::quick(seed),
        }
    }
}

/// Builder for [`FleetConfig`]; see [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the chip count.
    #[must_use]
    pub fn chips(mut self, chips: u32) -> Self {
        self.config.chips = chips;
        self
    }

    /// Sets the epoch count.
    #[must_use]
    pub fn epochs(mut self, epochs: u32) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Sets the virtual nanoseconds per epoch.
    #[must_use]
    pub fn epoch_ns(mut self, epoch_ns: u64) -> Self {
        self.config.epoch_ns = epoch_ns;
        self
    }

    /// Arms fleet-wide silicon drift.
    #[must_use]
    pub fn drift(mut self, drift: DriftModel) -> Self {
        self.config.drift = Some(drift);
        self
    }

    /// Arms per-chip online recharacterization.
    #[must_use]
    pub fn adapt(mut self, adapt: AdaptConfig) -> Self {
        self.config.adapt = Some(adapt);
        self
    }

    /// Arms a fleet-wide fault campaign.
    #[must_use]
    pub fn faults(mut self, faults: FleetFaultPlan) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// Arms a global power budget.
    #[must_use]
    pub fn budget(mut self, budget: FleetBudget) -> Self {
        self.config.budget = Some(budget);
        self
    }

    /// Arms the chip-failure failover ladder.
    #[must_use]
    pub fn failover(mut self, failover: FailoverConfig) -> Self {
        self.config.failover = Some(failover);
        self
    }

    /// Replaces the placement thresholds.
    #[must_use]
    pub fn placement(mut self, placement: PlacementConfig) -> Self {
        self.config.placement = placement;
        self
    }

    /// Sets the stride fast path on or off.
    #[must_use]
    pub fn stride(mut self, stride: bool) -> Self {
        self.config.stride = stride;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if the composed configuration
    /// fails [`FleetConfig::check`].
    pub fn build(self) -> Result<FleetConfig, AtmError> {
        self.config.check()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_standard_validate() {
        assert!(FleetConfig::quick(42).check().is_ok());
        assert!(FleetConfig::standard(42).check().is_ok());
    }

    #[test]
    fn degenerate_fleets_are_rejected() {
        assert!(FleetConfig::quick(1).with_chips(0).check().is_err());
        assert!(FleetConfig::quick(1).with_epochs(0).check().is_err());
        let mut no_traffic = FleetConfig::quick(1);
        no_traffic.traffic.clear();
        assert!(no_traffic.check().is_err());
        let mut zero_epoch = FleetConfig::quick(1);
        zero_epoch.epoch_ns = 0;
        assert!(zero_epoch.check().is_err());
    }
}
