//! The global traffic generator: seeded fleet streams split into
//! per-chip sub-streams.
//!
//! A fleet stream describes the aggregate arrival process of millions of
//! users hitting one request class. Rather than generating one giant
//! trace and paying a global sort, the generator *splits* each stream
//! into `chips` independent sub-streams ("lanes"), each with its own
//! SplitMix64-derived RNG seed — the same trick `CampaignHook` uses to
//! decorrelate campaign trials. Lane traces are pure functions of
//! `(root seed, stream, lane)`, so they can be produced on any number of
//! worker threads; the fleet router later maps lanes onto chips at every
//! epoch barrier.
//!
//! The lane-seed derivation is **collision-free by construction**: the
//! `(stream, lane)` pair is packed into one `u64` and pushed through
//! SplitMix64, a bijection on `u64` — two distinct lanes can never share
//! a seed (property-checked for 1024-chip fleets in
//! `tests/properties.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub use atm_serve::ArrivalPattern;

/// SplitMix64: the one-shot integer mixer behind every seeded choice.
#[must_use]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One aggregate fleet request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Display name.
    pub name: String,
    /// Whether this stream's requests are latency-critical.
    pub critical: bool,
    /// The *per-lane* arrival process (each chip-lane runs one
    /// independent copy, so fleet-aggregate volume scales with the fleet).
    pub pattern: ArrivalPattern,
}

impl TrafficSpec {
    /// A critical fleet stream.
    #[must_use]
    pub fn critical(name: &str, pattern: ArrivalPattern) -> Self {
        TrafficSpec {
            name: name.to_string(),
            critical: true,
            pattern,
        }
    }

    /// A background fleet stream.
    #[must_use]
    pub fn background(name: &str, pattern: ArrivalPattern) -> Self {
        TrafficSpec {
            name: name.to_string(),
            critical: false,
            pattern,
        }
    }
}

/// One request of a lane trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneRequest {
    /// Arrival time (virtual ns from fleet-trace start).
    pub time: u64,
    /// Per-lane sequence number.
    pub seq: u32,
    /// Uniform draw in `[0, 1)` for the request's service-time jitter.
    pub draw: f64,
}

/// The RNG seed of sub-stream `lane` of stream `stream`.
///
/// `(stream, lane)` is packed into one `u64` (stream in the high half)
/// and mixed with SplitMix64; because the mixer is a bijection, distinct
/// `(stream, lane)` pairs always get distinct seeds for any root.
#[must_use]
pub fn lane_seed(root: u64, stream: u32, lane: u32) -> u64 {
    mix(root ^ mix((u64::from(stream) << 32) | u64::from(lane)))
}

/// Exponential gap with the given mean, floored at 1 ns (the same draw
/// the single-chip serving generator makes).
fn exp_gap(rng: &mut StdRng, mean: u64) -> u64 {
    let u: f64 = rng.gen();
    let gap = -(mean as f64) * (1.0_f64 - u).ln();
    (gap.ceil() as u64).max(1)
}

/// Generates one lane's trace over `[0, horizon)` ns — a pure function of
/// `(root, stream, lane)`.
#[must_use]
pub fn generate_lane(
    spec: &TrafficSpec,
    root: u64,
    stream: u32,
    lane: u32,
    horizon: u64,
) -> Vec<LaneRequest> {
    let mut rng = StdRng::seed_from_u64(lane_seed(root, stream, lane));
    let mut out = Vec::new();
    let mut t = 0u64;
    let mut seq = 0u32;
    loop {
        let mean = match spec.pattern {
            ArrivalPattern::Poisson { mean_gap } => mean_gap,
            ArrivalPattern::Bursty {
                mean_gap,
                burst_gap,
                phase,
            } => {
                if (t / phase).is_multiple_of(2) {
                    mean_gap
                } else {
                    burst_gap
                }
            }
        };
        t = t.saturating_add(exp_gap(&mut rng, mean));
        if t >= horizon {
            return out;
        }
        let draw: f64 = rng.gen();
        out.push(LaneRequest { time: t, seq, draw });
        seq += 1;
    }
}

/// Generates every `(stream, lane)` trace of the fleet, fanned out over
/// up to `workers` threads. `traces[stream][lane]` holds the result; the
/// contents are independent of `workers` because each lane depends only
/// on its own derived seed.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn generate_fleet(
    streams: &[TrafficSpec],
    chips: u32,
    root: u64,
    horizon: u64,
    workers: usize,
) -> Vec<Vec<Vec<LaneRequest>>> {
    assert!(workers > 0, "need at least one worker");
    let lanes = chips as usize;
    let mut traces: Vec<Vec<Vec<LaneRequest>>> =
        streams.iter().map(|_| vec![Vec::new(); lanes]).collect();
    let jobs: Vec<(u32, u32, &TrafficSpec, &mut Vec<LaneRequest>)> = traces
        .iter_mut()
        .enumerate()
        .flat_map(|(s, lanes_vec)| {
            let spec = &streams[s];
            lanes_vec
                .iter_mut()
                .enumerate()
                .map(move |(l, slot)| (s as u32, l as u32, spec, slot))
        })
        .collect();
    let workers = workers.min(jobs.len()).max(1);
    let mut chunks: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
    for (n, job) in jobs.into_iter().enumerate() {
        chunks[n % workers].push(job);
    }
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || {
                for (stream, lane, spec, slot) in chunk {
                    *slot = generate_lane(spec, root, stream, lane, horizon);
                }
            });
        }
    });
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<TrafficSpec> {
        vec![
            TrafficSpec::critical("inference", ArrivalPattern::Poisson { mean_gap: 400_000 }),
            TrafficSpec::background(
                "batch",
                ArrivalPattern::Bursty {
                    mean_gap: 150_000,
                    burst_gap: 40_000,
                    phase: 2_000_000,
                },
            ),
        ]
    }

    #[test]
    fn lane_seeds_never_collide() {
        let mut seen = std::collections::BTreeSet::new();
        for stream in 0..4u32 {
            for lane in 0..1024u32 {
                assert!(
                    seen.insert(lane_seed(42, stream, lane)),
                    "collision at stream {stream} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn lanes_are_deterministic_and_decorrelated() {
        let spec = &specs()[0];
        let a = generate_lane(spec, 7, 0, 3, 10_000_000);
        assert_eq!(a, generate_lane(spec, 7, 0, 3, 10_000_000));
        assert!(!a.is_empty());
        assert_ne!(a, generate_lane(spec, 7, 0, 4, 10_000_000));
        assert_ne!(a, generate_lane(spec, 8, 0, 3, 10_000_000));
    }

    #[test]
    fn fleet_generation_is_worker_count_independent() {
        let streams = specs();
        let base = generate_fleet(&streams, 6, 42, 5_000_000, 1);
        for workers in [2usize, 5, 8] {
            assert_eq!(
                base,
                generate_fleet(&streams, 6, 42, 5_000_000, workers),
                "workers={workers}"
            );
        }
    }
}
