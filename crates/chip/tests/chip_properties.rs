//! Cross-module property and behavioural tests for the chip simulator.

use atm_chip::{ChipConfig, MarginMode, System, SystemReport};
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, Nanos, ProcId};
use atm_workloads::by_name;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cloning a system forks an independent, identical simulation: both
    /// copies produce the same report from the same point.
    #[test]
    fn clone_is_an_independent_fork(seed in 0u64..500) {
        let mut a = System::new(ChipConfig::power7_plus(seed));
        a.set_mode_all(MarginMode::Atm);
        a.assign_all(&by_name("gcc").unwrap().clone());
        let mut b = a.clone();
        let ra = a.run(Nanos::new(10_000.0), &mut NullRecorder);
        let rb = b.run(Nanos::new(10_000.0), &mut NullRecorder);
        prop_assert_eq!(describe(&ra), describe(&rb));
        // Running the original again must NOT replay the same droops
        // (its RNG streams advanced).
        let ra2 = a.run(Nanos::new(10_000.0), &mut NullRecorder);
        // Mean frequencies stay close but the trajectories may differ;
        // just check both completed.
        prop_assert!(ra2.is_ok() || ra2.failure.is_some());
    }

    /// Report invariants hold for arbitrary mixed schedules.
    #[test]
    fn report_invariants(seed in 0u64..500, busy in 0usize..16) {
        let mut sys = System::new(ChipConfig::power7_plus(seed));
        let daxpy = by_name("daxpy").unwrap().clone();
        for (i, id) in CoreId::all().enumerate() {
            if i < busy {
                sys.assign(id, daxpy.clone());
                sys.set_mode(id, MarginMode::Atm);
            }
        }
        let report = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
        prop_assert_eq!(report.cores.len(), 16);
        prop_assert_eq!(report.procs.len(), 2);
        for c in &report.cores {
            prop_assert!(c.min_freq.get() <= c.mean_freq.get() + 1e-6);
            prop_assert!(c.mean_freq.get() <= c.max_freq.get() + 1e-6);
        }
        for p in &report.procs {
            prop_assert!(p.mean_power.get() > 0.0);
            prop_assert!(p.max_temp.get() >= 39.9);
            // The paper keeps die temperature under ~70 °C; a mixed
            // schedule must not melt the model either.
            prop_assert!(p.max_temp.get() < 90.0);
        }
    }
}

fn describe(r: &SystemReport) -> Vec<(u64, u64)> {
    r.cores
        .iter()
        .map(|c| (c.mean_freq.get().to_bits(), c.violations))
        .collect()
}

#[test]
fn reports_are_serde_data_structures() {
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<SystemReport>();
    assert_serde::<atm_chip::CoreReport>();
    assert_serde::<atm_chip::ProcReport>();
    assert_serde::<atm_chip::FailureEvent>();
    assert_serde::<atm_chip::Trace>();
    assert_serde::<atm_chip::ChipConfig>();
}

#[test]
fn temperature_reaches_seventy_at_paper_load() {
    // 8 SMT4 daxpy-class threads push the socket toward the paper's
    // 160 W / 70 °C corner.
    let mut sys = System::new(ChipConfig::default());
    let daxpy = by_name("daxpy").unwrap().clone();
    for id in ProcId::new(0).cores() {
        sys.assign_smt(id, daxpy.clone(), 4);
        sys.set_mode(id, MarginMode::Atm);
    }
    let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
    let t = report.procs[0].max_temp;
    assert!(
        t.get() > 60.0 && t.get() < 80.0,
        "SMT4 daxpy temperature {t} outside the paper's band"
    );
}

#[test]
fn sockets_are_thermally_and_electrically_independent() {
    let mut sys = System::new(ChipConfig::default());
    let daxpy = by_name("daxpy").unwrap().clone();
    // Load socket 0 only.
    for id in ProcId::new(0).cores() {
        sys.assign(id, daxpy.clone());
    }
    sys.set_mode_all(MarginMode::Atm);
    let report = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
    // Socket 1 stays near idle power; its ATM cores keep idle frequency.
    assert!(report.procs[0].mean_power.get() > report.procs[1].mean_power.get() + 50.0);
    let f0: f64 = ProcId::new(0)
        .cores()
        .map(|c| report.core(c).mean_freq.get())
        .sum::<f64>()
        / 8.0;
    let f1: f64 = ProcId::new(1)
        .cores()
        .map(|c| report.core(c).mean_freq.get())
        .sum::<f64>()
        / 8.0;
    assert!(
        f1 > f0 + 80.0,
        "unloaded socket must run faster: P0 {f0:.0} vs P1 {f1:.0}"
    );
}

#[test]
fn system_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<System>();
}

#[test]
fn constructed_virus_matches_the_profile_virus() {
    // The paper's voltage virus is daxpy threads plus synchronized issue
    // throttling. Build it from those parts and check it stresses a
    // fine-tuned core at least as hard as any single realistic workload:
    // a configuration one step above the x264 limit must fail under it.
    let daxpy = by_name("daxpy").unwrap().clone();

    // Find x264's safe limit on the probe core first.
    let probe = CoreId::new(0, 1);
    let mut sys = System::new(ChipConfig::default());
    sys.set_mode(probe, MarginMode::Atm);
    let x264_limit = {
        let mut r = sys.core(probe).cpms().max_reduction();
        loop {
            sys.set_reduction(probe, r).unwrap();
            sys.assign(probe, by_name("x264").unwrap().clone());
            if (0..2).all(|_| sys.run(Nanos::new(50_000.0), &mut NullRecorder).is_ok()) {
                break r;
            }
            assert!(r > 0, "x264 fails even at the preset");
            r -= 1;
        }
    };

    // Constructed virus: SMT4 daxpy + synchronized throttling everywhere.
    for id in ProcId::new(0).cores() {
        sys.assign_smt(id, daxpy.clone(), 4);
        sys.set_issue_throttle(id, Some(16));
    }
    sys.set_reduction(
        probe,
        (x264_limit + 1).min(sys.core(probe).cpms().max_reduction()),
    )
    .unwrap();
    let mut failed = false;
    for _ in 0..6 {
        if sys
            .run(Nanos::new(50_000.0), &mut NullRecorder)
            .failure
            .is_some()
        {
            failed = true;
            break;
        }
    }
    assert!(
        failed,
        "constructed virus did not out-stress x264 (limit {x264_limit})"
    );
}

#[test]
fn traced_run_aborts_with_the_failure() {
    // A failing configuration must truncate the trace at the failure.
    let mut sys = System::new(ChipConfig::default());
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    let max = sys.core(core).cpms().max_reduction();
    sys.set_reduction(core, max).unwrap();
    let (report, trace) = sys.run_traced(Nanos::new(500_000.0), core, 1);
    assert!(report.failure.is_some());
    let ticks = (report.duration.get() / sys.config().tick.get()).round() as usize;
    assert!(trace.samples().len() <= ticks + 1);
    assert!(
        trace.samples().len() < 10_000,
        "trace ran past the failure: {} samples",
        trace.samples().len()
    );
}

#[test]
fn trace_decimation_thins_samples() {
    let mut sys = System::new(ChipConfig::default());
    let core = CoreId::new(1, 0);
    sys.set_mode(core, MarginMode::Atm);
    let (_, dense) = sys.run_traced(Nanos::new(20_000.0), core, 1);
    let (_, sparse) = sys.run_traced(Nanos::new(20_000.0), core, 8);
    assert_eq!(dense.samples().len(), 400);
    assert_eq!(sparse.samples().len(), 50);
    assert_eq!(sparse.decimation(), 8);
}

#[test]
fn issue_throttling_halves_activity_power() {
    let mut sys = System::new(ChipConfig::default());
    let daxpy = by_name("daxpy").unwrap().clone();
    for id in ProcId::new(0).cores() {
        sys.assign(id, daxpy.clone());
    }
    let full = sys.settle().procs[0].mean_power;
    for id in ProcId::new(0).cores() {
        sys.set_issue_throttle(id, Some(16));
    }
    let throttled = sys.settle().procs[0].mean_power;
    assert!(
        throttled.get() < full.get() * 0.75,
        "throttle barely moved power: {full} -> {throttled}"
    );
}
