//! Chip-level event subscription.
//!
//! Management layers above the chip (the ATM manager, the serving layer)
//! need to *react* to things the hardware surfaces asynchronously: timing
//! failures and deep droop responses. On the paper's machines these arrive
//! as service-processor interrupts and EPOW-style alerts; here the
//! [`System`](crate::System) keeps an event log that a subscriber drains
//! between runs via [`System::drain_events`](crate::System::drain_events).
//!
//! Two event sources exist:
//!
//! * **failures** — every [`FailureEvent`] a run aborts on is also logged;
//! * **droop alarms** — opt-in via
//!   [`System::set_droop_alarm`](crate::System::set_droop_alarm): while an
//!   ATM core's clock dips more than the threshold below its rolling mean
//!   (the loop's visible response to a di/dt droop), a [`DroopAlarm`] is
//!   logged once per excursion (hysteretic re-arm at half the threshold).

use std::fmt;

use atm_units::{CoreId, MegaHz, Nanos};
use serde::{Deserialize, Serialize};

use crate::failure::FailureEvent;
use crate::processor::Processor;

/// A deep droop response observed on one core: the ATM loop pulled the
/// clock `dip` below the core's rolling mean frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroopAlarm {
    /// The core whose loop responded.
    pub core: CoreId,
    /// How far below the rolling mean the clock dipped when the alarm
    /// tripped.
    pub dip: MegaHz,
    /// Simulation time of the alarm, from trial start.
    pub at: Nanos,
}

impl fmt::Display for DroopAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "droop alarm on {}: -{} at {}",
            self.core, self.dip, self.at
        )
    }
}

/// An asynchronous chip event a subscriber can react to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChipEvent {
    /// A timing violation escaped the loop (the run aborted on it).
    Failure(FailureEvent),
    /// A core's loop rode out a deep droop (frequency dip past the
    /// subscribed threshold).
    Droop(DroopAlarm),
}

impl fmt::Display for ChipEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipEvent::Failure(e) => write!(f, "{e}"),
            ChipEvent::Droop(a) => write!(f, "{a}"),
        }
    }
}

/// EMA weight per tick for the rolling mean frequency (a ~1 µs window at
/// the 50 ns tick — long against single droops, short against mode and
/// load changes).
const EMA_ALPHA: f64 = 0.05;

/// A single hysteretic droop detector: trips once when the dip reaches the
/// threshold, then stays silent until the dip recovers below *half* the
/// threshold — guaranteeing exactly one alarm per excursion no matter how
/// the dip waveform wiggles near the trip point.
///
/// This is the per-core comparator inside the system's droop-alarm bank
/// (see [`System::set_droop_alarm`](crate::System::set_droop_alarm)),
/// exposed so the hysteresis contract can be property-tested and reused.
///
/// # Examples
///
/// ```
/// use atm_chip::DroopHysteresis;
/// use atm_units::MegaHz;
///
/// let mut det = DroopHysteresis::new(MegaHz::new(25.0));
/// assert!(det.observe(MegaHz::new(30.0))); // trips
/// assert!(!det.observe(MegaHz::new(40.0))); // still in the excursion
/// assert!(!det.observe(MegaHz::new(20.0))); // above half threshold: silent
/// assert!(!det.observe(MegaHz::new(5.0))); // recovers, re-arms
/// assert!(det.observe(MegaHz::new(26.0))); // a new excursion trips again
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DroopHysteresis {
    threshold: MegaHz,
    armed: bool,
}

impl DroopHysteresis {
    /// Creates an armed detector with the given trip threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    #[must_use]
    pub fn new(threshold: MegaHz) -> Self {
        assert!(threshold.get() > 0.0, "droop threshold must be positive");
        DroopHysteresis {
            threshold,
            armed: true,
        }
    }

    /// Observes one sample of the dip below the rolling mean; returns
    /// `true` iff the alarm trips on this sample.
    #[inline]
    pub fn observe(&mut self, dip: MegaHz) -> bool {
        if self.armed && dip.get() >= self.threshold.get() {
            self.armed = false;
            true
        } else {
            if !self.armed && dip.get() < self.threshold.get() / 2.0 {
                self.armed = true;
            }
            false
        }
    }

    /// Whether the detector is armed (ready to trip).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Force-rearms the detector (used when its core leaves ATM mode and
    /// the excursion bookkeeping restarts from scratch).
    pub fn rearm(&mut self) {
        self.armed = true;
    }
}

/// Per-core droop detector bank used inside timed runs: tracks a rolling
/// mean of each ATM core's frequency and trips hysteretic alarms.
/// `Clone` so a mid-run checkpoint can capture EMA and hysteresis state.
#[derive(Debug, Clone)]
pub(crate) struct DroopDetectorBank {
    /// Per-core (flat index) rolling mean frequency, MHz.
    ema: Vec<f64>,
    /// Per-core hysteresis comparator.
    detectors: Vec<DroopHysteresis>,
}

impl DroopDetectorBank {
    /// Builds the bank over the current core frequencies.
    pub(crate) fn new(threshold: MegaHz, procs: &[Processor]) -> Self {
        let mut ema = Vec::new();
        for p in procs {
            for core in p.cores() {
                ema.push(core.frequency().get());
            }
        }
        let n = ema.len();
        DroopDetectorBank {
            ema,
            detectors: vec![DroopHysteresis::new(threshold); n],
        }
    }

    /// Observes one tick's frequencies; returns any alarms that tripped.
    pub(crate) fn observe(&mut self, procs: &[Processor], now: Nanos) -> Vec<ChipEvent> {
        let mut alarms = Vec::new();
        let mut slot = 0;
        for p in procs {
            for core in p.cores() {
                let f = core.frequency().get();
                if core.mode() == crate::MarginMode::Atm && f > 0.0 {
                    let dip = self.ema[slot] - f;
                    // A clock above its rolling mean is a zero dip: the
                    // comparator only sees non-negative excursions.
                    if self.detectors[slot].observe(MegaHz::new(dip.max(0.0))) {
                        alarms.push(ChipEvent::Droop(DroopAlarm {
                            core: core.id(),
                            dip: MegaHz::new(dip),
                            at: now,
                        }));
                    }
                    self.ema[slot] += EMA_ALPHA * (f - self.ema[slot]);
                } else {
                    // Non-ATM cores have no loop to respond; track their
                    // frequency so a later mode switch starts fresh.
                    self.ema[slot] = f;
                    self.detectors[slot].rearm();
                }
                slot += 1;
            }
        }
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureKind;
    use proptest::prelude::*;

    #[test]
    fn display_names_the_core() {
        let alarm = ChipEvent::Droop(DroopAlarm {
            core: CoreId::new(0, 3),
            dip: MegaHz::new(40.0),
            at: Nanos::new(500.0),
        });
        assert!(alarm.to_string().contains("P0C3"));
        let failure = ChipEvent::Failure(FailureEvent {
            core: CoreId::new(1, 1),
            kind: FailureKind::SystemCrash,
            at: Nanos::new(10.0),
        });
        assert!(failure.to_string().contains("crash"));
    }

    #[test]
    fn hysteresis_trips_once_per_excursion() {
        let mut det = DroopHysteresis::new(MegaHz::new(25.0));
        // Excursion: rise past threshold, wiggle, recover.
        let dips = [0.0, 10.0, 26.0, 30.0, 27.0, 20.0, 13.0, 12.0, 5.0, 0.0];
        let alarms: usize = dips
            .iter()
            .filter(|&&d| det.observe(MegaHz::new(d)))
            .count();
        assert_eq!(alarms, 1);
        assert!(det.is_armed());
    }

    #[test]
    fn hysteresis_half_threshold_rearm_boundary() {
        let mut det = DroopHysteresis::new(MegaHz::new(20.0));
        assert!(det.observe(MegaHz::new(20.0))); // trips at exactly threshold
        assert!(!det.observe(MegaHz::new(10.0))); // exactly half: NOT below, stays disarmed
        assert!(!det.is_armed());
        assert!(!det.observe(MegaHz::new(9.999))); // below half: re-arms
        assert!(det.is_armed());
        assert!(det.observe(MegaHz::new(20.0))); // next excursion trips
    }

    // A waveform that never recovers below half threshold after tripping
    // can alarm at most once, no matter how wild it is.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn no_realarm_without_half_recovery(
            dips in proptest::collection::vec(0.0f64..200.0, 1..200),
        ) {
            let threshold = 25.0;
            let mut det = DroopHysteresis::new(MegaHz::new(threshold));
            let mut tripped = false;
            for &d in &dips {
                // Clamp the waveform so that once tripped it never dips
                // below half threshold again.
                let d = if tripped { d.max(threshold / 2.0) } else { d };
                let fired = det.observe(MegaHz::new(d));
                if fired {
                    prop_assert!(!tripped, "re-alarmed without half-threshold recovery");
                    tripped = true;
                }
            }
        }

        /// Across an arbitrary dip waveform, the number of alarms equals
        /// the number of excursions: transitions into the at-or-above
        /// threshold region from the armed state, where arming happens
        /// only strictly below half threshold.
        #[test]
        fn exactly_one_alarm_per_excursion(
            dips in proptest::collection::vec(0.0f64..200.0, 1..300),
        ) {
            let threshold = 25.0;
            let mut det = DroopHysteresis::new(MegaHz::new(threshold));
            // Reference count via an explicit excursion scan.
            let mut armed = true;
            let mut expected = 0usize;
            let mut fired = 0usize;
            for &d in &dips {
                if armed && d >= threshold {
                    expected += 1;
                    armed = false;
                } else if !armed && d < threshold / 2.0 {
                    armed = true;
                }
                if det.observe(MegaHz::new(d)) {
                    fired += 1;
                }
            }
            prop_assert_eq!(fired, expected);
        }

        /// The detector's armed state is a pure function of the waveform
        /// prefix: replaying the same waveform yields the same alarms.
        #[test]
        fn hysteresis_is_deterministic(
            dips in proptest::collection::vec(0.0f64..100.0, 1..100),
        ) {
            let run = |dips: &[f64]| {
                let mut det = DroopHysteresis::new(MegaHz::new(25.0));
                dips.iter().map(|&d| det.observe(MegaHz::new(d))).collect::<Vec<_>>()
            };
            prop_assert_eq!(run(&dips), run(&dips));
        }
    }
}
