//! Chip-level event subscription.
//!
//! Management layers above the chip (the ATM manager, the serving layer)
//! need to *react* to things the hardware surfaces asynchronously: timing
//! failures and deep droop responses. On the paper's machines these arrive
//! as service-processor interrupts and EPOW-style alerts; here the
//! [`System`](crate::System) keeps an event log that a subscriber drains
//! between runs via [`System::drain_events`](crate::System::drain_events).
//!
//! Two event sources exist:
//!
//! * **failures** — every [`FailureEvent`] a run aborts on is also logged;
//! * **droop alarms** — opt-in via
//!   [`System::set_droop_alarm`](crate::System::set_droop_alarm): while an
//!   ATM core's clock dips more than the threshold below its rolling mean
//!   (the loop's visible response to a di/dt droop), a [`DroopAlarm`] is
//!   logged once per excursion (hysteretic re-arm at half the threshold).

use std::fmt;

use atm_units::{CoreId, MegaHz, Nanos};
use serde::{Deserialize, Serialize};

use crate::failure::FailureEvent;
use crate::processor::Processor;

/// A deep droop response observed on one core: the ATM loop pulled the
/// clock `dip` below the core's rolling mean frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroopAlarm {
    /// The core whose loop responded.
    pub core: CoreId,
    /// How far below the rolling mean the clock dipped when the alarm
    /// tripped.
    pub dip: MegaHz,
    /// Simulation time of the alarm, from trial start.
    pub at: Nanos,
}

impl fmt::Display for DroopAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "droop alarm on {}: -{} at {}",
            self.core, self.dip, self.at
        )
    }
}

/// An asynchronous chip event a subscriber can react to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChipEvent {
    /// A timing violation escaped the loop (the run aborted on it).
    Failure(FailureEvent),
    /// A core's loop rode out a deep droop (frequency dip past the
    /// subscribed threshold).
    Droop(DroopAlarm),
}

impl fmt::Display for ChipEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipEvent::Failure(e) => write!(f, "{e}"),
            ChipEvent::Droop(a) => write!(f, "{a}"),
        }
    }
}

/// EMA weight per tick for the rolling mean frequency (a ~1 µs window at
/// the 50 ns tick — long against single droops, short against mode and
/// load changes).
const EMA_ALPHA: f64 = 0.05;

/// Per-core droop detector bank used inside timed runs: tracks a rolling
/// mean of each ATM core's frequency and trips hysteretic alarms.
#[derive(Debug)]
pub(crate) struct DroopDetectorBank {
    threshold: MegaHz,
    /// Per-core (flat index) rolling mean frequency, MHz.
    ema: Vec<f64>,
    /// Whether the detector is armed (re-arms at half threshold).
    armed: Vec<bool>,
}

impl DroopDetectorBank {
    /// Builds the bank over the current core frequencies.
    pub(crate) fn new(threshold: MegaHz, procs: &[Processor]) -> Self {
        let mut ema = Vec::new();
        for p in procs {
            for core in p.cores() {
                ema.push(core.frequency().get());
            }
        }
        let n = ema.len();
        DroopDetectorBank {
            threshold,
            ema,
            armed: vec![true; n],
        }
    }

    /// Observes one tick's frequencies; returns any alarms that tripped.
    pub(crate) fn observe(&mut self, procs: &[Processor], now: Nanos) -> Vec<ChipEvent> {
        let mut alarms = Vec::new();
        let mut slot = 0;
        for p in procs {
            for core in p.cores() {
                let f = core.frequency().get();
                if core.mode() == crate::MarginMode::Atm && f > 0.0 {
                    let dip = self.ema[slot] - f;
                    if self.armed[slot] && dip >= self.threshold.get() {
                        self.armed[slot] = false;
                        alarms.push(ChipEvent::Droop(DroopAlarm {
                            core: core.id(),
                            dip: MegaHz::new(dip),
                            at: now,
                        }));
                    } else if !self.armed[slot] && dip < self.threshold.get() / 2.0 {
                        self.armed[slot] = true;
                    }
                    self.ema[slot] += EMA_ALPHA * (f - self.ema[slot]);
                } else {
                    // Non-ATM cores have no loop to respond; track their
                    // frequency so a later mode switch starts fresh.
                    self.ema[slot] = f;
                    self.armed[slot] = true;
                }
                slot += 1;
            }
        }
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureKind;

    #[test]
    fn display_names_the_core() {
        let alarm = ChipEvent::Droop(DroopAlarm {
            core: CoreId::new(0, 3),
            dip: MegaHz::new(40.0),
            at: Nanos::new(500.0),
        });
        assert!(alarm.to_string().contains("P0C3"));
        let failure = ChipEvent::Failure(FailureEvent {
            core: CoreId::new(1, 1),
            kind: FailureKind::SystemCrash,
            at: Nanos::new(10.0),
        });
        assert!(failure.to_string().contains("crash"));
    }
}
