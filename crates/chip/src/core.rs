//! One simulated core: silicon + CPMs + ATM loop + workload.

use atm_cpm::{CoreCpmSet, CpmConfigError, CpmReading, CpmUnit, CPMS_PER_CORE, READOUT_QUANTUM};
use atm_dpll::{AtmLoop, AtmLoopConfig};
use atm_pdn::DroopProcess;
use atm_silicon::CoreSilicon;
use atm_telemetry::{CpmReading as TelemetryCpm, Recorder, TelemetryEvent};
use atm_units::{Celsius, CoreId, MegaHz, Nanos, Picos, Volts};
use atm_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::failure::FailureKind;
use crate::faults::CoreFaultLine;
use crate::mode::MarginMode;
use crate::report::CoreReport;

/// Floor below which the model never lets an effective voltage fall
/// (droops are bounded far above the 0.55 V threshold in reality).
const V_FLOOR: Volts = Volts::new_const(0.80);

/// Residual switching activity of a core whose instruction issue is
/// throttled to one out of every ~128 cycles (clocks and caches still
/// toggle).
const STARVED_ACTIVITY: f64 = 0.08;

/// The delivered voltage a freshly built (or baseline-reset) core assumes
/// before its first tick.
const V_INIT: Volts = Volts::new_const(1.25);

/// Half-width of a band certificate's voltage box, volts (±2.5 mV).
const CERT_BOX_V: f64 = 2.5e-3;

/// Half-width of a band certificate's temperature box, °C.
const CERT_BOX_T: f64 = 0.5;

/// Fast ticks a certificate must have served for its successor to be
/// granted immediately when delivered conditions leave the box.
const CERT_MIN_USES: u32 = 2;

/// Slow uncovered ticks between certification attempts when the previous
/// certificate was unproductive (conditions moving faster than the box),
/// so a core that never settles does not pay the corner evaluations every
/// tick.
const CERT_BACKOFF: u32 = 8;

/// Relative padding applied to certified delay bounds. The bracketing
/// arguments behind a certificate are exact-arithmetic facts (convexity,
/// monotone rounding), but the handful of floating-point operations that
/// evaluate the bounds each contribute up to an ulp of slack. Padding the
/// bound endpoints outward by 1 part in 10⁹ — six orders of magnitude
/// above the accumulated ulp scale, five below the readout quantum —
/// restores a rigorous bracket at a negligible cost in certificate
/// tightness.
const CERT_PAD: f64 = 1e-9;

/// Certified bounds on the real-path delay over a `(voltage,
/// temperature)` box, independent of the control loop's state.
///
/// The alpha-power delay law is separable: `d = d0 · F(v) · G(t)`, where
/// `F` is the voltage term — convex and decreasing — and `G` is the
/// affine temperature term (see
/// [`AlphaPowerLaw`](atm_silicon::AlphaPowerLaw)). A certificate models
/// `F` over `[v_lo, v_hi]` by its chord `s0 + s1·v`: convexity puts the
/// true term at or below the chord everywhere in the interval, and the
/// chord-minus-term deviation — concave, zero at both endpoints — is
/// bounded by twice its midpoint value. `G` is bracketed by its values at
/// `t_lo` and `t_hi`. Three `powf` evaluations at grant time therefore
/// buy, for every tick inside the box, two-multiply bounds on the exact
/// delay the tick would have computed, tight to the curvature of `F` over
/// a few millivolts (≲ 0.01 ps) rather than to its full swing.
///
/// Because every downstream quantity of a tick is a monotone image of the
/// delay under rounding-monotone operations, those bounds transfer:
///
/// - each CPM's occupied time `inserted + delay × mimic_ratio` is
///   monotone in the delay, so the worst-CPM occupied time — and with it
///   the worst margin `period − occupied` — is bracketed;
/// - the failure bound `delay × (1 + coverage_gap)` is bracketed from
///   above, so a period clearing it provably cannot trip the failure
///   check (and therefore cannot consume failure randomness).
///
/// On a tick with no droop and no injected surge whose margin bounds fall
/// in the *same* readout quantum `k`, the quantized worst reading is
/// fully determined: `k` units, no violation. The loop step is a pure
/// function of that pair, so feeding it a synthesized mid-band reading
/// replays the bit-identical DPLL trajectory without evaluating the delay
/// law. This covers not only `Hold` equilibrium but entire
/// slew-up/slew-down recovery ramps between droops, which is where a
/// stressed loop spends most of its ticks.
/// One CPM unit fixed as the worst (envelope-dominant) unit for a whole
/// certificate: its occupied time `inserted + delay × ratio` attains the
/// five-unit maximum at both extremes of the certified delay range, and —
/// occupied times being affine in the delay — therefore everywhere in
/// between. `c_hi`/`c_lo` fold the padded `d0`, the temperature-term
/// range and the unit's mimic ratio into single multipliers of the
/// voltage-term bound, so the fast path bounds the worst occupied time in
/// two fused multiply-adds instead of a five-unit loop.
#[derive(Debug, Clone, Copy)]
struct DominantCpm {
    inserted: f64,
    c_hi: f64,
    c_lo: f64,
}

#[derive(Debug, Clone, Copy)]
struct BandCert {
    v_lo: f64,
    v_hi: f64,
    t_lo: f64,
    t_hi: f64,
    /// Chord (secant) model of the voltage term over `[v_lo, v_hi]`:
    /// `F(v) ∈ [s0 + s1·v − dev, s0 + s1·v]`.
    s0: f64,
    s1: f64,
    dev: f64,
    /// A period at or above `fail_mul × (s0 + s1·v)` provably cannot
    /// fail: folds the padded `d0`, the upper temperature term and
    /// `(1 + coverage_gap)` over the voltage-term chord.
    fail_mul: f64,
    /// The envelope-dominant CPM unit (see [`DominantCpm`]).
    dom: DominantCpm,
}

impl BandCert {
    fn covers(&self, v: Volts, t: Celsius) -> bool {
        v.get() >= self.v_lo && v.get() <= self.v_hi && t.get() >= self.t_lo && t.get() <= self.t_hi
    }
}

/// One core of the simulated system.
///
/// A core owns its manufactured silicon, its five-CPM set (with the
/// current fine-tuning reduction), its ATM control loop, the droop process
/// of its assigned workload, and its telemetry accumulators.
///
/// Cores are driven by their [`Processor`](crate::Processor); the public
/// surface is what the management layer uses: program a CPM reduction,
/// assign a workload, choose a margin mode, read telemetry.
#[derive(Debug, Clone)]
pub struct Core {
    id: CoreId,
    silicon: CoreSilicon,
    /// The real path's nominal delay as manufactured — the fixed point
    /// silicon drift scales from, so drift is absolute, not compounding.
    pristine_d0: Picos,
    cpms: CoreCpmSet,
    atm: AtmLoop,
    mode: MarginMode,
    static_freq: MegaHz,
    workload: Workload,
    smt_threads: usize,
    issue_throttle: Option<u16>,
    droop: DroopProcess,
    rng: StdRng,
    last_voltage: Volts,
    /// Memoized per-unit CPM inserted delays (pure function of the chain
    /// and the programmed reduction; rebuilt by [`Core::set_reduction`]).
    inserted_cache: [Picos; CPMS_PER_CORE],
    /// Whether the stride fast path may engage on this core.
    stride_enabled: bool,
    /// Active band certificate, if one has been granted since the last
    /// configuration change.
    cert: Option<BandCert>,
    /// Fast ticks served by the active certificate (productivity signal
    /// for the recertification policy).
    cert_uses: u32,
    /// Slow quiescent ticks outside certificate coverage since the last
    /// certification (back-off counter).
    cert_wait: u32,
    /// Lifetime count of ticks served by the stride fast path
    /// (diagnostic; not part of any report).
    fast_ticks: u64,
    /// Bumped by every configuration mutator; lets the processor detect
    /// schedule changes with one integer read per core instead of
    /// re-deriving its per-tick invariants from workload state.
    config_epoch: u64,
    /// Memoized [`Core::activity`] — a pure function of mode, workload,
    /// SMT and throttle, all of which funnel through
    /// [`Core::invalidate_stride`], where the cache is refreshed.
    activity_cache: f64,
    /// Lifetime count of ATM-mode ticks on which the CPM readout was lost
    /// (sensor dropout faults): the loop held its last command because no
    /// sample arrived. A staleness signal for the margin supervisor.
    cpm_stale_ticks: u64,
    // Telemetry accumulators.
    busy_time: Nanos,
    freq_integral_mhz_ns: f64,
    energy_w_ns: f64,
    min_freq: MegaHz,
    max_freq: MegaHz,
    violations_at_reset: u64,
}

impl Core {
    /// Assembles a core. `droop_seed` and `rng_seed` give the core its own
    /// deterministic random streams.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: CoreId,
        silicon: CoreSilicon,
        cpms: CoreCpmSet,
        loop_config: AtmLoopConfig,
        static_freq: MegaHz,
        droop_seed: u64,
        rng_seed: u64,
    ) -> Self {
        let workload = Workload::idle();
        let droop = DroopProcess::new(*workload.didt(), droop_seed);
        let atm = AtmLoop::new(loop_config, static_freq);
        let inserted_cache = cpms.inserted_delays(&silicon);
        let pristine_d0 = silicon.real_path().d0();
        let mut core = Core {
            id,
            silicon,
            pristine_d0,
            cpms,
            atm,
            inserted_cache,
            stride_enabled: true,
            cert: None,
            cert_uses: 0,
            cert_wait: 0,
            fast_ticks: 0,
            config_epoch: 0,
            activity_cache: 0.0,
            cpm_stale_ticks: 0,
            mode: MarginMode::Static,
            static_freq,
            workload,
            smt_threads: 1,
            issue_throttle: None,
            droop,
            rng: StdRng::seed_from_u64(rng_seed),
            last_voltage: V_INIT,
            busy_time: Nanos::ZERO,
            freq_integral_mhz_ns: 0.0,
            energy_w_ns: 0.0,
            min_freq: MegaHz::new(f64::MAX / 1e6),
            max_freq: MegaHz::ZERO,
            violations_at_reset: 0,
        };
        core.activity_cache = core.compute_activity();
        core
    }

    /// This core's identity.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The core's manufactured silicon description.
    #[must_use]
    pub fn silicon(&self) -> &CoreSilicon {
        &self.silicon
    }

    /// The core's CPM set (presets and current reduction).
    #[must_use]
    pub fn cpms(&self) -> &CoreCpmSet {
        &self.cpms
    }

    /// The core's margin mode.
    #[must_use]
    pub fn mode(&self) -> MarginMode {
        self.mode
    }

    /// Sets the margin mode. Switching into ATM re-locks the DPLL at the
    /// static frequency and lets the loop float from there.
    pub fn set_mode(&mut self, mode: MarginMode) {
        self.mode = mode;
        if mode == MarginMode::Atm {
            self.atm.relock(self.static_freq);
        }
        self.invalidate_stride();
    }

    /// The frequency the core runs at in [`MarginMode::Static`].
    #[must_use]
    pub fn static_freq(&self) -> MegaHz {
        self.static_freq
    }

    /// Changes the static-margin frequency (a chip-level p-state change).
    /// An active ATM loop is re-locked from the new point.
    pub fn set_static_freq(&mut self, f: MegaHz) {
        self.static_freq = f;
        if self.mode == MarginMode::Atm {
            self.atm.relock(f);
        }
        self.invalidate_stride();
    }

    /// The workload currently scheduled on this core.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Schedules one thread of `workload` on this core (replacing any
    /// previous assignment).
    pub fn assign(&mut self, workload: Workload) {
        self.assign_smt(workload, 1);
    }

    /// Schedules `threads` SMT copies of `workload` on this core (POWER7+
    /// supports 4-way SMT). More threads raise switching activity
    /// (sublinearly, per the workload's SMT gain) and amplify its droop
    /// transients slightly.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is not in `1..=4`.
    pub fn assign_smt(&mut self, workload: Workload, threads: usize) {
        assert!((1..=4).contains(&threads), "SMT is 4-way, got {threads}");
        let didt = workload.didt().amplified(1.0 + 0.05 * (threads - 1) as f64);
        self.droop.set_params(didt);
        self.smt_threads = threads;
        self.workload = workload;
        self.invalidate_stride();
    }

    /// The number of SMT threads currently scheduled.
    #[must_use]
    pub fn smt_threads(&self) -> usize {
        self.smt_threads
    }

    /// Enables periodic instruction-issue throttling with the given period
    /// in ticks (`None` disables it).
    ///
    /// The paper's voltage virus "repeatedly and synchronously throttles
    /// all cores' instruction issue rate" while daxpy threads run: the
    /// core alternates half-periods of full issue and starved issue, so
    /// its average activity drops while every phase edge produces a large
    /// synchronized current swing. When several cores throttle in phase,
    /// the processor injects the resulting chip-wide di/dt surge (see
    /// [`Processor`](crate::Processor)).
    ///
    /// # Panics
    ///
    /// Panics if a period of 0 or 1 ticks is requested (no room for two
    /// phases).
    pub fn set_issue_throttle(&mut self, period_ticks: Option<u16>) {
        if let Some(p) = period_ticks {
            assert!(p >= 2, "throttle period must span at least two ticks");
        }
        self.issue_throttle = period_ticks;
        self.invalidate_stride();
    }

    /// The issue-throttle period, if throttling is enabled.
    #[must_use]
    pub fn issue_throttle(&self) -> Option<u16> {
        self.issue_throttle
    }

    /// The activity swing released at each throttle phase edge (zero when
    /// not throttling): full SMT-scaled activity minus the starved floor.
    #[must_use]
    pub(crate) fn throttle_swing(&self) -> f64 {
        if self.issue_throttle.is_some() && !self.is_gated() {
            (self.unthrottled_activity() - STARVED_ACTIVITY).max(0.0)
        } else {
            0.0
        }
    }

    fn unthrottled_activity(&self) -> f64 {
        (self.workload.activity() * self.workload.smt_throughput_gain(self.smt_threads)).min(1.5)
    }

    /// Programs the fine-tuning CPM delay reduction (the paper's service
    /// processor command).
    ///
    /// # Errors
    ///
    /// Returns [`CpmConfigError::ReductionTooLarge`] if `steps` exceeds
    /// the core's smallest CPM preset.
    pub fn set_reduction(&mut self, steps: usize) -> Result<(), CpmConfigError> {
        self.cpms.set_reduction(steps)?;
        self.invalidate_stride();
        self.inserted_cache = self.cpms.inserted_delays(&self.silicon);
        Ok(())
    }

    /// The current CPM delay reduction in steps.
    #[must_use]
    pub fn reduction(&self) -> usize {
        self.cpms.reduction()
    }

    /// Sets the core's silicon drift: the real critical path's nominal
    /// delay becomes `pristine × (1 + ppm/10⁶)`. The CPM synthetic paths
    /// (mimic-ratio fractions of the real path) age along with it.
    ///
    /// Drift is *absolute*: the factor always applies to the manufactured
    /// delay, so calling this every epoch with a growing schedule never
    /// compounds. A no-op call (same ppm as last time) leaves the stride
    /// certificate and configuration epoch untouched.
    pub fn apply_drift(&mut self, ppm: u64) {
        let d0 = Picos::new(self.pristine_d0.get() * (1.0 + ppm as f64 * 1e-6));
        if d0 == self.silicon.real_path().d0() {
            return;
        }
        let path = self.silicon.real_path().with_d0(d0);
        self.silicon = self.silicon.clone().with_real_path(path);
        self.invalidate_stride();
        self.inserted_cache = self.cpms.inserted_delays(&self.silicon);
    }

    /// The current clock frequency.
    #[must_use]
    pub fn frequency(&self) -> MegaHz {
        match self.mode {
            MarginMode::Static => self.static_freq,
            MarginMode::Fixed(f) => f,
            MarginMode::Atm => self.atm.frequency(),
            MarginMode::Gated => MegaHz::ZERO,
        }
    }

    /// Switching activity presented to the power model (SMT-scaled,
    /// saturating at the power model's 1.5 ceiling; averaged over the
    /// throttle duty cycle when issue throttling is active). Memoized —
    /// the value only changes through configuration mutators.
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.activity_cache
    }

    fn compute_activity(&self) -> f64 {
        if self.mode == MarginMode::Gated {
            return 0.0;
        }
        let full = self.unthrottled_activity();
        if self.issue_throttle.is_some() {
            // Half the period at full issue, half starved.
            (full + STARVED_ACTIVITY) / 2.0
        } else {
            full
        }
    }

    /// Whether the core is power-gated.
    #[must_use]
    pub fn is_gated(&self) -> bool {
        self.mode == MarginMode::Gated
    }

    /// The voltage delivered to the core on the previous tick.
    #[must_use]
    pub fn last_voltage(&self) -> Volts {
        self.last_voltage
    }

    /// Warm-starts the ATM loop at its equilibrium for conditions `(v, t)`
    /// so short trials measure steady-state behaviour instead of the
    /// initial lock transient.
    pub fn warm_start(&mut self, v: Volts, t: Celsius) {
        self.invalidate_stride();
        // Belt-and-braces: actuator faults are applied just-in-time around
        // each loop step and cleared right after, so none can be live here;
        // clearing again makes warm starts unconditionally fault-free.
        self.atm.set_actuator_fault(None);
        self.last_voltage = v;
        if self.mode == MarginMode::Atm {
            let period = self.cpms.equilibrium_period(
                &self.silicon,
                v,
                t,
                self.atm.config().threshold_time(),
            );
            self.atm.relock(period.frequency());
        }
    }

    /// Restarts both of the core's random streams (droop events and
    /// failure sampling) from the given seeds, as if the core had just
    /// been constructed with them. Deterministic replay primitive for the
    /// characterization engine: a trial preceded by a stream reseed is
    /// independent of whatever ran on the core before.
    pub fn reseed_streams(&mut self, droop_seed: u64, rng_seed: u64) {
        self.invalidate_stride();
        self.droop.reseed(droop_seed);
        self.rng = StdRng::seed_from_u64(rng_seed);
    }

    /// Resets the core's *dynamic* state — delivered voltage and telemetry
    /// accumulators — to the just-constructed baseline. Programmed
    /// configuration (margin mode, workload, SMT, CPM reduction, static
    /// frequency, throttle) is left untouched; random streams are reseeded
    /// separately via [`Core::reseed_streams`].
    pub fn reset_baseline(&mut self) {
        self.invalidate_stride();
        self.last_voltage = V_INIT;
        self.reset_stats();
    }

    /// Enables or disables the stride fast path on this core. Disabling it
    /// forces every tick through the full evaluation path; results are
    /// byte-identical either way (the certificate only licenses skipping
    /// work whose outcome is already proven), so this exists for A/B
    /// verification and debugging, not correctness.
    pub fn set_stride(&mut self, enabled: bool) {
        self.stride_enabled = enabled;
        if !enabled {
            self.invalidate_stride();
        }
    }

    /// Whether the stride fast path may engage on this core.
    #[must_use]
    pub fn stride_enabled(&self) -> bool {
        self.stride_enabled
    }

    /// Lifetime count of ticks this core served via the stride fast path.
    /// Diagnostic for benchmarks and tests; never part of a report, and
    /// always zero when stride is disabled or the run is recorded.
    #[must_use]
    pub fn stride_fast_ticks(&self) -> u64 {
        self.fast_ticks
    }

    /// Lifetime count of ATM-mode ticks on which a sensor-dropout fault
    /// swallowed the CPM readout (the loop saw no sample and held). The
    /// margin supervisor watches this counter's growth as a staleness
    /// signal.
    #[must_use]
    pub fn cpm_stale_ticks(&self) -> u64 {
        self.cpm_stale_ticks
    }

    /// Drops any band certificate, resets the certification counters,
    /// bumps the configuration epoch and refreshes the memoized activity.
    /// Called by every mutator that could change what a tick computes
    /// (mode, frequency, workload, throttle, CPM reduction, seeds).
    fn invalidate_stride(&mut self) {
        self.cert = None;
        self.cert_uses = 0;
        self.cert_wait = 0;
        self.config_epoch += 1;
        self.activity_cache = self.compute_activity();
    }

    /// Monotone counter of configuration changes, for processor-level
    /// invariant caching.
    pub(crate) fn config_epoch(&self) -> u64 {
        self.config_epoch
    }

    /// Certifies delay-law bounds over the box
    /// `(v ± CERT_BOX_V, t ± CERT_BOX_T)`: a chord model of the convex
    /// voltage term plus the endpoint range of the affine temperature
    /// term (see [`BandCert`]). Returns `None` only when the box would
    /// dip to the droop floor (where `floor_voltage` stops being the
    /// identity, breaking the monotone bracket).
    fn certify_band(&self, v: Volts, t: Celsius) -> Option<BandCert> {
        let (v_lo, v_hi) = (v.get() - CERT_BOX_V, v.get() + CERT_BOX_V);
        let (t_lo, t_hi) = (t.get() - CERT_BOX_T, t.get() + CERT_BOX_T);
        if v_lo <= V_FLOOR.get() {
            return None;
        }
        let path = self.silicon.real_path();
        // Chord through the voltage term's endpoints. Convexity puts the
        // term at or below the chord; the deviation below is concave and
        // vanishes at both endpoints, so twice its midpoint value bounds
        // it everywhere in the interval.
        let f_lo = path.voltage_term(Volts::new(v_lo));
        let f_hi = path.voltage_term(Volts::new(v_hi));
        let v_mid = 0.5 * (v_lo + v_hi);
        let f_mid = path.voltage_term(Volts::new(v_mid));
        let s1 = (f_hi - f_lo) / (v_hi - v_lo);
        let s0 = f_lo - s1 * v_lo;
        let dev = 2.0 * (s0 + s1 * v_mid - f_mid).max(0.0) + f_mid * CERT_PAD;
        // The affine temperature term is spanned by its endpoint values.
        let g_a = path.temp_term(Celsius::new(t_lo));
        let g_b = path.temp_term(Celsius::new(t_hi));
        let g_lo = g_a.min(g_b) * (1.0 - CERT_PAD);
        let g_hi = g_a.max(g_b) * (1.0 + CERT_PAD);
        if g_lo <= 0.0 {
            return None;
        }
        let d0 = path.d0().get();
        let d0_lo = d0 * (1.0 - CERT_PAD);
        let d0_hi = d0 * (1.0 + CERT_PAD);
        let gap = self.silicon.coverage_gap(self.workload.path_stress());
        // Fix the worst CPM for the whole box: occupied times are affine
        // in the delay, so a unit that attains the five-unit maximum at
        // both extremes of the certified delay range attains it at every
        // delay in between. (An ulp-level mistie at an extreme picks a
        // unit within an ulp of the true maximum, which the padding
        // absorbs.) A box whose delay range has no single dominant unit
        // is not certified; the next attempt, at different conditions,
        // usually is.
        let base_min = d0_lo * ((f_hi - dev) * g_lo);
        let base_max = d0_hi * (f_lo * g_hi);
        let argmax = |base: f64| -> usize {
            let mut best = 0;
            let mut best_occ = f64::NEG_INFINITY;
            for unit in CpmUnit::ALL {
                let occ = self.inserted_cache[unit.index()].get()
                    + base * self.silicon.mimic_ratio(unit.index());
                if occ > best_occ {
                    best_occ = occ;
                    best = unit.index();
                }
            }
            best
        };
        let dom = argmax(base_min);
        if dom != argmax(base_max) {
            return None;
        }
        let ratio = self.silicon.mimic_ratio(dom);
        Some(BandCert {
            v_lo,
            v_hi,
            t_lo,
            t_hi,
            s0,
            s1,
            dev,
            fail_mul: d0_hi * g_hi * ((1.0 + gap) * (1.0 + CERT_PAD)),
            dom: DominantCpm {
                inserted: self.inserted_cache[dom].get(),
                c_hi: d0_hi * g_hi * ratio,
                c_lo: d0_lo * g_lo * ratio,
            },
        })
    }

    /// Clears telemetry accumulators.
    pub fn reset_stats(&mut self) {
        self.busy_time = Nanos::ZERO;
        self.freq_integral_mhz_ns = 0.0;
        self.energy_w_ns = 0.0;
        self.min_freq = MegaHz::new(f64::MAX / 1e6);
        self.max_freq = MegaHz::ZERO;
        self.violations_at_reset = self.atm.violations();
    }

    /// Accumulates this core's energy over one tick (called by the
    /// processor, which owns the power model).
    pub(crate) fn record_power(&mut self, power: atm_units::Watts, dt: Nanos) {
        self.energy_w_ns += power.get() * dt.get();
    }

    /// Advances the core one tick at delivered DC voltage `v_dc`, die
    /// temperature `t`, with droop magnitudes scaled by `droop_amplify`
    /// (> 1 only for synchronized stressmarks). Returns the failure kind if
    /// an uncaught timing violation occurred, when `check_failures` is on.
    /// `injected` is an optional externally-generated droop (the chip-wide
    /// surge of synchronized issue throttling) as `(seen mV, unseen mV)`;
    /// it merges with any droop the core's own workload produced this tick
    /// (coincident droops overlap rather than stack).
    /// `fault` is this core's armed fault line, if a fault-injection hook
    /// is driving the run: load-step bursts merge into the injected droop,
    /// sensor faults rewrite (or drop) the CPM readout before the loop
    /// consumes it, and actuator faults filter the loop's slews for the
    /// tick. The stride fast path never engages while a fault line is
    /// present.
    /// Recording rides along as the generic `rec`: when it is enabled,
    /// the CPM readout and ATM loop step of an ATM-mode tick become
    /// [`atm_telemetry::CpmReading`] / [`atm_telemetry::DpllStep`] events
    /// and the loop's per-action counters are bumped. Pass
    /// [`atm_telemetry::NullRecorder`] for the unrecorded (zero-overhead)
    /// path — the simulated physics are identical either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tick_recorded<R: Recorder>(
        &mut self,
        v_dc: Volts,
        t: Celsius,
        dt: Nanos,
        droop_amplify: f64,
        injected: Option<(f64, f64)>,
        fault: Option<&CoreFaultLine>,
        check_failures: bool,
        rec: &mut R,
    ) -> Option<FailureKind> {
        self.last_voltage = v_dc;
        let freq = self.frequency();
        // Telemetry.
        self.busy_time += dt;
        self.freq_integral_mhz_ns += freq.get() * dt.get();
        if freq.get() > 0.0 {
            self.min_freq = self.min_freq.min(freq);
            self.max_freq = self.max_freq.max(freq);
        }

        if self.mode != MarginMode::Atm {
            // Static-margin and gated cores are guaranteed correct by the
            // built-in guardband; nothing else to simulate.
            return None;
        }

        let event = self.droop.sample_tick(dt);
        // An injected load-step burst merges into the external surge slot
        // (coincident disturbances overlap rather than stack, like the
        // throttle surge itself).
        let injected = match fault.and_then(|l| l.load_step) {
            Some((step, _)) => {
                let (step_seen, step_unseen) = step.split();
                Some(match injected {
                    Some((seen, unseen)) => (seen.max(step_seen), unseen.max(step_unseen)),
                    None => (step_seen, step_unseen),
                })
            }
            None => injected,
        };
        let quiescent_inputs = event.is_none() && injected.is_none();

        // Stride fast path: with no droop and no injected surge this tick,
        // a live certificate covering the delivered conditions bounds the
        // worst margin without evaluating the delay law. If the period
        // clears the certified failure floor (no failure, no RNG draw) and
        // both margin bounds land in the same readout quantum `k`, the
        // measurement's outcome is fully determined: `k` units, no
        // violation. The loop step only consumes that pair, so driving it
        // with a synthesized mid-band reading replays the bit-identical
        // DPLL trajectory. Ticks whose bounds straddle a quantum edge fall
        // through to the exact path; recorded runs always take the full
        // path so CPM/DPLL events stream out.
        if quiescent_inputs && self.stride_enabled && fault.is_none() && !rec.enabled() {
            if let Some(cert) = &self.cert {
                if cert.covers(v_dc, t) {
                    let s = cert.s0 + cert.s1 * v_dc.get();
                    let period = freq.period().get();
                    if period >= cert.fail_mul * s {
                        let occ_hi = cert.dom.inserted + cert.dom.c_hi * s;
                        let occ_lo = cert.dom.inserted + cert.dom.c_lo * (s - cert.dev);
                        let m_lo = period - occ_hi;
                        if m_lo > 0.0 {
                            let quantum = READOUT_QUANTUM.get();
                            let k = (m_lo / quantum).floor();
                            if k == ((period - occ_lo) / quantum).floor() {
                                self.cert_uses = self.cert_uses.saturating_add(1);
                                self.fast_ticks += 1;
                                let margin = Picos::new((k + 0.5) * quantum);
                                let reading = CpmReading::quantize(CpmUnit::FixedPoint, margin);
                                self.atm.step_recorded(reading, self.id, rec);
                                return None;
                            }
                        }
                    }
                }
            }
        }

        let (mut seen_mv, mut unseen_mv) = match event {
            Some(e) => {
                let m = e.magnitude.get() * droop_amplify;
                let u = e.unseen.get() * droop_amplify;
                (m - u, u)
            }
            None => (0.0, 0.0),
        };
        if let Some((inj_seen, inj_unseen)) = injected {
            seen_mv = seen_mv.max(inj_seen);
            unseen_mv = unseen_mv.max(inj_unseen);
        }

        let period = freq.period();

        // The loop measures with the *seen* droop portion applied. The
        // delay at the measurement point is computed first so the failure
        // check below can reuse it when both see the same voltage (the
        // common no-droop tick) — `real_path_delay` is pure, so evaluation
        // order cannot change any bit of either result.
        let v_meas = floor_voltage(v_dc, seen_mv);
        let base_delay = self.silicon.real_path_delay(v_meas, t);

        // Failure check first: the violating cycle happens at the clock
        // the droop interrupted, before the loop can respond.
        let mut failure = None;
        if check_failures {
            // Only the *unseen* droop portion threatens correctness: the
            // seen part is compensated by the loop within its response
            // window (modeled in the measurement below).
            let v_check = floor_voltage(v_dc, unseen_mv);
            let gap = self.silicon.coverage_gap(self.workload.path_stress());
            let d_check = if v_check == v_meas {
                base_delay
            } else {
                self.silicon.real_path_delay(v_check, t)
            };
            let d_real = d_check * (1.0 + gap);
            if period < d_real {
                failure = Some(FailureKind::sample(self.rng.gen_range(0.0..1.0)));
            }
        }

        let mut reading = self.cpms.measure_from_inserted(
            &self.silicon,
            period,
            base_delay,
            &self.inserted_cache,
        );
        if let Some((sensor_fault, _)) = fault.and_then(|l| l.cpm) {
            match sensor_fault.apply(reading) {
                Some(faulted) => reading = faulted,
                None => {
                    // Dropout: the loop never sees a sample this tick — no
                    // telemetry record, no loop step, frequency held. The
                    // physics above (droop, failure check) already ran.
                    self.cpm_stale_ticks += 1;
                    return failure;
                }
            }
        }
        if rec.enabled() {
            rec.record(TelemetryEvent::Cpm(TelemetryCpm {
                t: rec.now(),
                core: self.id,
                units: reading.units(),
                violation: reading.is_violation(),
            }));
        }
        match fault.and_then(|l| l.dpll) {
            Some((actuator_fault, _)) => {
                // Just-in-time application: the fault is live only for this
                // step and cleared immediately after, so it cannot leak
                // into fault-free ticks or across runs.
                self.atm.set_actuator_fault(Some(actuator_fault));
                self.atm.step_recorded(reading, self.id, rec);
                self.atm.set_actuator_fault(None);
            }
            None => {
                self.atm.step_recorded(reading, self.id, rec);
            }
        }

        // Certificate maintenance (unrecorded runs only — recorded runs
        // must stream every tick's events, so striding never pays there).
        // The certificate is pure physics over its (v, t) box — droops,
        // surges, failures and loop actions do not invalidate it — so it
        // is kept across non-quiescent ticks and renewed only when
        // delivered conditions are outside the box: immediately if its
        // predecessor earned its cost in fast ticks, on a back-off cadence
        // if conditions are moving too fast for the box to stick.
        if self.stride_enabled
            && !rec.enabled()
            && quiescent_inputs
            && fault.is_none()
            && failure.is_none()
        {
            let covered = self.cert.as_ref().is_some_and(|c| c.covers(v_dc, t));
            if !covered {
                self.cert_wait = self.cert_wait.saturating_add(1);
                let productive = self.cert.is_some() && self.cert_uses >= CERT_MIN_USES;
                if productive || self.cert_wait >= CERT_BACKOFF {
                    self.cert = self.certify_band(v_dc, t);
                    self.cert_uses = 0;
                    self.cert_wait = 0;
                }
            }
        }

        failure
    }

    /// Telemetry snapshot since the last [`Core::reset_stats`].
    #[must_use]
    pub fn report(&self) -> CoreReport {
        let mean = if self.busy_time.get() > 0.0 {
            MegaHz::new(self.freq_integral_mhz_ns / self.busy_time.get())
        } else {
            self.frequency()
        };
        let min = if self.max_freq == MegaHz::ZERO {
            self.frequency()
        } else {
            self.min_freq
        };
        let max = if self.max_freq == MegaHz::ZERO {
            self.frequency()
        } else {
            self.max_freq
        };
        CoreReport {
            core: self.id,
            mode: self.mode,
            workload: self.workload.name().to_owned(),
            reduction: self.cpms.reduction(),
            mean_freq: mean,
            min_freq: min,
            max_freq: max,
            violations: self.atm.violations() - self.violations_at_reset,
            last_voltage: self.last_voltage,
            energy_uj: self.energy_w_ns * 1e-3,
        }
    }
}

fn floor_voltage(v: Volts, drop_mv: f64) -> Volts {
    let dropped = v.get() - drop_mv / 1000.0;
    Volts::new(dropped.max(V_FLOOR.get()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_cpm::CoreCpmSet;
    use atm_silicon::{SiliconFactory, SiliconParams};
    use atm_telemetry::NullRecorder;

    fn core() -> Core {
        let silicon = SiliconFactory::new(SiliconParams::power7_plus(), 42).core(CoreId::new(0, 0));
        let cfg = AtmLoopConfig::power7_plus();
        let cpms = CoreCpmSet::calibrate(
            &silicon,
            Volts::new(1.235),
            Celsius::new(45.0),
            MegaHz::new(4600.0),
            cfg.threshold_time(),
        );
        Core::new(
            CoreId::new(0, 0),
            silicon,
            cpms,
            cfg,
            MegaHz::new(4200.0),
            1,
            2,
        )
    }

    #[test]
    fn static_mode_pins_frequency() {
        let mut c = core();
        assert_eq!(c.frequency(), MegaHz::new(4200.0));
        c.set_mode(MarginMode::Fixed(MegaHz::new(3000.0)));
        assert_eq!(c.frequency(), MegaHz::new(3000.0));
        c.set_mode(MarginMode::Gated);
        assert_eq!(c.frequency(), MegaHz::ZERO);
        assert_eq!(c.activity(), 0.0);
    }

    #[test]
    fn warm_started_atm_runs_near_calibration_target() {
        let mut c = core();
        c.set_mode(MarginMode::Atm);
        c.warm_start(Volts::new(1.235), Celsius::new(45.0));
        let f = c.frequency();
        assert!(f.get() > 4500.0 && f.get() < 4950.0, "warm-start at {f}");
    }

    #[test]
    fn atm_tick_is_stable_at_equilibrium() {
        let mut c = core();
        c.set_mode(MarginMode::Atm);
        let v = Volts::new(1.235);
        let t = Celsius::new(45.0);
        c.warm_start(v, t);
        let f0 = c.frequency();
        for _ in 0..500 {
            let failure = c.tick_recorded(
                v,
                t,
                Nanos::new(50.0),
                1.0,
                None,
                None,
                true,
                &mut NullRecorder,
            );
            assert!(failure.is_none(), "default config must not fail idle");
        }
        let drift = (c.frequency().get() - f0.get()).abs();
        assert!(drift < 60.0, "loop drifted {drift} MHz at equilibrium");
    }

    #[test]
    fn reduction_raises_equilibrium_frequency() {
        let mut c = core();
        c.set_mode(MarginMode::Atm);
        let v = Volts::new(1.235);
        let t = Celsius::new(45.0);
        c.warm_start(v, t);
        let before = c.frequency();
        c.set_reduction(2).unwrap();
        c.warm_start(v, t);
        assert!(c.frequency() > before);
    }

    #[test]
    fn lower_voltage_lowers_equilibrium() {
        let mut c = core();
        c.set_mode(MarginMode::Atm);
        let t = Celsius::new(45.0);
        c.warm_start(Volts::new(1.235), t);
        let high = c.frequency();
        c.warm_start(Volts::new(1.20), t);
        assert!(c.frequency() < high);
    }

    #[test]
    fn excessive_reduction_eventually_fails() {
        let mut c = core();
        c.set_mode(MarginMode::Atm);
        let v = Volts::new(1.235);
        let t = Celsius::new(45.0);
        let max = c.cpms().max_reduction();
        c.set_reduction(max).unwrap();
        c.warm_start(v, t);
        let mut failed = false;
        for _ in 0..5000 {
            if c.tick_recorded(
                v,
                t,
                Nanos::new(50.0),
                1.0,
                None,
                None,
                true,
                &mut NullRecorder,
            )
            .is_some()
            {
                failed = true;
                break;
            }
        }
        assert!(
            failed,
            "removing the entire preset ({max} steps) must violate timing"
        );
    }

    #[test]
    fn telemetry_accumulates() {
        let mut c = core();
        c.set_mode(MarginMode::Atm);
        let v = Volts::new(1.235);
        let t = Celsius::new(45.0);
        c.warm_start(v, t);
        c.reset_stats();
        for _ in 0..100 {
            let _ = c.tick_recorded(
                v,
                t,
                Nanos::new(50.0),
                1.0,
                None,
                None,
                false,
                &mut NullRecorder,
            );
        }
        let r = c.report();
        assert!(r.mean_freq.get() > 4000.0);
        assert!(r.min_freq.get() <= r.mean_freq.get() + 1e-9);
        assert!(r.mean_freq.get() <= r.max_freq.get() + 1e-9);
        assert_eq!(r.core, CoreId::new(0, 0));
    }

    #[test]
    fn assign_swaps_workload_and_droop() {
        let mut c = core();
        let x264 = atm_workloads::by_name("x264").unwrap().clone();
        c.assign(x264);
        assert_eq!(c.workload().name(), "x264");
        assert!((c.activity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn floor_voltage_clamps() {
        assert_eq!(floor_voltage(Volts::new(1.0), 5000.0), V_FLOOR);
        assert!((floor_voltage(Volts::new(1.0), 50.0).get() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn fixed_mode_never_fails() {
        let mut c = core();
        c.set_mode(MarginMode::Fixed(MegaHz::new(4200.0)));
        let max = c.cpms().max_reduction();
        c.set_reduction(max).unwrap();
        for _ in 0..2000 {
            assert!(c
                .tick_recorded(
                    Volts::new(1.20),
                    Celsius::new(60.0),
                    Nanos::new(50.0),
                    1.0,
                    None,
                    None,
                    true,
                    &mut NullRecorder
                )
                .is_none());
        }
    }
}
