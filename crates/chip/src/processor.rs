//! One eight-core processor socket.

use atm_cpm::CoreCpmSet;
use atm_pdn::{PdnModel, PowerModel, ThermalModel};
use atm_silicon::SiliconFactory;
use atm_telemetry::Recorder;
use atm_units::{Celsius, MegaHz, Nanos, ProcId, Watts, CORES_PER_PROC};
use atm_workloads::WorkloadKind;

use crate::config::ChipConfig;
use crate::core::Core;
use crate::failure::{FailureEvent, FailureKind};
use crate::faults::ProcFaults;
use crate::report::ProcReport;

/// Fraction of leakage a power-gated core still draws.
const GATED_LEAKAGE_FRACTION: f64 = 0.1;

/// Rail step per unit of synchronously released switching activity, mV.
const THROTTLE_SURGE_MV_PER_ACTIVITY: f64 = 5.5;

/// Fraction of a throttle-edge surge arriving inside the loop's blind
/// window.
const THROTTLE_SURGE_SHARPNESS: f64 = 0.75;

/// One processor socket: eight cores sharing a VRM rail, power-delivery
/// path and heat sink.
#[derive(Debug, Clone)]
pub struct Processor {
    id: ProcId,
    cores: Vec<Core>,
    pdn: PdnModel,
    power: PowerModel,
    thermal: ThermalModel,
    // Telemetry.
    power_integral_w_ns: f64,
    time: Nanos,
    max_temp: Celsius,
    last_power: Watts,
    tick_index: u64,
    /// Memoized thermal relaxation coefficient, keyed on the exact bits of
    /// the tick length it was computed for (the tick loop's `dt` never
    /// changes mid-run, so this hoists one `exp` per tick).
    alpha_cache: Option<(u64, f64)>,
    /// Memoized schedule invariants `(amplify, total_swing, min throttle
    /// period)`, keyed on the sum of the cores' configuration epochs —
    /// strictly increasing under any mutation, so a match proves the
    /// schedule is unchanged and the scan over workload state can be
    /// skipped.
    invariants_cache: Option<(u64, f64, f64, Option<u16>)>,
}

impl Processor {
    /// Builds socket `id` from the shared configuration and silicon
    /// factory.
    #[must_use]
    pub(crate) fn new(id: ProcId, config: &ChipConfig, factory: &SiliconFactory) -> Self {
        // Calibration conditions: an idle chip (the manufacturer's
        // test-time environment) — roughly 55 W total, ~2 W per core.
        let idle_power = Watts::new(55.0);
        let idle_core = Watts::new(2.0);
        let v_calib = config.pdn.core_voltage(idle_power, idle_core);
        let t_calib = config.thermal.steady_state(idle_power);

        let cores = id
            .cores()
            .map(|core_id| {
                let silicon = factory.core(core_id);
                let cpms = CoreCpmSet::calibrate(
                    &silicon,
                    v_calib,
                    t_calib,
                    config.calibration_target,
                    config.loop_config.threshold_time(),
                );
                let flat = core_id.flat_index() as u64;
                Core::new(
                    core_id,
                    silicon,
                    cpms,
                    config.loop_config,
                    config.pstates.nominal().frequency,
                    config.seed ^ (0xD00D_0000 + flat),
                    config.seed ^ (0xFA11_0000 + flat),
                )
            })
            .collect();

        Processor {
            id,
            cores,
            pdn: config.pdn,
            power: config.power,
            thermal: config.thermal,
            power_integral_w_ns: 0.0,
            time: Nanos::ZERO,
            max_temp: config.thermal.temperature(),
            last_power: Watts::ZERO,
            tick_index: 0,
            alpha_cache: None,
            invariants_cache: None,
        }
    }

    /// The socket identity.
    #[must_use]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The socket's cores in index order.
    #[must_use]
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Mutable access to the socket's cores.
    pub fn cores_mut(&mut self) -> &mut [Core] {
        &mut self.cores
    }

    /// The DC power-delivery model.
    #[must_use]
    pub fn pdn(&self) -> &PdnModel {
        &self.pdn
    }

    /// Commands a new VRM rail voltage for the whole socket (the off-chip
    /// controller's undervolting knob, or part of a chip p-state change).
    pub fn set_rail_voltage(&mut self, setpoint: atm_units::Volts) {
        self.pdn = self.pdn.with_setpoint(setpoint);
    }

    /// Current die temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.thermal.temperature()
    }

    /// Total chip power on the most recent tick.
    #[must_use]
    pub fn last_power(&self) -> Watts {
        self.last_power
    }

    /// Instantaneous total chip power from the cores' current state.
    #[must_use]
    pub fn instantaneous_power(&self) -> Watts {
        let t = self.thermal.temperature();
        let mut total = self.power.uncore();
        for c in &self.cores {
            total += self.core_power(c, t);
        }
        total
    }

    fn core_power(&self, core: &Core, t: Celsius) -> Watts {
        self.core_power_with_term(core, self.power.leakage_temp_term(t))
    }

    /// [`Processor::core_power`] with the leakage temperature term already
    /// evaluated — all eight cores share one die temperature, so the tick
    /// loop computes the term once per socket.
    fn core_power_with_term(&self, core: &Core, temp_term: f64) -> Watts {
        let f = core.frequency();
        let p = if f == MegaHz::ZERO {
            self.power
                .core_leakage_with_term(core.last_voltage(), temp_term)
        } else {
            self.power
                .core_power_with_term(f, core.last_voltage(), temp_term, core.activity())
        };
        if core.is_gated() {
            p * GATED_LEAKAGE_FRACTION
        } else {
            p
        }
    }

    /// The tick-loop invariants that depend only on the programmed
    /// schedule — droop amplification and the issue-throttle swing (the
    /// construction of the paper's voltage virus: simultaneous issue
    /// release across cores is the worst-case aligned current step) —
    /// from a single pass over the cores. Returns `(amplify, total
    /// throttle swing, smallest active throttle period)`.
    ///
    /// Amplification: synchronized stressmarks running on at least half
    /// the socket amplify each other's transients (the largest
    /// sync-amplification among the scheduled workloads, floored at 1).
    ///
    /// Swing and period feed [`Processor::throttle_surge_at`], which
    /// resolves the schedule-independent part — whether the current tick
    /// sits on a phase edge.
    fn schedule_invariants(&self) -> (f64, f64, Option<u16>) {
        let mut sync_cores = 0usize;
        let mut max_sync = 1.0f64;
        let mut total_swing = 0.0;
        let mut period: Option<u16> = None;
        for c in &self.cores {
            let w = c.workload();
            if w.kind() == WorkloadKind::Stressmark && w.sync_amplification() > 1.0 {
                sync_cores += 1;
            }
            max_sync = f64::max(max_sync, w.sync_amplification());
            if let Some(p) = c.issue_throttle() {
                total_swing += c.throttle_swing();
                period = Some(period.map_or(p, |q| q.min(p)));
            }
        }
        let amplify = if sync_cores >= CORES_PER_PROC / 2 {
            max_sync
        } else {
            1.0
        };
        (amplify, total_swing, period)
    }

    /// [`Processor::schedule_invariants`], memoized on the cores'
    /// configuration-epoch sum.
    fn cached_invariants(&mut self) -> (f64, f64, Option<u16>) {
        let epoch: u64 = self.cores.iter().map(Core::config_epoch).sum();
        match self.invariants_cache {
            Some((key, amplify, swing, period)) if key == epoch => (amplify, swing, period),
            _ => {
                let (amplify, swing, period) = self.schedule_invariants();
                self.invariants_cache = Some((epoch, amplify, swing, period));
                (amplify, swing, period)
            }
        }
    }

    /// The chip-wide di/dt surge of synchronized issue throttling, if this
    /// tick sits on a phase edge. All throttled cores share the socket
    /// clock, so their phases align; the edge fires when the shared tick
    /// counter crosses a half-period of the smallest active throttle
    /// period. Each unit of simultaneously released activity steps the
    /// shared rail by ~5.5 mV; three quarters of the edge outruns the
    /// loop. Returns `(seen mV, unseen mV)`, or `None` off-edge.
    fn throttle_surge_at(
        tick_index: u64,
        total_swing: f64,
        period: Option<u16>,
    ) -> Option<(f64, f64)> {
        let p = period?;
        let half = u64::from(p / 2).max(1);
        if !tick_index.is_multiple_of(half) || total_swing <= 0.0 {
            return None;
        }
        let magnitude = THROTTLE_SURGE_MV_PER_ACTIVITY * total_swing;
        let unseen = magnitude * THROTTLE_SURGE_SHARPNESS;
        Some((magnitude - unseen, unseen))
    }

    /// Advances the socket one tick; returns the first core failure, if
    /// any. Telemetry rides along as the generic `rec` (see
    /// [`Core::tick_recorded`]); pass [`atm_telemetry::NullRecorder`] for
    /// the unrecorded path — the simulated physics are identical either
    /// way. `faults` is this socket's armed fault view for the tick, if a
    /// fault-injection hook is driving the run: a rail transient sags the
    /// delivered voltage of every core, per-core fault lines pass down to
    /// [`Core::tick_recorded`], and forced failures fire after the core
    /// loop (a naturally occurring failure on any core takes precedence
    /// over a forced one).
    pub(crate) fn tick_recorded<R: Recorder>(
        &mut self,
        dt: Nanos,
        check_failures: bool,
        now: Nanos,
        faults: Option<ProcFaults<'_>>,
        rec: &mut R,
    ) -> Option<FailureEvent> {
        let t = self.thermal.temperature();
        // One pass computes every core's power and the chip total the
        // instantaneous-power sum would produce (same addends, same
        // order), sharing one leakage temperature term across the die.
        let temp_term = self.power.leakage_temp_term(t);
        let mut core_powers = [Watts::ZERO; CORES_PER_PROC];
        let mut chip_power = self.power.uncore();
        for (p, c) in core_powers.iter_mut().zip(&self.cores) {
            *p = self.core_power_with_term(c, temp_term);
            chip_power += *p;
        }
        let alpha = match self.alpha_cache {
            Some((key, a)) if key == dt.get().to_bits() => a,
            _ => {
                let a = self.thermal.alpha(dt);
                self.alpha_cache = Some((dt.get().to_bits(), a));
                a
            }
        };
        self.thermal.step_with_alpha(chip_power, alpha);
        self.last_power = chip_power;
        self.power_integral_w_ns += chip_power.get() * dt.get();
        self.time += dt;
        self.max_temp = self.max_temp.max(self.thermal.temperature());

        let (amplify, total_swing, throttle_period) = self.cached_invariants();
        let surge = Self::throttle_surge_at(self.tick_index, total_swing, throttle_period);
        let shared_drop = self.pdn.shared_term(chip_power);
        let mut first_failure: Option<(usize, FailureKind)> = None;
        for (i, core) in self.cores.iter_mut().enumerate() {
            let mut v_dc = self
                .pdn
                .core_voltage_from_shared(shared_drop, core_powers[i]);
            let line = match &faults {
                Some(f) => {
                    if let Some(rail) = f.rail {
                        v_dc = rail.apply(v_dc);
                    }
                    Some(&f.lines[i])
                }
                None => None,
            };
            core.record_power(core_powers[i], dt);
            if let Some(kind) =
                core.tick_recorded(v_dc, t, dt, amplify, surge, line, check_failures, rec)
            {
                if first_failure.is_none() {
                    first_failure = Some((i, kind));
                }
            }
        }
        if first_failure.is_none() {
            if let Some(f) = &faults {
                for (i, line) in f.lines.iter().enumerate() {
                    if let Some(kind) = line.force {
                        first_failure = Some((i, kind));
                        break;
                    }
                }
            }
        }
        self.tick_index = self.tick_index.wrapping_add(1);
        first_failure.map(|(i, kind)| FailureEvent {
            core: self.cores[i].id(),
            kind,
            at: now,
        })
    }

    /// Warm-starts every core's loop and settles the thermal state at the
    /// current schedule's steady-state power (three fixed-point sweeps).
    pub(crate) fn warm_start(&mut self) {
        for _ in 0..4 {
            let chip = self.instantaneous_power();
            self.thermal.settle(chip);
            let t = self.thermal.temperature();
            let temp_term = self.power.leakage_temp_term(t);
            let mut core_powers = [Watts::ZERO; CORES_PER_PROC];
            for (p, c) in core_powers.iter_mut().zip(&self.cores) {
                *p = self.core_power_with_term(c, temp_term);
            }
            for (core, &p_core) in self.cores.iter_mut().zip(&core_powers) {
                let v = self.pdn.core_voltage(chip, p_core);
                core.warm_start(v, t);
            }
        }
        self.last_power = self.instantaneous_power();
    }

    /// Resets the socket's dynamic state to the just-constructed baseline:
    /// the thermal model returns to the configuration's template (its
    /// ambient-start temperature), telemetry and the tick counter clear,
    /// and every core's delivered voltage resets. Programmed configuration
    /// — modes, workloads, reductions, rail setpoint — is left untouched.
    ///
    /// After this call, the socket's next [`Processor::warm_start`] or run
    /// is a pure function of its programmed configuration: no float
    /// residue from earlier trials survives (the warm-start fixed point
    /// always iterates from the same initial voltage and temperature).
    pub(crate) fn reset_baseline(&mut self, config: &ChipConfig) {
        self.thermal = config.thermal;
        self.power_integral_w_ns = 0.0;
        self.time = Nanos::ZERO;
        self.max_temp = config.thermal.temperature();
        self.last_power = Watts::ZERO;
        self.tick_index = 0;
        self.alpha_cache = None;
        self.invariants_cache = None;
        for core in &mut self.cores {
            core.reset_baseline();
        }
    }

    /// Clears telemetry accumulators.
    pub(crate) fn reset_stats(&mut self) {
        self.power_integral_w_ns = 0.0;
        self.time = Nanos::ZERO;
        self.max_temp = self.thermal.temperature();
        for core in &mut self.cores {
            core.reset_stats();
        }
    }

    /// Telemetry snapshot.
    #[must_use]
    pub fn report(&self) -> ProcReport {
        let mean_power = if self.time.get() > 0.0 {
            Watts::new(self.power_integral_w_ns / self.time.get())
        } else {
            self.last_power
        };
        ProcReport {
            mean_power,
            max_temp: self.max_temp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::MarginMode;
    use atm_telemetry::NullRecorder;
    use atm_units::ProcId;
    use atm_workloads::{by_name, voltage_virus};

    fn proc() -> Processor {
        let config = ChipConfig::default();
        let factory = SiliconFactory::new(config.silicon.clone(), config.seed);
        Processor::new(ProcId::new(0), &config, &factory)
    }

    #[test]
    fn has_eight_cores() {
        assert_eq!(proc().cores().len(), 8);
    }

    #[test]
    fn idle_power_plausible() {
        let p = proc();
        let total = p.instantaneous_power();
        assert!(
            total.get() > 40.0 && total.get() < 80.0,
            "idle power {total}"
        );
    }

    #[test]
    fn daxpy_power_near_160w() {
        let mut p = proc();
        let daxpy = by_name("daxpy").unwrap().clone();
        for c in p.cores_mut() {
            c.assign(daxpy.clone());
            c.set_mode(MarginMode::Atm);
        }
        p.warm_start();
        // Let thermal and power interact for a few ms.
        for _ in 0..200 {
            let _ = p.tick_recorded(
                Nanos::new(50_000.0),
                false,
                Nanos::ZERO,
                None,
                &mut NullRecorder,
            );
        }
        let total = p.instantaneous_power();
        assert!(
            total.get() > 135.0 && total.get() < 185.0,
            "8-thread daxpy chip power {total}"
        );
        assert!(p.temperature().get() > 60.0 && p.temperature().get() < 78.0);
    }

    #[test]
    fn droop_amplification_requires_sync_majority() {
        let mut p = proc();
        assert!((p.schedule_invariants().0 - 1.0).abs() < 1e-12);
        let virus = voltage_virus();
        for c in p.cores_mut().iter_mut().take(4) {
            c.assign(virus.clone());
        }
        assert!(p.schedule_invariants().0 > 1.1);
    }

    #[test]
    fn warm_start_reaches_default_atm_band() {
        let mut p = proc();
        for c in p.cores_mut() {
            c.set_mode(MarginMode::Atm);
        }
        p.warm_start();
        for c in p.cores() {
            let f = c.frequency();
            assert!(f.get() > 4450.0 && f.get() < 4950.0, "{} at {f}", c.id());
        }
    }

    #[test]
    fn loaded_cores_run_slower_than_idle() {
        let mut idle = proc();
        for c in idle.cores_mut() {
            c.set_mode(MarginMode::Atm);
        }
        idle.warm_start();
        let f_idle = idle.cores()[0].frequency();

        let mut busy = proc();
        let daxpy = by_name("daxpy").unwrap().clone();
        for c in busy.cores_mut() {
            c.assign(daxpy.clone());
            c.set_mode(MarginMode::Atm);
        }
        busy.warm_start();
        let f_busy = busy.cores()[0].frequency();
        assert!(
            f_busy < f_idle,
            "IR drop must lower loaded frequency: {f_busy} !< {f_idle}"
        );
        // Roughly 100 W * 2 MHz/W = ~200 MHz swing expected.
        let swing = f_idle.get() - f_busy.get();
        assert!((80.0..350.0).contains(&swing), "swing {swing} MHz");
    }
}
