//! Single-focus system shards for parallel characterization.
//!
//! The paper characterizes one core at a time on otherwise-quiesced
//! hardware: the focus core runs in ATM mode while every other core sits
//! idle at static margin. In the simulator this posture makes per-core
//! characterization *exactly* independent — non-ATM cores never advance
//! their random streams ([`Core::tick`](crate::Core) returns early for
//! them), and an idle static core's programmed reduction has no effect on
//! any other core's physics. A worker can therefore characterize its core
//! on a private replica of the system and obtain bit-identical results to
//! a serial walk, provided each trial starts from the same baseline state
//! and random-stream seeds.
//!
//! [`SystemShard`] packages that recipe: a fully-owned [`System`] replica
//! plus the focus core's identity, with [`SystemShard::run_focus_trial`]
//! and [`SystemShard::settle_focus`] implementing the reset → quiesce →
//! reseed → simulate sequence that makes every trial a pure function of
//! its arguments.

use atm_telemetry::NullRecorder;
use atm_units::{CoreId, MegaHz, Nanos};
use atm_workloads::Workload;

use crate::mode::MarginMode;
use crate::system::System;

/// A fully-owned replica of a [`System`] dedicated to characterizing one
/// focus core. Created by [`System::shard`].
#[derive(Debug, Clone)]
pub struct SystemShard {
    system: System,
    focus: CoreId,
}

impl SystemShard {
    /// Wraps an owned system with a focus core.
    #[must_use]
    pub(crate) fn new(system: System, focus: CoreId) -> Self {
        SystemShard { system, focus }
    }

    /// The core this shard characterizes.
    #[must_use]
    pub fn focus(&self) -> CoreId {
        self.focus
    }

    /// The underlying system.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system (for callers composing
    /// postures the canned trial helpers don't cover).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Unwraps the shard back into its system.
    #[must_use]
    pub fn into_system(self) -> System {
        self.system
    }

    /// Resets dynamic state and establishes the characterization posture:
    /// every core idle at static margin, the focus core in ATM mode.
    fn quiesce(&mut self) {
        self.system.reset_baseline();
        self.system.idle_all();
        self.system.set_mode_all(MarginMode::Static);
        self.system.set_mode(self.focus, MarginMode::Atm);
    }

    /// Runs one characterization trial: `workload` on the focus core at
    /// the given CPM delay `reduction`, with the rest of the system idle
    /// at static margin, for `trial` simulated time. Returns whether the
    /// run completed without a timing failure; returns `false` without
    /// simulating if `reduction` exceeds the focus core's preset.
    ///
    /// The trial is a *pure function* of its arguments: the system's
    /// dynamic state is baseline-reset and the focus core's random streams
    /// are restarted from `droop_seed`/`rng_seed` before simulating, so
    /// the same call always yields the same result — the property the
    /// engine's sweep memoization and worker-count independence rest on.
    pub fn run_focus_trial(
        &mut self,
        workload: &Workload,
        reduction: usize,
        trial: Nanos,
        droop_seed: u64,
        rng_seed: u64,
    ) -> bool {
        self.quiesce();
        if self.system.set_reduction(self.focus, reduction).is_err() {
            return false;
        }
        // Assign first (it swaps droop parameters), then pin the streams.
        self.system.assign(self.focus, workload.clone());
        self.system.reseed_core(self.focus, droop_seed, rng_seed);
        self.system.run(trial, &mut NullRecorder).is_ok()
    }

    /// The focus core's ATM equilibrium frequency at `reduction` with the
    /// system otherwise idle at static margin — the droop-free settle
    /// measurement behind Fig. 5 sweeps and Fig. 7's limit frequencies.
    /// Pure function of `reduction` (settling consumes no randomness).
    ///
    /// # Panics
    ///
    /// Panics if `reduction` exceeds the focus core's preset.
    pub fn settle_focus(&mut self, reduction: usize) -> MegaHz {
        self.quiesce();
        self.system
            .set_reduction(self.focus, reduction)
            .expect("settle_focus reduction within the focus core's preset");
        self.system.settle().core(self.focus).mean_freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;
    use atm_workloads::by_name;

    fn shard(core: CoreId) -> SystemShard {
        System::new(ChipConfig::default()).shard(core)
    }

    #[test]
    fn shard_ignores_parent_dynamic_state() {
        let core = CoreId::new(0, 3);
        let mut parent = System::new(ChipConfig::default());
        let fresh = parent.shard(core);
        // Dirty the parent thoroughly.
        parent.set_mode_all(MarginMode::Atm);
        parent.assign_all(&by_name("daxpy").unwrap().clone());
        let _ = parent.run(Nanos::new(20_000.0), &mut NullRecorder);
        let dirty = parent.shard(core);
        assert_eq!(
            fresh.system().core(core).frequency(),
            dirty.system().core(core).frequency()
        );
        assert_eq!(fresh.focus(), dirty.focus());
    }

    #[test]
    fn focus_trial_is_replayable() {
        let core = CoreId::new(1, 2);
        let mut s = shard(core);
        let w = by_name("x264").unwrap().clone();
        let first: Vec<bool> = (0..6)
            .map(|r| s.run_focus_trial(&w, r, Nanos::new(20_000.0), 11, 22))
            .collect();
        // Interleave unrelated work, then replay: bit-identical outcomes.
        let _ = s.run_focus_trial(&w, 9, Nanos::new(20_000.0), 5, 6);
        let replay: Vec<bool> = (0..6)
            .map(|r| s.run_focus_trial(&w, r, Nanos::new(20_000.0), 11, 22))
            .collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn trial_outcome_independent_of_shard_instance() {
        let core = CoreId::new(0, 7);
        let w = by_name("gcc").unwrap().clone();
        let mut a = shard(core);
        let mut b = shard(core);
        // Skew shard b's history before the comparison trial.
        let _ = b.run_focus_trial(&w, 3, Nanos::new(20_000.0), 77, 88);
        for r in 0..5 {
            assert_eq!(
                a.run_focus_trial(&w, r, Nanos::new(20_000.0), 1, 2),
                b.run_focus_trial(&w, r, Nanos::new(20_000.0), 1, 2),
                "reduction {r}"
            );
        }
    }

    #[test]
    fn over_preset_reduction_fails_without_simulating() {
        let core = CoreId::new(0, 0);
        let mut s = shard(core);
        let max = s.system().core(core).cpms().max_reduction();
        assert!(!s.run_focus_trial(&Workload::idle(), max + 1, Nanos::new(1_000.0), 0, 0));
    }

    #[test]
    fn settle_focus_monotone_in_reduction() {
        let core = CoreId::new(1, 5);
        let mut s = shard(core);
        let f0 = s.settle_focus(0);
        let f3 = s.settle_focus(3);
        assert!(f3 > f0, "reduction must raise equilibrium: {f0} !< {f3}");
        // Pure: asking again returns the identical bits.
        assert_eq!(s.settle_focus(3).get().to_bits(), f3.get().to_bits());
    }
}
