//! Per-tick telemetry traces for one observed core.

use atm_units::{MegaHz, Nanos, Volts, Watts};
use serde::{Deserialize, Serialize};

/// One decimated sample of an observed core's state during a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulation time from run start.
    pub t: Nanos,
    /// The core's clock frequency.
    pub freq: MegaHz,
    /// Voltage delivered to the core.
    pub voltage: Volts,
    /// Total chip power of the core's socket.
    pub chip_power: Watts,
}

/// A recorded trace: decimated samples plus capture metadata.
///
/// Produced by [`System::run_traced`](crate::System::run_traced). Useful
/// for inspecting the control loop's droop responses and the IR-drop
/// coupling that the summary telemetry averages away.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<TraceSample>,
    decimation: usize,
}

impl Trace {
    pub(crate) fn new(samples: Vec<TraceSample>, decimation: usize) -> Self {
        Trace {
            samples,
            decimation,
        }
    }

    /// The captured samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// One sample was kept per this many ticks.
    #[must_use]
    pub fn decimation(&self) -> usize {
        self.decimation
    }

    /// Minimum and maximum frequency over the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn freq_range(&self) -> (MegaHz, MegaHz) {
        assert!(!self.samples.is_empty(), "empty trace");
        let mut lo = MegaHz::new(f64::MAX / 1e6);
        let mut hi = MegaHz::ZERO;
        for s in &self.samples {
            lo = lo.min(s.freq);
            hi = hi.max(s.freq);
        }
        (lo, hi)
    }

    /// Number of frequency dips: samples where frequency sits more than
    /// `threshold` below the trace maximum (droop responses in flight).
    #[must_use]
    pub fn dip_count(&self, threshold: MegaHz) -> usize {
        let (_, hi) = self.freq_range();
        self.samples
            .iter()
            .filter(|s| s.freq.get() < hi.get() - threshold.get())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, f: f64) -> TraceSample {
        TraceSample {
            t: Nanos::new(t),
            freq: MegaHz::new(f),
            voltage: Volts::new(1.2),
            chip_power: Watts::new(60.0),
        }
    }

    #[test]
    fn range_and_dips() {
        let trace = Trace::new(
            vec![
                sample(0.0, 4800.0),
                sample(50.0, 4600.0),
                sample(100.0, 4790.0),
            ],
            1,
        );
        let (lo, hi) = trace.freq_range();
        assert_eq!(lo, MegaHz::new(4600.0));
        assert_eq!(hi, MegaHz::new(4800.0));
        assert_eq!(trace.dip_count(MegaHz::new(100.0)), 1);
        assert_eq!(trace.dip_count(MegaHz::new(5.0)), 2);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_has_no_range() {
        let _ = Trace::new(vec![], 1).freq_range();
    }
}
