//! DVFS p-states of the POWER7+ (2.1–4.2 GHz).

use atm_units::{MegaHz, Volts};
use serde::{Deserialize, Serialize};

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// The p-state's nominal frequency.
    pub frequency: MegaHz,
    /// The rail voltage the VRM supplies in this p-state.
    pub voltage: Volts,
}

/// The chip's p-state table, from the 2.1 GHz power-save state to the
/// 4.2 GHz nominal state (the paper's static-margin baseline, where ATM
/// boosts from).
///
/// # Examples
///
/// ```
/// use atm_chip::PStateTable;
/// use atm_units::MegaHz;
///
/// let table = PStateTable::power7_plus();
/// assert_eq!(table.nominal().frequency, MegaHz::new(4200.0));
/// assert_eq!(table.lowest().frequency, MegaHz::new(2100.0));
/// let ps = table.at_or_below(MegaHz::new(3500.0));
/// assert!(ps.frequency <= MegaHz::new(3500.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// The POWER7+ table: eight states from 2100 to 4200 MHz with a linear
    /// voltage ramp from 0.95 V to 1.25 V.
    #[must_use]
    pub fn power7_plus() -> Self {
        let states = (0..8)
            .map(|i| {
                let frac = f64::from(i) / 7.0;
                PState {
                    frequency: MegaHz::new(2100.0 + frac * 2100.0),
                    voltage: Volts::new(0.95 + frac * 0.30),
                }
            })
            .collect();
        PStateTable { states }
    }

    /// Builds a table from explicit states.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or not sorted by ascending frequency.
    #[must_use]
    pub fn from_states(states: Vec<PState>) -> Self {
        assert!(!states.is_empty(), "p-state table cannot be empty");
        assert!(
            states.windows(2).all(|w| w[0].frequency < w[1].frequency),
            "p-states must ascend in frequency"
        );
        PStateTable { states }
    }

    /// All states, ascending in frequency.
    #[must_use]
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// The highest (nominal) p-state — 4.2 GHz / 1.25 V on POWER7+.
    #[must_use]
    pub fn nominal(&self) -> PState {
        *self.states.last().expect("non-empty")
    }

    /// The lowest (power-save) p-state.
    #[must_use]
    pub fn lowest(&self) -> PState {
        self.states[0]
    }

    /// The fastest p-state whose frequency does not exceed `f`; the lowest
    /// state if every state exceeds `f`.
    #[must_use]
    pub fn at_or_below(&self, f: MegaHz) -> PState {
        self.states
            .iter()
            .rev()
            .find(|s| s.frequency <= f)
            .copied()
            .unwrap_or(self.lowest())
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the table is empty (never true for constructed tables).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

impl Default for PStateTable {
    fn default() -> Self {
        PStateTable::power7_plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_spans_paper_range() {
        let t = PStateTable::power7_plus();
        assert_eq!(t.lowest().frequency, MegaHz::new(2100.0));
        assert_eq!(t.nominal().frequency, MegaHz::new(4200.0));
        assert_eq!(t.nominal().voltage, Volts::new(1.25));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn voltage_monotone_with_frequency() {
        let t = PStateTable::power7_plus();
        for w in t.states().windows(2) {
            assert!(w[0].voltage < w[1].voltage);
        }
    }

    #[test]
    fn at_or_below_picks_floor_state() {
        let t = PStateTable::power7_plus();
        let ps = t.at_or_below(MegaHz::new(3000.0));
        assert!(ps.frequency <= MegaHz::new(3000.0));
        // The next state up must exceed the request.
        let idx = t.states().iter().position(|s| s == &ps).unwrap();
        assert!(t.states()[idx + 1].frequency > MegaHz::new(3000.0));
    }

    #[test]
    fn at_or_below_clamps_to_lowest() {
        let t = PStateTable::power7_plus();
        assert_eq!(t.at_or_below(MegaHz::new(100.0)), t.lowest());
    }

    #[test]
    fn at_or_below_exact_match() {
        let t = PStateTable::power7_plus();
        assert_eq!(t.at_or_below(MegaHz::new(4200.0)), t.nominal());
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_states_rejected() {
        let _ = PStateTable::from_states(vec![
            PState {
                frequency: MegaHz::new(4200.0),
                voltage: Volts::new(1.25),
            },
            PState {
                frequency: MegaHz::new(2100.0),
                voltage: Volts::new(0.95),
            },
        ]);
    }
}
