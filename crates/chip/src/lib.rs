//! Two-socket POWER7+-style chip simulator.
//!
//! This crate assembles the substrates — silicon ([`atm_silicon`]), power
//! delivery ([`atm_pdn`]), CPMs ([`atm_cpm`]), the control loop
//! ([`atm_dpll`]) and workload profiles ([`atm_workloads`]) — into a
//! discrete-time simulation of the paper's experimental platform: two
//! eight-core processors, each core with five CPMs feeding a per-core
//! DPLL-based ATM loop, sharing a VRM rail whose IR drop couples every
//! core's frequency to total chip power.
//!
//! The simulator plays the role the physical server plays in the paper:
//! the fine-tuning, characterization and management layers (crate
//! `atm-core`) drive it exclusively through its public API — programming
//! CPM delay reductions, scheduling workloads, running trials, reading
//! telemetry — exactly the operations the authors performed through the
//! service processor and OS.
//!
//! # Examples
//!
//! ```
//! use atm_chip::{ChipConfig, MarginMode, System};
//! use atm_telemetry::NullRecorder;
//! use atm_units::{CoreId, Nanos};
//! use atm_workloads::Workload;
//!
//! let mut sys = System::new(ChipConfig::default());
//! sys.set_mode_all(MarginMode::Atm);
//! let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder); // 20 µs
//! assert!(report.failure.is_none());
//! // Default (preset) ATM clocks every core near 4.6 GHz when idle.
//! for core in &report.cores {
//!     assert!(core.mean_freq.get() > 4_400.0 && core.mean_freq.get() < 4_900.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core;
mod events;
mod failure;
mod faults;
mod mode;
mod processor;
mod pstate;
mod report;
mod shard;
mod system;
mod trace;

pub use config::ChipConfig;
pub use core::Core;
pub use events::{ChipEvent, DroopAlarm, DroopHysteresis};
pub use failure::{FailureEvent, FailureKind};
pub use faults::{FaultAction, FaultHook, NoFaults};
pub use mode::MarginMode;
pub use processor::Processor;
pub use pstate::{PState, PStateTable};
pub use report::{CharactStats, CoreReport, ProcReport, SystemReport};
pub use shard::SystemShard;
pub use system::{RunSession, System, SystemCheckpoint};
pub use trace::{Trace, TraceSample};
