//! Per-core margin operating mode.

use std::fmt;

use atm_units::MegaHz;
use serde::{Deserialize, Serialize};

/// How a core's clock is managed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MarginMode {
    /// Static timing margin: the clock is pinned at a fixed frequency (a
    /// DVFS p-state or a throttled setting) and correctness is guaranteed
    /// by the built-in static guardband. ATM is off. This is the paper's
    /// baseline and also how managed background cores are throttled.
    #[default]
    Static,
    /// Static margin at an explicit fixed frequency (per-core DVFS
    /// throttling; Vdd stays at the chip p-state as POWER7+ shares the
    /// rail across cores).
    Fixed(MegaHz),
    /// Active Timing Margin: the per-core control loop floats the clock
    /// against the CPM readings.
    Atm,
    /// Power-gated: the core is off (management may gate idle cores to
    /// free chip power).
    Gated,
}

impl fmt::Display for MarginMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarginMode::Static => f.write_str("static"),
            MarginMode::Fixed(freq) => write!(f, "fixed@{freq}"),
            MarginMode::Atm => f.write_str("atm"),
            MarginMode::Gated => f.write_str("gated"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_static() {
        assert_eq!(MarginMode::default(), MarginMode::Static);
    }

    #[test]
    fn display() {
        assert_eq!(MarginMode::Atm.to_string(), "atm");
        assert_eq!(
            MarginMode::Fixed(MegaHz::new(3000.0)).to_string(),
            "fixed@3000 MHz"
        );
    }
}
