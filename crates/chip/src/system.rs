//! The two-socket server.

use atm_cpm::CpmConfigError;
use atm_silicon::{DriftModel, SiliconFactory};
use atm_telemetry::{DroopEvent, NullRecorder, Recorder, TelemetryEvent};
use atm_units::{CoreId, Nanos, ProcId};
use atm_workloads::Workload;

use crate::config::ChipConfig;
use crate::core::Core;
use crate::failure::FailureEvent;
use crate::faults::{FaultHook, FaultState, NoFaults};
use crate::mode::MarginMode;
use crate::processor::Processor;
use crate::report::SystemReport;

/// The simulated two-socket POWER7+ server.
///
/// This is the management layer's whole world: it programs CPM reductions,
/// schedules workloads, switches margin modes, and runs timed trials —
/// the same operations the paper performs through the service processor
/// and the operating system.
///
/// # Examples
///
/// ```
/// use atm_chip::{ChipConfig, MarginMode, System};
/// use atm_telemetry::NullRecorder;
/// use atm_units::{CoreId, Nanos};
/// use atm_workloads::by_name;
///
/// let mut sys = System::new(ChipConfig::default());
/// let core = CoreId::new(0, 0);
/// sys.set_mode(core, MarginMode::Atm);
/// sys.assign(core, by_name("gcc").unwrap().clone());
/// let report = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
/// assert!(report.is_ok());
/// assert!(report.core(core).mean_freq.get() > 4_200.0);
/// ```
#[derive(Debug, Clone)]
pub struct System {
    config: ChipConfig,
    procs: Vec<Processor>,
    /// Droop-alarm subscription threshold (frequency dip below the rolling
    /// mean), if a subscriber asked for droop events.
    droop_alarm: Option<atm_units::MegaHz>,
    /// Chip events accumulated by timed runs until a subscriber drains
    /// them.
    events: Vec<crate::ChipEvent>,
    /// Whether cores may take the stride fast path (see
    /// [`System::set_stride`]).
    stride: bool,
}

/// The per-run state of the tick loop, shared by every flavour of timed
/// run ([`System::run`], [`System::run_traced`],
/// [`System::run_chunked`]): the loop's constants, the monotonic clock,
/// and the counters the run reports at the end. One engine is started per
/// warm-started run and advanced to one or more time targets. `Clone` so
/// a [`RunSession`] checkpoint can capture the loop mid-run.
#[derive(Debug, Clone)]
struct RunEngine {
    dt: Nanos,
    check: bool,
    detectors: Option<crate::events::DroopDetectorBank>,
    now: Nanos,
    ticks: u64,
    droop_alarms: u64,
    failure: Option<FailureEvent>,
    /// Armed fault lines with remaining durations (always idle unless a
    /// fault-injection hook drives the run).
    faults: FaultState,
}

impl RunEngine {
    /// Ticks the system until the clock reaches `target` (or a failure
    /// aborts the run). `hook` is consulted once per tick while armed and
    /// its injections are applied through the engine's fault state — with
    /// the disarmed [`NoFaults`] hook the loop is bit-identical to a
    /// hook-less one. `observe` is called once per tick after the physics
    /// and droop detectors, before the clock advances — the traced run's
    /// sampling hook.
    fn advance_to<R: Recorder, F: FaultHook>(
        &mut self,
        sys: &mut System,
        target: Nanos,
        hook: &mut F,
        rec: &mut R,
        observe: &mut impl FnMut(&System, u64, Nanos),
    ) {
        if self.failure.is_some() {
            return; // A prior chunk already aborted the run.
        }
        while self.now.get() < target.get() {
            let armed = hook.armed();
            if armed {
                self.faults.begin_tick(hook, self.now, self.ticks);
            }
            // An armed hook routes every core through the exact path (so
            // injections are always simulated, never certified away);
            // lingering timed faults drain to expiry even if the hook
            // disarmed between runs.
            let faulting = armed || self.faults.is_active();
            let mut new_failure = None;
            for (pi, p) in sys.procs.iter_mut().enumerate() {
                let view = if faulting {
                    Some(self.faults.proc_view(pi))
                } else {
                    None
                };
                if let Some(f) = p.tick_recorded(self.dt, self.check, self.now, view, rec) {
                    new_failure.get_or_insert(f);
                }
            }
            if faulting {
                self.faults.end_tick();
            }
            if let Some(f) = new_failure {
                if self.failure.is_none() {
                    sys.events.push(crate::ChipEvent::Failure(f));
                }
                self.failure.get_or_insert(f);
            }
            if let Some(bank) = self.detectors.as_mut() {
                let alarms = bank.observe(&sys.procs, self.now);
                if rec.enabled() {
                    for alarm in &alarms {
                        if let crate::ChipEvent::Droop(a) = alarm {
                            self.droop_alarms += 1;
                            rec.record(TelemetryEvent::Droop(DroopEvent {
                                t: rec.now(),
                                core: a.core,
                                dip: a.dip,
                            }));
                        }
                    }
                } else {
                    self.droop_alarms += alarms.len() as u64;
                }
                sys.events.extend(alarms);
            }
            observe(sys, self.ticks, self.now);
            self.now += self.dt;
            self.ticks += 1;
            rec.advance(self.dt.get().round() as u64);
            if self.failure.is_some() {
                break;
            }
        }
    }

    /// Bumps the run's summary counters on `rec` (once per run, however
    /// many chunks it advanced through).
    fn finish<R: Recorder>(&self, rec: &mut R) {
        rec.incr("chip.ticks", self.ticks);
        if self.droop_alarms > 0 {
            rec.incr("chip.droop_alarms", self.droop_alarms);
        }
        if self.failure.is_some() {
            rec.incr("chip.failures", 1);
        }
    }
}

impl System {
    /// Builds the server from `config`: mints silicon, calibrates every
    /// core's CPM presets to the uniform default-ATM target, and leaves
    /// every core in static-margin mode running idle.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`ChipConfig::validate`]).
    #[must_use]
    pub fn new(config: ChipConfig) -> Self {
        config.validate();
        let factory = SiliconFactory::new(config.silicon.clone(), config.seed);
        let procs = ProcId::all()
            .map(|p| Processor::new(p, &config, &factory))
            .collect();
        System {
            config,
            procs,
            droop_alarm: None,
            events: Vec::new(),
            stride: true,
        }
    }

    /// Enables or disables the stride fast path on every core. When a
    /// core's ATM loop is provably pinned at `Hold` (see the chip crate's
    /// hold-certificate machinery), the fast path skips the per-tick delay
    /// evaluations and loop step whose outcome the certificate already
    /// proves; reports are byte-identical either way, so this knob exists
    /// for A/B verification, not correctness. On by default.
    pub fn set_stride(&mut self, enabled: bool) {
        self.stride = enabled;
        for id in CoreId::all() {
            self.core_mut(id).set_stride(enabled);
        }
    }

    /// Subscribes to droop alarms: while an ATM core's clock dips more
    /// than `threshold` below its rolling mean during a timed run, a
    /// [`crate::DroopAlarm`] event is logged (once per excursion). Pass
    /// `None` to unsubscribe.
    pub fn set_droop_alarm(&mut self, threshold: Option<atm_units::MegaHz>) {
        self.droop_alarm = threshold;
    }

    /// The chip events (failures, droop alarms) accumulated since the last
    /// [`System::drain_events`], in occurrence order.
    #[must_use]
    pub fn events(&self) -> &[crate::ChipEvent] {
        &self.events
    }

    /// Removes and returns all accumulated chip events.
    pub fn drain_events(&mut self) -> Vec<crate::ChipEvent> {
        std::mem::take(&mut self.events)
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The processor sockets.
    #[must_use]
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// The core `id`.
    #[must_use]
    pub fn core(&self, id: CoreId) -> &Core {
        &self.procs[id.proc_id().index()].cores()[id.core_index()]
    }

    /// Mutable access to core `id`.
    pub fn core_mut(&mut self, id: CoreId) -> &mut Core {
        &mut self.procs[id.proc_id().index()].cores_mut()[id.core_index()]
    }

    /// Programs core `id`'s CPM delay reduction.
    ///
    /// # Errors
    ///
    /// Returns [`CpmConfigError::ReductionTooLarge`] if the reduction
    /// exceeds the core's preset.
    pub fn set_reduction(&mut self, id: CoreId, steps: usize) -> Result<(), CpmConfigError> {
        self.core_mut(id).set_reduction(steps)
    }

    /// Schedules `workload` on core `id`.
    pub fn assign(&mut self, id: CoreId, workload: Workload) {
        self.core_mut(id).assign(workload);
    }

    /// Schedules `threads` SMT copies of `workload` on core `id`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is not in `1..=4`.
    pub fn assign_smt(&mut self, id: CoreId, workload: Workload, threads: usize) {
        self.core_mut(id).assign_smt(workload, threads);
    }

    /// Enables or disables periodic instruction-issue throttling on core
    /// `id` (the mechanism behind the paper's constructed voltage virus).
    ///
    /// # Panics
    ///
    /// Panics if a period below two ticks is requested.
    pub fn set_issue_throttle(&mut self, id: CoreId, period_ticks: Option<u16>) {
        self.core_mut(id).set_issue_throttle(period_ticks);
    }

    /// Schedules `workload` on every core of the system.
    pub fn assign_all(&mut self, workload: &Workload) {
        for id in CoreId::all() {
            self.core_mut(id).assign(workload.clone());
        }
    }

    /// Returns every core to the idle workload.
    pub fn idle_all(&mut self) {
        self.assign_all(&Workload::idle());
    }

    /// Sets core `id`'s margin mode.
    pub fn set_mode(&mut self, id: CoreId, mode: MarginMode) {
        self.core_mut(id).set_mode(mode);
    }

    /// Sets every core's margin mode.
    pub fn set_mode_all(&mut self, mode: MarginMode) {
        for id in CoreId::all() {
            self.core_mut(id).set_mode(mode);
        }
    }

    /// Commands a new VRM rail voltage for one socket — the undervolting
    /// knob of the off-chip voltage controller ([`atm_dpll::AtmPolicy`]).
    pub fn set_rail_voltage(&mut self, proc: ProcId, setpoint: atm_units::Volts) {
        self.procs[proc.index()].set_rail_voltage(setpoint);
    }

    /// Performs a coarse-grained chip DVFS p-state change on one socket:
    /// re-points the VRM rail and the static-margin frequency of all its
    /// cores (POWER7+ adjusts p-states from 2.1 to 4.2 GHz by controlling
    /// Vdd with a static timing margin).
    pub fn set_chip_pstate(&mut self, proc: ProcId, pstate: crate::PState) {
        self.procs[proc.index()].set_rail_voltage(pstate.voltage);
        for core in proc.cores() {
            self.core_mut(core).set_static_freq(pstate.frequency);
        }
    }

    /// Resets the whole system's *dynamic* state — thermal trajectories,
    /// delivered voltages, telemetry, tick counters — to the
    /// just-constructed baseline, leaving all programmed configuration
    /// (modes, workloads, reductions, rail setpoints) in place.
    ///
    /// Because [`System::run`] and [`System::settle`] warm-start from the
    /// current dynamic state, two identically-programmed systems can
    /// diverge by tiny float residues if their histories differ. Calling
    /// `reset_baseline` first removes the history: the subsequent run is a
    /// pure function of the programmed configuration (plus the cores'
    /// random streams, which [`System::reseed_core`] pins separately).
    pub fn reset_baseline(&mut self) {
        let config = &self.config;
        for p in &mut self.procs {
            p.reset_baseline(config);
        }
    }

    /// Restarts core `id`'s random streams (droop events and failure
    /// sampling) from explicit seeds. Together with
    /// [`System::reset_baseline`] this makes a trial on `id` replayable
    /// bit-for-bit regardless of what the system simulated before.
    pub fn reseed_core(&mut self, id: CoreId, droop_seed: u64, rng_seed: u64) {
        self.core_mut(id).reseed_streams(droop_seed, rng_seed);
    }

    /// Applies silicon drift for `epoch` to every core: each real critical
    /// path (and its CPM mimics) slows by the model's scheduled ppm. Call
    /// at epoch boundaries only — drift mid-trial would break the run
    /// engine's cached invariants contract.
    ///
    /// The schedule is absolute (see [`Core::apply_drift`]), so skipping
    /// or repeating an epoch's call cannot compound the drift.
    pub fn apply_drift(&mut self, drift: &DriftModel, epoch: u64) {
        for p in &mut self.procs {
            for core in p.cores_mut() {
                let ppm = drift.delay_ppm(core.id().flat_index(), epoch);
                core.apply_drift(ppm);
            }
        }
    }

    /// Mints a fresh single-focus shard of this system for characterizing
    /// `focus`: a complete, independently-owned replica built from this
    /// system's configuration (same seed, same silicon), packaged with the
    /// focus core's identity. Shards are what the parallel
    /// characterization engine hands to its workers — each worker owns its
    /// shard outright, so no synchronization touches the simulation.
    ///
    /// The shard is built from the *configuration*, not from this system's
    /// current dynamic state: two shards of the same system are always
    /// identical, no matter what the parent has simulated.
    #[must_use]
    pub fn shard(&self, focus: CoreId) -> crate::SystemShard {
        let mut sys = System::new(self.config.clone());
        sys.set_stride(self.stride);
        crate::SystemShard::new(sys, focus)
    }

    /// Warm-starts the loops, resets telemetry, and builds the run
    /// engine: the shared preamble of every timed run.
    fn start_engine(&mut self) -> RunEngine {
        for p in &mut self.procs {
            p.warm_start();
            p.reset_stats();
        }
        RunEngine {
            dt: self.config.tick,
            check: self.config.failure_checking,
            detectors: self
                .droop_alarm
                .map(|th| crate::events::DroopDetectorBank::new(th, &self.procs)),
            now: Nanos::ZERO,
            ticks: 0,
            droop_alarms: 0,
            failure: None,
            faults: FaultState::new(),
        }
    }

    /// Snapshots the run's telemetry into a report (the shared epilogue
    /// of every timed run and of [`System::settle`]).
    fn assemble_report(&self, duration: Nanos, failure: Option<FailureEvent>) -> SystemReport {
        SystemReport {
            duration,
            cores: CoreId::all().map(|id| self.core(id).report()).collect(),
            procs: self.procs.iter().map(Processor::report).collect(),
            failure,
        }
    }

    /// Runs the system for `duration`, returning telemetry. The run aborts
    /// at the first timing failure (as a crash would on real hardware).
    ///
    /// Loops are warm-started at their current schedule's equilibrium and
    /// telemetry is reset, so the report reflects steady-state behaviour.
    ///
    /// Recording goes through `rec`: each tick advances the monotonic
    /// clock by the tick length, per-core CPM/DPLL activity is recorded
    /// (see the DPLL crate's per-action counters), droop alarms become
    /// [`atm_telemetry::DroopEvent`]s, and the run bumps `chip.ticks`,
    /// `chip.failures` and `chip.droop_alarms`. Pass
    /// [`&mut NullRecorder`](NullRecorder) for the zero-overhead
    /// unrecorded path — recording only observes, so the returned report
    /// is byte-identical whichever recorder is passed.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    pub fn run<R: Recorder>(&mut self, duration: Nanos, rec: &mut R) -> SystemReport {
        self.run_faulted(duration, &mut NoFaults, rec)
    }

    /// [`System::run`] with a fault-injection hook: `hook` is consulted
    /// once per tick while armed and its [`crate::FaultAction`]s are
    /// applied to the simulated hardware (see [`crate::FaultHook`]).
    /// Driving a run with the disarmed [`NoFaults`] hook is bit-identical
    /// to [`System::run`]. While the hook is armed, every core takes the
    /// exact evaluation path — the stride fast path never certifies away
    /// an injected fault.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    pub fn run_faulted<R: Recorder, F: FaultHook>(
        &mut self,
        duration: Nanos,
        hook: &mut F,
        rec: &mut R,
    ) -> SystemReport {
        assert!(duration.get() > 0.0, "duration must be positive");
        hook.on_trial_start();
        let mut engine = self.start_engine();
        engine.advance_to(self, duration, hook, rec, &mut |_, _, _| {});
        engine.finish(rec);
        self.assemble_report(engine.now, engine.failure)
    }

    /// Runs the system for the sum of `chunks` as **one** trial — a single
    /// warm start, one continuous tick sequence, one report — advancing
    /// the clock through each chunk boundary in turn. Because the tick
    /// loop compares the clock against each accumulated target exactly as
    /// [`System::run`] compares it against the total, the returned report
    /// is byte-identical to `run(chunks[0] + chunks[1] + …)`: chunking is
    /// observable only to the caller, which regains control at each
    /// boundary. (Two separate `run` calls are *not* equivalent — each
    /// re-warm-starts and resets telemetry.)
    ///
    /// The run's summary counters are bumped into `rec` once at the end,
    /// not per chunk; pass [`&mut NullRecorder`](NullRecorder) for the
    /// unrecorded path.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty or any chunk is not positive.
    pub fn run_chunked<R: Recorder>(&mut self, chunks: &[Nanos], rec: &mut R) -> SystemReport {
        assert!(!chunks.is_empty(), "at least one chunk is required");
        let mut engine = self.start_engine();
        let mut target = Nanos::ZERO;
        for &chunk in chunks {
            assert!(chunk.get() > 0.0, "chunk durations must be positive");
            target += chunk;
            engine.advance_to(self, target, &mut NoFaults, rec, &mut |_, _, _| {});
        }
        engine.finish(rec);
        self.assemble_report(engine.now, engine.failure)
    }

    /// Like [`System::run`], additionally recording a decimated per-tick
    /// trace of `observed` (one sample every `decimation` ticks).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive or `decimation` is zero.
    pub fn run_traced(
        &mut self,
        duration: Nanos,
        observed: CoreId,
        decimation: usize,
    ) -> (SystemReport, crate::Trace) {
        assert!(duration.get() > 0.0, "duration must be positive");
        assert!(decimation > 0, "decimation must be positive");
        let mut engine = self.start_engine();
        let mut samples = Vec::new();
        engine.advance_to(
            self,
            duration,
            &mut NoFaults,
            &mut NullRecorder,
            &mut |sys, tick_index, now| {
                if (tick_index as usize).is_multiple_of(decimation) {
                    let core = sys.core(observed);
                    samples.push(crate::TraceSample {
                        t: now,
                        freq: core.frequency(),
                        voltage: core.last_voltage(),
                        chip_power: sys.procs[observed.proc_id().index()].last_power(),
                    });
                }
            },
        );
        let report = self.assemble_report(engine.now, engine.failure);
        (report, crate::Trace::new(samples, decimation))
    }

    /// Computes the schedule's steady-state equilibrium (loops warm-started,
    /// thermal settled) and reports it *without* advancing time or checking
    /// failures. Much faster than [`System::run`]; used by predictors and
    /// frequency-only experiments on already-validated configurations.
    pub fn settle(&mut self) -> SystemReport {
        for p in &mut self.procs {
            p.warm_start();
            p.reset_stats();
        }
        self.assemble_report(Nanos::ZERO, None)
    }

    /// Captures the system's complete state — per-core voltages, thermal
    /// trajectories, CPM/DPLL loop state, programmed configuration, drift
    /// offsets, pending events — as a value. Restoring the checkpoint
    /// with [`System::restore`] and re-running is byte-identical to
    /// re-running from the original, because every cache the simulator
    /// keeps is itself part of the cloned state.
    #[must_use]
    pub fn checkpoint(&self) -> SystemCheckpoint {
        SystemCheckpoint {
            state: self.clone(),
        }
    }

    /// Restores the complete state captured by [`System::checkpoint`],
    /// discarding everything simulated since.
    pub fn restore(&mut self, cp: &SystemCheckpoint) {
        *self = cp.state.clone();
    }

    /// Warm-starts a resumable timed run. The session owns the tick
    /// loop's mid-run state (clock, tick counter, armed faults, droop
    /// detectors) and advances it in caller-controlled steps:
    ///
    /// ```
    /// use atm_chip::{ChipConfig, System};
    /// use atm_telemetry::NullRecorder;
    /// use atm_units::Nanos;
    ///
    /// let mut a = System::new(ChipConfig::default());
    /// let mut b = a.clone();
    ///
    /// // One continuous run...
    /// let full = a.run(Nanos::new(4_000.0), &mut NullRecorder);
    ///
    /// // ...equals a session advanced in two steps with a checkpoint
    /// // and restore in between, byte for byte.
    /// let mut session = b.begin_run();
    /// session.advance_to(&mut b, Nanos::new(1_500.0), &mut NullRecorder);
    /// let (sys_cp, run_cp) = (b.checkpoint(), session.checkpoint());
    /// b.restore(&sys_cp);
    /// session.restore(&run_cp);
    /// session.advance_to(&mut b, Nanos::new(4_000.0), &mut NullRecorder);
    /// let resumed = session.finish(&b, &mut NullRecorder);
    /// assert_eq!(format!("{full:?}"), format!("{resumed:?}"));
    /// ```
    ///
    /// Equivalence with the one-shot runs: `run(T, rec)` is exactly
    /// `begin_run()` + `advance_to(T)` + `finish()`, and
    /// [`System::run_faulted`] additionally calls
    /// [`FaultHook::on_trial_start`] before warm-starting — a session
    /// driving a fault hook must do the same.
    pub fn begin_run(&mut self) -> RunSession {
        RunSession {
            engine: self.start_engine(),
        }
    }
}

/// A complete captured [`System`] state (see [`System::checkpoint`]).
#[derive(Debug, Clone)]
pub struct SystemCheckpoint {
    state: System,
}

/// A resumable timed run over a [`System`] (see [`System::begin_run`]):
/// the mid-run tick-loop state as a first-class, cloneable value, so
/// long campaigns can checkpoint inside a trial, branch what-if replays,
/// and resume — byte-identically to a run that never stopped.
#[derive(Debug, Clone)]
pub struct RunSession {
    engine: RunEngine,
}

impl RunSession {
    /// Advances the run until the clock reaches `target` (or a failure
    /// aborts it), exactly as [`System::run`] would on its way to a
    /// larger total. Calling with a `target` at or before the current
    /// clock is a no-op. `sys` must be the system this session was begun
    /// on (or a restored checkpoint of it).
    pub fn advance_to<R: Recorder>(&mut self, sys: &mut System, target: Nanos, rec: &mut R) {
        self.advance_to_faulted(sys, target, &mut NoFaults, rec);
    }

    /// [`RunSession::advance_to`] with a fault-injection hook consulted
    /// once per tick while armed (see [`System::run_faulted`]).
    pub fn advance_to_faulted<R: Recorder, F: FaultHook>(
        &mut self,
        sys: &mut System,
        target: Nanos,
        hook: &mut F,
        rec: &mut R,
    ) {
        self.engine
            .advance_to(sys, target, hook, rec, &mut |_, _, _| {});
    }

    /// The run's simulation clock.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.engine.now
    }

    /// Ticks stepped so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.engine.ticks
    }

    /// The failure that aborted the run, if one has.
    #[must_use]
    pub fn failure(&self) -> Option<FailureEvent> {
        self.engine.failure
    }

    /// Captures the mid-run tick-loop state. Pair with
    /// [`System::checkpoint`] taken at the same instant: restoring both
    /// and resuming is byte-identical to never stopping.
    #[must_use]
    pub fn checkpoint(&self) -> RunSession {
        self.clone()
    }

    /// Restores the mid-run state captured by [`RunSession::checkpoint`].
    pub fn restore(&mut self, cp: &RunSession) {
        *self = cp.clone();
    }

    /// Ends the run: bumps the summary counters on `rec` (once, like the
    /// one-shot runs) and assembles the report from `sys`'s telemetry.
    pub fn finish<R: Recorder>(self, sys: &System, rec: &mut R) -> SystemReport {
        self.engine.finish(rec);
        sys.assemble_report(self.engine.now, self.engine.failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_units::MegaHz;
    use atm_workloads::by_name;

    fn system() -> System {
        System::new(ChipConfig::default())
    }

    #[test]
    fn sixteen_cores_two_procs() {
        let sys = system();
        assert_eq!(sys.procs().len(), 2);
        assert_eq!(CoreId::all().count(), 16);
    }

    #[test]
    fn static_margin_all_cores_4200() {
        let mut sys = system();
        let report = sys.run(Nanos::new(5_000.0), &mut NullRecorder);
        for c in &report.cores {
            assert_eq!(c.mean_freq, MegaHz::new(4200.0));
        }
    }

    #[test]
    fn default_atm_idle_near_4600_uniform() {
        let mut sys = system();
        sys.set_mode_all(MarginMode::Atm);
        let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
        assert!(report.is_ok());
        let freqs: Vec<f64> = report.cores.iter().map(|c| c.mean_freq.get()).collect();
        let min = freqs.iter().copied().fold(f64::MAX, f64::min);
        let max = freqs.iter().copied().fold(f64::MIN, f64::max);
        assert!(min > 4450.0, "slowest default-ATM core {min}");
        assert!(max < 4950.0, "fastest default-ATM core {max}");
        // Uniform performance: spread well under the fine-tuned spread.
        assert!(max - min < 320.0, "default ATM spread {}", max - min);
    }

    #[test]
    fn settle_matches_run_frequencies() {
        let mut sys = system();
        sys.set_mode_all(MarginMode::Atm);
        let settled = sys.settle();
        let ran = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
        for (s, r) in settled.cores.iter().zip(&ran.cores) {
            let diff = (s.mean_freq.get() - r.mean_freq.get()).abs();
            assert!(
                diff < 80.0,
                "{}: settle {} vs run {}",
                s.core,
                s.mean_freq,
                r.mean_freq
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sys = System::new(ChipConfig::power7_plus(seed));
            sys.set_mode_all(MarginMode::Atm);
            sys.assign_all(&by_name("x264").unwrap().clone());
            let r = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
            r.cores
                .iter()
                .map(|c| c.mean_freq.get())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn loaded_chip_slows_atm_cores() {
        let mut sys = system();
        sys.set_mode_all(MarginMode::Atm);
        let idle = sys.settle();
        sys.assign_all(&by_name("daxpy").unwrap().clone());
        let loaded = sys.settle();
        for (i, l) in idle.cores.iter().zip(&loaded.cores) {
            assert!(
                l.mean_freq < i.mean_freq,
                "{}: loaded {} !< idle {}",
                i.core,
                l.mean_freq,
                i.mean_freq
            );
        }
    }

    #[test]
    fn gated_cores_free_power_for_others() {
        let mut sys = system();
        sys.set_mode_all(MarginMode::Atm);
        sys.assign_all(&by_name("daxpy").unwrap().clone());
        let busy = sys.settle();
        // Gate everything on P0 except core 0.
        for c in 1..8 {
            sys.set_mode(CoreId::new(0, c), MarginMode::Gated);
        }
        let gated = sys.settle();
        let target = CoreId::new(0, 0);
        assert!(gated.core(target).mean_freq > busy.core(target).mean_freq);
    }

    #[test]
    fn traced_run_captures_droop_dips() {
        let mut sys = system();
        let core = CoreId::new(0, 0);
        sys.set_mode(core, MarginMode::Atm);
        sys.assign(core, by_name("x264").unwrap().clone());
        let (report, trace) = sys.run_traced(Nanos::new(100_000.0), core, 4);
        assert!(report.is_ok());
        assert_eq!(trace.samples().len(), 500); // 2000 ticks / 4
                                                // x264's droops force visible frequency dips around equilibrium.
        let (lo, hi) = trace.freq_range();
        assert!(hi.get() - lo.get() > 30.0, "no dips visible: {lo}..{hi}");
        assert!(trace.dip_count(MegaHz::new(25.0)) > 0);
        // Samples are time-ordered and within the run.
        for w in trace.samples().windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn smt_threads_raise_power_and_lower_atm_frequency() {
        let mut sys = system();
        sys.set_mode_all(MarginMode::Atm);
        let daxpy = by_name("daxpy").unwrap().clone();
        for id in CoreId::all() {
            sys.assign_smt(id, daxpy.clone(), 1);
        }
        let single = sys.settle();
        for id in CoreId::all() {
            sys.assign_smt(id, daxpy.clone(), 4);
        }
        let smt4 = sys.settle();
        // The paper's 32-thread daxpy: more power than 8 single threads...
        assert!(smt4.procs[0].mean_power > single.procs[0].mean_power);
        assert!(
            smt4.procs[0].mean_power.get() < 220.0,
            "SMT4 daxpy power {} implausible",
            smt4.procs[0].mean_power
        );
        // ...which drops every core's ATM frequency via the IR drop.
        for id in CoreId::all() {
            assert!(smt4.core(id).mean_freq < single.core(id).mean_freq);
        }
    }

    #[test]
    fn chip_pstate_change_moves_rail_and_static_freq() {
        use atm_units::ProcId;
        let mut sys = system();
        let low = sys.config().pstates.lowest();
        sys.set_chip_pstate(ProcId::new(0), low);
        let report = sys.run(Nanos::new(5_000.0), &mut NullRecorder);
        for c in ProcId::new(0).cores() {
            assert_eq!(report.core(c).mean_freq, low.frequency);
        }
        // Socket 1 is unaffected.
        for c in ProcId::new(1).cores() {
            assert_eq!(report.core(c).mean_freq, MegaHz::new(4200.0));
        }
        assert_eq!(sys.procs()[0].pdn().setpoint(), low.voltage);
    }

    #[test]
    fn undervolting_the_rail_lowers_atm_frequency() {
        use atm_units::{ProcId, Volts};
        let mut sys = system();
        sys.set_mode_all(MarginMode::Atm);
        let before = sys.settle();
        sys.set_rail_voltage(ProcId::new(0), Volts::new(1.20));
        let after = sys.settle();
        for c in ProcId::new(0).cores() {
            assert!(
                after.core(c).mean_freq < before.core(c).mean_freq,
                "{c}: undervolt did not lower frequency"
            );
        }
    }

    #[test]
    fn droop_alarms_logged_and_drained() {
        let mut sys = system();
        let core = CoreId::new(0, 0);
        sys.set_mode(core, MarginMode::Atm);
        sys.assign(core, by_name("x264").unwrap().clone());
        // Without a subscription, no events accumulate.
        let _ = sys.run(Nanos::new(100_000.0), &mut NullRecorder);
        assert!(sys.events().is_empty());
        // x264's droops dip the loop well past 25 MHz (see the traced-run
        // test); the subscription turns those dips into events.
        sys.set_droop_alarm(Some(MegaHz::new(25.0)));
        let report = sys.run(Nanos::new(100_000.0), &mut NullRecorder);
        assert!(report.is_ok());
        let events = sys.drain_events();
        assert!(!events.is_empty(), "no droop alarms for x264");
        for e in &events {
            match e {
                crate::ChipEvent::Droop(a) => {
                    assert_eq!(a.core, core);
                    assert!(a.dip >= MegaHz::new(25.0));
                }
                crate::ChipEvent::Failure(_) => panic!("unexpected failure"),
            }
        }
        assert!(sys.events().is_empty(), "drain must empty the log");
    }

    #[test]
    fn droop_alarm_subscription_is_deterministic() {
        let run = |seed| {
            let mut sys = System::new(ChipConfig::power7_plus(seed));
            sys.set_droop_alarm(Some(MegaHz::new(25.0)));
            sys.set_mode(CoreId::new(0, 0), MarginMode::Atm);
            sys.assign(CoreId::new(0, 0), by_name("x264").unwrap().clone());
            let _ = sys.run(Nanos::new(50_000.0), &mut NullRecorder);
            sys.drain_events()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn recorded_run_matches_unrecorded() {
        use atm_telemetry::RingRecorder;

        let drive = |rec: &mut dyn FnMut(&mut System) -> SystemReport| {
            let mut sys = System::new(ChipConfig::power7_plus(9));
            sys.set_droop_alarm(Some(MegaHz::new(25.0)));
            sys.set_mode(CoreId::new(0, 0), MarginMode::Atm);
            sys.assign(CoreId::new(0, 0), by_name("x264").unwrap().clone());
            rec(&mut sys)
        };
        let plain = drive(&mut |sys| sys.run(Nanos::new(50_000.0), &mut NullRecorder));
        let mut ring = RingRecorder::with_capacity(4096);
        let ringed = drive(&mut |sys| sys.run(Nanos::new(50_000.0), &mut ring));
        assert_eq!(format!("{plain:?}"), format!("{ringed:?}"));
        assert_eq!(ring.counter("chip.ticks"), Some(1000));
        assert!(ring.counter("chip.droop_alarms").unwrap_or(0) > 0);
        assert!(ring.counter("dpll.slew_up").unwrap_or(0) > 0);
        assert_eq!(ring.now().nanos(), 50_000);
        assert!(ring
            .events()
            .iter()
            .any(|e| matches!(e, atm_telemetry::TelemetryEvent::Droop(_))));
    }

    #[test]
    fn run_reports_requested_duration() {
        let mut sys = system();
        let r = sys.run(Nanos::new(5_000.0), &mut NullRecorder);
        assert!((r.duration.get() - 5_000.0).abs() <= sys.config().tick.get());
    }
}
