//! Telemetry reports from simulation runs.

use atm_units::{Celsius, CoreId, MegaHz, Nanos, Volts, Watts};
use serde::{Deserialize, Serialize};

use crate::failure::FailureEvent;
use crate::mode::MarginMode;

/// Per-core telemetry over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Which core.
    pub core: CoreId,
    /// The margin mode the core ran in.
    pub mode: MarginMode,
    /// Name of the workload that was scheduled.
    pub workload: String,
    /// The CPM delay reduction in effect.
    pub reduction: usize,
    /// Time-weighted mean clock frequency.
    pub mean_freq: MegaHz,
    /// Minimum instantaneous frequency observed.
    pub min_freq: MegaHz,
    /// Maximum instantaneous frequency observed.
    pub max_freq: MegaHz,
    /// Margin violations the loop absorbed (gate events).
    pub violations: u64,
    /// Voltage delivered on the final tick.
    pub last_voltage: Volts,
    /// Energy the core drew over the run, in microjoules.
    pub energy_uj: f64,
}

/// Per-processor telemetry over a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcReport {
    /// Mean total chip power.
    pub mean_power: Watts,
    /// Peak die temperature.
    pub max_temp: Celsius,
}

/// Execution statistics of a characterization-engine run: how many trial
/// points were actually simulated, how the sweep memoization cache fared,
/// and where the wall-clock went.
///
/// Produced by the characterization engine (crate `atm-core`); lives here
/// beside the other telemetry types so every layer reports through one
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CharactStats {
    /// Worker threads the engine ran with.
    pub workers: usize,
    /// Simulation points actually executed (cache misses).
    pub points_simulated: u64,
    /// Sweep-cache lookups answered without simulating.
    pub cache_hits: u64,
    /// Sweep-cache lookups that had to simulate.
    pub cache_misses: u64,
    /// Summed worker wall-clock spent in the idle phase, nanoseconds.
    pub idle_wall_ns: u64,
    /// Summed worker wall-clock spent in the uBench phase, nanoseconds.
    pub ubench_wall_ns: u64,
    /// Summed worker wall-clock spent in the realistic phase, nanoseconds.
    pub realistic_wall_ns: u64,
}

impl CharactStats {
    /// Fraction of cache lookups answered from the cache (0 when no
    /// lookups were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total summed worker wall-clock across all phases, nanoseconds.
    #[must_use]
    pub fn total_wall_ns(&self) -> u64 {
        self.idle_wall_ns + self.ubench_wall_ns + self.realistic_wall_ns
    }
}

impl std::fmt::Display for CharactStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} workers, {} points simulated, cache {}/{} hit ({:.0}%)",
            self.workers,
            self.points_simulated,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.hit_rate() * 100.0
        )?;
        write!(
            f,
            "wall (summed over workers): idle {:.1} ms, ubench {:.1} ms, realistic {:.1} ms",
            self.idle_wall_ns as f64 / 1e6,
            self.ubench_wall_ns as f64 / 1e6,
            self.realistic_wall_ns as f64 / 1e6
        )
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Simulated duration (shorter than requested if a failure aborted the
    /// run).
    pub duration: Nanos,
    /// Per-core telemetry, in `(proc, core)` order.
    pub cores: Vec<CoreReport>,
    /// Per-processor telemetry.
    pub procs: Vec<ProcReport>,
    /// The first failure, if any occurred.
    pub failure: Option<FailureEvent>,
}

impl SystemReport {
    /// The report for `core`.
    ///
    /// # Panics
    ///
    /// Panics if the report does not cover `core` (never happens for
    /// reports produced by [`System::run`](crate::System::run)).
    #[must_use]
    pub fn core(&self, core: CoreId) -> &CoreReport {
        &self.cores[core.flat_index()]
    }

    /// Whether the run completed without a timing failure.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.failure.is_none()
    }
}

impl SystemReport {
    /// Renders the per-core telemetry as CSV (header plus one row per
    /// core), for consumption by external plotting tools.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "core,mode,workload,reduction,mean_mhz,min_mhz,max_mhz,violations,last_voltage_v,energy_uj\n",
        );
        for c in &self.cores {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{},{},{},{},{:.1},{:.1},{:.1},{},{:.4},{:.3}",
                c.core,
                c.mode,
                c.workload,
                c.reduction,
                c.mean_freq.get(),
                c.min_freq.get(),
                c.max_freq.get(),
                c.violations,
                c.last_voltage.get(),
                c.energy_uj
            );
        }
        out
    }
}

impl std::fmt::Display for SystemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "run over {:.1} µs{}",
            self.duration.get() / 1000.0,
            match &self.failure {
                Some(e) => format!(", ABORTED: {e}"),
                None => String::new(),
            }
        )?;
        for (i, p) in self.procs.iter().enumerate() {
            writeln!(f, "P{i}: mean power {}, peak {}", p.mean_power, p.max_temp)?;
        }
        writeln!(
            f,
            "{:<6} {:<8} {:<14} {:>5} {:>10} {:>10} {:>6} {:>10}",
            "core", "mode", "workload", "steps", "mean MHz", "min MHz", "gates", "energy µJ"
        )?;
        for c in &self.cores {
            writeln!(
                f,
                "{:<6} {:<8} {:<14} {:>5} {:>10.0} {:>10.0} {:>6} {:>10.1}",
                c.core.to_string(),
                c.mode.to_string(),
                c.workload,
                c.reduction,
                c.mean_freq.get(),
                c.min_freq.get(),
                c.violations,
                c.energy_uj
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_lookup_by_flat_index() {
        let cores: Vec<CoreReport> = CoreId::all()
            .map(|core| CoreReport {
                core,
                mode: MarginMode::Static,
                workload: "idle".to_owned(),
                reduction: 0,
                mean_freq: MegaHz::new(4200.0),
                min_freq: MegaHz::new(4200.0),
                max_freq: MegaHz::new(4200.0),
                violations: 0,
                last_voltage: Volts::new(1.25),
                energy_uj: 0.0,
            })
            .collect();
        let report = SystemReport {
            duration: Nanos::new(1000.0),
            cores,
            procs: vec![],
            failure: None,
        };
        assert!(report.is_ok());
        assert_eq!(report.core(CoreId::new(1, 3)).core, CoreId::new(1, 3));
    }

    #[test]
    fn display_renders_all_cores_and_sockets() {
        let cores: Vec<CoreReport> = CoreId::all()
            .map(|core| CoreReport {
                core,
                mode: MarginMode::Atm,
                workload: "gcc".to_owned(),
                reduction: 3,
                mean_freq: MegaHz::new(4700.0),
                min_freq: MegaHz::new(4650.0),
                max_freq: MegaHz::new(4720.0),
                violations: 1,
                last_voltage: Volts::new(1.22),
                energy_uj: 123.4,
            })
            .collect();
        let report = SystemReport {
            duration: Nanos::new(50_000.0),
            cores,
            procs: vec![
                ProcReport {
                    mean_power: Watts::new(88.0),
                    max_temp: Celsius::new(55.0),
                },
                ProcReport {
                    mean_power: Watts::new(54.0),
                    max_temp: Celsius::new(48.0),
                },
            ],
            failure: None,
        };
        let s = report.to_string();
        assert!(s.contains("P0C0") && s.contains("P1C7"));
        assert!(s.contains("88.0 W") && s.contains("50.0 µs"));
        assert!(s.contains("123.4"));

        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 17); // header + 16 cores
        assert!(lines[0].starts_with("core,mode,workload"));
        assert!(lines[1].starts_with("P0C0,atm,gcc,3,4700.0"));
        // Every row has the same number of fields as the header.
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged CSV row: {l}");
        }
    }
}
