//! System configuration.

use atm_dpll::AtmLoopConfig;
use atm_pdn::{PdnModel, PowerModel, ThermalModel};
use atm_silicon::SiliconParams;
use atm_units::{MegaHz, Nanos};
use serde::{Deserialize, Serialize};

use crate::pstate::PStateTable;

/// Full configuration of a simulated two-socket server.
///
/// The default is the POWER7+ calibration used throughout the paper
/// reproduction; experiments vary the `seed` to mint different silicon and
/// the loop/PDN parameters for ablations.
///
/// # Examples
///
/// ```
/// use atm_chip::ChipConfig;
///
/// let cfg = ChipConfig { seed: 7, ..ChipConfig::default() };
/// assert_eq!(cfg.calibration_target.get(), 4600.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Root seed for silicon minting and all stochastic processes.
    pub seed: u64,
    /// Silicon model parameters.
    pub silicon: SiliconParams,
    /// Per-core ATM loop configuration.
    pub loop_config: AtmLoopConfig,
    /// DC power-delivery model (per processor).
    pub pdn: PdnModel,
    /// Power model (per processor).
    pub power: PowerModel,
    /// Thermal model template (per processor).
    pub thermal: ThermalModel,
    /// DVFS p-state table.
    pub pstates: PStateTable,
    /// Simulation tick length.
    pub tick: Nanos,
    /// The uniform idle frequency the manufacturer calibrates default ATM
    /// to (4.6 GHz on the paper's machines).
    pub calibration_target: MegaHz,
    /// Whether timing-violation failures are modeled (disable for pure
    /// performance runs of already-validated configurations).
    pub failure_checking: bool,
}

impl ChipConfig {
    /// The paper's platform with the given seed.
    #[must_use]
    pub fn power7_plus(seed: u64) -> Self {
        ChipConfig {
            seed,
            silicon: SiliconParams::power7_plus(),
            loop_config: AtmLoopConfig::power7_plus(),
            pdn: PdnModel::power7_plus(),
            power: PowerModel::power7_plus(),
            thermal: ThermalModel::power7_plus(),
            pstates: PStateTable::power7_plus(),
            tick: Nanos::new(50.0),
            calibration_target: MegaHz::new(4600.0),
            failure_checking: true,
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics if the tick is not positive or the calibration target is not
    /// above the nominal p-state.
    pub fn validate(&self) {
        assert!(self.tick.get() > 0.0, "tick must be positive");
        assert!(
            self.calibration_target >= self.pstates.nominal().frequency,
            "ATM calibration target below the static-margin p-state"
        );
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig::power7_plus(42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        ChipConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "calibration target")]
    fn bad_target_rejected() {
        let cfg = ChipConfig {
            calibration_target: MegaHz::new(3000.0),
            ..ChipConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(ChipConfig::power7_plus(1), ChipConfig::power7_plus(2));
    }
}
