//! Timing-violation failure modes.

use std::fmt;

use atm_units::{CoreId, Nanos};
use serde::{Deserialize, Serialize};

/// How an escaped timing violation manifests (paper Sec. III-B: "abnormal
/// application termination (e.g., segmentation fault), silent data
/// corruption (SDC), or a system crash").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// The whole system crashes.
    SystemCrash,
    /// The application terminates abnormally (e.g. segmentation fault).
    AbnormalExit,
    /// Silent data corruption, caught by result-checking tools.
    SilentDataCorruption,
    /// The whole chip goes dark: every socket halts and the layer above
    /// must treat the chip as dead until it is explicitly resurrected.
    /// Never produced by [`FailureKind::sample`] — only injected through
    /// [`FaultAction::ChipHardFail`](crate::FaultAction::ChipHardFail).
    ChipHardFail,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureKind::SystemCrash => "system crash",
            FailureKind::AbnormalExit => "abnormal application exit",
            FailureKind::SilentDataCorruption => "silent data corruption",
            FailureKind::ChipHardFail => "hard chip failure",
        })
    }
}

impl FailureKind {
    /// Samples a failure manifestation from a uniform draw over the
    /// closed unit interval `[0, 1]`.
    ///
    /// Roughly 40% crashes, 40% abnormal exits, 20% SDC — SDC is the
    /// rarest manifestation because most timing violations hit control
    /// logic rather than silent datapaths. The function is **total** over
    /// `[0, 1]`: `u == 1.0` (which some RNG adapters can produce at the
    /// top of an inclusive range) maps to the last bucket instead of
    /// panicking, so a caller feeding raw RNG draws can never crash the
    /// simulator.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]` (including NaN) — a programming
    /// error, not a boundary artifact of a uniform draw.
    #[must_use]
    pub fn sample(u: f64) -> Self {
        assert!((0.0..=1.0).contains(&u), "u out of [0,1]: {u}");
        if u < 0.4 {
            FailureKind::SystemCrash
        } else if u < 0.8 {
            FailureKind::AbnormalExit
        } else {
            FailureKind::SilentDataCorruption
        }
    }
}

/// A failure observed during a simulation trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// The core whose timing violated.
    pub core: CoreId,
    /// How the violation manifested.
    pub kind: FailureKind,
    /// Simulation time of the event, from trial start.
    pub at: Nanos,
}

impl fmt::Display for FailureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} at {}", self.kind, self.core, self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_covers_all_kinds() {
        assert_eq!(FailureKind::sample(0.0), FailureKind::SystemCrash);
        assert_eq!(FailureKind::sample(0.5), FailureKind::AbnormalExit);
        assert_eq!(FailureKind::sample(0.9), FailureKind::SilentDataCorruption);
    }

    #[test]
    fn sample_is_total_on_closed_interval() {
        // The boundaries of every bucket, including the inclusive top.
        assert_eq!(FailureKind::sample(0.0), FailureKind::SystemCrash);
        assert_eq!(FailureKind::sample(0.4), FailureKind::AbnormalExit);
        assert_eq!(FailureKind::sample(0.8), FailureKind::SilentDataCorruption);
        assert_eq!(FailureKind::sample(1.0), FailureKind::SilentDataCorruption);
        // Just below the top is still in range.
        let below_one = 1.0 - f64::EPSILON;
        assert_eq!(
            FailureKind::sample(below_one),
            FailureKind::SilentDataCorruption
        );
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn sample_rejects_above_one() {
        let _ = FailureKind::sample(1.0 + f64::EPSILON * 2.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn sample_rejects_negative() {
        let _ = FailureKind::sample(-0.001);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn sample_rejects_nan() {
        let _ = FailureKind::sample(f64::NAN);
    }

    #[test]
    fn display_is_descriptive() {
        let e = FailureEvent {
            core: CoreId::new(1, 2),
            kind: FailureKind::SilentDataCorruption,
            at: Nanos::new(1234.0),
        };
        let s = e.to_string();
        assert!(s.contains("P1C2") && s.contains("corruption"));
    }
}
