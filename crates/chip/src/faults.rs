//! Fault-injection hooks for timed runs.
//!
//! A [`FaultHook`] is threaded through the system's timed runs
//! ([`System::run_faulted`](crate::System::run_faulted) and friends) and
//! asked, once per tick while armed, which [`FaultAction`]s to inject.
//! Actions arm faults for a bounded number of ticks in the engine's
//! internal fault state; the tick loop then delivers them to the right
//! substrate:
//!
//! * [`FaultAction::CpmFault`] — a [`SensorFault`] rewrites (or drops) the
//!   core's worst-CPM reading before the ATM loop consumes it;
//! * [`FaultAction::DpllFault`] — an [`ActuatorFault`] filters the loop's
//!   commanded slews for the tick;
//! * [`FaultAction::RailTransient`] — a [`RailTransient`] sags the
//!   delivered DC voltage of every core on a socket;
//! * [`FaultAction::LoadStep`] — a deterministic [`LoadStep`] droop burst
//!   merges with the core's own stochastic droops;
//! * [`FaultAction::ForceFailure`] — a timing failure fires on the core
//!   this tick, regardless of margin mode (modeling workload-phase
//!   triggered escapes the margin machinery cannot see coming).
//!
//! The stride fast path never engages on a core while faults are armed:
//! an armed hook forces every tick through the exact evaluation path, so
//! injected corruption is always simulated, never certified away.
//!
//! Hooks must report a stable [`FaultHook::armed`] value for the duration
//! of a single timed run; the engine drains any still-armed fault
//! durations to completion even if the hook disarms between runs.

use atm_cpm::SensorFault;
use atm_dpll::ActuatorFault;
use atm_pdn::{LoadStep, RailTransient};
use atm_units::{CoreId, Nanos, ProcId, CORES_PER_PROC, NUM_PROCS};

use crate::failure::FailureKind;

/// One fault injection requested by a [`FaultHook`] for the current tick.
///
/// Durations are in ticks; a duration of zero is treated as one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Corrupt a core's CPM readout for `ticks` ticks.
    CpmFault {
        /// The affected core.
        core: CoreId,
        /// The sensor fault to apply.
        fault: SensorFault,
        /// How many ticks the fault stays armed.
        ticks: u32,
    },
    /// Degrade a core's DPLL actuator for `ticks` ticks.
    DpllFault {
        /// The affected core.
        core: CoreId,
        /// The actuator fault to apply.
        fault: ActuatorFault,
        /// How many ticks the fault stays armed.
        ticks: u32,
    },
    /// Sag a whole socket's delivered rail voltage for `ticks` ticks.
    RailTransient {
        /// The affected socket.
        proc: ProcId,
        /// The rail sag to apply.
        transient: RailTransient,
        /// How many ticks the sag lasts.
        ticks: u32,
    },
    /// Inject a deterministic load-step droop burst on a core for
    /// `ticks` ticks.
    LoadStep {
        /// The affected core.
        core: CoreId,
        /// The droop burst to merge with the core's own droops.
        step: LoadStep,
        /// How many ticks the burst lasts.
        ticks: u32,
    },
    /// Force a timing failure on a core this tick (single-tick action).
    ForceFailure {
        /// The failing core.
        core: CoreId,
        /// How the failure manifests.
        kind: FailureKind,
    },
    /// Kill the whole chip this tick: the run aborts with a
    /// [`FailureKind::ChipHardFail`] failure event attributed to `core`
    /// (the core whose violation cascaded), and the serving layer above
    /// must treat the chip as dead until it is resurrected from a
    /// checkpoint.
    ChipHardFail {
        /// The core whose failure cascaded into the chip-wide outage.
        core: CoreId,
    },
}

/// A source of fault injections for timed runs.
///
/// The default implementation ([`NoFaults`]) is permanently disarmed and
/// adds no per-tick work beyond one branch. Campaign engines (crate
/// `atm-faults`) implement this trait over a resolved, deterministic
/// schedule.
pub trait FaultHook {
    /// Whether the hook may inject anything. While this returns `true`,
    /// every core's stride fast path is bypassed. A hook may disarm
    /// permanently once its schedule is exhausted (one-way transition);
    /// still-armed fault durations drain to completion regardless.
    fn armed(&self) -> bool {
        false
    }

    /// Called once at the start of every timed run, before any tick.
    fn on_trial_start(&mut self) {}

    /// Called once per tick while [`FaultHook::armed`]; push any actions
    /// to inject this tick into `out`. `tick` counts ticks within the
    /// current run; `now` is the run's simulation clock.
    fn on_tick(&mut self, now: Nanos, tick: u64, out: &mut Vec<FaultAction>);
}

/// The no-op hook: never armed, never injects. Timed runs driven with
/// `NoFaults` are bit-identical to the plain (hook-less) runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn on_tick(&mut self, _now: Nanos, _tick: u64, _out: &mut Vec<FaultAction>) {}
}

impl<F: FaultHook + ?Sized> FaultHook for &mut F {
    fn armed(&self) -> bool {
        (**self).armed()
    }

    fn on_trial_start(&mut self) {
        (**self).on_trial_start();
    }

    fn on_tick(&mut self, now: Nanos, tick: u64, out: &mut Vec<FaultAction>) {
        (**self).on_tick(now, tick, out);
    }
}

/// The faults currently armed on one core, as the tick loop sees them.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CoreFaultLine {
    /// Sensor fault with remaining ticks.
    pub(crate) cpm: Option<(SensorFault, u32)>,
    /// Actuator fault with remaining ticks.
    pub(crate) dpll: Option<(ActuatorFault, u32)>,
    /// Load-step burst with remaining ticks.
    pub(crate) load_step: Option<(LoadStep, u32)>,
    /// Forced failure for this tick only.
    pub(crate) force: Option<FailureKind>,
}

impl CoreFaultLine {
    fn is_idle(&self) -> bool {
        self.cpm.is_none()
            && self.dpll.is_none()
            && self.load_step.is_none()
            && self.force.is_none()
    }
}

/// One socket's view of the armed faults for a tick.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProcFaults<'a> {
    /// Rail sag applied to every core's delivered voltage.
    pub(crate) rail: Option<RailTransient>,
    /// Per-core fault lines, indexed by core index within the socket.
    pub(crate) lines: &'a [CoreFaultLine; CORES_PER_PROC],
}

/// The run engine's fault bookkeeping: armed fault lines with remaining
/// durations, refreshed from the hook each tick and decremented after.
/// `Clone` so a mid-run checkpoint can capture armed durations exactly.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    lines: [[CoreFaultLine; CORES_PER_PROC]; NUM_PROCS],
    rail: [Option<(RailTransient, u32)>; NUM_PROCS],
    scratch: Vec<FaultAction>,
    active: bool,
}

impl FaultState {
    pub(crate) fn new() -> Self {
        FaultState {
            lines: [[CoreFaultLine::default(); CORES_PER_PROC]; NUM_PROCS],
            rail: [None; NUM_PROCS],
            scratch: Vec::new(),
            active: false,
        }
    }

    /// Whether any fault line or rail sag still has remaining duration.
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// Collects the hook's actions for this tick and merges them into the
    /// armed lines (an action on an already-armed slot replaces it).
    pub(crate) fn begin_tick<F: FaultHook>(&mut self, hook: &mut F, now: Nanos, tick: u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        hook.on_tick(now, tick, &mut scratch);
        for action in scratch.drain(..) {
            self.apply(action);
        }
        self.scratch = scratch;
    }

    fn apply(&mut self, action: FaultAction) {
        self.active = true;
        match action {
            FaultAction::CpmFault { core, fault, ticks } => {
                self.line_mut(core).cpm = Some((fault, ticks.max(1)));
            }
            FaultAction::DpllFault { core, fault, ticks } => {
                self.line_mut(core).dpll = Some((fault, ticks.max(1)));
            }
            FaultAction::RailTransient {
                proc,
                transient,
                ticks,
            } => {
                self.rail[proc.index()] = Some((transient, ticks.max(1)));
            }
            FaultAction::LoadStep { core, step, ticks } => {
                self.line_mut(core).load_step = Some((step, ticks.max(1)));
            }
            FaultAction::ForceFailure { core, kind } => {
                self.line_mut(core).force = Some(kind);
            }
            FaultAction::ChipHardFail { core } => {
                self.line_mut(core).force = Some(FailureKind::ChipHardFail);
            }
        }
    }

    fn line_mut(&mut self, core: CoreId) -> &mut CoreFaultLine {
        &mut self.lines[core.proc_id().index()][core.core_index()]
    }

    /// The armed faults socket `proc` must apply this tick.
    pub(crate) fn proc_view(&self, proc: usize) -> ProcFaults<'_> {
        ProcFaults {
            rail: self.rail[proc].map(|(t, _)| t),
            lines: &self.lines[proc],
        }
    }

    /// Decrements remaining durations, clears expired slots and one-shot
    /// forced failures, and recomputes the active flag.
    pub(crate) fn end_tick(&mut self) {
        let mut active = false;
        for proc_lines in &mut self.lines {
            for line in proc_lines.iter_mut() {
                decrement(&mut line.cpm);
                decrement(&mut line.dpll);
                decrement(&mut line.load_step);
                line.force = None;
                active |= !line.is_idle();
            }
        }
        for rail in &mut self.rail {
            decrement(rail);
            active |= rail.is_some();
        }
        self.active = active;
    }
}

/// Decrements a `(payload, remaining ticks)` slot, clearing it at zero.
fn decrement<T>(slot: &mut Option<(T, u32)>) {
    if let Some((_, remaining)) = slot {
        *remaining -= 1;
        if *remaining == 0 {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneShot {
        fired: bool,
    }

    impl FaultHook for OneShot {
        fn armed(&self) -> bool {
            true
        }

        fn on_tick(&mut self, _now: Nanos, tick: u64, out: &mut Vec<FaultAction>) {
            if tick == 0 && !self.fired {
                self.fired = true;
                out.push(FaultAction::CpmFault {
                    core: CoreId::new(0, 3),
                    fault: SensorFault::Dropout,
                    ticks: 2,
                });
                out.push(FaultAction::RailTransient {
                    proc: ProcId::new(1),
                    transient: RailTransient::new(30.0),
                    ticks: 1,
                });
            }
        }
    }

    #[test]
    fn durations_expire_after_their_ticks() {
        let mut state = FaultState::new();
        let mut hook = OneShot { fired: false };
        // Tick 0: both faults armed.
        state.begin_tick(&mut hook, Nanos::ZERO, 0);
        assert!(state.proc_view(0).lines[3].cpm.is_some());
        assert!(state.proc_view(1).rail.is_some());
        state.end_tick();
        // Tick 1: the 1-tick rail sag has expired, the 2-tick CPM fault
        // survives.
        assert!(state.is_active());
        state.begin_tick(&mut hook, Nanos::ZERO, 1);
        assert!(state.proc_view(0).lines[3].cpm.is_some());
        assert!(state.proc_view(1).rail.is_none());
        state.end_tick();
        assert!(!state.is_active());
    }

    #[test]
    fn forced_failures_are_one_shot() {
        struct Forcer;
        impl FaultHook for Forcer {
            fn armed(&self) -> bool {
                true
            }
            fn on_tick(&mut self, _now: Nanos, tick: u64, out: &mut Vec<FaultAction>) {
                if tick == 0 {
                    out.push(FaultAction::ForceFailure {
                        core: CoreId::new(0, 0),
                        kind: FailureKind::SystemCrash,
                    });
                }
            }
        }
        let mut state = FaultState::new();
        state.begin_tick(&mut Forcer, Nanos::ZERO, 0);
        assert!(state.proc_view(0).lines[0].force.is_some());
        state.end_tick();
        assert!(state.proc_view(0).lines[0].force.is_none());
        assert!(!state.is_active());
    }

    #[test]
    fn no_faults_is_disarmed() {
        assert!(!NoFaults.armed());
        let mut out = Vec::new();
        NoFaults.on_tick(Nanos::ZERO, 0, &mut out);
        assert!(out.is_empty());
    }
}
