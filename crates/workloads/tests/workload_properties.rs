//! Property tests for the workload catalog.

use atm_units::MegaHz;
use atm_workloads::{catalog, isa_suite, power_virus, voltage_virus, Role};
use proptest::prelude::*;

proptest! {
    #[test]
    fn speedup_monotone_for_every_app(app_idx in 0usize..30, df in 1.0f64..1000.0) {
        let cat = catalog();
        let app = &cat[app_idx % cat.len()];
        let base = MegaHz::new(4200.0);
        let s1 = app.speedup(MegaHz::new(4200.0 + df), base);
        let s2 = app.speedup(MegaHz::new(4200.0 + df + 50.0), base);
        prop_assert!(s2 > s1);
        prop_assert!(s1 >= 1.0);
    }

    #[test]
    fn slowdown_below_baseline(app_idx in 0usize..30, df in 1.0f64..2000.0) {
        let cat = catalog();
        let app = &cat[app_idx % cat.len()];
        let base = MegaHz::new(4200.0);
        let s = app.speedup(MegaHz::new((4200.0 - df).max(100.0)), base);
        prop_assert!(s <= 1.0 + 1e-12);
    }

    #[test]
    fn smt_gain_bounds(app_idx in 0usize..30, threads in 1usize..=4) {
        let cat = catalog();
        let app = &cat[app_idx % cat.len()];
        let g = app.smt_throughput_gain(threads);
        prop_assert!(g >= 1.0);
        prop_assert!(g <= 1.5, "{}: SMT4 gain {g}", app.name());
        // Per-thread throughput decreases with more threads.
        if threads > 1 {
            let prev = app.smt_throughput_gain(threads - 1) / (threads - 1) as f64;
            prop_assert!(g / threads as f64 <= prev + 1e-12);
        }
    }
}

#[test]
fn catalog_attributes_all_in_range() {
    for w in catalog() {
        assert!((0.0..=1.5).contains(&w.activity()), "{}", w.name());
        assert!((0.0..=1.0).contains(&w.mem_fraction()), "{}", w.name());
        assert!((0.0..=1.0).contains(&w.path_stress()), "{}", w.name());
        assert!(w.didt().sharpness() <= 1.0, "{}", w.name());
        assert!(w.sync_amplification() >= 1.0, "{}", w.name());
    }
}

#[test]
fn critical_apps_are_frequency_sensitive() {
    // The paper's critical (latency-sensitive) apps must benefit from the
    // frequency the manager buys them: sensitivity well above mcf's.
    for w in catalog() {
        if let Some(class) = w.class() {
            if class.role == Role::Critical {
                assert!(
                    w.frequency_sensitivity() >= 0.6,
                    "{} too memory-bound to be a useful critical app",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn stressmarks_dominate_catalog_stress() {
    let virus = voltage_virus();
    let virus_unseen = virus.didt().worst_case_unseen_mv(0.99) * virus.sync_amplification();
    let isa = isa_suite();
    let pv = power_virus();
    for w in catalog() {
        assert!(
            w.didt().worst_case_unseen_mv(0.99) < virus_unseen,
            "{} out-noises the voltage virus",
            w.name()
        );
        assert!(w.path_stress() <= isa.path_stress());
        assert!(w.activity() < pv.activity());
    }
}

#[test]
fn table2_pairs_respect_colocate_rule() {
    // Every pair used in the Fig. 14 evaluation must be legal under the
    // paper's no-two-memory-intensive rule.
    use atm_workloads::by_name;
    let pairs = [
        ("squeezenet", "lu_cb"),
        ("ferret", "raytrace"),
        ("vgg19", "swaptions"),
        ("fluidanimate", "x264"),
        ("seq2seq", "streamcluster"),
    ];
    for (c, b) in pairs {
        let cc = by_name(c).unwrap().class().unwrap();
        let bc = by_name(b).unwrap().class().unwrap();
        assert!(cc.may_colocate_with(bc), "{c}:{b} violates the rule");
    }
}
