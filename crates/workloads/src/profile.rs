//! The workload profile type.

use atm_pdn::DiDtParams;
use atm_units::MegaHz;
use serde::{Deserialize, Serialize};

use crate::classify::AppClass;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Nothing scheduled: background operating-system noise only.
    Idle,
    /// A micro-benchmark exercising one part of the core.
    MicroBench,
    /// A SPEC CPU 2017 benchmark.
    Spec,
    /// A PARSEC 3.0 benchmark.
    Parsec,
    /// A deep-learning inference task.
    MlInference,
    /// A test-time stressmark (voltage virus, power virus, ISA suite).
    Stressmark,
}

/// A workload profile: the four ATM-relevant attributes plus metadata.
///
/// Construct profiles with [`Workload::new`] or fetch calibrated ones from
/// [`catalog`](crate::catalog).
///
/// # Examples
///
/// ```
/// use atm_workloads::by_name;
/// use atm_units::MegaHz;
///
/// let mcf = by_name("mcf").unwrap();
/// let x264 = by_name("x264").unwrap();
/// let base = MegaHz::new(4200.0);
/// let fast = MegaHz::new(4830.0); // +15% clock
/// // A memory-bound app gains less from frequency (paper Fig. 12b).
/// assert!(mcf.speedup(fast, base) < x264.speedup(fast, base));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    kind: WorkloadKind,
    activity: f64,
    mem_fraction: f64,
    path_stress: f64,
    didt: DiDtParams,
    sync_amplification: f64,
    class: Option<AppClass>,
}

impl Workload {
    /// Creates a workload profile.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1.5]`, `mem_fraction` or
    /// `path_stress` outside `[0, 1]`, or `sync_amplification < 1`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        kind: WorkloadKind,
        activity: f64,
        mem_fraction: f64,
        path_stress: f64,
        didt: DiDtParams,
        sync_amplification: f64,
        class: Option<AppClass>,
    ) -> Self {
        assert!((0.0..=1.5).contains(&activity), "activity out of range");
        assert!(
            (0.0..=1.0).contains(&mem_fraction),
            "mem_fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&path_stress),
            "path_stress out of range"
        );
        assert!(sync_amplification >= 1.0, "sync_amplification must be >= 1");
        Workload {
            name: name.into(),
            kind,
            activity,
            mem_fraction,
            path_stress,
            didt,
            sync_amplification,
            class,
        }
    }

    /// The idle "workload": OS background noise only.
    #[must_use]
    pub fn idle() -> Self {
        Workload::new(
            "idle",
            WorkloadKind::Idle,
            0.05,
            0.0,
            0.0,
            DiDtParams::new(0.05, 8.0, 4.0, 0.4),
            1.0,
            None,
        )
    }

    /// The workload's name (e.g. `"x264"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The suite this workload belongs to.
    #[must_use]
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Switching activity in `[0, 1.5]` (drives dynamic power).
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Fraction of execution time stalled on memory at the baseline clock.
    #[must_use]
    pub fn mem_fraction(&self) -> f64 {
        self.mem_fraction
    }

    /// How hard the workload exercises timing paths the CPM synthetic
    /// paths do not cover, in `[0, 1]`.
    #[must_use]
    pub fn path_stress(&self) -> f64 {
        self.path_stress
    }

    /// The workload's di/dt droop process parameters.
    #[must_use]
    pub fn didt(&self) -> &DiDtParams {
        &self.didt
    }

    /// Droop amplification when the workload runs synchronized across many
    /// cores (≥ 1; only stressmarks exceed 1).
    #[must_use]
    pub fn sync_amplification(&self) -> f64 {
        self.sync_amplification
    }

    /// Table II classification, if the paper classifies this workload.
    #[must_use]
    pub fn class(&self) -> Option<&AppClass> {
        self.class.as_ref()
    }

    /// Performance (throughput or 1/latency) at clock `f` relative to the
    /// same workload at `baseline`: the paper's Fig. 12b linear-in-f
    /// behaviour with a memory-bound saturation term.
    ///
    /// `speedup = 1 / (c·(f₀/f) + (1 − c))` where `c = 1 − mem_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is zero.
    #[must_use]
    pub fn speedup(&self, f: MegaHz, baseline: MegaHz) -> f64 {
        assert!(
            f.get() > 0.0 && baseline.get() > 0.0,
            "frequencies must be positive"
        );
        let c = 1.0 - self.mem_fraction;
        1.0 / (c * (baseline / f).max(f64::MIN_POSITIVE) + (1.0 - c))
    }

    /// The slope of `speedup` with respect to `f/f₀` at the baseline — the
    /// per-app coefficient the paper's performance predictor fits.
    #[must_use]
    pub fn frequency_sensitivity(&self) -> f64 {
        1.0 - self.mem_fraction
    }

    /// Core-throughput gain from running `threads` SMT copies of this
    /// workload on one core (POWER7+ is 4-way SMT).
    ///
    /// Compute-bound code saturates its functional units with one thread
    /// and gains little; memory-bound code hides stalls behind sibling
    /// threads and gains more. The gain is sublinear and the per-thread
    /// throughput is `smt_throughput_gain(n) / n`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is not in `1..=4`.
    #[must_use]
    pub fn smt_throughput_gain(&self, threads: usize) -> f64 {
        assert!((1..=4).contains(&threads), "SMT is 4-way, got {threads}");
        let per_thread = 0.05 * (1.0 + 2.0 * self.mem_fraction);
        1.0 + (threads - 1) as f64 * per_thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_bound() -> Workload {
        Workload::new(
            "cpu",
            WorkloadKind::Spec,
            0.7,
            0.05,
            0.5,
            DiDtParams::quiet(),
            1.0,
            None,
        )
    }

    fn memory_bound() -> Workload {
        Workload::new(
            "mem",
            WorkloadKind::Spec,
            0.4,
            0.6,
            0.5,
            DiDtParams::quiet(),
            1.0,
            None,
        )
    }

    #[test]
    fn speedup_is_one_at_baseline() {
        let w = compute_bound();
        let f = MegaHz::new(4200.0);
        assert!((w.speedup(f, f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_monotone_in_frequency() {
        let w = compute_bound();
        let base = MegaHz::new(4200.0);
        let mut prev = 0.0;
        for f in (4200..5200).step_by(100) {
            let s = w.speedup(MegaHz::new(f64::from(f)), base);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn memory_bound_gains_less() {
        let base = MegaHz::new(4200.0);
        let fast = MegaHz::new(4830.0);
        assert!(memory_bound().speedup(fast, base) < compute_bound().speedup(fast, base));
    }

    #[test]
    fn fully_compute_bound_is_linear() {
        let w = Workload::new(
            "linear",
            WorkloadKind::MicroBench,
            1.0,
            0.0,
            0.0,
            DiDtParams::quiet(),
            1.0,
            None,
        );
        let base = MegaHz::new(4000.0);
        assert!((w.speedup(MegaHz::new(4400.0), base) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn idle_profile_is_quiet_and_cold() {
        let idle = Workload::idle();
        assert!(idle.activity() < 0.1);
        assert_eq!(idle.path_stress(), 0.0);
        assert_eq!(idle.kind(), WorkloadKind::Idle);
    }

    #[test]
    fn frequency_sensitivity_complements_mem_fraction() {
        assert!((memory_bound().frequency_sensitivity() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn smt_gain_sublinear_and_mem_sensitive() {
        let cpu = compute_bound();
        let mem = memory_bound();
        for w in [&cpu, &mem] {
            assert!((w.smt_throughput_gain(1) - 1.0).abs() < 1e-12);
            for n in 2..=4 {
                assert!(w.smt_throughput_gain(n) > w.smt_throughput_gain(n - 1));
                // Sublinear: total gain below n times one thread.
                assert!(w.smt_throughput_gain(n) < n as f64);
            }
        }
        assert!(mem.smt_throughput_gain(4) > cpu.smt_throughput_gain(4));
    }

    #[test]
    #[should_panic(expected = "SMT is 4-way")]
    fn smt_beyond_four_threads_rejected() {
        let _ = compute_bound().smt_throughput_gain(5);
    }

    #[test]
    #[should_panic(expected = "mem_fraction")]
    fn invalid_mem_fraction_rejected() {
        let _ = Workload::new(
            "bad",
            WorkloadKind::Spec,
            0.5,
            1.5,
            0.5,
            DiDtParams::quiet(),
            1.0,
            None,
        );
    }
}
