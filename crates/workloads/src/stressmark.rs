//! Test-time stressmarks for the deployment procedure (paper Sec. VII-A).

use atm_pdn::DiDtParams;

use crate::profile::{Workload, WorkloadKind};

/// The paper's voltage virus: all cores synchronously throttle instruction
/// issue to one out of every 128 cycles while 32 daxpy threads run,
/// creating a chip-wide synchronized power surge and worst-case di/dt.
///
/// Run on every core simultaneously (its `sync_amplification` of 1.35
/// models the adjacent-core alignment), it produces unseen droops beyond
/// any realistic workload.
///
/// # Examples
///
/// ```
/// use atm_workloads::{by_name, voltage_virus};
///
/// let virus = voltage_virus();
/// let x264 = by_name("x264").unwrap();
/// assert!(
///     virus.didt().worst_case_unseen_mv(0.99) * virus.sync_amplification()
///         > x264.didt().worst_case_unseen_mv(0.99)
/// );
/// ```
#[must_use]
pub fn voltage_virus() -> Workload {
    Workload::new(
        "voltage-virus",
        WorkloadKind::Stressmark,
        1.05,
        0.05,
        0.85,
        DiDtParams::new(4.0, 30.0, 6.0, 0.60),
        1.15,
        None,
    )
}

/// A power virus: maximum sustained switching activity (raises chip power
/// and temperature; the paper raises the chip to 160 W / 70 °C).
#[must_use]
pub fn power_virus() -> Workload {
    Workload::new(
        "power-virus",
        WorkloadKind::Stressmark,
        1.30,
        0.10,
        0.70,
        DiDtParams::new(1.0, 18.0, 4.0, 0.50),
        1.0,
        None,
    )
}

/// An ISA verification suite: maximal timing-path coverage with modest
/// power (vendors use tailored suites that "provide wider coverage and
/// execute in less time").
#[must_use]
pub fn isa_suite() -> Workload {
    Workload::new(
        "isa-suite",
        WorkloadKind::Stressmark,
        0.60,
        0.15,
        1.0,
        DiDtParams::new(0.8, 14.0, 4.0, 0.50),
        1.0,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::realistic_set;

    #[test]
    fn stressmarks_are_marked_as_such() {
        for w in [voltage_virus(), power_virus(), isa_suite()] {
            assert_eq!(w.kind(), WorkloadKind::Stressmark);
        }
    }

    #[test]
    fn virus_out_stresses_every_realistic_workload() {
        let virus = voltage_virus();
        let virus_unseen = virus.didt().worst_case_unseen_mv(0.99) * virus.sync_amplification();
        for w in realistic_set() {
            assert!(
                w.didt().worst_case_unseen_mv(0.99) < virus_unseen,
                "{} exceeds the voltage virus",
                w.name()
            );
        }
    }

    #[test]
    fn isa_suite_has_full_path_coverage() {
        let isa = isa_suite();
        assert!((isa.path_stress() - 1.0).abs() < 1e-12);
        for w in realistic_set() {
            assert!(w.path_stress() <= isa.path_stress());
        }
    }

    #[test]
    fn power_virus_has_highest_activity() {
        let pv = power_virus();
        for w in realistic_set() {
            assert!(w.activity() < pv.activity());
        }
    }

    #[test]
    fn only_virus_synchronizes() {
        assert!(voltage_virus().sync_amplification() > 1.0);
        assert!((power_virus().sync_amplification() - 1.0).abs() < 1e-12);
    }
}
