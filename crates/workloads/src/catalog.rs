//! The calibrated workload catalog.
//!
//! Every profile the paper's evaluation names, with attributes calibrated
//! to the paper's observations: x264 and ferret stress the ATM loop
//! hardest (Fig. 9/10); gcc covers many instructions yet stresses ATM
//! little; mcf is memory-bound and gains least from frequency (Fig. 12b);
//! streamcluster consumes little power even at high frequency (Sec. VII-D);
//! lu_cb is power-hungry.

use std::sync::OnceLock;

use atm_pdn::DiDtParams;
use atm_units::AtmError;

use crate::classify::{classification_table, AppClass};
use crate::profile::{Workload, WorkloadKind};

fn build_catalog() -> Vec<Workload> {
    use WorkloadKind::{MicroBench, MlInference, Parsec, Spec};

    let class = |name: &str| -> Option<AppClass> {
        classification_table()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c)
    };

    // (name, kind, activity, mem_fraction, path_stress,
    //  (events/us, mean mV, sigma mV, sharpness))
    #[allow(clippy::type_complexity)]
    let rows: Vec<(&str, WorkloadKind, f64, f64, f64, (f64, f64, f64, f64))> = vec![
        // Micro-benchmarks: smooth behaviour, little system noise, but they
        // touch more paths than idle (paper Sec. V-A).
        (
            "coremark",
            MicroBench,
            0.55,
            0.05,
            0.45,
            (0.10, 8.0, 3.0, 0.35),
        ),
        (
            "daxpy",
            MicroBench,
            0.95,
            0.10,
            0.35,
            (0.10, 10.0, 3.0, 0.35),
        ),
        (
            "stream",
            MicroBench,
            0.50,
            0.70,
            0.40,
            (0.20, 9.0, 3.0, 0.35),
        ),
        // SPEC CPU 2017.
        ("gcc", Spec, 0.50, 0.35, 0.75, (0.50, 9.0, 3.0, 0.40)),
        ("mcf", Spec, 0.38, 0.80, 0.45, (0.30, 8.0, 3.0, 0.40)),
        ("x264", Spec, 0.75, 0.25, 0.60, (2.00, 30.0, 7.0, 0.55)),
        ("leela", Spec, 0.45, 0.15, 0.55, (0.50, 10.0, 3.0, 0.45)),
        ("exchange2", Spec, 0.50, 0.02, 0.30, (0.40, 12.0, 3.0, 0.50)),
        ("deepsjeng", Spec, 0.50, 0.10, 0.50, (0.50, 14.0, 4.0, 0.50)),
        ("xz", Spec, 0.45, 0.45, 0.50, (0.60, 13.0, 4.0, 0.50)),
        // PARSEC 3.0.
        ("ferret", Parsec, 0.70, 0.30, 0.65, (1.80, 28.0, 7.0, 0.55)),
        (
            "fluidanimate",
            Parsec,
            0.60,
            0.30,
            0.55,
            (1.00, 20.0, 4.0, 0.50),
        ),
        ("facesim", Parsec, 0.55, 0.60, 0.50, (0.80, 16.0, 4.0, 0.55)),
        ("lu_cb", Parsec, 0.80, 0.55, 0.50, (0.80, 15.0, 4.0, 0.50)),
        (
            "streamcluster",
            Parsec,
            0.30,
            0.60,
            0.40,
            (0.40, 10.0, 3.0, 0.45),
        ),
        (
            "blackscholes",
            Parsec,
            0.60,
            0.05,
            0.35,
            (0.30, 10.0, 3.0, 0.40),
        ),
        (
            "swaptions",
            Parsec,
            0.65,
            0.05,
            0.40,
            (0.40, 12.0, 3.0, 0.45),
        ),
        (
            "raytrace",
            Parsec,
            0.55,
            0.30,
            0.50,
            (0.50, 13.0, 3.0, 0.50),
        ),
        (
            "bodytrack",
            Parsec,
            0.60,
            0.15,
            0.50,
            (0.60, 14.0, 4.0, 0.50),
        ),
        ("vips", Parsec, 0.65, 0.20, 0.55, (0.70, 15.0, 4.0, 0.50)),
        ("canneal", Parsec, 0.45, 0.75, 0.45, (0.40, 11.0, 3.0, 0.45)),
        // ML inference / training.
        (
            "squeezenet",
            MlInference,
            0.65,
            0.12,
            0.45,
            (0.50, 12.0, 3.0, 0.45),
        ),
        (
            "resnet",
            MlInference,
            0.70,
            0.30,
            0.50,
            (0.60, 14.0, 4.0, 0.50),
        ),
        (
            "vgg19",
            MlInference,
            0.75,
            0.32,
            0.50,
            (0.70, 15.0, 4.0, 0.50),
        ),
        (
            "seq2seq",
            MlInference,
            0.55,
            0.22,
            0.50,
            (0.50, 12.0, 3.0, 0.45),
        ),
        (
            "babi",
            MlInference,
            0.50,
            0.20,
            0.45,
            (0.40, 11.0, 3.0, 0.45),
        ),
        (
            "mlp",
            MlInference,
            0.60,
            0.55,
            0.45,
            (0.50, 12.0, 3.0, 0.50),
        ),
    ];

    rows.into_iter()
        .map(|(name, kind, act, mem, path, (rate, mean, sigma, sharp))| {
            Workload::new(
                name,
                kind,
                act,
                mem,
                path,
                DiDtParams::new(rate, mean, sigma, sharp),
                1.0,
                class(name),
            )
        })
        .collect()
}

fn cached() -> &'static Vec<Workload> {
    static CATALOG: OnceLock<Vec<Workload>> = OnceLock::new();
    CATALOG.get_or_init(build_catalog)
}

/// Every calibrated workload profile (micro-benchmarks, SPEC, PARSEC, ML).
#[must_use]
pub fn catalog() -> &'static [Workload] {
    cached()
}

/// Looks a workload up by name.
///
/// # Errors
///
/// Returns [`AtmError::UnknownWorkload`] naming the missing profile, so
/// a typo in a workload name surfaces in the error instead of as a bare
/// `None`.
pub fn by_name(name: &str) -> Result<&'static Workload, AtmError> {
    cached()
        .iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| AtmError::unknown_workload(name))
}

/// The three micro-benchmarks of the paper's uBench characterization.
#[must_use]
pub fn ubench_set() -> Vec<&'static Workload> {
    cached()
        .iter()
        .filter(|w| w.kind() == WorkloadKind::MicroBench)
        .collect()
}

/// The SPEC + PARSEC single-threaded profiling set of the realistic
/// characterization (paper Fig. 10).
#[must_use]
pub fn realistic_set() -> Vec<&'static Workload> {
    cached()
        .iter()
        .filter(|w| matches!(w.kind(), WorkloadKind::Spec | WorkloadKind::Parsec))
        .collect()
}

/// The ML inference workloads used as critical applications.
#[must_use]
pub fn ml_inference_set() -> Vec<&'static Workload> {
    cached()
        .iter()
        .filter(|w| w.kind() == WorkloadKind::MlInference)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Role;

    #[test]
    fn catalog_nonempty_and_unique() {
        let cat = catalog();
        assert!(cat.len() >= 25);
        let mut names: Vec<_> = cat.iter().map(Workload::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn by_name_finds_everything() {
        for w in catalog() {
            assert_eq!(by_name(w.name()).unwrap().name(), w.name());
        }
        let err = by_name("does-not-exist").unwrap_err();
        assert!(err.to_string().contains("does-not-exist"), "{err}");
    }

    #[test]
    fn every_table2_app_has_a_profile() {
        for (name, class) in classification_table() {
            let w = by_name(name).unwrap_or_else(|_| panic!("missing profile for {name}"));
            assert_eq!(w.class(), Some(&class), "class mismatch for {name}");
        }
    }

    #[test]
    fn x264_and_ferret_are_top_stressors() {
        let worst_two: f64 = ["x264", "ferret"]
            .iter()
            .map(|n| by_name(n).unwrap().didt().worst_case_unseen_mv(0.9))
            .fold(f64::MAX, f64::min);
        for w in realistic_set() {
            if w.name() == "x264" || w.name() == "ferret" {
                continue;
            }
            assert!(
                w.didt().worst_case_unseen_mv(0.9) < worst_two,
                "{} out-stresses x264/ferret",
                w.name()
            );
        }
    }

    #[test]
    fn mcf_is_most_memory_bound_spec() {
        let mcf = by_name("mcf").unwrap();
        for w in catalog().iter().filter(|w| w.kind() == WorkloadKind::Spec) {
            if w.name() != "mcf" {
                assert!(w.mem_fraction() <= mcf.mem_fraction());
            }
        }
    }

    #[test]
    fn streamcluster_draws_least_power_among_backgrounds() {
        let sc = by_name("streamcluster").unwrap();
        for w in catalog() {
            if let Some(c) = w.class() {
                if c.role == Role::Background && w.name() != "streamcluster" {
                    assert!(
                        w.activity() > sc.activity(),
                        "{} not above streamcluster",
                        w.name()
                    );
                }
            }
        }
    }

    #[test]
    fn ubench_set_is_the_three_microbenchmarks() {
        let names: Vec<_> = ubench_set().iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 3);
        for n in ["coremark", "daxpy", "stream"] {
            assert!(names.contains(&n));
        }
    }

    #[test]
    fn ubench_didt_is_mild() {
        // uBench must create little di/dt (paper: smooth behaviour, no
        // pipeline flushes) so that its limit reflects path coverage.
        for w in ubench_set() {
            assert!(
                w.didt().worst_case_unseen_mv(0.99) < 6.0,
                "{} too noisy",
                w.name()
            );
        }
    }

    #[test]
    fn realistic_set_covers_spec_and_parsec() {
        let set = realistic_set();
        assert!(set.iter().any(|w| w.kind() == WorkloadKind::Spec));
        assert!(set.iter().any(|w| w.kind() == WorkloadKind::Parsec));
        assert!(set.len() >= 15);
    }
}
