//! Workload models for the `power-atm` stack.
//!
//! The paper characterizes fine-tuned ATM under a progression of workloads
//! (its Fig. 6 methodology): **system idle**, **micro-benchmarks**
//! (coremark, daxpy, stream), **realistic workloads** (SPEC CPU 2017,
//! PARSEC 3.0, ML inference), and **stressmarks** (a voltage virus plus
//! power virus for the test-time deployment procedure).
//!
//! Only four attributes of a workload matter to the ATM phenomena the paper
//! studies, and a [`Workload`] profile carries exactly those:
//!
//! * **switching activity** → power draw → DC IR drop (seen by the loop,
//!   lowers frequency);
//! * **di/dt behaviour** → droop events whose sharp edges can escape the
//!   loop (unseen, threatens correctness);
//! * **path-coverage stress** → how many exotic timing paths the code
//!   exercises that the CPM synthetic paths do not mimic (unseen margin
//!   loss, forces CPM rollback);
//! * **memory-boundedness** → how performance scales with frequency
//!   (paper Fig. 12b).
//!
//! [`catalog`] returns every profile used by the paper's evaluation, and
//! [`AppClass`] encodes its Table II critical/background classification.
//!
//! # Examples
//!
//! ```
//! use atm_workloads::{by_name, Role};
//!
//! let x264 = by_name("x264").unwrap();
//! let gcc = by_name("gcc").unwrap();
//! // x264 stresses the ATM loop much harder than gcc (paper Fig. 9).
//! assert!(x264.didt().magnitude_mean() > gcc.didt().magnitude_mean());
//! assert_eq!(x264.class().unwrap().role, Role::Background);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod classify;
mod profile;
mod service;
mod stressmark;

pub use catalog::{by_name, catalog, ml_inference_set, realistic_set, ubench_set};
pub use classify::{classification_table, AppClass, Role};
pub use profile::{Workload, WorkloadKind};
pub use service::ServiceProfile;
pub use stressmark::{isa_suite, power_virus, voltage_virus};
