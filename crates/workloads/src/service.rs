//! Request service-time profiles.
//!
//! The serving layer (`atm-serve`) models each workload as a stream of
//! requests: one SqueezeNet inference, one x264 GOP encode, one unit of a
//! batch job. A [`ServiceProfile`] gives the mean time one request takes
//! at the 4.2 GHz static-margin baseline plus a dispersion factor, and
//! converts a core's measured clock into a concrete per-request service
//! time through the same frequency-scaling model as
//! [`Workload::speedup`] — so a fine-tuned core that clocks 10% higher
//! serves compute-bound requests ~10% faster, while memory-bound requests
//! saturate exactly as the paper's Fig. 12b predicts.

use atm_units::{MegaHz, Nanos};
use serde::{Deserialize, Serialize};

use crate::profile::{Workload, WorkloadKind};

/// Mean baseline service times per suite, in nanoseconds of virtual
/// serving time. ML inference matches the paper's Sec. II latency scale
/// (tens of milliseconds per inference); batch suites are sized as
/// per-request work units rather than whole-benchmark runtimes.
fn kind_base_ns(kind: WorkloadKind) -> f64 {
    match kind {
        WorkloadKind::Idle => 10_000.0,            // 10 µs bookkeeping
        WorkloadKind::MicroBench => 100_000.0,     // 0.1 ms kernel
        WorkloadKind::Spec => 4_000_000.0,         // 4 ms work unit
        WorkloadKind::Parsec => 6_000_000.0,       // 6 ms frame/chunk
        WorkloadKind::MlInference => 40_000_000.0, // 40 ms inference
        WorkloadKind::Stressmark => 1_000_000.0,   // 1 ms burst
    }
}

/// How one request of a workload occupies a core.
///
/// # Examples
///
/// ```
/// use atm_units::MegaHz;
/// use atm_workloads::{by_name, ServiceProfile};
///
/// let sq = by_name("squeezenet").unwrap();
/// let profile = ServiceProfile::for_workload(sq);
/// let base = MegaHz::new(4200.0);
/// let fast = MegaHz::new(4830.0); // +15% clock
/// // A faster core serves the same request sooner.
/// assert!(profile.sample(sq, fast, base, 0.5) < profile.sample(sq, base, base, 0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Mean service time at the 4.2 GHz baseline.
    base: Nanos,
    /// Half-width of the uniform dispersion around the mean, as a fraction
    /// of it (in `[0, 1)`).
    dispersion: f64,
}

impl ServiceProfile {
    /// Builds a profile with an explicit baseline mean and dispersion.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not positive or `dispersion` is outside
    /// `[0, 1)`.
    #[must_use]
    pub fn new(base: Nanos, dispersion: f64) -> Self {
        assert!(base.get() > 0.0, "base service time must be positive");
        assert!(
            (0.0..1.0).contains(&dispersion),
            "dispersion out of [0, 1): {dispersion}"
        );
        ServiceProfile { base, dispersion }
    }

    /// The calibrated profile for `workload`: the suite's baseline request
    /// size scaled by the workload's switching activity (hotter code does
    /// more per request), with dispersion growing with path stress (more
    /// exotic code paths, more variable requests).
    #[must_use]
    pub fn for_workload(workload: &Workload) -> Self {
        let base = kind_base_ns(workload.kind()) * (0.6 + 0.8 * workload.activity());
        let dispersion = 0.05 + 0.35 * workload.path_stress();
        ServiceProfile::new(Nanos::new(base), dispersion)
    }

    /// The mean service time at the 4.2 GHz baseline.
    #[must_use]
    pub fn base(&self) -> Nanos {
        self.base
    }

    /// The dispersion half-width fraction.
    #[must_use]
    pub fn dispersion(&self) -> f64 {
        self.dispersion
    }

    /// The mean service time when the serving core clocks at `freq`
    /// (relative to `baseline`): the baseline mean divided by the
    /// workload's frequency speedup.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is zero.
    #[must_use]
    pub fn mean_at(&self, workload: &Workload, freq: MegaHz, baseline: MegaHz) -> Nanos {
        Nanos::new(self.base.get() / workload.speedup(freq, baseline))
    }

    /// One concrete service time from a uniform draw `u ∈ [0, 1)`: the
    /// frequency-scaled mean spread uniformly over
    /// `[1 − dispersion, 1 + dispersion)`. Deterministic in `u`, so seeded
    /// request streams replay bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1)` or either frequency is zero.
    #[must_use]
    pub fn sample(&self, workload: &Workload, freq: MegaHz, baseline: MegaHz, u: f64) -> Nanos {
        assert!((0.0..1.0).contains(&u), "u out of [0,1): {u}");
        let mean = self.mean_at(workload, freq, baseline);
        let jitter = 1.0 + self.dispersion * (2.0 * u - 1.0);
        Nanos::new(mean.get() * jitter)
    }
}

impl Workload {
    /// The calibrated request service-time profile for this workload
    /// ([`ServiceProfile::for_workload`]).
    #[must_use]
    pub fn service_profile(&self) -> ServiceProfile {
        ServiceProfile::for_workload(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::catalog::by_name;

    const BASE: MegaHz = MegaHz::new_const(4200.0);

    #[test]
    fn every_catalog_workload_has_a_positive_profile() {
        for w in catalog::catalog() {
            let p = w.service_profile();
            assert!(p.base().get() > 0.0, "{} base", w.name());
            assert!(
                (0.0..1.0).contains(&p.dispersion()),
                "{} dispersion",
                w.name()
            );
        }
    }

    #[test]
    fn inference_requests_dwarf_spec_units() {
        let sq = by_name("squeezenet").unwrap();
        let gcc = by_name("gcc").unwrap();
        assert!(sq.service_profile().base() > gcc.service_profile().base());
        // SqueezeNet inference sits at the paper's tens-of-ms scale.
        let ms = sq.service_profile().base().get() / 1e6;
        assert!((20.0..80.0).contains(&ms), "squeezenet {ms} ms");
    }

    #[test]
    fn faster_clock_shortens_service() {
        let sq = by_name("squeezenet").unwrap();
        let p = sq.service_profile();
        let fast = p.mean_at(sq, MegaHz::new(4830.0), BASE);
        assert!(fast < p.base());
        // Compute-bound inference: ~15% clock → >10% faster service.
        assert!(fast.get() < p.base().get() * 0.92);
    }

    #[test]
    fn memory_bound_saturates() {
        let mcf = by_name("mcf").unwrap();
        let x264 = by_name("x264").unwrap();
        let f = MegaHz::new(4830.0);
        let gain = |w: &Workload| {
            let p = w.service_profile();
            p.base().get() / p.mean_at(w, f, BASE).get()
        };
        assert!(gain(mcf) < gain(x264));
    }

    #[test]
    fn sample_spans_the_dispersion_band() {
        let w = by_name("x264").unwrap();
        let p = w.service_profile();
        let mean = p.mean_at(w, BASE, BASE).get();
        let lo = p.sample(w, BASE, BASE, 0.0).get();
        let hi = p.sample(w, BASE, BASE, 0.999_999).get();
        assert!(lo < mean && mean < hi);
        assert!((lo / mean - (1.0 - p.dispersion())).abs() < 1e-9);
        // The same draw always yields the same time.
        assert_eq!(p.sample(w, BASE, BASE, 0.25), p.sample(w, BASE, BASE, 0.25));
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn sample_rejects_out_of_range_draw() {
        let w = by_name("gcc").unwrap();
        let _ = w.service_profile().sample(w, BASE, BASE, 1.0);
    }

    #[test]
    #[should_panic(expected = "dispersion")]
    fn dispersion_bounds_enforced() {
        let _ = ServiceProfile::new(Nanos::new(1000.0), 1.0);
    }
}
