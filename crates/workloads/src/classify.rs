//! Table II: critical/background × memory-intensity classification.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Whether an application is user-facing latency-critical or a
/// throughput-tolerant background job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// User-facing, requires high performance for low latency (inference,
    /// object detection, real-time image processing, similarity search).
    Critical,
    /// Tolerates lower performance (training, rendering, compression,
    /// compilation, pricing).
    Background,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Critical => "critical",
            Role::Background => "background",
        })
    }
}

/// An application's Table II cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppClass {
    /// Critical or background.
    pub role: Role,
    /// Whether the app interferes heavily with the memory subsystem (the
    /// paper avoids co-locating two memory-intensive workloads).
    pub mem_intensive: bool,
}

impl AppClass {
    /// Critical, memory-intensive.
    pub const CRITICAL_MEM: AppClass = AppClass {
        role: Role::Critical,
        mem_intensive: true,
    };
    /// Critical, not memory-intensive.
    pub const CRITICAL: AppClass = AppClass {
        role: Role::Critical,
        mem_intensive: false,
    };
    /// Background, memory-intensive.
    pub const BACKGROUND_MEM: AppClass = AppClass {
        role: Role::Background,
        mem_intensive: true,
    };
    /// Background, not memory-intensive.
    pub const BACKGROUND: AppClass = AppClass {
        role: Role::Background,
        mem_intensive: false,
    };

    /// Whether two apps may be co-located under the paper's rule: never
    /// two memory-intensive workloads on the same chip.
    #[must_use]
    pub fn may_colocate_with(&self, other: &AppClass) -> bool {
        !(self.mem_intensive && other.mem_intensive)
    }
}

/// The paper's Table II, as `(workload name, class)` rows.
#[must_use]
pub fn classification_table() -> Vec<(&'static str, AppClass)> {
    vec![
        // Critical, memory-intensive.
        ("resnet", AppClass::CRITICAL_MEM),
        ("vgg19", AppClass::CRITICAL_MEM),
        ("ferret", AppClass::CRITICAL_MEM),
        ("fluidanimate", AppClass::CRITICAL_MEM),
        // Critical, non-intensive.
        ("squeezenet", AppClass::CRITICAL),
        ("seq2seq", AppClass::CRITICAL),
        ("babi", AppClass::CRITICAL),
        ("bodytrack", AppClass::CRITICAL),
        ("vips", AppClass::CRITICAL),
        // Background, memory-intensive.
        ("mlp", AppClass::BACKGROUND_MEM),
        ("gcc", AppClass::BACKGROUND_MEM),
        ("facesim", AppClass::BACKGROUND_MEM),
        ("lu_cb", AppClass::BACKGROUND_MEM),
        ("streamcluster", AppClass::BACKGROUND_MEM),
        // Background, non-intensive.
        ("blackscholes", AppClass::BACKGROUND),
        ("x264", AppClass::BACKGROUND),
        ("swaptions", AppClass::BACKGROUND),
        ("raytrace", AppClass::BACKGROUND),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_four_quadrants() {
        let table = classification_table();
        for class in [
            AppClass::CRITICAL_MEM,
            AppClass::CRITICAL,
            AppClass::BACKGROUND_MEM,
            AppClass::BACKGROUND,
        ] {
            assert!(
                table.iter().filter(|(_, c)| *c == class).count() >= 4,
                "quadrant {class:?} underpopulated"
            );
        }
    }

    #[test]
    fn colocate_rule_blocks_double_mem() {
        assert!(!AppClass::CRITICAL_MEM.may_colocate_with(&AppClass::BACKGROUND_MEM));
        assert!(AppClass::CRITICAL_MEM.may_colocate_with(&AppClass::BACKGROUND));
        assert!(AppClass::CRITICAL.may_colocate_with(&AppClass::BACKGROUND_MEM));
        assert!(AppClass::CRITICAL.may_colocate_with(&AppClass::BACKGROUND));
    }

    #[test]
    fn no_duplicate_names() {
        let table = classification_table();
        let mut names: Vec<_> = table.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), table.len());
    }

    #[test]
    fn roles_display() {
        assert_eq!(Role::Critical.to_string(), "critical");
        assert_eq!(Role::Background.to_string(), "background");
    }
}
