//! Property tests for the DPLL and ATM control loop.

use atm_cpm::{CpmReading, CpmUnit};
use atm_dpll::{AtmLoop, AtmLoopConfig, Dpll, FreqWindow, UndervoltController};
use atm_units::{MegaHz, Nanos, Picos, Volts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dpll_stays_within_bounds(
        initial in 1000.0f64..6000.0,
        ops in prop::collection::vec((0u8..2, 0.0f64..0.05), 0..200),
    ) {
        let fmin = MegaHz::new(2000.0);
        let fmax = MegaHz::new(5400.0);
        let mut d = Dpll::new(MegaHz::new(initial), fmin, fmax);
        for (op, rate) in ops {
            if op == 0 {
                d.slew_up(rate);
            } else {
                d.slew_down(rate.min(0.99));
            }
            prop_assert!(d.frequency() >= fmin && d.frequency() <= fmax);
        }
    }

    #[test]
    fn loop_converges_from_any_start(start in 2100.0f64..5300.0, occupied in 180.0f64..230.0) {
        // Synthetic plant: margin = period − occupied.
        let cfg = AtmLoopConfig::power7_plus();
        let mut lp = AtmLoop::new(cfg, MegaHz::new(start));
        for _ in 0..60_000 {
            let margin = lp.frequency().period() - Picos::new(occupied);
            lp.step(CpmReading::quantize(CpmUnit::FixedPoint, margin));
        }
        let margin = lp.frequency().period() - Picos::new(occupied);
        let units = (margin.get() / atm_cpm::READOUT_QUANTUM.get()).floor();
        prop_assert!(
            (units - f64::from(cfg.threshold_units)).abs() <= 1.0,
            "settled at {units} units from start {start}"
        );
    }

    #[test]
    fn violation_always_backs_off(start in 2500.0f64..5300.0) {
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(start));
        let f0 = lp.frequency();
        lp.step(CpmReading::quantize(CpmUnit::Cache, Picos::new(-1.0)));
        prop_assert!(lp.frequency() < f0);
        prop_assert_eq!(lp.violations(), 1);
    }

    #[test]
    fn window_average_within_sample_range(
        samples in prop::collection::vec(2000.0f64..5400.0, 1..100),
    ) {
        let mut w = FreqWindow::new(Nanos::new(1000.0));
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for s in &samples {
            w.push(MegaHz::new(*s), Nanos::new(10.0));
        }
        // Only samples still inside the window bound the average.
        let window_samples: Vec<f64> = samples
            .iter()
            .rev()
            .take(100)
            .copied()
            .collect();
        for s in &window_samples {
            lo = lo.min(*s);
            hi = hi.max(*s);
        }
        let avg = w.average().unwrap().get();
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
    }

    #[test]
    fn undervolt_controller_stays_in_range(
        freqs in prop::collection::vec(4000.0f64..5000.0, 1..200),
    ) {
        let vmax = Volts::new(1.25);
        let vmin = Volts::new(1.05);
        let mut uv = UndervoltController::new(MegaHz::new(4400.0), vmax, vmin, Volts::new(0.005));
        for f in freqs {
            let v = uv.update(MegaHz::new(f));
            prop_assert!(v >= vmin && v <= vmax);
        }
    }
}

#[test]
fn loop_equilibrium_is_independent_of_history() {
    // Converging from below and from above must land on the same
    // frequency (within one quantization step) — no hysteresis.
    let occupied = Picos::new(200.0);
    let settle = |start: f64| {
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(start));
        for _ in 0..60_000 {
            let margin = lp.frequency().period() - occupied;
            lp.step(CpmReading::quantize(CpmUnit::FixedPoint, margin));
        }
        lp.frequency().get()
    };
    let from_below = settle(3000.0);
    let from_above = settle(5300.0);
    assert!(
        (from_below - from_above).abs() < 60.0,
        "hysteresis: {from_below} vs {from_above}"
    );
}
