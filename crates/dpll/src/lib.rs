//! The per-core clock generation and Active Timing Margin control loop.
//!
//! POWER7+ gives every core a digital phase-locked loop (DPLL) that can
//! slew frequency at fine granularity, plus a feedback loop from the
//! core's CPMs: each cycle the worst CPM reading is compared against a
//! threshold and the clock is adjusted — down fast (or gated outright) on
//! a margin deficit, up slowly when excess margin is available.
//!
//! This crate models that loop at simulation-tick granularity:
//!
//! * [`Dpll`] — the frequency actuator with asymmetric slew rates and
//!   emergency clock gating;
//! * [`AtmLoop`] — the comparator connecting CPM readings to the DPLL;
//! * [`FreqWindow`] — the 32 ms sliding-window average frequency the
//!   off-chip voltage controller consumes;
//! * [`AtmPolicy`] / [`UndervoltController`] — the off-chip policy that
//!   turns reclaimed margin into either frequency (overclocking, what the
//!   paper uses) or power savings (undervolting, what it bypasses).
//!
//! # Examples
//!
//! ```
//! use atm_dpll::{AtmLoop, AtmLoopConfig};
//! use atm_cpm::{CpmReading, CpmUnit};
//! use atm_units::{MegaHz, Picos};
//!
//! let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(4200.0));
//! // Plenty of margin: the loop slews the clock upward.
//! let before = lp.frequency();
//! lp.step(CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(30.0)));
//! assert!(lp.frequency() > before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actuator;
mod control;
mod policy;
mod window;

pub use actuator::{ActuatorFault, Dpll};
pub use control::{AtmLoop, AtmLoopConfig, LoopAction};
pub use policy::{AtmPolicy, UndervoltController};
pub use window::FreqWindow;
