//! Sliding-window average frequency, consumed by the off-chip controller.

use std::collections::VecDeque;

use atm_units::{MegaHz, Nanos};
use serde::{Deserialize, Serialize};

/// A time-weighted sliding-window average of a core's frequency.
///
/// The POWER7+ off-chip voltage controller reads a **32 ms** sliding-window
/// average of the slowest core's frequency to decide how much the chip can
/// be undervolted without missing the frequency target.
///
/// # Examples
///
/// ```
/// use atm_dpll::FreqWindow;
/// use atm_units::{MegaHz, Nanos};
///
/// let mut w = FreqWindow::new(Nanos::new(32.0e6)); // 32 ms
/// w.push(MegaHz::new(4600.0), Nanos::new(1.0e6));
/// w.push(MegaHz::new(4400.0), Nanos::new(1.0e6));
/// let avg = w.average().unwrap();
/// assert!((avg.get() - 4500.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqWindow {
    duration: Nanos,
    samples: VecDeque<(MegaHz, Nanos)>,
    held: Nanos,
}

impl FreqWindow {
    /// Creates a window of the given duration.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    #[must_use]
    pub fn new(duration: Nanos) -> Self {
        assert!(duration.get() > 0.0, "window duration must be positive");
        FreqWindow {
            duration,
            samples: VecDeque::new(),
            held: Nanos::ZERO,
        }
    }

    /// The POWER7+ 32 ms window.
    #[must_use]
    pub fn power7_plus() -> Self {
        FreqWindow::new(Nanos::new(32.0e6))
    }

    /// The window duration.
    #[must_use]
    pub fn duration(&self) -> Nanos {
        self.duration
    }

    /// Records that the core ran at `f` for `dt`; evicts samples older
    /// than the window.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn push(&mut self, f: MegaHz, dt: Nanos) {
        assert!(dt.get() > 0.0, "sample duration must be positive");
        self.samples.push_back((f, dt));
        self.held += dt;
        while self.held.get() > self.duration.get() {
            let (_, front_dt) = *self.samples.front().expect("held > 0 implies samples");
            let excess = self.held - self.duration;
            if front_dt.get() <= excess.get() + 1e-12 {
                self.samples.pop_front();
                self.held = self.held - front_dt;
            } else {
                // Trim the oldest sample partially.
                let (f0, _) = self.samples[0];
                self.samples[0] = (f0, front_dt - excess);
                self.held = self.duration;
            }
        }
    }

    /// The time-weighted average frequency over the window, or `None` if
    /// no samples have been recorded yet.
    #[must_use]
    pub fn average(&self) -> Option<MegaHz> {
        if self.samples.is_empty() {
            return None;
        }
        let total: f64 = self.samples.iter().map(|(_, dt)| dt.get()).sum();
        let weighted: f64 = self.samples.iter().map(|(f, dt)| f.get() * dt.get()).sum();
        Some(MegaHz::new(weighted / total))
    }

    /// Clears all samples (e.g. after a p-state change).
    pub fn reset(&mut self) {
        self.samples.clear();
        self.held = Nanos::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_average() {
        assert!(FreqWindow::power7_plus().average().is_none());
    }

    #[test]
    fn average_is_time_weighted() {
        let mut w = FreqWindow::new(Nanos::new(10.0));
        w.push(MegaHz::new(4000.0), Nanos::new(1.0));
        w.push(MegaHz::new(5000.0), Nanos::new(3.0));
        let avg = w.average().unwrap();
        assert!((avg.get() - 4750.0).abs() < 1e-9);
    }

    #[test]
    fn old_samples_evicted() {
        let mut w = FreqWindow::new(Nanos::new(10.0));
        w.push(MegaHz::new(1000.0), Nanos::new(10.0));
        w.push(MegaHz::new(5000.0), Nanos::new(10.0));
        // The first sample is fully outside the window now.
        assert!((w.average().unwrap().get() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn partial_eviction_trims() {
        let mut w = FreqWindow::new(Nanos::new(10.0));
        w.push(MegaHz::new(1000.0), Nanos::new(8.0));
        w.push(MegaHz::new(5000.0), Nanos::new(8.0));
        // Window holds 2 ns of the old sample and 8 ns of the new.
        let expected = (1000.0 * 2.0 + 5000.0 * 8.0) / 10.0;
        assert!((w.average().unwrap().get() - expected).abs() < 1e-6);
    }

    #[test]
    fn reset_clears() {
        let mut w = FreqWindow::new(Nanos::new(10.0));
        w.push(MegaHz::new(4000.0), Nanos::new(1.0));
        w.reset();
        assert!(w.average().is_none());
    }

    #[test]
    fn long_stream_bounded_memory() {
        let mut w = FreqWindow::new(Nanos::new(100.0));
        for i in 0..100_000 {
            w.push(MegaHz::new(4000.0 + f64::from(i % 100)), Nanos::new(1.0));
        }
        assert!(w.samples.len() <= 101);
    }
}
