//! The ATM comparator loop between CPM readings and the DPLL.

use atm_cpm::{CpmReading, READOUT_QUANTUM};
use atm_telemetry::{DpllStep, LoopVerdict, Recorder, TelemetryEvent};
use atm_units::{CoreId, MegaHz, Picos};
use serde::{Deserialize, Serialize};

use crate::actuator::{ActuatorFault, Dpll};

/// Configuration of one core's ATM control loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtmLoopConfig {
    /// Margin threshold in readout units: the loop holds the worst CPM at
    /// this reading.
    pub threshold_units: u32,
    /// Fractional frequency increase per step when margin is in excess.
    pub up_rate: f64,
    /// Fractional frequency decrease per step per unit of margin deficit.
    pub down_rate_per_unit: f64,
    /// Cycles gated when a reading shows an outright violation.
    pub gate_cycles: u64,
    /// Lower DPLL bound.
    pub fmin: MegaHz,
    /// Upper DPLL bound.
    pub fmax: MegaHz,
}

impl AtmLoopConfig {
    /// POWER7+-style loop: 5-unit (≈10 ps) threshold, +0.2% up-slew per
    /// step, −1% per missing margin unit, 4-cycle emergency gate, DPLL
    /// range 2.0–5.4 GHz.
    #[must_use]
    pub fn power7_plus() -> Self {
        AtmLoopConfig {
            threshold_units: 5,
            up_rate: 0.002,
            down_rate_per_unit: 0.01,
            gate_cycles: 4,
            fmin: MegaHz::new(2000.0),
            fmax: MegaHz::new(5400.0),
        }
    }

    /// The threshold expressed as time.
    #[must_use]
    pub fn threshold_time(&self) -> Picos {
        READOUT_QUANTUM * f64::from(self.threshold_units)
    }

    fn validate(&self) {
        assert!(self.up_rate >= 0.0, "up_rate must be non-negative");
        assert!(
            (0.0..1.0).contains(&self.down_rate_per_unit),
            "down_rate_per_unit out of [0,1)"
        );
        assert!(
            self.fmin.get() > 0.0 && self.fmin <= self.fmax,
            "bad DPLL range"
        );
    }
}

impl Default for AtmLoopConfig {
    fn default() -> Self {
        AtmLoopConfig::power7_plus()
    }
}

/// What the loop did in a step, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopAction {
    /// Excess margin: frequency was slewed up.
    SlewUp,
    /// Margin at the threshold: no change.
    Hold,
    /// Margin deficit: frequency was slewed down.
    SlewDown,
    /// Violation: the clock was gated and frequency dropped hard.
    Gate,
}

impl LoopAction {
    /// The telemetry mirror of this action.
    #[must_use]
    pub fn verdict(self) -> LoopVerdict {
        match self {
            LoopAction::SlewUp => LoopVerdict::SlewUp,
            LoopAction::Hold => LoopVerdict::Hold,
            LoopAction::SlewDown => LoopVerdict::SlewDown,
            LoopAction::Gate => LoopVerdict::Gate,
        }
    }

    /// The counter name bumped when this action is recorded.
    #[must_use]
    pub fn counter(self) -> &'static str {
        match self {
            LoopAction::SlewUp => "dpll.slew_up",
            LoopAction::Hold => "dpll.hold",
            LoopAction::SlewDown => "dpll.slew_down",
            LoopAction::Gate => "dpll.gate",
        }
    }
}

/// One core's ATM control loop: compares each CPM reading against the
/// threshold and drives the [`Dpll`].
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtmLoop {
    config: AtmLoopConfig,
    dpll: Dpll,
    violations: u64,
    actuator_fault: Option<ActuatorFault>,
}

impl AtmLoop {
    /// Creates a loop with its DPLL initially at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see field docs).
    #[must_use]
    pub fn new(config: AtmLoopConfig, initial: MegaHz) -> Self {
        config.validate();
        AtmLoop {
            config,
            dpll: Dpll::new(initial, config.fmin, config.fmax),
            violations: 0,
            actuator_fault: None,
        }
    }

    /// The loop configuration.
    #[must_use]
    pub fn config(&self) -> &AtmLoopConfig {
        &self.config
    }

    /// The current clock frequency.
    #[must_use]
    #[inline]
    pub fn frequency(&self) -> MegaHz {
        self.dpll.frequency()
    }

    /// The underlying DPLL (for telemetry such as gated-cycle counts).
    #[must_use]
    pub fn dpll(&self) -> &Dpll {
        &self.dpll
    }

    /// Number of violation events the loop has absorbed.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Re-locks the DPLL at `f` (a p-state change).
    pub fn relock(&mut self, f: MegaHz) {
        self.dpll.set_frequency(f);
    }

    /// Arms (`Some`) or clears (`None`) an actuator fault. While armed,
    /// commanded slews are filtered through the fault — frozen for
    /// [`ActuatorFault::SlewStuck`], scaled for
    /// [`ActuatorFault::Misstep`] — but the loop's decision logic,
    /// violation counting, and emergency gating are unchanged.
    pub fn set_actuator_fault(&mut self, fault: Option<ActuatorFault>) {
        self.actuator_fault = fault;
    }

    /// The currently armed actuator fault, if any.
    #[must_use]
    pub fn actuator_fault(&self) -> Option<ActuatorFault> {
        self.actuator_fault
    }

    /// Slews up through the armed actuator fault, if any.
    #[inline]
    fn slew_up_faulted(&mut self, rate: f64) {
        match self.actuator_fault {
            None => self.dpll.slew_up(rate),
            Some(ActuatorFault::SlewStuck) => {}
            Some(ActuatorFault::Misstep { scale }) => self.dpll.slew_up(rate * scale.max(0.0)),
        }
    }

    /// Slews down through the armed actuator fault, if any. The effective
    /// rate is clamped below 1 so a wild `Misstep` scale cannot violate
    /// the actuator's contract.
    #[inline]
    fn slew_down_faulted(&mut self, rate: f64) {
        match self.actuator_fault {
            None => self.dpll.slew_down(rate),
            Some(ActuatorFault::SlewStuck) => {}
            Some(ActuatorFault::Misstep { scale }) => {
                self.dpll.slew_down((rate * scale.max(0.0)).min(0.99));
            }
        }
    }

    /// Advances the loop one step with the worst CPM reading of the
    /// interval, returning the action taken.
    pub fn step(&mut self, reading: CpmReading) -> LoopAction {
        if reading.is_violation() {
            self.violations += 1;
            self.dpll.gate(self.config.gate_cycles);
            // Hard back-off: treat as a max-deficit slew.
            let deficit = f64::from(self.config.threshold_units.max(1));
            self.slew_down_faulted((self.config.down_rate_per_unit * deficit).min(0.99));
            return LoopAction::Gate;
        }
        let units = reading.units();
        if units > self.config.threshold_units {
            self.slew_up_faulted(self.config.up_rate);
            LoopAction::SlewUp
        } else if units == self.config.threshold_units {
            LoopAction::Hold
        } else {
            let deficit = f64::from(self.config.threshold_units - units);
            self.slew_down_faulted((self.config.down_rate_per_unit * deficit).min(0.99));
            LoopAction::SlewDown
        }
    }

    /// Like [`AtmLoop::step`], but reports the step into `rec`: one
    /// per-action counter (see [`LoopAction::counter`]) and, when the
    /// recorder is enabled, a [`DpllStep`] event stamped with the
    /// recorder's clock. The control decision itself is identical to
    /// [`AtmLoop::step`] — recording only observes.
    pub fn step_recorded<R: Recorder>(
        &mut self,
        reading: CpmReading,
        core: CoreId,
        rec: &mut R,
    ) -> LoopAction {
        let action = self.step(reading);
        rec.incr(action.counter(), 1);
        if rec.enabled() {
            rec.record(TelemetryEvent::Dpll(DpllStep {
                t: rec.now(),
                core,
                action: action.verdict(),
                freq: self.frequency(),
            }));
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_cpm::CpmUnit;

    fn reading(margin_ps: f64) -> CpmReading {
        CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(margin_ps))
    }

    #[test]
    fn excess_margin_slews_up() {
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(4200.0));
        assert_eq!(lp.step(reading(30.0)), LoopAction::SlewUp);
        assert!(lp.frequency() > MegaHz::new(4200.0));
    }

    #[test]
    fn threshold_margin_holds() {
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(4200.0));
        // 5 units × 2 ps = 10..12 ps reads as exactly the threshold.
        assert_eq!(lp.step(reading(10.5)), LoopAction::Hold);
        assert_eq!(lp.frequency(), MegaHz::new(4200.0));
    }

    #[test]
    fn deficit_slews_down_proportionally() {
        let cfg = AtmLoopConfig::power7_plus();
        let mut small = AtmLoop::new(cfg, MegaHz::new(4200.0));
        let mut large = AtmLoop::new(cfg, MegaHz::new(4200.0));
        assert_eq!(small.step(reading(8.0)), LoopAction::SlewDown);
        assert_eq!(large.step(reading(2.0)), LoopAction::SlewDown);
        assert!(large.frequency() < small.frequency());
    }

    #[test]
    fn violation_gates_and_backs_off() {
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(4200.0));
        assert_eq!(lp.step(reading(-5.0)), LoopAction::Gate);
        assert_eq!(lp.violations(), 1);
        assert_eq!(lp.dpll().gated_cycles(), 4);
        assert!(lp.frequency() < MegaHz::new(4200.0));
    }

    #[test]
    fn loop_converges_to_threshold_margin() {
        // Feed the loop a synthetic plant: margin = period - occupied.
        let cfg = AtmLoopConfig::power7_plus();
        let mut lp = AtmLoop::new(cfg, MegaHz::new(4200.0));
        let occupied = Picos::new(200.0);
        for _ in 0..20_000 {
            let margin = lp.frequency().period() - occupied;
            lp.step(CpmReading::quantize(CpmUnit::FixedPoint, margin));
        }
        let margin = lp.frequency().period() - occupied;
        let units = (margin.get() / READOUT_QUANTUM.get()).floor();
        assert!(
            (units - f64::from(cfg.threshold_units)).abs() <= 1.0,
            "converged to {units} units, expected ~{}",
            cfg.threshold_units
        );
    }

    #[test]
    fn relock_moves_frequency() {
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(4200.0));
        lp.relock(MegaHz::new(3000.0));
        assert_eq!(lp.frequency(), MegaHz::new(3000.0));
    }

    #[test]
    fn recorded_step_matches_unrecorded() {
        use atm_telemetry::{NullRecorder, RingRecorder};

        let cfg = AtmLoopConfig::power7_plus();
        let mut plain = AtmLoop::new(cfg, MegaHz::new(4200.0));
        let mut nulled = AtmLoop::new(cfg, MegaHz::new(4200.0));
        let mut ringed = AtmLoop::new(cfg, MegaHz::new(4200.0));
        let mut ring = RingRecorder::with_capacity(16);
        let core = CoreId::new(0, 2);
        for ps in [30.0, 10.5, 8.0, -5.0] {
            let a = plain.step(reading(ps));
            let b = nulled.step_recorded(reading(ps), core, &mut NullRecorder);
            let c = ringed.step_recorded(reading(ps), core, &mut ring);
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
        assert_eq!(plain, nulled);
        assert_eq!(plain, ringed);
        assert_eq!(ring.counter("dpll.slew_up"), Some(1));
        assert_eq!(ring.counter("dpll.hold"), Some(1));
        assert_eq!(ring.counter("dpll.slew_down"), Some(1));
        assert_eq!(ring.counter("dpll.gate"), Some(1));
        assert_eq!(ring.events().len(), 4);
    }

    #[test]
    fn slew_stuck_freezes_frequency_but_still_gates() {
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(4200.0));
        lp.set_actuator_fault(Some(ActuatorFault::SlewStuck));
        assert_eq!(lp.step(reading(30.0)), LoopAction::SlewUp);
        assert_eq!(lp.frequency(), MegaHz::new(4200.0));
        assert_eq!(lp.step(reading(2.0)), LoopAction::SlewDown);
        assert_eq!(lp.frequency(), MegaHz::new(4200.0));
        assert_eq!(lp.step(reading(-5.0)), LoopAction::Gate);
        assert_eq!(lp.frequency(), MegaHz::new(4200.0));
        assert_eq!(lp.violations(), 1);
        assert_eq!(lp.dpll().gated_cycles(), 4);
    }

    #[test]
    fn misstep_scales_slews() {
        let cfg = AtmLoopConfig::power7_plus();
        let mut clean = AtmLoop::new(cfg, MegaHz::new(4200.0));
        let mut weak = AtmLoop::new(cfg, MegaHz::new(4200.0));
        weak.set_actuator_fault(Some(ActuatorFault::Misstep { scale: 0.1 }));
        clean.step(reading(30.0));
        weak.step(reading(30.0));
        assert!(weak.frequency() < clean.frequency());
        assert!(weak.frequency() > MegaHz::new(4200.0));
    }

    #[test]
    fn misstep_overshoot_is_clamped() {
        // A wild scale must not violate the actuator's [0,1) contract.
        let mut lp = AtmLoop::new(AtmLoopConfig::power7_plus(), MegaHz::new(4200.0));
        lp.set_actuator_fault(Some(ActuatorFault::Misstep { scale: 1e6 }));
        assert_eq!(lp.step(reading(2.0)), LoopAction::SlewDown);
        assert_eq!(lp.frequency(), MegaHz::new(2000.0));
    }

    #[test]
    fn clearing_fault_restores_behavior() {
        let cfg = AtmLoopConfig::power7_plus();
        let mut faulted = AtmLoop::new(cfg, MegaHz::new(4200.0));
        let mut clean = AtmLoop::new(cfg, MegaHz::new(4200.0));
        faulted.set_actuator_fault(Some(ActuatorFault::SlewStuck));
        faulted.set_actuator_fault(None);
        assert_eq!(faulted.actuator_fault(), None);
        assert_eq!(faulted.step(reading(30.0)), clean.step(reading(30.0)));
        assert_eq!(faulted.frequency(), clean.frequency());
    }

    #[test]
    fn threshold_time_matches_quantum() {
        let cfg = AtmLoopConfig::power7_plus();
        assert_eq!(cfg.threshold_time(), Picos::new(10.0));
    }
}
