//! Off-chip voltage-control policy: overclock or undervolt.

use atm_units::{MegaHz, Volts};
use serde::{Deserialize, Serialize};

/// How the off-chip controller spends ATM's reclaimed timing margin.
///
/// The paper *bypasses* undervolting ("we convert all of ATM's reclaimed
/// timing margin into frequency and keep Vdd unchanged") because the
/// chip-wide shared rail would let the worst core cap everyone's savings;
/// overclocking lets each core's loop float independently. Both policies
/// are implemented for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AtmPolicy {
    /// Keep Vdd fixed; every core's DPLL floats to its own maximum
    /// frequency. The paper's configuration.
    #[default]
    Overclock,
    /// Hold a chip-wide frequency target and convert the excess margin of
    /// the *slowest* core into a lower Vdd for the whole chip.
    Undervolt {
        /// The user-specified frequency target the chip must sustain.
        target: MegaHz,
    },
}

/// The off-chip undervolting controller.
///
/// Every control interval (32 ms on POWER7+) it reads the sliding-window
/// average frequency of the chip's slowest core and steps Vdd down while
/// the target is exceeded, or back up when the target is missed.
///
/// # Examples
///
/// ```
/// use atm_dpll::UndervoltController;
/// use atm_units::{MegaHz, Volts};
///
/// let mut uv = UndervoltController::new(
///     MegaHz::new(4400.0),
///     Volts::new(1.25),
///     Volts::new(1.05),
///     Volts::new(0.005),
/// );
/// // Slowest core comfortably above target: shave voltage.
/// let v1 = uv.update(MegaHz::new(4650.0));
/// assert!(v1 < Volts::new(1.25));
/// // Target missed: restore voltage.
/// let v2 = uv.update(MegaHz::new(4300.0));
/// assert!(v2 > v1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UndervoltController {
    target: MegaHz,
    vmax: Volts,
    vmin: Volts,
    step: Volts,
    current: Volts,
}

impl UndervoltController {
    /// Creates a controller starting at `vmax`.
    ///
    /// # Panics
    ///
    /// Panics if `vmin > vmax` or `step` is not positive.
    #[must_use]
    pub fn new(target: MegaHz, vmax: Volts, vmin: Volts, step: Volts) -> Self {
        assert!(vmin <= vmax, "vmin {vmin} exceeds vmax {vmax}");
        assert!(step.get() > 0.0, "voltage step must be positive");
        UndervoltController {
            target,
            vmax,
            vmin,
            step,
            current: vmax,
        }
    }

    /// The frequency target.
    #[must_use]
    pub fn target(&self) -> MegaHz {
        self.target
    }

    /// The current Vdd command.
    #[must_use]
    pub fn voltage(&self) -> Volts {
        self.current
    }

    /// One control interval: adjusts Vdd given the slowest core's
    /// windowed average frequency, returning the new command.
    pub fn update(&mut self, slowest_avg: MegaHz) -> Volts {
        if slowest_avg > self.target {
            self.current = self.current.saturating_sub(self.step).max(self.vmin);
        } else if slowest_avg < self.target {
            self.current = (self.current + self.step).min(self.vmax);
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> UndervoltController {
        UndervoltController::new(
            MegaHz::new(4400.0),
            Volts::new(1.25),
            Volts::new(1.05),
            Volts::new(0.005),
        )
    }

    #[test]
    fn default_policy_is_overclock() {
        assert_eq!(AtmPolicy::default(), AtmPolicy::Overclock);
    }

    #[test]
    fn undervolts_while_above_target() {
        let mut uv = controller();
        let mut prev = uv.voltage();
        for _ in 0..5 {
            let v = uv.update(MegaHz::new(4700.0));
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn never_below_vmin() {
        let mut uv = controller();
        for _ in 0..1000 {
            uv.update(MegaHz::new(5200.0));
        }
        assert_eq!(uv.voltage(), Volts::new(1.05));
    }

    #[test]
    fn recovers_when_target_missed() {
        let mut uv = controller();
        for _ in 0..10 {
            uv.update(MegaHz::new(4700.0));
        }
        let low = uv.voltage();
        for _ in 0..1000 {
            uv.update(MegaHz::new(4200.0));
        }
        assert!(uv.voltage() > low);
        assert_eq!(uv.voltage(), Volts::new(1.25));
    }

    #[test]
    fn holds_at_target() {
        let mut uv = controller();
        let v0 = uv.voltage();
        uv.update(MegaHz::new(4400.0));
        assert_eq!(uv.voltage(), v0);
    }

    #[test]
    #[should_panic(expected = "exceeds vmax")]
    fn inverted_range_rejected() {
        let _ = UndervoltController::new(
            MegaHz::new(4400.0),
            Volts::new(1.0),
            Volts::new(1.2),
            Volts::new(0.005),
        );
    }
}
