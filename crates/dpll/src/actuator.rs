//! The digital phase-locked loop frequency actuator.

use atm_units::MegaHz;
use serde::{Deserialize, Serialize};

/// A per-core DPLL: holds the core's clock frequency and enforces the
/// physical slew limits of the clock generator.
///
/// The DPLL can *reduce* frequency very quickly (that is the point of the
/// design — riding out a droop without gating), while *raising* frequency
/// is deliberately slow so the loop does not overshoot into a violation.
///
/// # Examples
///
/// ```
/// use atm_dpll::Dpll;
/// use atm_units::MegaHz;
///
/// let mut dpll = Dpll::new(MegaHz::new(4200.0), MegaHz::new(2000.0), MegaHz::new(5400.0));
/// dpll.slew_up(0.002);
/// assert!(dpll.frequency() > MegaHz::new(4200.0));
/// dpll.slew_down(0.05);
/// assert!(dpll.frequency() < MegaHz::new(4200.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dpll {
    frequency: MegaHz,
    fmin: MegaHz,
    fmax: MegaHz,
    gated_cycles: u64,
}

impl Dpll {
    /// Creates a DPLL at `initial`, clamped into `[fmin, fmax]`.
    ///
    /// # Panics
    ///
    /// Panics if `fmin > fmax` or `fmin` is zero.
    #[must_use]
    pub fn new(initial: MegaHz, fmin: MegaHz, fmax: MegaHz) -> Self {
        assert!(fmin.get() > 0.0, "fmin must be positive");
        assert!(fmin <= fmax, "fmin {fmin} exceeds fmax {fmax}");
        Dpll {
            frequency: initial.clamp(fmin, fmax),
            fmin,
            fmax,
            gated_cycles: 0,
        }
    }

    /// The current clock frequency.
    #[must_use]
    #[inline]
    pub fn frequency(&self) -> MegaHz {
        self.frequency
    }

    /// The lower frequency bound.
    #[must_use]
    pub fn fmin(&self) -> MegaHz {
        self.fmin
    }

    /// The upper frequency bound (the DPLL's lock range).
    #[must_use]
    pub fn fmax(&self) -> MegaHz {
        self.fmax
    }

    /// Cumulative count of emergency-gated cycles.
    #[must_use]
    pub fn gated_cycles(&self) -> u64 {
        self.gated_cycles
    }

    /// Raises frequency by the fractional `rate` (e.g. `0.002` = +0.2%),
    /// clamped at `fmax`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative.
    #[inline]
    pub fn slew_up(&mut self, rate: f64) {
        assert!(rate >= 0.0, "slew rate must be non-negative");
        self.frequency = (self.frequency * (1.0 + rate)).min(self.fmax);
    }

    /// Lowers frequency by the fractional `rate`, clamped at `fmin`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1)`.
    #[inline]
    pub fn slew_down(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "slew rate out of [0,1): {rate}");
        self.frequency = (self.frequency * (1.0 - rate)).max(self.fmin);
    }

    /// Jumps directly to `f` (used when a DVFS p-state change re-locks the
    /// DPLL), clamped into range.
    pub fn set_frequency(&mut self, f: MegaHz) {
        self.frequency = f.clamp(self.fmin, self.fmax);
    }

    /// Records an emergency clock-gate response: the clock is held for
    /// `cycles` cycles (a throughput penalty, not a frequency change).
    #[inline]
    pub fn gate(&mut self, cycles: u64) {
        self.gated_cycles += cycles;
    }
}

/// A fault injected into the DPLL actuator path.
///
/// Actuator faults model a clock generator that stops obeying the control
/// loop: a stuck slew interface (frequency frozen at its current value) or
/// a mis-stepping interface that scales every commanded slew. They are
/// applied by [`AtmLoop`](crate::AtmLoop) when armed via
/// [`AtmLoop::set_actuator_fault`](crate::AtmLoop::set_actuator_fault);
/// emergency gating still works (it is a separate hardware path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActuatorFault {
    /// The slew interface is stuck: commanded slews (up and down) are
    /// ignored and the frequency freezes.
    SlewStuck,
    /// Every commanded slew rate is multiplied by `scale` (e.g. `0.1`
    /// under-actuates, `3.0` over-actuates).
    Misstep {
        /// Multiplier applied to every commanded slew rate; must be
        /// non-negative.
        scale: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpll() -> Dpll {
        Dpll::new(
            MegaHz::new(4200.0),
            MegaHz::new(2000.0),
            MegaHz::new(5400.0),
        )
    }

    #[test]
    fn slews_respect_bounds() {
        let mut d = dpll();
        for _ in 0..10_000 {
            d.slew_up(0.01);
        }
        assert_eq!(d.frequency(), MegaHz::new(5400.0));
        for _ in 0..10_000 {
            d.slew_down(0.01);
        }
        assert_eq!(d.frequency(), MegaHz::new(2000.0));
    }

    #[test]
    fn initial_clamped() {
        let d = Dpll::new(
            MegaHz::new(9000.0),
            MegaHz::new(2000.0),
            MegaHz::new(5400.0),
        );
        assert_eq!(d.frequency(), MegaHz::new(5400.0));
    }

    #[test]
    fn gate_accumulates() {
        let mut d = dpll();
        d.gate(1);
        d.gate(3);
        assert_eq!(d.gated_cycles(), 4);
        assert_eq!(d.frequency(), MegaHz::new(4200.0));
    }

    #[test]
    fn set_frequency_clamps() {
        let mut d = dpll();
        d.set_frequency(MegaHz::new(100.0));
        assert_eq!(d.frequency(), MegaHz::new(2000.0));
    }

    #[test]
    #[should_panic(expected = "fmin")]
    fn inverted_bounds_rejected() {
        let _ = Dpll::new(
            MegaHz::new(4200.0),
            MegaHz::new(5000.0),
            MegaHz::new(4000.0),
        );
    }
}
