//! Power capping above the ATM loop.
//!
//! The paper fine-tunes per-core timing margins for efficiency at a
//! fixed power envelope; this crate asks what happens when the envelope
//! itself moves — cap episodes, brownouts, time-varying energy prices.
//! It provides:
//!
//! - [`PowerBudget`]: integer-milliwatt cap schedules (steady, step,
//!   brownout episode, price curve);
//! - [`PowerRegulator`]: a deterministic anti-windup integral
//!   controller on measured chip power (Chen/Wardi/Yalamanchili style)
//!   that proposes throttle-ladder depth changes and lets the serving
//!   loop commit or suppress them — supervisor rollbacks always outrank
//!   the regulator;
//! - [`FleetBudget`]: a global cap split across chips each epoch,
//!   proportional to serving load, by exact largest-remainder
//!   apportionment;
//! - [`EnergyModel`]/[`EnergyMeter`]: Hofmann-style static + dynamic
//!   energy accounting in exact integer picojoules
//!   (`1 mW × 1 ns = 1 pJ`), yielding `energy_per_request` next to the
//!   latency percentiles;
//! - [`CapReport`]: the all-integer, `Eq`-comparable record of what the
//!   regulator did.
//!
//! The regulator never touches a core directly: it actuates through the
//! same throttle-ladder seams the droop degradation policy uses
//! (background cores step down first, the critical core only after),
//! and anything the `MarginSupervisor` imposed — rollback overrides,
//! safe mode, quarantine — is out of its reach.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod energy;
mod fleet;
mod regulator;
mod report;

pub use budget::{PowerBudget, UNLIMITED_MW};
pub use energy::{EnergyMeter, EnergyModel, EnergyReport};
pub use fleet::FleetBudget;
pub use regulator::{CapAction, PowerRegulator, RegulatorConfig};
pub use report::CapReport;

use atm_units::AtmError;
use serde::{Deserialize, Serialize};

/// Everything a serving loop needs to run under a power cap: the budget
/// schedule and the regulator knobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapConfig {
    /// The cap schedule the chip regulates against. Under a fleet
    /// budget the fleet's per-epoch split overrides this schedule.
    pub budget: PowerBudget,
    /// Regulator gain and bands.
    pub regulator: RegulatorConfig,
}

impl CapConfig {
    /// A standard regulator over the given schedule.
    #[must_use]
    pub fn standard(budget: PowerBudget) -> Self {
        CapConfig {
            budget,
            regulator: RegulatorConfig::standard(),
        }
    }

    /// A chip regulated from outside: the local schedule never binds
    /// and the effective cap is pushed in per epoch (fleet splits).
    #[must_use]
    pub fn fleet_driven() -> Self {
        CapConfig::standard(PowerBudget::unlimited())
    }

    /// Validates budget and regulator together.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if either part fails its own
    /// check.
    pub fn check(&self) -> Result<(), AtmError> {
        self.budget.check()?;
        self.regulator.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_config_validates_both_halves() {
        assert!(CapConfig::standard(PowerBudget::steady(60_000))
            .check()
            .is_ok());
        assert!(CapConfig::fleet_driven().check().is_ok());
        let mut bad = CapConfig::fleet_driven();
        bad.regulator.gain_milli = 0;
        assert!(bad.check().is_err());
        assert!(CapConfig::standard(PowerBudget::steady(0)).check().is_err());
    }
}
