//! Fleet-level budget: one global cap, split across chips each epoch.

use atm_units::AtmError;
use serde::{Deserialize, Serialize};

use crate::budget::PowerBudget;

/// A global fleet power budget.
///
/// Each epoch, at the fleet's serial snapshot barrier, the global cap in
/// force is split across chips proportional to their serving load (with
/// a `+1` floor so idle chips keep a sliver and weights are never all
/// zero). The split is the deterministic largest-remainder method, so
/// the shares sum to the global cap *exactly* and the whole allocation
/// is a pure function of `(config, seed)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetBudget {
    /// The global cap schedule, in milliwatts across the whole fleet.
    pub total: PowerBudget,
}

impl FleetBudget {
    /// A fleet budget over any schedule.
    #[must_use]
    pub fn new(total: PowerBudget) -> Self {
        FleetBudget { total }
    }

    /// A steady global cap.
    #[must_use]
    pub fn steady(cap_mw: u64) -> Self {
        FleetBudget {
            total: PowerBudget::steady(cap_mw),
        }
    }

    /// Validates the budget.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if the underlying schedule
    /// fails [`PowerBudget::check`].
    pub fn check(&self) -> Result<(), AtmError> {
        self.total.check()
    }

    /// Splits the cap in force at `epoch` across chips proportional to
    /// `loads` (e.g. per-chip backlog). Returns one cap per chip,
    /// summing exactly to the global cap. Empty `loads` yields an empty
    /// split.
    #[must_use]
    pub fn split(&self, epoch: u32, loads: &[u64]) -> Vec<u64> {
        let cap = self.total.cap_at(epoch);
        largest_remainder_split(cap, loads)
    }
}

/// Largest-remainder apportionment of `cap` over weights `loads[i] + 1`.
///
/// Quotas are `cap * w_i / W`; every chip gets the floor of its quota,
/// and the remaining milliwatts go one each to the chips with the
/// largest fractional parts (ties broken by lowest chip index, keeping
/// the split deterministic).
fn largest_remainder_split(cap: u64, loads: &[u64]) -> Vec<u64> {
    if loads.is_empty() {
        return Vec::new();
    }
    let weights: Vec<u128> = loads.iter().map(|&l| u128::from(l) + 1).collect();
    let total_w: u128 = weights.iter().sum();
    let cap_w = u128::from(cap);
    let mut shares: Vec<u64> = Vec::with_capacity(loads.len());
    let mut fracs: Vec<(u128, usize)> = Vec::with_capacity(loads.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = cap_w * w;
        let share = u64::try_from(exact / total_w).unwrap_or(u64::MAX);
        shares.push(share);
        assigned += share;
        fracs.push((exact % total_w, i));
    }
    // Hand out the remainder, largest fractional part first; ties go to
    // the lowest index.
    fracs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut remainder = cap - assigned;
    for &(_, i) in &fracs {
        if remainder == 0 {
            break;
        }
        shares[i] += 1;
        remainder -= 1;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exact_and_proportional() {
        let b = FleetBudget::steady(100_000);
        let loads = [300, 100, 100, 0];
        let shares = b.split(0, &loads);
        assert_eq!(shares.iter().sum::<u64>(), 100_000);
        assert!(shares[0] > shares[1]);
        assert_eq!(shares[1], shares[2]);
        assert!(shares[3] > 0, "idle chips keep the +1 weight sliver");
    }

    #[test]
    fn all_idle_splits_evenly() {
        let b = FleetBudget::steady(90_001);
        let shares = b.split(0, &[0, 0, 0]);
        assert_eq!(shares.iter().sum::<u64>(), 90_001);
        let min = shares.iter().min().unwrap();
        let max = shares.iter().max().unwrap();
        assert!(max - min <= 1, "equal weights differ by at most 1 mW");
    }

    #[test]
    fn split_tracks_the_schedule() {
        let b = FleetBudget::new(PowerBudget::step_down(80_000, 40_000, 2));
        assert_eq!(b.split(0, &[1, 1]).iter().sum::<u64>(), 80_000);
        assert_eq!(b.split(2, &[1, 1]).iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn empty_fleet_splits_to_nothing() {
        assert!(FleetBudget::steady(1_000).split(0, &[]).is_empty());
    }

    #[test]
    fn remainder_ties_break_by_lowest_index() {
        // cap 10 over 3 equal weights: 3 each + 1 remainder → chip 0.
        let shares = largest_remainder_split(10, &[5, 5, 5]);
        assert_eq!(shares, vec![4, 3, 3]);
    }
}
