//! Power budget schedules: the cap the regulator tracks, per epoch.
//!
//! All caps are integer milliwatts so budget arithmetic is exact and the
//! resulting [`CapReport`](crate::CapReport) stays `Eq`-comparable. A
//! schedule maps an epoch index to a cap; the serving loop consults it
//! once per epoch at the same barrier that snapshots chip state, so a
//! run's budget trace is a pure function of the configuration.

use atm_units::AtmError;
use serde::{Deserialize, Serialize};

/// A cap used when a chip is regulated externally (e.g. by a
/// [`FleetBudget`](crate::FleetBudget) that overrides the per-chip
/// schedule each epoch): high enough to never bind, low enough that
/// integral arithmetic stays comfortably inside `i64`.
pub const UNLIMITED_MW: u64 = 1 << 40;

/// A power-cap schedule in integer milliwatts, indexed by epoch.
///
/// Four shapes cover the scenarios the experiments exercise: a steady
/// cap, a one-way step-down, a bounded brownout episode, and a
/// piecewise-constant curve (e.g. an energy-price trace quantized to
/// cap levels).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerBudget {
    /// The same cap every epoch.
    Steady {
        /// The cap, in milliwatts.
        cap_mw: u64,
    },
    /// `before_mw` until `at_epoch`, then `after_mw` from `at_epoch` on.
    Step {
        /// Cap before the step.
        before_mw: u64,
        /// Cap at and after the step.
        after_mw: u64,
        /// First epoch the stepped-down cap applies to.
        at_epoch: u32,
    },
    /// `cap_mw` everywhere except a `floor_mw` window over
    /// `[from_epoch, until_epoch)` — a rolling brownout.
    Episode {
        /// The nominal cap outside the episode.
        cap_mw: u64,
        /// The reduced cap during the episode.
        floor_mw: u64,
        /// First epoch of the episode (inclusive).
        from_epoch: u32,
        /// End of the episode (exclusive).
        until_epoch: u32,
    },
    /// Piecewise-constant `(start_epoch, cap_mw)` breakpoints, e.g. a
    /// time-varying energy price quantized to cap levels. The first
    /// breakpoint must start at epoch 0; breakpoints must be strictly
    /// increasing in epoch.
    Curve {
        /// The `(start_epoch, cap_mw)` breakpoints.
        points: Vec<(u32, u64)>,
    },
}

impl PowerBudget {
    /// A steady cap.
    #[must_use]
    pub fn steady(cap_mw: u64) -> Self {
        PowerBudget::Steady { cap_mw }
    }

    /// A one-way step-down (the classic cap episode: full budget, then a
    /// permanent reduction at `at_epoch`).
    #[must_use]
    pub fn step_down(before_mw: u64, after_mw: u64, at_epoch: u32) -> Self {
        PowerBudget::Step {
            before_mw,
            after_mw,
            at_epoch,
        }
    }

    /// A brownout: nominal cap with a reduced window.
    #[must_use]
    pub fn brownout(cap_mw: u64, floor_mw: u64, from_epoch: u32, until_epoch: u32) -> Self {
        PowerBudget::Episode {
            cap_mw,
            floor_mw,
            from_epoch,
            until_epoch,
        }
    }

    /// A piecewise-constant price curve.
    #[must_use]
    pub fn price_curve(points: Vec<(u32, u64)>) -> Self {
        PowerBudget::Curve { points }
    }

    /// A cap that never binds — for chips whose effective cap is pushed
    /// in from outside (fleet splits) every epoch.
    #[must_use]
    pub fn unlimited() -> Self {
        PowerBudget::Steady {
            cap_mw: UNLIMITED_MW,
        }
    }

    /// The cap in force at `epoch`, in milliwatts.
    #[must_use]
    pub fn cap_at(&self, epoch: u32) -> u64 {
        match self {
            PowerBudget::Steady { cap_mw } => *cap_mw,
            PowerBudget::Step {
                before_mw,
                after_mw,
                at_epoch,
            } => {
                if epoch >= *at_epoch {
                    *after_mw
                } else {
                    *before_mw
                }
            }
            PowerBudget::Episode {
                cap_mw,
                floor_mw,
                from_epoch,
                until_epoch,
            } => {
                if epoch >= *from_epoch && epoch < *until_epoch {
                    *floor_mw
                } else {
                    *cap_mw
                }
            }
            PowerBudget::Curve { points } => points
                .iter()
                .take_while(|(start, _)| *start <= epoch)
                .last()
                .map_or(0, |(_, cap)| *cap),
        }
    }

    /// Validates the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if any cap is zero or above
    /// [`UNLIMITED_MW`], a brownout window is empty or inverted, or a
    /// curve is empty, does not start at epoch 0, or has non-increasing
    /// breakpoints.
    pub fn check(&self) -> Result<(), AtmError> {
        let check_cap = |cap: u64| -> Result<(), AtmError> {
            if cap == 0 {
                return Err(AtmError::invalid_config("cap_mw", "caps must be positive"));
            }
            if cap > UNLIMITED_MW {
                return Err(AtmError::invalid_config(
                    "cap_mw",
                    "caps above UNLIMITED_MW overflow integral arithmetic",
                ));
            }
            Ok(())
        };
        match self {
            PowerBudget::Steady { cap_mw } => check_cap(*cap_mw),
            PowerBudget::Step {
                before_mw,
                after_mw,
                ..
            } => {
                check_cap(*before_mw)?;
                check_cap(*after_mw)
            }
            PowerBudget::Episode {
                cap_mw,
                floor_mw,
                from_epoch,
                until_epoch,
            } => {
                check_cap(*cap_mw)?;
                check_cap(*floor_mw)?;
                if floor_mw > cap_mw {
                    return Err(AtmError::invalid_config(
                        "floor_mw",
                        "a brownout floor must not exceed the nominal cap",
                    ));
                }
                if from_epoch >= until_epoch {
                    return Err(AtmError::invalid_config(
                        "from_epoch",
                        "brownout windows must span at least one epoch",
                    ));
                }
                Ok(())
            }
            PowerBudget::Curve { points } => {
                if points.is_empty() {
                    return Err(AtmError::invalid_config(
                        "points",
                        "a price curve needs at least one breakpoint",
                    ));
                }
                if points[0].0 != 0 {
                    return Err(AtmError::invalid_config(
                        "points",
                        "the first breakpoint must start at epoch 0",
                    ));
                }
                if points.windows(2).any(|w| w[1].0 <= w[0].0) {
                    return Err(AtmError::invalid_config(
                        "points",
                        "breakpoints must be strictly increasing in epoch",
                    ));
                }
                for (_, cap) in points {
                    check_cap(*cap)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_and_step_schedules() {
        let s = PowerBudget::steady(60_000);
        assert_eq!(s.cap_at(0), 60_000);
        assert_eq!(s.cap_at(1000), 60_000);
        let step = PowerBudget::step_down(60_000, 42_000, 4);
        assert_eq!(step.cap_at(3), 60_000);
        assert_eq!(step.cap_at(4), 42_000);
        assert_eq!(step.cap_at(40), 42_000);
    }

    #[test]
    fn brownout_window_is_half_open() {
        let b = PowerBudget::brownout(60_000, 30_000, 2, 5);
        assert_eq!(b.cap_at(1), 60_000);
        assert_eq!(b.cap_at(2), 30_000);
        assert_eq!(b.cap_at(4), 30_000);
        assert_eq!(b.cap_at(5), 60_000);
    }

    #[test]
    fn curve_holds_last_breakpoint() {
        let c = PowerBudget::price_curve(vec![(0, 70_000), (3, 50_000), (6, 65_000)]);
        assert_eq!(c.cap_at(0), 70_000);
        assert_eq!(c.cap_at(2), 70_000);
        assert_eq!(c.cap_at(3), 50_000);
        assert_eq!(c.cap_at(7), 65_000);
    }

    #[test]
    fn validation_rejects_degenerate_schedules() {
        assert!(PowerBudget::steady(0).check().is_err());
        assert!(PowerBudget::brownout(50_000, 60_000, 0, 2).check().is_err());
        assert!(PowerBudget::brownout(60_000, 50_000, 3, 3).check().is_err());
        assert!(PowerBudget::price_curve(vec![]).check().is_err());
        assert!(PowerBudget::price_curve(vec![(1, 60_000)]).check().is_err());
        assert!(PowerBudget::price_curve(vec![(0, 60_000), (0, 50_000)])
            .check()
            .is_err());
        assert!(PowerBudget::unlimited().check().is_ok());
        assert!(PowerBudget::steady(UNLIMITED_MW + 1).check().is_err());
    }
}
