//! The regulator's run report.
//!
//! All-integer and `Eq`-derivable like every other report in the stack:
//! same config + seed ⇒ byte-identical `CapReport`, independent of
//! worker count.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::regulator::CapAction;

/// What the power regulator did over a run: per-epoch traces plus
/// aggregate counters, accumulated by the serving loop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapReport {
    /// Epochs regulated.
    pub epochs: u32,
    /// Per-epoch cap in force (after any fleet split), milliwatts.
    pub cap_mw: Vec<u64>,
    /// Per-epoch measured chip power, milliwatts.
    pub power_mw: Vec<u64>,
    /// Per-epoch committed throttle depth (after that epoch's action).
    pub depth: Vec<u32>,
    /// Epochs whose measured power exceeded the cap.
    pub over_budget_epochs: u32,
    /// Worst single-epoch overshoot above the cap, milliwatts.
    pub max_overshoot_mw: u64,
    /// Total rungs of throttle committed.
    pub throttle_steps: u32,
    /// Total rungs of release committed.
    pub release_steps: u32,
    /// Releases proposed but suppressed — because a supervisor action
    /// fired the same epoch (rollbacks outrank the regulator) or the
    /// chip was still over budget.
    pub releases_suppressed: u32,
    /// Peak of the anti-windup integral, milliwatt-epochs.
    pub max_integral_mwe: i64,
    /// Depth at the end of the run.
    pub final_depth: u32,
}

impl CapReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        CapReport::default()
    }

    /// Appends one regulated epoch: the cap in force, the measured
    /// power it was compared against, the depth committed after the
    /// epoch's action, and the post-epoch integral.
    pub fn push_epoch(&mut self, cap_mw: u64, power_mw: u64, depth: u32, integral_mwe: i64) {
        self.epochs += 1;
        self.cap_mw.push(cap_mw);
        self.power_mw.push(power_mw);
        self.depth.push(depth);
        if power_mw > cap_mw {
            self.over_budget_epochs += 1;
            self.max_overshoot_mw = self.max_overshoot_mw.max(power_mw - cap_mw);
        }
        self.max_integral_mwe = self.max_integral_mwe.max(integral_mwe);
        self.final_depth = depth;
    }

    /// Counts a committed action (call with [`CapAction::Hold`] plus
    /// `suppressed = true` when a proposal was vetoed).
    pub fn count_action(&mut self, committed: CapAction, suppressed: bool) {
        match committed {
            CapAction::Hold => {}
            CapAction::Throttle(n) => self.throttle_steps += n,
            CapAction::Release(n) => self.release_steps += n,
        }
        if suppressed {
            self.releases_suppressed += 1;
        }
    }

    /// Whether the depth trace settled: the last `min(tail, epochs)`
    /// depths are all equal — the "no limit cycle" acceptance check.
    #[must_use]
    pub fn converged(&self, tail: usize) -> bool {
        let n = self.depth.len();
        let start = n.saturating_sub(tail.max(1));
        self.depth[start..].windows(2).all(|w| w[0] == w[1])
    }

    /// Safety law: the regulator never released in an epoch whose
    /// measured power exceeded its cap (the serving loop defers such
    /// releases, so over-budget epochs can only hold or deepen).
    #[must_use]
    pub fn never_released_over_budget(&self) -> bool {
        (0..self.depth.len()).all(|e| {
            let prev = if e == 0 { 0 } else { self.depth[e - 1] };
            self.power_mw[e] <= self.cap_mw[e] || self.depth[e] >= prev
        })
    }

    /// Anti-windup law: the integral peak stayed within `clamp_mwe`
    /// (one epoch of overshoot beyond the deepest commandable depth).
    #[must_use]
    pub fn integral_bounded(&self, clamp_mwe: i64) -> bool {
        self.max_integral_mwe <= clamp_mwe
    }

    /// Folds a per-chip report into a fleet aggregate: traces are
    /// summed elementwise (the fleet's cap/power per epoch), counters
    /// added, depth trace kept as the elementwise maximum.
    pub fn merge(&mut self, other: &CapReport) {
        merge_trace(&mut self.cap_mw, &other.cap_mw, u64::saturating_add);
        merge_trace(&mut self.power_mw, &other.power_mw, u64::saturating_add);
        merge_trace(&mut self.depth, &other.depth, u32::max);
        self.epochs = self.epochs.max(other.epochs);
        self.over_budget_epochs += other.over_budget_epochs;
        self.max_overshoot_mw = self.max_overshoot_mw.max(other.max_overshoot_mw);
        self.throttle_steps += other.throttle_steps;
        self.release_steps += other.release_steps;
        self.releases_suppressed += other.releases_suppressed;
        self.max_integral_mwe = self.max_integral_mwe.max(other.max_integral_mwe);
        self.final_depth = self.final_depth.max(other.final_depth);
    }
}

fn merge_trace<T: Copy + Default>(into: &mut Vec<T>, from: &[T], f: impl Fn(T, T) -> T) {
    if into.len() < from.len() {
        into.resize(from.len(), T::default());
    }
    for (a, &b) in into.iter_mut().zip(from.iter()) {
        *a = f(*a, b);
    }
}

impl fmt::Display for CapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} epochs regulated, {} over budget (max overshoot {} mW), \
             {} throttle / {} release rungs ({} suppressed), final depth {}",
            self.epochs,
            self.over_budget_epochs,
            self.max_overshoot_mw,
            self.throttle_steps,
            self.release_steps,
            self.releases_suppressed,
            self.final_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_epoch_tracks_overshoot_and_traces() {
        let mut r = CapReport::new();
        r.push_epoch(60_000, 70_000, 1, 10_000);
        r.push_epoch(60_000, 59_000, 1, 9_000);
        assert_eq!(r.epochs, 2);
        assert_eq!(r.over_budget_epochs, 1);
        assert_eq!(r.max_overshoot_mw, 10_000);
        assert_eq!(r.max_integral_mwe, 10_000);
        assert_eq!(r.final_depth, 1);
        assert_eq!(r.depth, vec![1, 1]);
    }

    #[test]
    fn convergence_looks_at_the_tail_only() {
        let mut r = CapReport::new();
        for d in [0, 1, 2, 3, 3, 3, 3] {
            r.push_epoch(60_000, 60_000, d, 0);
        }
        assert!(r.converged(4));
        assert!(!r.converged(6));
        assert!(CapReport::new().converged(3), "empty trace is converged");
    }

    #[test]
    fn release_over_budget_violates_the_law() {
        let mut ok = CapReport::new();
        ok.push_epoch(60_000, 70_000, 1, 0);
        ok.push_epoch(60_000, 70_000, 2, 0);
        ok.push_epoch(60_000, 50_000, 1, 0);
        assert!(ok.never_released_over_budget());

        let mut bad = CapReport::new();
        bad.push_epoch(60_000, 70_000, 2, 0);
        bad.push_epoch(60_000, 70_000, 1, 0); // released while over
        assert!(!bad.never_released_over_budget());
    }

    #[test]
    fn merge_sums_counters_and_traces() {
        let mut a = CapReport::new();
        a.push_epoch(30_000, 35_000, 1, 5_000);
        a.count_action(CapAction::Throttle(1), false);
        let mut b = CapReport::new();
        b.push_epoch(30_000, 28_000, 0, 0);
        b.count_action(CapAction::Hold, true);
        a.merge(&b);
        assert_eq!(a.cap_mw, vec![60_000]);
        assert_eq!(a.power_mw, vec![63_000]);
        assert_eq!(a.depth, vec![1]);
        assert_eq!(a.throttle_steps, 1);
        assert_eq!(a.releases_suppressed, 1);
        assert_eq!(a.over_budget_epochs, 1);
    }
}
