//! The integral power regulator.
//!
//! An adjustable-gain integral controller on measured chip power, after
//! Chen, Wardi, and Yalamanchili: each epoch the regulator integrates
//! the (deadbanded) error between measured power and the budget cap,
//! and maps the integral onto a *throttle depth* — how many rungs below
//! the serving posture's own plan the chip should run. All state is
//! integer (milliwatt-epochs), the integral is clamped (anti-windup),
//! and the regulator only ever *proposes*; the serving loop commits the
//! proposal, which lets supervisor actions outrank the regulator (a
//! release proposed in the same epoch as a rollback is suppressed, never
//! re-raising frequency on a rolled-back core).

use atm_telemetry::Recorder;
use atm_units::AtmError;
use serde::{Deserialize, Serialize};

/// Knobs of the [`PowerRegulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegulatorConfig {
    /// Integral gain, in milli-(depth steps) per watt-epoch of
    /// integrated error: `depth = integral_W_epochs * gain_milli / 1000`.
    pub gain_milli: u32,
    /// Over-budget error at or below this (milliwatts) does not
    /// integrate — the hold band that keeps a converged regulator from
    /// limit-cycling on the quantized throttle ladder.
    pub deadband_mw: u64,
    /// Under-budget slack that must exist before the integral unwinds
    /// (milliwatts). Releasing a rung raises power by a discrete amount;
    /// requiring at least this much headroom before unwinding keeps a
    /// release from immediately re-triggering a throttle.
    pub release_headroom_mw: u64,
    /// The deepest depth the regulator may command. The serving loop
    /// additionally clamps to the throttle ladder's length.
    pub max_depth: u32,
}

impl RegulatorConfig {
    /// A gain and band sized for POWER7+-class chips (caps in the tens
    /// of watts, epochs in the tens of milliseconds): roughly one depth
    /// step per 8 W-epochs of sustained error, a 0.5 W hold band, and
    /// 6 W of release headroom.
    #[must_use]
    pub fn standard() -> Self {
        RegulatorConfig {
            gain_milli: 125,
            deadband_mw: 500,
            release_headroom_mw: 6_000,
            max_depth: 9,
        }
    }

    /// The anti-windup clamp on the integral, in milliwatt-epochs: one
    /// depth step's worth of error beyond the deepest commandable depth,
    /// so a long overload cannot wind up unbounded release debt.
    #[must_use]
    pub fn integral_clamp_mwe(&self) -> i64 {
        (i64::from(self.max_depth) + 1) * 1_000_000 / i64::from(self.gain_milli)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] on a zero gain or zero
    /// maximum depth.
    pub fn check(&self) -> Result<(), AtmError> {
        if self.gain_milli == 0 {
            return Err(AtmError::invalid_config(
                "gain_milli",
                "an integral regulator needs a positive gain",
            ));
        }
        if self.max_depth == 0 {
            return Err(AtmError::invalid_config(
                "max_depth",
                "a regulator that may never throttle regulates nothing",
            ));
        }
        Ok(())
    }
}

/// What the regulator wants done this epoch, relative to the current
/// committed depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapAction {
    /// Stay at the current depth.
    Hold,
    /// Deepen the throttle by this many rungs.
    Throttle(u32),
    /// Raise the chip back up by this many rungs.
    Release(u32),
}

/// The deterministic integral power regulator.
///
/// Call [`propose`](PowerRegulator::propose) once per epoch with the
/// measured chip power and the cap in force; apply the returned
/// [`CapAction`] through the serving loop's throttle seam (or suppress
/// it); then [`commit`](PowerRegulator::commit) what was actually done.
#[derive(Debug, Clone)]
pub struct PowerRegulator {
    cfg: RegulatorConfig,
    integral_mwe: i64,
    depth: u32,
}

impl PowerRegulator {
    /// A regulator at depth zero with an empty integral.
    #[must_use]
    pub fn new(cfg: RegulatorConfig) -> Self {
        PowerRegulator {
            cfg,
            integral_mwe: 0,
            depth: 0,
        }
    }

    /// The committed throttle depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The current integral, in milliwatt-epochs (always within the
    /// anti-windup clamp).
    #[must_use]
    pub fn integral_mwe(&self) -> i64 {
        self.integral_mwe
    }

    /// The configuration the regulator runs with.
    #[must_use]
    pub fn config(&self) -> &RegulatorConfig {
        &self.cfg
    }

    /// Integrates one epoch of measured power against the cap and
    /// proposes an action. Does **not** move the committed depth —
    /// callers decide whether the proposal survives (supervisor actions
    /// outrank the regulator) and then [`commit`](PowerRegulator::commit).
    pub fn propose<R: Recorder>(
        &mut self,
        measured_mw: u64,
        cap_mw: u64,
        rec: &mut R,
    ) -> CapAction {
        let error = i64::try_from(measured_mw).unwrap_or(i64::MAX)
            - i64::try_from(cap_mw).unwrap_or(i64::MAX);
        if error > i64::try_from(self.cfg.deadband_mw).unwrap_or(i64::MAX) {
            self.integral_mwe = self.integral_mwe.saturating_add(error);
        } else {
            let headroom = i64::try_from(self.cfg.release_headroom_mw).unwrap_or(i64::MAX);
            if error < -headroom {
                self.integral_mwe = self.integral_mwe.saturating_add(error + headroom);
            }
        }
        self.integral_mwe = self.integral_mwe.clamp(0, self.cfg.integral_clamp_mwe());
        let target = self.target_depth();
        if rec.enabled() {
            rec.gauge("cap.power_mw", measured_mw as f64);
            rec.gauge("cap.cap_mw", cap_mw as f64);
            rec.gauge("cap.integral_mwe", self.integral_mwe as f64);
            rec.gauge("cap.target_depth", f64::from(target));
        }
        match target.cmp(&self.depth) {
            std::cmp::Ordering::Greater => CapAction::Throttle(target - self.depth),
            std::cmp::Ordering::Less => CapAction::Release(self.depth - target),
            std::cmp::Ordering::Equal => CapAction::Hold,
        }
    }

    /// Commits an action (typically the proposal, or
    /// [`CapAction::Hold`] when the proposal was suppressed), moving
    /// the regulator's notion of the chip's depth.
    pub fn commit(&mut self, action: CapAction) {
        match action {
            CapAction::Hold => {}
            CapAction::Throttle(n) => {
                self.depth = (self.depth + n).min(self.cfg.max_depth);
            }
            CapAction::Release(n) => {
                self.depth = self.depth.saturating_sub(n);
            }
        }
    }

    fn target_depth(&self) -> u32 {
        let steps = self.integral_mwe * i64::from(self.cfg.gain_milli) / 1_000_000;
        u32::try_from(steps.max(0))
            .unwrap_or(u32::MAX)
            .min(self.cfg.max_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_telemetry::NullRecorder;

    fn reg() -> PowerRegulator {
        PowerRegulator::new(RegulatorConfig::standard())
    }

    #[test]
    fn within_band_holds_forever() {
        let mut r = reg();
        for _ in 0..100 {
            let a = r.propose(60_000, 60_000, &mut NullRecorder);
            assert_eq!(a, CapAction::Hold);
            r.commit(a);
        }
        assert_eq!(r.depth(), 0);
        assert_eq!(r.integral_mwe(), 0);
    }

    #[test]
    fn sustained_overload_ramps_depth_monotonically() {
        let mut r = reg();
        let mut last = 0;
        for _ in 0..30 {
            let a = r.propose(78_000, 60_000, &mut NullRecorder);
            assert!(!matches!(a, CapAction::Release(_)));
            r.commit(a);
            assert!(r.depth() >= last);
            last = r.depth();
        }
        assert!(last > 0, "18 W over for 30 epochs must throttle");
    }

    #[test]
    fn integral_is_clamped_under_permanent_overload() {
        let mut r = reg();
        for _ in 0..10_000 {
            let a = r.propose(500_000, 60_000, &mut NullRecorder);
            r.commit(a);
        }
        assert_eq!(r.depth(), r.config().max_depth);
        assert!(r.integral_mwe() <= r.config().integral_clamp_mwe());
        // Anti-windup: once the overload clears with real headroom, the
        // regulator releases within a bounded number of epochs instead of
        // paying down an unbounded wound-up integral.
        let mut epochs_to_release = 0;
        while r.depth() > 0 {
            let a = r.propose(20_000, 60_000, &mut NullRecorder);
            r.commit(a);
            epochs_to_release += 1;
            assert!(epochs_to_release < 100, "release debt must be bounded");
        }
    }

    #[test]
    fn small_undershoot_inside_headroom_does_not_release() {
        let mut r = reg();
        // Wind up one step.
        while r.depth() == 0 {
            let a = r.propose(90_000, 60_000, &mut NullRecorder);
            r.commit(a);
        }
        let d = r.depth();
        // 3 W under budget is inside the 6 W release headroom: hold.
        for _ in 0..50 {
            let a = r.propose(57_000, 60_000, &mut NullRecorder);
            assert!(!matches!(a, CapAction::Release(_)));
            r.commit(a);
        }
        assert_eq!(r.depth(), d);
    }

    #[test]
    fn suppressed_release_is_reproposed_next_epoch() {
        let mut r = reg();
        while r.depth() == 0 {
            let a = r.propose(90_000, 60_000, &mut NullRecorder);
            r.commit(a);
        }
        // Drive a deep undershoot until a release is proposed.
        let mut a = r.propose(10_000, 60_000, &mut NullRecorder);
        let mut guard = 0;
        while !matches!(a, CapAction::Release(_)) {
            r.commit(a);
            a = r.propose(10_000, 60_000, &mut NullRecorder);
            guard += 1;
            assert!(guard < 100, "undershoot must eventually propose release");
        }
        // Suppress it (commit Hold): the next epoch proposes it again —
        // suppression is same-epoch only, no integral fixup required.
        r.commit(CapAction::Hold);
        let again = r.propose(10_000, 60_000, &mut NullRecorder);
        assert!(matches!(again, CapAction::Release(_)));
    }

    #[test]
    fn config_validation() {
        assert!(RegulatorConfig::standard().check().is_ok());
        let mut bad = RegulatorConfig::standard();
        bad.gain_milli = 0;
        assert!(bad.check().is_err());
        let mut bad = RegulatorConfig::standard();
        bad.max_depth = 0;
        assert!(bad.check().is_err());
    }
}
