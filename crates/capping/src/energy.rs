//! Integer picojoule energy accounting.
//!
//! A Hofmann-style analytic split: each epoch's measured chip power is
//! decomposed into a static floor (per powered core, paid for the whole
//! epoch) and a dynamic excess attributed to actual serving activity
//! (scaled by the epoch's busy-time utilization). The unit identity
//! `1 mW × 1 ns = 1 pJ` is exact in integers, so energy totals are
//! `Eq`-comparable and byte-identical across runs and worker counts.

use atm_units::AtmError;
use serde::{Deserialize, Serialize};

/// The analytic energy model: coefficients plus the epoch span the
/// integrator assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Virtual nanoseconds integrated per epoch.
    pub epoch_ns: u64,
    /// Static (leakage + uncore share) floor per powered core, in
    /// milliwatts — paid for the full epoch regardless of activity.
    pub static_mw_per_core: u64,
}

impl EnergyModel {
    /// POWER7+-flavoured defaults: ~2 W of static floor per core.
    #[must_use]
    pub fn standard(epoch_ns: u64) -> Self {
        EnergyModel {
            epoch_ns,
            static_mw_per_core: 2_000,
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] on a zero epoch span.
    pub fn check(&self) -> Result<(), AtmError> {
        if self.epoch_ns == 0 {
            return Err(AtmError::invalid_config(
                "epoch_ns",
                "energy integrates over time; epochs must span time",
            ));
        }
        Ok(())
    }
}

/// Accumulated energy for a run (all integer picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total energy, picojoules.
    pub total_pj: u64,
    /// The static-floor share of the total.
    pub static_pj: u64,
    /// The activity-attributed share of the total.
    pub dynamic_pj: u64,
    /// Total request busy time integrated, nanoseconds.
    pub busy_ns: u64,
    /// Epochs integrated.
    pub epochs: u32,
    /// Completed requests the energy is amortized over.
    pub requests: u64,
}

impl EnergyReport {
    /// Energy per completed request, in nanojoules (0 when no requests
    /// completed).
    #[must_use]
    pub fn energy_per_request_nj(&self) -> u64 {
        self.total_pj.checked_div(self.requests).unwrap_or(0) / 1_000
    }

    /// Total energy in microjoules (truncating).
    #[must_use]
    pub fn microjoules(&self) -> u64 {
        self.total_pj / 1_000_000
    }

    /// Total energy in millijoules (truncating).
    #[must_use]
    pub fn millijoules(&self) -> u64 {
        self.total_pj / 1_000_000_000
    }

    /// Folds another report into this one (fleet merge).
    pub fn merge(&mut self, other: &EnergyReport) {
        self.total_pj += other.total_pj;
        self.static_pj += other.static_pj;
        self.dynamic_pj += other.dynamic_pj;
        self.busy_ns += other.busy_ns;
        self.epochs = self.epochs.max(other.epochs);
        self.requests += other.requests;
    }
}

/// The per-run integrator: feed it one observation per epoch.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: EnergyModel,
    report: EnergyReport,
}

impl EnergyMeter {
    /// A meter with an empty report.
    #[must_use]
    pub fn new(model: EnergyModel) -> Self {
        EnergyMeter {
            model,
            report: EnergyReport::default(),
        }
    }

    /// Integrates one epoch: `measured_mw` is the settled chip power,
    /// `powered_cores` the cores not power-gated, and `busy_ns` the
    /// request service time dispatched this epoch (the activity the
    /// dynamic share is attributed to).
    ///
    /// Exact in integers: intermediate products run in `u128` and the
    /// only division is the utilization scaling of the dynamic share.
    pub fn observe_epoch(&mut self, measured_mw: u64, powered_cores: u32, busy_ns: u64) {
        let span = self.model.epoch_ns;
        let static_mw = self.model.static_mw_per_core * u64::from(powered_cores);
        let static_pj = static_mw.saturating_mul(span);
        let dyn_mw = measured_mw.saturating_sub(static_mw);
        let capacity_ns = span.saturating_mul(u64::from(powered_cores));
        let busy = busy_ns.min(capacity_ns);
        let dynamic_pj = if capacity_ns == 0 {
            0
        } else {
            u64::try_from(
                u128::from(dyn_mw) * u128::from(span) * u128::from(busy) / u128::from(capacity_ns),
            )
            .unwrap_or(u64::MAX)
        };
        self.report.static_pj += static_pj;
        self.report.dynamic_pj += dynamic_pj;
        self.report.total_pj += static_pj + dynamic_pj;
        self.report.busy_ns += busy_ns;
        self.report.epochs += 1;
    }

    /// Counts completed requests toward the per-request amortization.
    pub fn add_requests(&mut self, n: u64) {
        self.report.requests += n;
    }

    /// The accumulated report.
    #[must_use]
    pub fn report(&self) -> EnergyReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_identity_one_mw_one_ns_is_one_pj() {
        let mut m = EnergyMeter::new(EnergyModel {
            epoch_ns: 1,
            static_mw_per_core: 1,
        });
        // One core, fully busy: 5 mW measured = 1 static + 4 dynamic.
        m.observe_epoch(5, 1, 1);
        let r = m.report();
        assert_eq!(r.static_pj, 1);
        assert_eq!(r.dynamic_pj, 4);
        assert_eq!(r.total_pj, 5);
    }

    #[test]
    fn idle_epoch_pays_only_the_static_floor() {
        let model = EnergyModel::standard(50_000_000);
        let mut m = EnergyMeter::new(model);
        m.observe_epoch(60_000, 8, 0);
        let r = m.report();
        assert_eq!(r.dynamic_pj, 0);
        assert_eq!(r.static_pj, 8 * 2_000 * 50_000_000);
        assert_eq!(r.total_pj, r.static_pj);
    }

    #[test]
    fn fully_busy_epoch_attributes_the_whole_excess() {
        let model = EnergyModel::standard(50_000_000);
        let mut m = EnergyMeter::new(model);
        let span = 50_000_000u64;
        m.observe_epoch(60_000, 8, 8 * span);
        let r = m.report();
        let static_pj = 8 * 2_000 * span;
        let dynamic_pj = (60_000 - 8 * 2_000) * span;
        assert_eq!(r.static_pj, static_pj);
        assert_eq!(r.dynamic_pj, dynamic_pj);
        assert_eq!(r.total_pj, static_pj + dynamic_pj);
    }

    #[test]
    fn merge_adds_and_per_request_amortizes() {
        let model = EnergyModel::standard(1_000);
        let mut a = EnergyMeter::new(model);
        a.observe_epoch(10_000, 2, 500);
        a.add_requests(2);
        let mut b = EnergyMeter::new(model);
        b.observe_epoch(10_000, 2, 500);
        b.add_requests(3);
        let mut merged = a.report();
        merged.merge(&b.report());
        assert_eq!(merged.total_pj, a.report().total_pj + b.report().total_pj);
        assert_eq!(merged.requests, 5);
        assert_eq!(merged.energy_per_request_nj(), merged.total_pj / 5 / 1_000);
        assert_eq!(EnergyReport::default().energy_per_request_nj(), 0);
    }

    #[test]
    fn gated_chip_integrates_nothing() {
        let mut m = EnergyMeter::new(EnergyModel::standard(1_000));
        m.observe_epoch(50_000, 0, 0);
        assert_eq!(m.report().total_pj, 0);
    }

    #[test]
    fn model_validation() {
        assert!(EnergyModel::standard(1).check().is_ok());
        assert!(EnergyModel::standard(0).check().is_err());
    }
}
