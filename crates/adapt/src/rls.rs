//! Two-parameter recursive least squares with exponential forgetting.
//!
//! The paper's Eq. 1 predictor (`f̄ = −k′·P̄ + b`) and the per-app
//! performance predictor are both straight lines, so the online refiner
//! only ever needs the two-parameter special case: regressors
//! `φ = [x, 1]`, parameters `θ = [slope, intercept]`. [`Rls2`] is the
//! textbook exponentially-weighted RLS recursion
//!
//! ```text
//! K = Pφ / (λ + φᵀPφ)
//! θ ← θ + K·(y − φᵀθ)
//! P ← (P − KφᵀP) / λ
//! ```
//!
//! carried out entirely in [`Fixed`] Q32.32 arithmetic: the estimate is a
//! pure function of the quantized observation sequence.

use serde::{Deserialize, Serialize};

use crate::fixed::Fixed;

/// Initial covariance diagonal: large enough that the first few
/// observations dominate the (zero) prior (RLS with finite `P0` is
/// ridge regression with ridge `1/P0` — the prior's pull must be far
/// below the report resolution).
const P0: i64 = 1 << 16;

/// A two-parameter (slope + intercept) RLS estimator.
///
/// # Examples
///
/// ```
/// use atm_adapt::{Fixed, Rls2};
///
/// // Learn y = −2x + 10 from six exact points.
/// let mut rls = Rls2::new(1_000);
/// for x in 0..6 {
///     let xf = Fixed::from_int(x);
///     rls.update(xf, Fixed::from_int(-2 * x + 10));
/// }
/// assert!((rls.slope() - Fixed::from_int(-2)).abs() < Fixed::from_ratio(1, 100));
/// assert!((rls.intercept() - Fixed::from_int(10)).abs() < Fixed::from_ratio(1, 10));
/// let y = rls.predict(Fixed::from_int(3));
/// assert!((y - Fixed::from_int(4)).abs() < Fixed::from_ratio(1, 10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rls2 {
    theta: [Fixed; 2],
    /// Covariance stored symmetrically as `[p00, p01, p11]`: under
    /// rounded arithmetic the two off-diagonal updates drift apart, and
    /// the `1/λ` amplification compounds the asymmetry until the
    /// recursion diverges. One stored `p01` keeps P symmetric by
    /// construction.
    p: [Fixed; 3],
    lambda: Fixed,
    observations: u64,
}

impl Rls2 {
    /// Creates an estimator with forgetting factor `lambda_milli / 1000`
    /// (1000 = no forgetting; 980 tracks slow drift).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda_milli` is in `(500, 1000]` — below that the
    /// recursion forgets faster than two points per window can inform.
    #[must_use]
    pub fn new(lambda_milli: u32) -> Self {
        assert!(
            (501..=1000).contains(&lambda_milli),
            "forgetting factor {lambda_milli}/1000 outside (0.5, 1.0]"
        );
        Rls2 {
            theta: [Fixed::ZERO; 2],
            p: [Fixed::from_int(P0), Fixed::ZERO, Fixed::from_int(P0)],
            lambda: Fixed::from_ratio(i64::from(lambda_milli), 1000),
            observations: 0,
        }
    }

    /// The fitted slope.
    #[must_use]
    pub fn slope(&self) -> Fixed {
        self.theta[0]
    }

    /// The fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> Fixed {
        self.theta[1]
    }

    /// Observations absorbed so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The model's prediction at `x`.
    #[must_use]
    pub fn predict(&self, x: Fixed) -> Fixed {
        self.theta[0].mul(x) + self.theta[1]
    }

    /// Absorbs one `(x, y)` observation and returns the innovation
    /// (prediction error *before* the update) — the prequential signal
    /// confidence gating is built on.
    pub fn update(&mut self, x: Fixed, y: Fixed) -> Fixed {
        let e = y - self.predict(x);
        // Pφ with φ = [x, 1], P = [[p00, p01], [p01, p11]].
        let px0 = self.p[0].mul(x) + self.p[1];
        let px1 = self.p[1].mul(x) + self.p[2];
        // λ + φᵀPφ; P stays positive definite, so this is never zero.
        let denom = self.lambda + x.mul(px0) + px1;
        let k0 = px0.div(denom);
        let k1 = px1.div(denom);
        self.theta[0] += k0.mul(e);
        self.theta[1] += k1.mul(e);
        // P ← (P − K·(Pφ)ᵀ)/λ (P symmetric, so φᵀP = (Pφ)ᵀ).
        self.p[0] = (self.p[0] - k0.mul(px0)).div(self.lambda);
        self.p[1] = (self.p[1] - k0.mul(px1)).div(self.lambda);
        self.p[2] = (self.p[2] - k1.mul(px1)).div(self.lambda);
        self.observations += 1;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(x: i64) -> Fixed {
        // y = −0.2x + 5.1, the Eq.-1 shape in hectowatt/GHz units.
        Fixed::from_ratio(-2 * x, 10) + Fixed::from_ratio(51, 10)
    }

    #[test]
    fn converges_on_a_noiseless_line() {
        let mut rls = Rls2::new(1_000);
        for x in 0..8 {
            let _ = rls.update(Fixed::from_int(x), line(x));
        }
        let err = (rls.predict(Fixed::from_int(10)) - line(10)).abs();
        assert!(err < Fixed::from_ratio(1, 1000), "error {err}");
        assert_eq!(rls.observations(), 8);
    }

    #[test]
    fn innovation_shrinks_as_the_fit_locks() {
        let mut rls = Rls2::new(980);
        let mut innovations = Vec::new();
        for round in 0..6 {
            for x in [1i64, 2, 3] {
                let e = rls.update(Fixed::from_int(x), line(x)).abs();
                if round > 0 {
                    innovations.push(e);
                }
            }
        }
        let first = innovations.first().unwrap();
        let last = innovations.last().unwrap();
        assert!(last < first, "innovation grew: {first} → {last}");
    }

    #[test]
    fn tracks_a_drifting_intercept() {
        let mut rls = Rls2::new(900);
        // Intercept falls 0.01/step (a cooling-limited fleet in autumn).
        for step in 0..120i64 {
            let x = Fixed::from_int(step % 4);
            let y = Fixed::from_ratio(-2 * (step % 4), 10) + Fixed::from_ratio(510 - step, 100);
            let _ = rls.update(x, y);
        }
        // After 120 steps the intercept is 5.1 − 1.2 = 3.9. Exponential
        // forgetting tracks a ramp with lag ≈ rate·λ/(1−λ) = 0.09, so
        // anything inside 0.15 means the fit is following the drift.
        let err = (rls.intercept() - Fixed::from_ratio(39, 10)).abs();
        assert!(
            err < Fixed::from_ratio(15, 100),
            "stale intercept, err {err}"
        );
    }

    #[test]
    fn determinism_is_bitwise() {
        let run = || {
            let mut rls = Rls2::new(970);
            for x in 0..32 {
                let _ = rls.update(Fixed::from_ratio(x, 7), Fixed::from_ratio(3 * x + 1, 5));
            }
            rls
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn degenerate_forgetting_rejected() {
        let _ = Rls2::new(400);
    }
}
