//! Micro-probe scheduling: budgeted characterization bursts that
//! piggyback on quiet epochs.
//!
//! The offline characterization sweep (PR 2) buys slope identifiability
//! by dedicating the whole chip to daxpy co-runner ladders. In
//! production no such luxury exists — the serving posture occupies every
//! socket-0 core. What *does* exist is queue idleness: background cores
//! whose work queues have drained by the epoch boundary. A micro-probe
//! burst **parks** a rotating subset of those cores (assigns them the
//! idle workload) for a few hundred virtual nanoseconds, which sweeps
//! total chip power downward and gives the RLS estimator the x-axis
//! variation a single operating point never provides.
//!
//! [`MicroProbe`] only decides *whether and how many*; the adapter owns
//! the mechanics (saving workloads, running the burst, restoring). Two
//! gates apply: a per-epoch budget (`probe_budget_per_epoch`) and a
//! traffic gate — under backlog the burst is deferred, never queued, so
//! probing can never amplify a latency excursion.

use serde::{Deserialize, Serialize};

/// One epoch's probe decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbePlan {
    /// Background cores to park (assign idle) for the burst. Always at
    /// least 1 and at most the number of queue-idle cores offered.
    pub parked: usize,
}

/// The probe scheduler: a budget, a deferral counter, and a rotating
/// cursor that varies how many cores each burst parks (different parked
/// counts ⇒ different chip power ⇒ x-axis spread for the estimator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroProbe {
    budget_per_epoch: u32,
    cursor: u64,
    run: u64,
    deferred: u64,
}

impl MicroProbe {
    /// Creates a scheduler with the given per-epoch burst budget
    /// (0 disables probing entirely).
    #[must_use]
    pub fn new(budget_per_epoch: u32) -> Self {
        MicroProbe {
            budget_per_epoch,
            cursor: 0,
            run: 0,
            deferred: 0,
        }
    }

    /// Decides this epoch's bursts. Yields up to `budget_per_epoch`
    /// plans when the backlog is at or below `low_traffic_backlog_ns`
    /// and at least one queue-idle core is offered; otherwise defers
    /// (counting each burst the budget would have allowed).
    pub fn plan_epoch(
        &mut self,
        backlog_ns: u64,
        low_traffic_backlog_ns: u64,
        idle_cores: usize,
    ) -> Vec<ProbePlan> {
        if self.budget_per_epoch == 0 || idle_cores == 0 {
            return Vec::new();
        }
        if backlog_ns > low_traffic_backlog_ns {
            self.deferred += u64::from(self.budget_per_epoch);
            return Vec::new();
        }
        let mut plans = Vec::with_capacity(self.budget_per_epoch as usize);
        for _ in 0..self.budget_per_epoch {
            // Rotate through 1..=idle_cores parked cores for power spread.
            let parked = (self.cursor as usize % idle_cores) + 1;
            self.cursor += 1;
            self.run += 1;
            plans.push(ProbePlan { parked });
        }
        plans
    }

    /// Bursts executed so far.
    #[must_use]
    pub fn probes_run(&self) -> u64 {
        self.run
    }

    /// Bursts deferred by the traffic gate so far.
    #[must_use]
    pub fn probes_deferred(&self) -> u64 {
        self.deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defers_under_backlog() {
        let mut probe = MicroProbe::new(2);
        assert!(probe.plan_epoch(1_000_000, 500, 4).is_empty());
        assert_eq!(probe.probes_deferred(), 2);
        assert_eq!(probe.probes_run(), 0);
    }

    #[test]
    fn rotates_parked_counts_when_quiet() {
        let mut probe = MicroProbe::new(1);
        let counts: Vec<usize> = (0..6)
            .flat_map(|_| probe.plan_epoch(0, 500, 3))
            .map(|p| p.parked)
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 1, 2, 3]);
        assert_eq!(probe.probes_run(), 6);
        assert_eq!(probe.probes_deferred(), 0);
    }

    #[test]
    fn zero_budget_or_no_idle_cores_is_silent() {
        let mut off = MicroProbe::new(0);
        assert!(off.plan_epoch(0, u64::MAX, 8).is_empty());
        assert_eq!(off.probes_deferred(), 0);

        let mut busy_chip = MicroProbe::new(4);
        assert!(busy_chip.plan_epoch(0, u64::MAX, 0).is_empty());
        assert_eq!(busy_chip.probes_deferred(), 0);
    }

    #[test]
    fn determinism_is_structural() {
        let run = || {
            let mut p = MicroProbe::new(2);
            let mut all = Vec::new();
            for epoch in 0..8u64 {
                let backlog = if epoch % 3 == 0 { 900 } else { 0 };
                all.extend(p.plan_epoch(backlog, 100, 5));
            }
            (p, all)
        };
        assert_eq!(run(), run());
    }
}
