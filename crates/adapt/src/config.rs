//! Adaptation knobs.

use atm_units::AtmError;
use serde::{Deserialize, Serialize};

/// Knobs of the online recharacterization loop: estimator forgetting,
/// recharacterization-window length, the confidence/traffic gates a
/// re-tighten must pass, and the micro-probe budget.
///
/// # Examples
///
/// ```
/// use atm_adapt::AdaptConfig;
///
/// let cfg = AdaptConfig::standard();
/// assert!(cfg.check().is_ok());
/// // Tighter gate for a cautious fleet: twice the observations, half
/// // the tolerated innovation.
/// let cautious = AdaptConfig {
///     min_observations: 2 * cfg.min_observations,
///     max_innovation_milli_mhz: cfg.max_innovation_milli_mhz / 2,
///     ..cfg
/// };
/// assert!(cautious.check().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Epochs per recharacterization window (RMS-error accounting
    /// granularity).
    pub window_epochs: u32,
    /// RLS forgetting factor in milli (1000 = never forget; 980 tracks
    /// slow drift).
    pub forgetting_milli: u32,
    /// Observations a core's predictor must absorb before a re-tighten
    /// may cite it.
    pub min_observations: u64,
    /// Confidence gate: the core's exponentially-weighted absolute
    /// innovation (milli-MHz) must be at or below this.
    pub max_innovation_milli_mhz: u64,
    /// Traffic gate: the serving layer's backlog must be at or below this
    /// for a re-tighten (and for probes) to fire.
    pub low_traffic_backlog_ns: u64,
    /// Epochs between re-tighten episodes.
    pub cooldown_epochs: u32,
    /// CPM steps restored per re-tighten episode (per core).
    pub retighten_steps: usize,
    /// Micro-probe bursts allowed per epoch (0 disables probing).
    pub probe_budget_per_epoch: u32,
    /// Virtual nanoseconds of chip time per probe burst.
    pub probe_trial_ns: u64,
    /// Capacity of the adapter's telemetry ring.
    pub telemetry_capacity: usize,
}

impl AdaptConfig {
    /// The production recipe: 4-epoch windows, λ = 0.98, a 40 MHz
    /// confidence gate after 6 observations, one 600 ns probe burst per
    /// quiet epoch, and a 4-epoch re-tighten cooldown.
    #[must_use]
    pub fn standard() -> Self {
        AdaptConfig {
            window_epochs: 4,
            forgetting_milli: 980,
            min_observations: 6,
            max_innovation_milli_mhz: 40_000,
            low_traffic_backlog_ns: 50_000_000,
            cooldown_epochs: 4,
            retighten_steps: 1,
            probe_budget_per_epoch: 1,
            probe_trial_ns: 600,
            telemetry_capacity: 256,
        }
    }

    /// An *ungated* recipe for supervisor-interaction tests: re-tightens
    /// fire every epoch regardless of confidence or traffic, as hard as
    /// the deployment ceiling allows. Deliberately reckless — production
    /// fleets use [`AdaptConfig::standard`].
    #[must_use]
    pub fn reckless() -> Self {
        AdaptConfig {
            min_observations: 0,
            max_innovation_milli_mhz: u64::MAX,
            low_traffic_backlog_ns: u64::MAX,
            cooldown_epochs: 0,
            retighten_steps: usize::MAX,
            ..AdaptConfig::standard()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if the window is empty, the
    /// forgetting factor is outside `(0.5, 1.0]`, a probe budget comes
    /// with a zero-length burst, or re-tightening is configured with
    /// zero steps.
    pub fn check(&self) -> Result<(), AtmError> {
        if self.window_epochs == 0 {
            return Err(AtmError::invalid_config(
                "window_epochs",
                "windows must span at least one epoch",
            ));
        }
        if !(501..=1000).contains(&self.forgetting_milli) {
            return Err(AtmError::invalid_config(
                "forgetting_milli",
                "must lie in (500, 1000]",
            ));
        }
        if self.probe_budget_per_epoch > 0 && self.probe_trial_ns == 0 {
            return Err(AtmError::invalid_config(
                "probe_trial_ns",
                "probe bursts must span chip time",
            ));
        }
        if self.retighten_steps == 0 {
            return Err(AtmError::invalid_config(
                "retighten_steps",
                "a re-tighten must restore at least one step",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(AdaptConfig::standard().check().is_ok());
        assert!(AdaptConfig::reckless().check().is_ok());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let base = AdaptConfig::standard();
        assert!(AdaptConfig {
            window_epochs: 0,
            ..base
        }
        .check()
        .is_err());
        assert!(AdaptConfig {
            forgetting_milli: 100,
            ..base
        }
        .check()
        .is_err());
        assert!(AdaptConfig {
            probe_trial_ns: 0,
            ..base
        }
        .check()
        .is_err());
        assert!(AdaptConfig {
            retighten_steps: 0,
            ..base
        }
        .check()
        .is_err());
    }
}
