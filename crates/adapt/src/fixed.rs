//! Q32.32 fixed-point arithmetic for the online estimator.
//!
//! The determinism contract says every report is a pure function of the
//! observation stream — on any machine, any worker count, any run. The
//! estimator therefore does its linear algebra in signed Q32.32 fixed
//! point (an `i64` with 32 fractional bits, `i128` intermediates): the
//! only float→int boundary is the quantization of raw observations, and
//! from there every operation is exact integer arithmetic.
//!
//! Inputs are normalized before they reach [`Fixed`] so magnitudes stay
//! small: chip power in hectowatts (≈1–2.5), frequency in GHz (≈4–5.3),
//! service time in milliseconds. With values this size, Q32.32 offers
//! ~2.3 × 10⁻¹⁰ resolution and ±2³¹ headroom — orders of magnitude more
//! than a recursive least-squares update needs.

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of fractional bits.
const FRAC: u32 = 32;

/// `n / d` rounded to nearest, ties away from zero — keeps conversions
/// exactly invertible (`from_ratio` ∘ `to_scaled` round-trips).
fn div_round(n: i128, d: i128) -> i128 {
    let q = n / d;
    let r = n % d;
    if r.abs() * 2 >= d.abs() {
        q + if (n < 0) != (d < 0) { -1 } else { 1 }
    } else {
        q
    }
}

/// A signed Q32.32 fixed-point number.
///
/// # Examples
///
/// ```
/// use atm_adapt::Fixed;
///
/// let half = Fixed::from_ratio(1, 2);
/// let three = Fixed::from_int(3);
/// assert_eq!(half.mul(three), Fixed::from_ratio(3, 2));
/// assert_eq!(three.div(half), Fixed::from_int(6));
/// // Exact scaling back to integers:
/// assert_eq!(Fixed::from_ratio(4_200_000, 1_000_000).to_scaled(1_000), 4_200);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize, Hash,
)]
pub struct Fixed(i64);

impl Fixed {
    /// Zero.
    pub const ZERO: Fixed = Fixed(0);
    /// One.
    pub const ONE: Fixed = Fixed(1 << FRAC);

    /// An integer, exactly.
    #[must_use]
    pub fn from_int(v: i64) -> Self {
        Fixed(v << FRAC)
    }

    /// The ratio `num / den`, rounded to nearest at the 2⁻³² bit.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn from_ratio(num: i64, den: i64) -> Self {
        assert!(den != 0, "fixed-point ratio with zero denominator");
        Fixed(div_round(i128::from(num) << FRAC, i128::from(den)) as i64)
    }

    /// The raw Q32.32 representation.
    #[must_use]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Rebuilds a value from its raw representation.
    #[must_use]
    pub fn from_raw(raw: i64) -> Self {
        Fixed(raw)
    }

    /// Product, rounded to nearest at the 2⁻³² bit.
    ///
    /// Deliberately an inherent method, not `std::ops::Mul`: the rounding
    /// step makes this a lossy operation, and the explicit call keeps
    /// every rounding site visible in the RLS recursion.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, other: Fixed) -> Self {
        Fixed(div_round(i128::from(self.0) * i128::from(other.0), 1 << FRAC) as i64)
    }

    /// Quotient, rounded to nearest at the 2⁻³² bit.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    ///
    /// Deliberately an inherent method, not `std::ops::Div`, for the same
    /// reason as [`Fixed::mul`].
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn div(self, other: Fixed) -> Self {
        assert!(other.0 != 0, "fixed-point division by zero");
        Fixed(div_round(i128::from(self.0) << FRAC, i128::from(other.0)) as i64)
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Fixed(self.0.abs())
    }

    /// `self × scale` as a plain integer (rounded to nearest): the exit
    /// path back to report units — e.g. a GHz-normalized value with
    /// `scale` 1 000 000 yields kHz.
    #[must_use]
    pub fn to_scaled(self, scale: i64) -> i64 {
        div_round(i128::from(self.0) * i128::from(scale), 1 << FRAC) as i64
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 + rhs.0)
    }
}

impl AddAssign for Fixed {
    fn add_assign(&mut self, rhs: Fixed) {
        self.0 += rhs.0;
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 - rhs.0)
    }
}

impl SubAssign for Fixed {
    fn sub_assign(&mut self, rhs: Fixed) {
        self.0 -= rhs.0;
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed(-self.0)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Six decimal places cover the report units (kHz, milli-MHz).
        let millionths = self.to_scaled(1_000_000);
        write!(
            f,
            "{}.{:06}",
            millionths / 1_000_000,
            (millionths % 1_000_000).abs()
        )
    }
}

/// Deterministic integer square root (Newton's method, floor semantics).
#[must_use]
pub fn isqrt_u128(v: u128) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = v;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let a = Fixed::from_ratio(42_123_456, 1_000_000);
        assert_eq!(a.to_scaled(1_000_000), 42_123_456);
        assert_eq!((a - a), Fixed::ZERO);
        assert_eq!(a.mul(Fixed::ONE), a);
        assert_eq!(a.div(Fixed::ONE), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn mul_div_agree_with_rationals() {
        let a = Fixed::from_ratio(7, 3);
        let b = Fixed::from_ratio(5, 2);
        // 7/3 × 5/2 = 35/6; truncation keeps them within one ulp.
        let exact = Fixed::from_ratio(35, 6);
        assert!((a.mul(b) - exact).abs().raw() <= 1);
        assert!((exact.div(b) - a).abs().raw() <= 1);
    }

    #[test]
    fn isqrt_is_floor() {
        assert_eq!(isqrt_u128(0), 0);
        assert_eq!(isqrt_u128(1), 1);
        assert_eq!(isqrt_u128(15), 3);
        assert_eq!(isqrt_u128(16), 4);
        assert_eq!(isqrt_u128(1_000_000), 1_000);
        let big = u128::from(u64::MAX);
        let r = isqrt_u128(big * big);
        assert_eq!(r, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        let _ = Fixed::from_ratio(1, 0);
    }
}
