//! `atm-adapt` — online recharacterization: closing the ATM tuning loop
//! in production.
//!
//! The paper's pipeline (characterize → stress-test → deploy) is a
//! one-shot affair: the guardbands it ships reflect the silicon as it
//! was on deployment day. Real fleets drift — cores age, seasons move
//! the ambient, and the Eq. 1 predictor the serving posture leans on
//! slowly goes stale. This crate keeps the loop closed *after*
//! deployment, without ever outranking the safety machinery:
//!
//! * [`OnlineEstimator`] — recursive-least-squares refinement of the
//!   per-core frequency predictor (Eq. 1) and the per-app performance
//!   predictor from live serving telemetry, in Q32.32 [`Fixed`]
//!   arithmetic ([`Rls2`]) so the estimate is a pure function of the
//!   observation stream;
//! * [`MicroProbe`] — budgeted characterization bursts piggybacked on
//!   queue-idle cores during quiet epochs, feeding the estimator the
//!   x-axis spread a single operating point never provides;
//! * [`RetightenPolicy`] — the confidence-gated proposal to restore
//!   margin a rollback (or a conservative deployment) left behind,
//!   applied strictly through `AtmManager::retighten_core` so a
//!   bad re-tighten rides the supervisor's strike ladder like any other
//!   failure — rollback, probation, safe mode, quarantine — and never
//!   bypasses it;
//! * [`Adapter`] / [`NullAdapter`] / [`OnlineAdapter`] — the serving-loop
//!   seam: one `enabled()` check per epoch when off (the zero-cost law),
//!   the full loop when on;
//! * [`AdaptReport`] — the all-integer, `Eq`-deriving account (per-window
//!   RMS predictor error, probe and re-tighten counters) extending the
//!   workspace determinism law to adaptation: same config + seed ⇒
//!   byte-identical report, across runs and worker counts.
//!
//! # Examples
//!
//! Watch the estimator learn a drifted Eq. 1 line from scratch:
//!
//! ```
//! use atm_adapt::OnlineEstimator;
//! use atm_units::CoreId;
//!
//! let mut est = OnlineEstimator::new(980);
//! let core = CoreId::new(0, 0);
//! // True (drifted) silicon: 5.0 GHz intercept, −2 MHz/W slope.
//! for power_mw in [90_000u64, 130_000, 170_000, 210_000, 120_000, 190_000] {
//!     let freq_khz = 5_000_000 - 2_000 * (power_mw / 1_000);
//!     est.observe_freq(core, power_mw, freq_khz);
//! }
//! let pred = est.predicted_freq_khz(core, 150_000).unwrap();
//! assert!(pred.abs_diff(4_700_000) < 5_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod config;
mod estimator;
mod fixed;
mod policy;
mod probe;
mod report;
mod rls;

pub use adapter::{AdaptContext, Adapter, NullAdapter, OnlineAdapter};
pub use config::AdaptConfig;
pub use estimator::OnlineEstimator;
pub use fixed::{isqrt_u128, Fixed};
pub use policy::RetightenPolicy;
pub use probe::{MicroProbe, ProbePlan};
pub use report::{AdaptReport, AdaptWindow};
pub use rls::Rls2;
