//! The serving-loop seam: the [`Adapter`] trait, the do-nothing
//! [`NullAdapter`], and the full [`OnlineAdapter`] that closes the ATM
//! tuning loop in production.
//!
//! The serving layer calls [`Adapter::on_epoch`] once per epoch with an
//! [`AdaptContext`] — mutable access to the [`AtmManager`], the epoch's
//! chip harvest, and the traffic picture. The default implementation
//! does nothing and [`Adapter::enabled`] defaults to `false`, so a
//! serving path wired to [`NullAdapter`] pays one virtual call per epoch
//! and nothing else (the zero-cost-when-off law, benchmarked in
//! `adapt_overhead`).
//!
//! [`OnlineAdapter`] composes the subsystem: harvest observations feed
//! the [`OnlineEstimator`], quiet epochs run [`MicroProbe`] bursts,
//! window boundaries close RMS accounting, and the [`RetightenPolicy`]
//! proposes margin restoration — applied strictly through
//! [`AtmManager::retighten_core`], so the supervisor's strike
//! ladder keeps full authority over anything the adapter tightens.

use std::collections::BTreeSet;
use std::fmt;

use atm_chip::SystemReport;
use atm_core::AtmManager;
use atm_telemetry::{RingRecorder, TelemetrySnapshot};
use atm_units::{CoreId, Nanos};
use atm_workloads::Workload;

use crate::config::AdaptConfig;
use crate::estimator::OnlineEstimator;
use crate::policy::RetightenPolicy;
use crate::probe::MicroProbe;
use crate::report::AdaptReport;

/// Everything the serving layer lends the adapter for one epoch.
pub struct AdaptContext<'a> {
    /// The manager owning the chip (probes run through it; re-tightens
    /// apply through it).
    pub mgr: &'a mut AtmManager,
    /// The epoch's settled chip harvest.
    pub harvest: &'a SystemReport,
    /// The epoch index.
    pub epoch: u64,
    /// Queue backlog at the epoch boundary, virtual nanoseconds.
    pub backlog_ns: u64,
    /// The posture's cores in deterministic order (re-tighten
    /// candidates).
    pub serving: &'a [CoreId],
    /// Cores whose work queues had drained by the epoch boundary
    /// (micro-probe parking pool; never includes the critical core).
    pub idle: &'a [CoreId],
    /// Where the critical stream runs.
    pub critical_core: CoreId,
    /// Cores under supervisor discipline (probation ∪ safe mode ∪
    /// quarantine) — the policy must not touch them.
    pub blocked: &'a BTreeSet<CoreId>,
}

impl fmt::Debug for AdaptContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptContext")
            .field("epoch", &self.epoch)
            .field("backlog_ns", &self.backlog_ns)
            .field("serving", &self.serving)
            .field("idle", &self.idle)
            .field("critical_core", &self.critical_core)
            .field("blocked", &self.blocked)
            .finish_non_exhaustive()
    }
}

/// The recharacterization seam. All methods default to no-ops so a
/// disabled serving path costs one `enabled()` check per hook site.
pub trait Adapter: Send + fmt::Debug {
    /// Whether the adapter does anything at all. Hook sites consult this
    /// before assembling an [`AdaptContext`], so a disabled adapter pays
    /// nothing.
    fn enabled(&self) -> bool {
        false
    }

    /// Runs one epoch of adaptation. Returns `true` iff the adapter
    /// changed the chip (re-tightened a core), in which case the serving
    /// layer must re-measure its posture frequencies.
    fn on_epoch(&mut self, ctx: AdaptContext<'_>) -> bool {
        let _ = ctx;
        false
    }

    /// Feeds one completed critical request: `app` served in
    /// `service_ns` at `freq_khz`, against nominal `baseline_khz`.
    fn on_service(&mut self, app: &str, freq_khz: u64, baseline_khz: u64, service_ns: u64) {
        let _ = (app, freq_khz, baseline_khz, service_ns);
    }

    /// The adapter's deterministic account, if it keeps one.
    fn report(&self) -> Option<AdaptReport> {
        None
    }

    /// A boxed deep copy of the adapter, learned state and all — the
    /// seam that lets the serving layer's checkpoint machinery clone a
    /// `Box<dyn Adapter>`. Resuming from the copy must be byte-identical
    /// to continuing with the original.
    fn clone_box(&self) -> Box<dyn Adapter>;
}

/// The do-nothing adapter: production serving with adaptation off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullAdapter;

impl Adapter for NullAdapter {
    fn clone_box(&self) -> Box<dyn Adapter> {
        Box::new(*self)
    }
}

/// The full online recharacterization loop (see the module docs).
#[derive(Debug, Clone)]
pub struct OnlineAdapter {
    cfg: AdaptConfig,
    estimator: OnlineEstimator,
    probe: MicroProbe,
    policy: RetightenPolicy,
    recorder: RingRecorder,
    retightens: u64,
    retighten_steps: u64,
}

impl OnlineAdapter {
    /// Creates an adapter from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`AdaptConfig::check`] — an invalid recipe
    /// must never reach a live chip.
    #[must_use]
    pub fn new(cfg: AdaptConfig) -> Self {
        cfg.check().expect("adapt config must validate");
        OnlineAdapter {
            cfg,
            estimator: OnlineEstimator::new(cfg.forgetting_milli),
            probe: MicroProbe::new(cfg.probe_budget_per_epoch),
            policy: RetightenPolicy::new(),
            recorder: RingRecorder::with_capacity(cfg.telemetry_capacity),
            retightens: 0,
            retighten_steps: 0,
        }
    }

    /// The adapter's configuration.
    #[must_use]
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Read access to the live estimator (tests and experiments).
    #[must_use]
    pub fn estimator(&self) -> &OnlineEstimator {
        &self.estimator
    }

    /// A snapshot of the adapter's private telemetry ring.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    /// Chip power of the socket hosting `core`, milliwatts.
    fn socket_power_mw(harvest: &SystemReport, core: CoreId) -> u64 {
        let proc = &harvest.procs[core.proc_id().index()];
        let mw = proc.mean_power.get() * 1_000.0;
        if mw.is_finite() && mw > 0.0 {
            mw.round() as u64
        } else {
            0
        }
    }

    /// Feeds every serving core's `(socket power, settled frequency)`
    /// point from `report` into the estimator.
    fn ingest(&mut self, report: &SystemReport, serving: &[CoreId]) {
        for &core in serving {
            let power_mw = Self::socket_power_mw(report, core);
            if power_mw == 0 {
                continue;
            }
            let mhz = report.core(core).mean_freq.get();
            if !mhz.is_finite() || mhz <= 0.0 {
                continue;
            }
            let freq_khz = (mhz * 1_000.0).round() as u64;
            let _ = self.estimator.observe_freq(core, power_mw, freq_khz);
        }
    }

    /// Runs this epoch's micro-probe bursts: parks a rotating number of
    /// queue-idle cores, settles the chip for `probe_trial_ns`, feeds the
    /// burst's operating point to the estimator, restores the parked
    /// workloads, and drains the burst's chip events (calibration noise,
    /// not serving telemetry).
    fn run_probes(&mut self, ctx: &mut AdaptContext<'_>) {
        let plans = self.probe.plan_epoch(
            ctx.backlog_ns,
            self.cfg.low_traffic_backlog_ns,
            ctx.idle.len(),
        );
        for plan in plans {
            let parked = &ctx.idle[..plan.parked];
            let saved: Vec<(CoreId, Workload)> = parked
                .iter()
                .map(|&c| (c, ctx.mgr.system().core(c).workload().clone()))
                .collect();
            for &core in parked {
                ctx.mgr.system_mut().assign(core, Workload::idle());
            }
            let report = ctx.mgr.system_mut().run(
                Nanos::new(self.cfg.probe_trial_ns as f64),
                &mut self.recorder,
            );
            self.ingest(&report, ctx.serving);
            for (core, workload) in saved {
                ctx.mgr.system_mut().assign(core, workload);
            }
            let _ = ctx.mgr.system_mut().drain_events();
        }
    }
}

impl Adapter for OnlineAdapter {
    fn enabled(&self) -> bool {
        true
    }

    fn on_epoch(&mut self, mut ctx: AdaptContext<'_>) -> bool {
        self.ingest(ctx.harvest, ctx.serving);
        self.run_probes(&mut ctx);
        if (ctx.epoch + 1).is_multiple_of(u64::from(self.cfg.window_epochs)) {
            self.estimator.end_window();
        }
        let picked = self.policy.decide(
            &self.cfg,
            ctx.epoch,
            ctx.backlog_ns,
            &self.estimator,
            ctx.serving,
            ctx.blocked,
        );
        let mut changed = false;
        for core in picked {
            let before = ctx.mgr.system().core(core).reduction();
            let after = ctx
                .mgr
                .retighten_core(core, self.cfg.retighten_steps, &mut self.recorder);
            if after > before {
                changed = true;
                self.retightens += 1;
                self.retighten_steps += (after - before) as u64;
            }
        }
        changed
    }

    fn on_service(&mut self, app: &str, freq_khz: u64, baseline_khz: u64, service_ns: u64) {
        self.estimator
            .observe_service(app, freq_khz, baseline_khz, service_ns);
    }

    fn report(&self) -> Option<AdaptReport> {
        Some(AdaptReport {
            windows: self.estimator.windows().to_vec(),
            observations: self.estimator.observations(),
            app_observations: self.estimator.app_observations(),
            probes_run: self.probe.probes_run(),
            probes_deferred: self.probe.probes_deferred(),
            retightens: self.retightens,
            retighten_steps: self.retighten_steps,
        })
    }

    fn clone_box(&self) -> Box<dyn Adapter> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_adapter_is_inert() {
        let mut null = NullAdapter;
        assert!(!null.enabled());
        null.on_service("squeezenet", 4_600_000, 4_200_000, 40_000_000);
        assert_eq!(null.report(), None);
    }

    #[test]
    fn online_adapter_reports_service_observations() {
        let mut adapter = OnlineAdapter::new(AdaptConfig::standard());
        assert!(adapter.enabled());
        adapter.on_service("squeezenet", 4_600_000, 4_200_000, 40_000_000);
        adapter.on_service("squeezenet", 4_400_000, 4_200_000, 42_000_000);
        let report = adapter.report().unwrap();
        assert_eq!(report.app_observations, 2);
        assert_eq!(report.retightens, 0);
    }

    #[test]
    #[should_panic(expected = "adapt config must validate")]
    fn invalid_config_is_rejected_at_construction() {
        let cfg = AdaptConfig {
            window_epochs: 0,
            ..AdaptConfig::standard()
        };
        let _ = OnlineAdapter::new(cfg);
    }
}
