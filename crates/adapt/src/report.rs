//! The adaptation run's integer account.

use serde::{Deserialize, Serialize};

/// One recharacterization window's error accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptWindow {
    /// Window index (0-based, counted over non-empty windows).
    pub window: u32,
    /// Prequential observations scored in this window.
    pub observations: u64,
    /// Root-mean-square frequency-prediction error over the window, in
    /// milli-MHz (prediction *before* each update vs. the measured
    /// frequency of the true, drifted silicon).
    pub rms_milli_mhz: u64,
}

/// The deterministic account of one adapter's lifetime: window-by-window
/// predictor error plus probe and re-tighten counters. All-integer and
/// `Eq`, so the determinism law (`same config + seed ⇒ byte-identical`)
/// is `assert_eq!`-checkable, and serializable for fleet reports.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Per-window RMS error series (the drifting-lot convergence trace).
    pub windows: Vec<AdaptWindow>,
    /// Frequency observations absorbed (harvests + probes).
    pub observations: u64,
    /// Per-app service-time observations absorbed.
    pub app_observations: u64,
    /// Micro-probe bursts executed.
    pub probes_run: u64,
    /// Micro-probe bursts deferred by the backlog gate.
    pub probes_deferred: u64,
    /// Re-tighten episodes applied through the manager.
    pub retightens: u64,
    /// Total CPM steps restored by re-tightens.
    pub retighten_steps: u64,
}

impl AdaptReport {
    /// Whether the window RMS series shrinks *monotonically on average*:
    /// the mean RMS of the second half of the windows is below the mean
    /// of the first half, and the last window beats the first. (Strict
    /// per-window monotonicity is too brittle under seasonal drift — the
    /// triangle wave turns around mid-run by design.)
    #[must_use]
    pub fn error_shrinks(&self) -> bool {
        if self.windows.len() < 2 {
            return false;
        }
        let rms: Vec<u64> = self.windows.iter().map(|w| w.rms_milli_mhz).collect();
        let mid = rms.len() / 2;
        let sum = |s: &[u64]| s.iter().sum::<u64>() as u128;
        let first_half = sum(&rms[..mid]) * rms[mid..].len() as u128;
        let second_half = sum(&rms[mid..]) * rms[..mid].len() as u128;
        second_half < first_half && rms[rms.len() - 1] < rms[0]
    }

    /// The last window's RMS error, in milli-MHz (`None` before the
    /// first window closes).
    #[must_use]
    pub fn final_rms_milli_mhz(&self) -> Option<u64> {
        self.windows.last().map(|w| w.rms_milli_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rms: &[u64]) -> AdaptReport {
        AdaptReport {
            windows: rms
                .iter()
                .enumerate()
                .map(|(i, r)| AdaptWindow {
                    window: i as u32,
                    observations: 8,
                    rms_milli_mhz: *r,
                })
                .collect(),
            ..AdaptReport::default()
        }
    }

    #[test]
    fn shrinking_series_passes() {
        assert!(report(&[50_000, 20_000, 9_000, 4_000]).error_shrinks());
        // One seasonal bump mid-series must not fail the average law.
        assert!(report(&[50_000, 12_000, 19_000, 6_000]).error_shrinks());
    }

    #[test]
    fn flat_or_growing_series_fails() {
        assert!(!report(&[10_000, 10_000]).error_shrinks());
        assert!(!report(&[5_000, 20_000, 40_000]).error_shrinks());
        assert!(!report(&[5_000]).error_shrinks());
        assert!(!AdaptReport::default().error_shrinks());
    }

    #[test]
    fn final_rms_reads_the_last_window() {
        assert_eq!(report(&[3, 2, 1]).final_rms_milli_mhz(), Some(1));
        assert_eq!(AdaptReport::default().final_rms_milli_mhz(), None);
    }
}
