//! The confidence-gated re-tighten policy.
//!
//! Re-tightening restores CPM steps a rollback (or a conservative
//! deployment) left on the table — it *raises* frequency on live
//! silicon, so it is the one adaptation action that can hurt. The policy
//! therefore demands every gate at once:
//!
//! 1. **Traffic** — the serving backlog is at or below the low-traffic
//!    threshold. A re-tighten mid-burst risks a latency excursion on top
//!    of a frequency excursion.
//! 2. **Cooldown** — at least `cooldown_epochs` since the last episode,
//!    so each change's fault evidence is attributable before the next.
//! 3. **Confidence** — the core's predictor has absorbed at least
//!    `min_observations` points and its exponentially-weighted
//!    innovation is at or below `max_innovation_milli_mhz`. A drifting
//!    or barely-observed core keeps its guardband.
//! 4. **Standing** — the core is not under supervisor discipline
//!    (probation, safe mode, quarantine). The ladder outranks the
//!    policy: a rolled-back core earns its margin back through clean
//!    re-probes, never through the adapter.
//!
//! The policy only *selects* cores; application goes through
//! `AtmManager::retighten_core`, which additionally clamps to
//! the validated deployment ceiling minus any live rollback override.

use std::collections::BTreeSet;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::config::AdaptConfig;
use crate::estimator::OnlineEstimator;

/// The re-tighten gate (see the module docs for the four conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RetightenPolicy {
    last_episode: Option<u64>,
}

impl RetightenPolicy {
    /// Creates a policy with no episode history.
    #[must_use]
    pub fn new() -> Self {
        RetightenPolicy::default()
    }

    /// Epoch of the last re-tighten episode, if any.
    #[must_use]
    pub fn last_episode(&self) -> Option<u64> {
        self.last_episode
    }

    /// Selects the cores to re-tighten this epoch (possibly empty).
    /// `candidates` is the serving layer's core set in deterministic
    /// order; `blocked` holds every core under supervisor discipline.
    /// Records the episode iff at least one core passes every gate.
    pub fn decide(
        &mut self,
        cfg: &AdaptConfig,
        epoch: u64,
        backlog_ns: u64,
        estimator: &OnlineEstimator,
        candidates: &[CoreId],
        blocked: &BTreeSet<CoreId>,
    ) -> Vec<CoreId> {
        if backlog_ns > cfg.low_traffic_backlog_ns {
            return Vec::new();
        }
        if let Some(last) = self.last_episode {
            if epoch.saturating_sub(last) < u64::from(cfg.cooldown_epochs) {
                return Vec::new();
            }
        }
        let picked: Vec<CoreId> = candidates
            .iter()
            .copied()
            .filter(|core| !blocked.contains(core))
            .filter(|core| estimator.core_observations(*core) >= cfg.min_observations)
            .filter(|core| {
                cfg.min_observations == 0
                    || estimator.confidence_milli_mhz(*core) <= cfg.max_innovation_milli_mhz
            })
            .collect();
        if !picked.is_empty() {
            self.last_episode = Some(epoch);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(cores: &[CoreId], points: u64) -> OnlineEstimator {
        let mut est = OnlineEstimator::new(1_000);
        for &core in cores {
            for i in 0..points {
                let power = 100_000 + 20_000 * i;
                let _ = est.observe_freq(core, power, 5_100_000 - 2_000 * (power / 1_000));
            }
        }
        est
    }

    #[test]
    fn passes_when_every_gate_clears() {
        let cfg = AdaptConfig::standard();
        let cores = [CoreId::new(0, 0), CoreId::new(0, 1)];
        let est = trained(&cores, cfg.min_observations + 2);
        let mut policy = RetightenPolicy::new();
        let picked = policy.decide(&cfg, 10, 0, &est, &cores, &BTreeSet::new());
        assert_eq!(picked, cores.to_vec());
        assert_eq!(policy.last_episode(), Some(10));
    }

    #[test]
    fn traffic_gate_blocks_busy_epochs() {
        let cfg = AdaptConfig::standard();
        let cores = [CoreId::new(0, 0)];
        let est = trained(&cores, cfg.min_observations + 2);
        let mut policy = RetightenPolicy::new();
        let busy = cfg.low_traffic_backlog_ns + 1;
        assert!(policy
            .decide(&cfg, 10, busy, &est, &cores, &BTreeSet::new())
            .is_empty());
        assert_eq!(policy.last_episode(), None);
    }

    #[test]
    fn cooldown_spaces_episodes() {
        let cfg = AdaptConfig::standard();
        let cores = [CoreId::new(0, 0)];
        let est = trained(&cores, cfg.min_observations + 2);
        let mut policy = RetightenPolicy::new();
        assert!(!policy
            .decide(&cfg, 4, 0, &est, &cores, &BTreeSet::new())
            .is_empty());
        for epoch in 5..4 + u64::from(cfg.cooldown_epochs) {
            assert!(policy
                .decide(&cfg, epoch, 0, &est, &cores, &BTreeSet::new())
                .is_empty());
        }
        let next = 4 + u64::from(cfg.cooldown_epochs);
        assert!(!policy
            .decide(&cfg, next, 0, &est, &cores, &BTreeSet::new())
            .is_empty());
    }

    #[test]
    fn unconfident_and_blocked_cores_are_skipped() {
        let cfg = AdaptConfig::standard();
        let confident = CoreId::new(0, 0);
        let raw = CoreId::new(0, 1);
        let disciplined = CoreId::new(0, 2);
        let est = trained(&[confident, disciplined], cfg.min_observations + 2);
        let blocked: BTreeSet<CoreId> = [disciplined].into_iter().collect();
        let mut policy = RetightenPolicy::new();
        let picked = policy.decide(&cfg, 10, 0, &est, &[confident, raw, disciplined], &blocked);
        assert_eq!(picked, vec![confident]);
    }

    #[test]
    fn reckless_preset_ignores_confidence_but_not_standing() {
        let cfg = AdaptConfig::reckless();
        let core = CoreId::new(0, 0);
        let jailed = CoreId::new(0, 1);
        let est = OnlineEstimator::new(1_000); // zero observations anywhere
        let blocked: BTreeSet<CoreId> = [jailed].into_iter().collect();
        let mut policy = RetightenPolicy::new();
        let picked = policy.decide(&cfg, 0, u64::MAX - 1, &est, &[core, jailed], &blocked);
        assert_eq!(picked, vec![core], "standing gate must survive reckless");
    }
}
