//! The online estimator: live refinement of the Eq. 1 frequency
//! predictor and the per-app performance predictor.
//!
//! Characterization trains both predictors *offline* (PR 2's deployment
//! sweep); [`OnlineEstimator`] keeps them honest afterwards. Every epoch
//! the serving layer feeds it the chip harvest — total socket power plus
//! each core's settled ATM frequency — and every completed critical
//! request contributes a service-time point. Two families of
//! [`Rls2`](crate::Rls2) models absorb them:
//!
//! * **Per-core frequency models** re-fit Eq. 1 (`f̄ = −k′·P̄ + b`) with
//!   power normalized to hectowatts and frequency to GHz. The innovation
//!   stream doubles as the error signal: before each update the current
//!   model predicts, and `|prediction − measurement|` is scored
//!   prequentially — an honest, leak-free error estimate against the
//!   true (possibly drifted) silicon.
//! * **Per-app performance models** fit service time (milliseconds)
//!   against the inverse frequency ratio `f_nominal / f`, refining the
//!   speedup curve the serving posture's QoS math rests on.
//!
//! Observations are quantized to integers (milliwatts, kilohertz,
//! nanoseconds) at the intake boundary; everything after is Q32.32
//! fixed-point, so the estimator state is a pure function of the
//! observation stream.

use std::collections::BTreeMap;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::fixed::{isqrt_u128, Fixed};
use crate::report::AdaptWindow;
use crate::rls::Rls2;

/// EW smoothing shift for the per-core innovation track: new = 7/8 old +
/// 1/8 sample.
const EW_SHIFT: u64 = 3;

/// One core's frequency model plus its confidence bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CoreModel {
    rls: Rls2,
    /// Exponentially-weighted absolute innovation, milli-MHz.
    ew_innovation_milli: u64,
}

/// The live predictor bank (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineEstimator {
    forgetting_milli: u32,
    cores: BTreeMap<CoreId, CoreModel>,
    apps: BTreeMap<String, Rls2>,
    observations: u64,
    app_observations: u64,
    /// Current window's squared-error accumulator (milli-MHz²).
    window_sq_sum: u128,
    window_obs: u64,
    windows: Vec<AdaptWindow>,
}

impl OnlineEstimator {
    /// Creates an empty estimator with the given RLS forgetting factor
    /// (in milli; see [`Rls2::new`]).
    #[must_use]
    pub fn new(forgetting_milli: u32) -> Self {
        OnlineEstimator {
            forgetting_milli,
            cores: BTreeMap::new(),
            apps: BTreeMap::new(),
            observations: 0,
            app_observations: 0,
            window_sq_sum: 0,
            window_obs: 0,
            windows: Vec::new(),
        }
    }

    /// Absorbs one `(chip power, core frequency)` point for `core` and
    /// returns the prequential absolute error in milli-MHz (`None` for
    /// the core's very first observation, which nothing predicted).
    pub fn observe_freq(&mut self, core: CoreId, power_mw: u64, freq_khz: u64) -> Option<u64> {
        let x = Fixed::from_ratio(power_mw as i64, 100_000); // hectowatts
        let y = Fixed::from_ratio(freq_khz as i64, 1_000_000); // GHz
        let model = self.cores.entry(core).or_insert_with(|| CoreModel {
            rls: Rls2::new(self.forgetting_milli),
            ew_innovation_milli: 0,
        });
        let error = if model.rls.observations() > 0 {
            // 1 kHz = 1 milli-MHz, so the scaled innovation is the error.
            let err_milli = model
                .rls
                .predict(x)
                .to_scaled(1_000_000)
                .abs_diff(freq_khz as i64);
            // A one-point model's prediction is a prior artifact, not
            // evidence — seed the EW track from the two-point model's
            // first honest error instead of poisoning it.
            model.ew_innovation_milli = if model.rls.observations() <= 2 {
                err_milli
            } else {
                (model.ew_innovation_milli * ((1 << EW_SHIFT) - 1) + err_milli) >> EW_SHIFT
            };
            self.window_sq_sum += u128::from(err_milli) * u128::from(err_milli);
            self.window_obs += 1;
            Some(err_milli)
        } else {
            None
        };
        let _ = model.rls.update(x, y);
        self.observations += 1;
        error
    }

    /// Absorbs one completed-request service-time point for `app`:
    /// `service_ns` observed at `freq_khz` against nominal
    /// `baseline_khz`.
    pub fn observe_service(
        &mut self,
        app: &str,
        freq_khz: u64,
        baseline_khz: u64,
        service_ns: u64,
    ) {
        if freq_khz == 0 || baseline_khz == 0 {
            return;
        }
        let x = Fixed::from_ratio(baseline_khz as i64, freq_khz as i64);
        let y = Fixed::from_ratio(service_ns as i64, 1_000_000); // ms
        let rls = self
            .apps
            .entry(app.to_owned())
            .or_insert_with(|| Rls2::new(self.forgetting_milli));
        let _ = rls.update(x, y);
        self.app_observations += 1;
    }

    /// The refined Eq. 1 prediction for `core` at `power_mw`, in kHz
    /// (`None` until the core's model has at least two observations — a
    /// one-point line has no slope).
    #[must_use]
    pub fn predicted_freq_khz(&self, core: CoreId, power_mw: u64) -> Option<u64> {
        let model = self.cores.get(&core)?;
        if model.rls.observations() < 2 {
            return None;
        }
        let x = Fixed::from_ratio(power_mw as i64, 100_000);
        Some(u64::try_from(model.rls.predict(x).to_scaled(1_000_000)).unwrap_or(0))
    }

    /// The refined service-time prediction for `app` at `freq_khz`
    /// against `baseline_khz`, in ns (`None` until the app's model has at
    /// least two observations).
    #[must_use]
    pub fn predicted_service_ns(&self, app: &str, freq_khz: u64, baseline_khz: u64) -> Option<u64> {
        if freq_khz == 0 || baseline_khz == 0 {
            return None;
        }
        let rls = self.apps.get(app)?;
        if rls.observations() < 2 {
            return None;
        }
        let x = Fixed::from_ratio(baseline_khz as i64, freq_khz as i64);
        Some(u64::try_from(rls.predict(x).to_scaled(1_000_000)).unwrap_or(0))
    }

    /// Observations absorbed by `core`'s frequency model.
    #[must_use]
    pub fn core_observations(&self, core: CoreId) -> u64 {
        self.cores.get(&core).map_or(0, |m| m.rls.observations())
    }

    /// `core`'s exponentially-weighted absolute innovation, milli-MHz —
    /// the confidence signal the re-tighten gate reads (`u64::MAX` before
    /// the first scored observation: an unscored model is maximally
    /// unconfident).
    #[must_use]
    pub fn confidence_milli_mhz(&self, core: CoreId) -> u64 {
        match self.cores.get(&core) {
            Some(m) if m.rls.observations() >= 2 => m.ew_innovation_milli,
            _ => u64::MAX,
        }
    }

    /// Total frequency observations absorbed.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Total service-time observations absorbed.
    #[must_use]
    pub fn app_observations(&self) -> u64 {
        self.app_observations
    }

    /// Closes the current recharacterization window: folds its
    /// accumulated squared errors into an [`AdaptWindow`] (skipped when
    /// the window scored nothing) and starts the next.
    pub fn end_window(&mut self) {
        if self.window_obs > 0 {
            let rms = isqrt_u128(self.window_sq_sum / u128::from(self.window_obs));
            self.windows.push(AdaptWindow {
                window: self.windows.len() as u32,
                observations: self.window_obs,
                rms_milli_mhz: rms,
            });
        }
        self.window_sq_sum = 0;
        self.window_obs = 0;
    }

    /// The closed windows' error series.
    #[must_use]
    pub fn windows(&self) -> &[AdaptWindow] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq_for(power_mw: u64) -> u64 {
        // A plausible Eq.-1 truth: 5.1 GHz intercept, −2 MHz/W slope.
        5_100_000 - 2_000 * (power_mw / 1_000)
    }

    #[test]
    fn prequential_error_shrinks_on_a_stationary_chip() {
        let mut est = OnlineEstimator::new(1_000);
        let core = CoreId::new(0, 0);
        let mut errors = Vec::new();
        for round in 0..6u64 {
            for power in [90_000u64, 130_000, 170_000, 210_000] {
                if let Some(e) = est.observe_freq(core, power, freq_for(power)) {
                    if round > 0 {
                        errors.push(e);
                    }
                }
            }
            est.end_window();
        }
        assert!(errors.last().unwrap() < errors.first().unwrap());
        assert!(est.confidence_milli_mhz(core) < 10_000, "no confidence");
        let w = est.windows();
        assert!(w.len() >= 2);
        assert!(w.last().unwrap().rms_milli_mhz < w.first().unwrap().rms_milli_mhz);
    }

    #[test]
    fn prediction_matches_the_line_after_training() {
        let mut est = OnlineEstimator::new(980);
        let core = CoreId::new(1, 3);
        for power in (80_000..240_000).step_by(20_000) {
            let _ = est.observe_freq(core, power, freq_for(power));
        }
        let pred = est.predicted_freq_khz(core, 150_000).unwrap();
        assert!(pred.abs_diff(freq_for(150_000)) < 5_000, "pred {pred}");
    }

    #[test]
    fn unseen_cores_are_unconfident() {
        let est = OnlineEstimator::new(980);
        let core = CoreId::new(0, 7);
        assert_eq!(est.confidence_milli_mhz(core), u64::MAX);
        assert_eq!(est.predicted_freq_khz(core, 100_000), None);
        assert_eq!(est.core_observations(core), 0);
    }

    #[test]
    fn app_model_learns_service_scaling() {
        let mut est = OnlineEstimator::new(1_000);
        let baseline = 4_200_000u64;
        // service = 40 ms × (baseline/f): slower clock, longer service.
        for f in [4_200_000u64, 4_600_000, 5_000_000, 5_200_000] {
            let service = 40_000_000 * baseline / f;
            est.observe_service("squeezenet", f, baseline, service);
        }
        let at_badline = est
            .predicted_service_ns("squeezenet", 4_400_000, baseline)
            .unwrap();
        let truth = 40_000_000 * baseline / 4_400_000;
        assert!(at_badline.abs_diff(truth) < 2_000_000, "pred {at_badline}");
        assert_eq!(est.app_observations(), 4);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut est = OnlineEstimator::new(980);
        est.end_window();
        est.end_window();
        assert!(est.windows().is_empty());
    }
}
