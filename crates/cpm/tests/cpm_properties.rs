//! Property tests for the Critical Path Monitor model.

use atm_cpm::{CoreCpmSet, CpmReading, CpmUnit, READOUT_QUANTUM};
use atm_silicon::{SiliconFactory, SiliconParams};
use atm_units::{Celsius, CoreId, MegaHz, Picos, Volts};
use proptest::prelude::*;

fn silicon(seed: u64, flat: usize) -> atm_silicon::CoreSilicon {
    SiliconFactory::new(SiliconParams::power7_plus(), seed).core(CoreId::from_flat_index(flat))
}

proptest! {
    #[test]
    fn reading_quantization_consistent(margin in -50.0f64..100.0) {
        let r = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(margin));
        if margin <= 0.0 {
            prop_assert!(r.is_violation());
            prop_assert_eq!(r.units(), 0);
        } else {
            prop_assert!(!r.is_violation());
            let expect = (margin / READOUT_QUANTUM.get()).floor() as u32;
            prop_assert_eq!(r.units(), expect);
        }
    }

    #[test]
    fn worst_is_commutative_and_idempotent(a in -20.0f64..60.0, b in -20.0f64..60.0) {
        let ra = CpmReading::quantize(CpmUnit::InstructionFetch, Picos::new(a));
        let rb = CpmReading::quantize(CpmUnit::FloatingPoint, Picos::new(b));
        prop_assert_eq!(ra.worst(rb).margin(), rb.worst(ra).margin());
        prop_assert_eq!(ra.worst(ra).margin(), ra.margin());
    }

    #[test]
    fn calibration_within_preset_bounds(seed in 0u64..1000, flat in 0usize..16) {
        let si = silicon(seed, flat);
        let set = CoreCpmSet::calibrate(
            &si,
            Volts::new(1.235),
            Celsius::new(45.0),
            MegaHz::new(4600.0),
            Picos::new(10.0),
        );
        for unit in CpmUnit::ALL {
            prop_assert!(set.preset(unit) <= atm_silicon::MAX_INSERTED_STEPS);
        }
        prop_assert!(set.max_reduction() <= atm_silicon::MAX_INSERTED_STEPS);
    }

    #[test]
    fn equilibrium_monotone_in_voltage(seed in 0u64..300, flat in 0usize..16) {
        let si = silicon(seed, flat);
        let t = Celsius::new(45.0);
        let thr = Picos::new(10.0);
        let set = CoreCpmSet::calibrate(&si, Volts::new(1.235), t, MegaHz::new(4600.0), thr);
        let mut prev = set.equilibrium_period(&si, Volts::new(1.15), t, thr);
        for mv in (1160..=1260).step_by(20) {
            let p = set.equilibrium_period(&si, Volts::new(f64::from(mv) / 1000.0), t, thr);
            prop_assert!(p <= prev, "period must shrink as voltage rises");
            prev = p;
        }
    }

    #[test]
    fn measure_from_base_matches_measure(seed in 0u64..300, flat in 0usize..16) {
        let si = silicon(seed, flat);
        let v = Volts::new(1.22);
        let t = Celsius::new(55.0);
        let thr = Picos::new(10.0);
        let set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), thr);
        let period = MegaHz::new(4600.0).period();
        let direct = set.measure(&si, period, v, t);
        let base = si.real_path_delay(v, t);
        let fast = set.measure_from_base(&si, period, base);
        prop_assert_eq!(direct.units(), fast.units());
        prop_assert!((direct.margin().get() - fast.margin().get()).abs() < 1e-9);
    }

    #[test]
    fn reduction_roundtrip_preserves_state(seed in 0u64..300, flat in 0usize..16) {
        let si = silicon(seed, flat);
        let mut set = CoreCpmSet::calibrate(
            &si,
            Volts::new(1.235),
            Celsius::new(45.0),
            MegaHz::new(4600.0),
            Picos::new(10.0),
        );
        let original = set.clone();
        let max = set.max_reduction();
        if max > 0 {
            set.set_reduction(max).unwrap();
            set.set_reduction(0).unwrap();
        }
        prop_assert_eq!(set, original);
    }
}

#[test]
fn five_cpms_report_worst_unit() {
    let si = silicon(42, 0);
    let v = Volts::new(1.235);
    let t = Celsius::new(45.0);
    let set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), Picos::new(10.0));
    let reading = set.measure(&si, MegaHz::new(4600.0).period(), v, t);
    // The reported unit must be the one with the largest occupied time.
    let worst_unit = CpmUnit::ALL
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let occ =
                |u: CpmUnit| set.inserted_delay(&si, u) + si.cpm_synthetic_delay(u.index(), v, t);
            occ(a).get().partial_cmp(&occ(b).get()).unwrap()
        })
        .unwrap();
    assert_eq!(reading.unit(), worst_unit);
}
