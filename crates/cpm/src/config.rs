//! CPM configuration types, units and errors.

use std::fmt;

use atm_units::Picos;
use serde::{Deserialize, Serialize};

/// Number of CPMs in each core.
pub const CPMS_PER_CORE: usize = 5;

/// Time encoded by one unit of the CPM readout inverter chain.
///
/// The paper reports that one inserted-delay step corresponds to one to
/// three readout units (20–60 mV of supply variation); with a 2 ps readout
/// quantum and 2.4–8.5 ps inserted-delay steps, the model lands in the same
/// ratio.
pub const READOUT_QUANTUM: Picos = Picos::new_const(2.0);

/// The functional unit a CPM is embedded in (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CpmUnit {
    /// Instruction fetch unit.
    InstructionFetch,
    /// Instruction scheduling unit.
    InstructionSched,
    /// Fixed-point unit.
    FixedPoint,
    /// Floating-point unit.
    FloatingPoint,
    /// Last-level cache (separate clock domain on POWER7+, excluded from
    /// fine-tuning sweeps like the paper's Fig. 4b does).
    Cache,
}

impl CpmUnit {
    /// All five units in index order.
    pub const ALL: [CpmUnit; CPMS_PER_CORE] = [
        CpmUnit::InstructionFetch,
        CpmUnit::InstructionSched,
        CpmUnit::FixedPoint,
        CpmUnit::FloatingPoint,
        CpmUnit::Cache,
    ];

    /// The unit's index within a core's CPM set.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CpmUnit::InstructionFetch => 0,
            CpmUnit::InstructionSched => 1,
            CpmUnit::FixedPoint => 2,
            CpmUnit::FloatingPoint => 3,
            CpmUnit::Cache => 4,
        }
    }

    /// The inverse of [`CpmUnit::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 5`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        CpmUnit::ALL[index]
    }
}

impl fmt::Display for CpmUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CpmUnit::InstructionFetch => "IFU",
            CpmUnit::InstructionSched => "ISU",
            CpmUnit::FixedPoint => "FXU",
            CpmUnit::FloatingPoint => "FPU",
            CpmUnit::Cache => "LLC",
        };
        f.write_str(s)
    }
}

/// Error raised by invalid CPM reconfiguration requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpmConfigError {
    /// The requested delay reduction exceeds a CPM's preset inserted delay
    /// — there are no more inverters to remove.
    ReductionTooLarge {
        /// The requested reduction in steps.
        requested: usize,
        /// The largest reduction this core supports.
        max: usize,
    },
}

impl fmt::Display for CpmConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpmConfigError::ReductionTooLarge { requested, max } => write!(
                f,
                "requested CPM delay reduction of {requested} steps exceeds the core's preset (max {max})"
            ),
        }
    }
}

impl std::error::Error for CpmConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_index_roundtrip() {
        for u in CpmUnit::ALL {
            assert_eq!(CpmUnit::from_index(u.index()), u);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CpmUnit::InstructionFetch.to_string(), "IFU");
        assert_eq!(CpmUnit::Cache.to_string(), "LLC");
    }

    #[test]
    fn error_display_mentions_limits() {
        let e = CpmConfigError::ReductionTooLarge {
            requested: 12,
            max: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("12") && msg.contains("9"));
    }

    #[test]
    fn readout_quantum_positive() {
        assert!(READOUT_QUANTUM.get() > 0.0);
    }
}
