//! CPM measurement output.

use atm_units::Picos;
use serde::{Deserialize, Serialize};

use crate::config::{CpmUnit, READOUT_QUANTUM};

/// One cycle's margin measurement from a CPM (or the worst-of-five from a
/// core's CPM set).
///
/// The readout inverter chain counts how many inverters the signal passes
/// *after* clearing the inserted delay and synthetic path — an integer
/// number of [`READOUT_QUANTUM`] units. A margin at or below zero means the
/// synthetic path did not complete within the cycle: a timing-margin
/// violation the DPLL must react to immediately.
///
/// # Examples
///
/// ```
/// use atm_cpm::{CpmReading, CpmUnit};
/// use atm_units::Picos;
///
/// let r = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(9.0));
/// assert_eq!(r.units(), 4); // 9 ps / 2 ps quantum
/// assert!(!r.is_violation());
///
/// let v = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(-1.0));
/// assert!(v.is_violation());
/// assert_eq!(v.units(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpmReading {
    unit: CpmUnit,
    margin: Picos,
    units: u32,
    violation: bool,
}

impl CpmReading {
    /// Quantizes a raw margin into a reading attributed to `unit`.
    #[must_use]
    #[inline]
    pub fn quantize(unit: CpmUnit, margin: Picos) -> Self {
        let violation = margin.get() <= 0.0;
        let units = if violation {
            0
        } else {
            (margin.get() / READOUT_QUANTUM.get()).floor() as u32
        };
        CpmReading {
            unit,
            margin,
            units,
            violation,
        }
    }

    /// Which functional unit's CPM produced this reading.
    #[must_use]
    pub fn unit(&self) -> CpmUnit {
        self.unit
    }

    /// The quantized margin in readout units (what the hardware reports).
    #[must_use]
    pub fn units(&self) -> u32 {
        self.units
    }

    /// The underlying continuous margin (model-internal; real hardware only
    /// sees [`CpmReading::units`]).
    #[must_use]
    pub fn margin(&self) -> Picos {
        self.margin
    }

    /// Whether the synthetic path failed to complete within the cycle.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        self.violation
    }

    /// The worse (smaller-margin) of two readings.
    #[must_use]
    pub fn worst(self, other: CpmReading) -> CpmReading {
        if other.margin < self.margin {
            other
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_floors() {
        let r = CpmReading::quantize(CpmUnit::InstructionFetch, Picos::new(7.9));
        assert_eq!(r.units(), 3);
        let r = CpmReading::quantize(CpmUnit::InstructionFetch, Picos::new(8.0));
        assert_eq!(r.units(), 4);
    }

    #[test]
    fn zero_margin_is_violation() {
        assert!(CpmReading::quantize(CpmUnit::Cache, Picos::ZERO).is_violation());
    }

    #[test]
    fn positive_margin_not_violation() {
        assert!(!CpmReading::quantize(CpmUnit::Cache, Picos::new(0.1)).is_violation());
    }

    #[test]
    fn worst_picks_smaller_margin() {
        let a = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(10.0));
        let b = CpmReading::quantize(CpmUnit::FloatingPoint, Picos::new(4.0));
        assert_eq!(a.worst(b).unit(), CpmUnit::FloatingPoint);
        assert_eq!(b.worst(a).unit(), CpmUnit::FloatingPoint);
    }

    #[test]
    fn units_monotone_in_margin() {
        let mut prev = 0;
        for tenths in 0..200 {
            let r = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(f64::from(tenths) / 10.0));
            assert!(r.units() >= prev);
            prev = r.units();
        }
    }
}
