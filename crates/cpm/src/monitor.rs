//! CPM measurement output.

use atm_units::Picos;
use serde::{Deserialize, Serialize};

use crate::config::{CpmUnit, READOUT_QUANTUM};

/// One cycle's margin measurement from a CPM (or the worst-of-five from a
/// core's CPM set).
///
/// The readout inverter chain counts how many inverters the signal passes
/// *after* clearing the inserted delay and synthetic path — an integer
/// number of [`READOUT_QUANTUM`] units. A margin at or below zero means the
/// synthetic path did not complete within the cycle: a timing-margin
/// violation the DPLL must react to immediately.
///
/// # Examples
///
/// ```
/// use atm_cpm::{CpmReading, CpmUnit};
/// use atm_units::Picos;
///
/// let r = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(9.0));
/// assert_eq!(r.units(), 4); // 9 ps / 2 ps quantum
/// assert!(!r.is_violation());
///
/// let v = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(-1.0));
/// assert!(v.is_violation());
/// assert_eq!(v.units(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpmReading {
    unit: CpmUnit,
    margin: Picos,
    units: u32,
    violation: bool,
}

impl CpmReading {
    /// Quantizes a raw margin into a reading attributed to `unit`.
    #[must_use]
    #[inline]
    pub fn quantize(unit: CpmUnit, margin: Picos) -> Self {
        let violation = margin.get() <= 0.0;
        let units = if violation {
            0
        } else {
            (margin.get() / READOUT_QUANTUM.get()).floor() as u32
        };
        CpmReading {
            unit,
            margin,
            units,
            violation,
        }
    }

    /// Which functional unit's CPM produced this reading.
    #[must_use]
    pub fn unit(&self) -> CpmUnit {
        self.unit
    }

    /// The quantized margin in readout units (what the hardware reports).
    #[must_use]
    pub fn units(&self) -> u32 {
        self.units
    }

    /// The underlying continuous margin (model-internal; real hardware only
    /// sees [`CpmReading::units`]).
    #[must_use]
    pub fn margin(&self) -> Picos {
        self.margin
    }

    /// Whether the synthetic path failed to complete within the cycle.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        self.violation
    }

    /// The worse (smaller-margin) of two readings.
    #[must_use]
    pub fn worst(self, other: CpmReading) -> CpmReading {
        if other.margin < self.margin {
            other
        } else {
            self
        }
    }
}

/// A fault injected into a CPM sensor's readout path.
///
/// Sensor faults model the ways the canary circuit itself can lie to the
/// control loop: a latched (stuck-at) readout, a dropped sample, or a
/// calibration drift that biases every reading by a fixed number of units.
/// [`SensorFault::apply`] rewrites a freshly measured reading; `None` means
/// the sample never arrived (dropout) and the loop must hold its last
/// action.
///
/// # Examples
///
/// ```
/// use atm_cpm::{CpmReading, CpmUnit, SensorFault};
/// use atm_units::Picos;
///
/// let real = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(9.0));
/// let stuck = SensorFault::StuckAt { units: 12 }.apply(real).unwrap();
/// assert_eq!(stuck.units(), 12);
/// assert!(SensorFault::Dropout.apply(real).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorFault {
    /// The readout latch is stuck: every sample reports exactly `units`
    /// regardless of the true margin.
    StuckAt {
        /// The latched readout value, in quantum units.
        units: u32,
    },
    /// The sample is lost entirely; the consumer sees no reading this
    /// cycle.
    Dropout,
    /// Calibration drift: every reading is shifted by `delta_units`
    /// quantum units (negative drift under-reports margin, positive drift
    /// over-reports it — the dangerous direction).
    Drift {
        /// Signed readout shift in quantum units.
        delta_units: i32,
    },
}

impl SensorFault {
    /// Applies this fault to a freshly measured `reading`, returning the
    /// corrupted reading the control loop will actually see, or `None`
    /// for a dropout.
    #[must_use]
    pub fn apply(self, reading: CpmReading) -> Option<CpmReading> {
        match self {
            SensorFault::StuckAt { units } => {
                // Reconstruct a reading in the middle of the stuck bucket
                // so quantization reproduces `units` exactly.
                let margin = Picos::new((f64::from(units) + 0.5) * READOUT_QUANTUM.get());
                Some(CpmReading::quantize(reading.unit(), margin))
            }
            SensorFault::Dropout => None,
            SensorFault::Drift { delta_units } => {
                let shifted = f64::from(reading.units()) + f64::from(delta_units);
                let margin = if shifted < 0.0 || (reading.is_violation() && delta_units <= 0) {
                    // Drift cannot un-fail a violating path downward, and a
                    // negative total reads as a violation.
                    Picos::new(shifted.min(0.0) * READOUT_QUANTUM.get())
                } else {
                    Picos::new((shifted + 0.5) * READOUT_QUANTUM.get())
                };
                Some(CpmReading::quantize(reading.unit(), margin))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_floors() {
        let r = CpmReading::quantize(CpmUnit::InstructionFetch, Picos::new(7.9));
        assert_eq!(r.units(), 3);
        let r = CpmReading::quantize(CpmUnit::InstructionFetch, Picos::new(8.0));
        assert_eq!(r.units(), 4);
    }

    #[test]
    fn zero_margin_is_violation() {
        assert!(CpmReading::quantize(CpmUnit::Cache, Picos::ZERO).is_violation());
    }

    #[test]
    fn positive_margin_not_violation() {
        assert!(!CpmReading::quantize(CpmUnit::Cache, Picos::new(0.1)).is_violation());
    }

    #[test]
    fn worst_picks_smaller_margin() {
        let a = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(10.0));
        let b = CpmReading::quantize(CpmUnit::FloatingPoint, Picos::new(4.0));
        assert_eq!(a.worst(b).unit(), CpmUnit::FloatingPoint);
        assert_eq!(b.worst(a).unit(), CpmUnit::FloatingPoint);
    }

    #[test]
    fn stuck_at_pins_units() {
        let real = CpmReading::quantize(CpmUnit::Cache, Picos::new(3.0));
        let faulted = SensorFault::StuckAt { units: 9 }.apply(real).unwrap();
        assert_eq!(faulted.units(), 9);
        assert!(!faulted.is_violation());
        assert_eq!(faulted.unit(), CpmUnit::Cache);
    }

    #[test]
    fn stuck_at_zero_is_violation_free_but_minimal() {
        let real = CpmReading::quantize(CpmUnit::Cache, Picos::new(30.0));
        let faulted = SensorFault::StuckAt { units: 0 }.apply(real).unwrap();
        assert_eq!(faulted.units(), 0);
        assert!(!faulted.is_violation());
    }

    #[test]
    fn dropout_loses_the_sample() {
        let real = CpmReading::quantize(CpmUnit::FloatingPoint, Picos::new(8.0));
        assert!(SensorFault::Dropout.apply(real).is_none());
    }

    #[test]
    fn drift_shifts_units_both_ways() {
        let real = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(10.1));
        assert_eq!(real.units(), 5);
        let up = SensorFault::Drift { delta_units: 3 }.apply(real).unwrap();
        assert_eq!(up.units(), 8);
        let down = SensorFault::Drift { delta_units: -2 }.apply(real).unwrap();
        assert_eq!(down.units(), 3);
    }

    #[test]
    fn drift_below_zero_reads_as_violation() {
        let real = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(4.1));
        assert_eq!(real.units(), 2);
        let down = SensorFault::Drift { delta_units: -5 }.apply(real).unwrap();
        assert!(down.is_violation());
        assert_eq!(down.units(), 0);
    }

    #[test]
    fn negative_drift_keeps_violations_violating() {
        let real = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(-1.0));
        assert!(real.is_violation());
        let still = SensorFault::Drift { delta_units: -1 }.apply(real).unwrap();
        assert!(still.is_violation());
        let held = SensorFault::Drift { delta_units: 0 }.apply(real).unwrap();
        assert!(held.is_violation());
    }

    #[test]
    fn units_monotone_in_margin() {
        let mut prev = 0;
        for tenths in 0..200 {
            let r = CpmReading::quantize(CpmUnit::FixedPoint, Picos::new(f64::from(tenths) / 10.0));
            assert!(r.units() >= prev);
            prev = r.units();
        }
    }
}
