//! Critical Path Monitor (CPM) model: the programmable canary circuit at
//! the heart of the POWER7+ Active Timing Margin design.
//!
//! A CPM has three cascaded parts (paper Fig. 4a):
//!
//! 1. a **programmable inserted delay** — a selectable number of inverters
//!    whose (non-linear) per-step delays come from the core's manufactured
//!    [`InverterChain`](atm_silicon::InverterChain);
//! 2. **synthetic paths** mimicking real pipeline circuit delay, tracking
//!    supply voltage and temperature;
//! 3. an **inverter-chain readout** that quantizes the remaining slack in a
//!    cycle into integer units.
//!
//! Five CPMs sit in each core (instruction fetch, instruction scheduling,
//! fixed point, floating point, last-level cache); the worst of the five is
//! reported to the DPLL every cycle.
//!
//! *Fine-tuning* — the paper's central knob — is reprogramming the inserted
//! delay to a smaller value ([`CoreCpmSet::set_reduction`]), which makes the
//! control loop perceive more margin and raise frequency.
//!
//! # Examples
//!
//! ```
//! use atm_cpm::CoreCpmSet;
//! use atm_silicon::{SiliconFactory, SiliconParams};
//! use atm_units::{Celsius, CoreId, MegaHz, Picos, Volts};
//!
//! let silicon = SiliconFactory::new(SiliconParams::power7_plus(), 42).core(CoreId::new(0, 0));
//! let v = Volts::new(1.235);
//! let t = Celsius::new(45.0);
//! let mut cpms = CoreCpmSet::calibrate(&silicon, v, t, MegaHz::new(4600.0), Picos::new(10.0));
//!
//! // Reducing the inserted delay shrinks the equilibrium period, i.e.
//! // raises the frequency the ATM loop will settle at.
//! let before = cpms.equilibrium_period(&silicon, v, t, Picos::new(10.0));
//! cpms.set_reduction(2)?;
//! let after = cpms.equilibrium_period(&silicon, v, t, Picos::new(10.0));
//! assert!(after < before);
//! # Ok::<(), atm_cpm::CpmConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod monitor;
mod set;

pub use config::{CpmConfigError, CpmUnit, CPMS_PER_CORE, READOUT_QUANTUM};
pub use monitor::{CpmReading, SensorFault};
pub use set::CoreCpmSet;
