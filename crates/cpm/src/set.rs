//! A core's set of five CPMs and its fine-tuning state.

use atm_silicon::CoreSilicon;
use atm_units::{Celsius, MegaHz, Picos, Volts};
use serde::{Deserialize, Serialize};

use crate::config::{CpmConfigError, CpmUnit, CPMS_PER_CORE};
use crate::monitor::CpmReading;

/// The five CPMs of one core: their test-time preset inserted delays plus
/// the current fine-tuning *reduction* applied uniformly to all of them
/// (the paper reduces all CPMs in a core by the same step count to keep the
/// search space tractable, Sec. III-A).
///
/// The set is pure configuration: measurements take the core's
/// [`CoreSilicon`] so that one silicon description can be shared by the
/// chip simulator without aliasing.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreCpmSet {
    presets: [usize; CPMS_PER_CORE],
    reductions: [usize; CPMS_PER_CORE],
}

impl CoreCpmSet {
    /// Builds a set from explicit per-CPM presets with no reduction.
    ///
    /// # Panics
    ///
    /// Panics if any preset exceeds the inverter-chain length
    /// ([`atm_silicon::MAX_INSERTED_STEPS`]).
    #[must_use]
    pub fn from_presets(presets: [usize; CPMS_PER_CORE]) -> Self {
        for (i, &p) in presets.iter().enumerate() {
            assert!(
                p <= atm_silicon::MAX_INSERTED_STEPS,
                "CPM {i} preset {p} exceeds chain length"
            );
        }
        CoreCpmSet {
            presets,
            reductions: [0; CPMS_PER_CORE],
        }
    }

    /// Test-time calibration: chooses each CPM's preset inserted delay so
    /// that, at typical idle conditions `(v, t)`, the ATM loop settles at
    /// `target` — the manufacturer's uniform-performance contract (all
    /// cores ≈ 4.6 GHz under the default configuration).
    ///
    /// Fast silicon gets *more* inserted delay (filling the empty time
    /// after its short paths), slow silicon gets less — reproducing the
    /// 7–20 preset spread of the paper's Fig. 4b.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero or `threshold` is negative.
    #[must_use]
    pub fn calibrate(
        silicon: &CoreSilicon,
        v: Volts,
        t: Celsius,
        target: MegaHz,
        threshold: Picos,
    ) -> Self {
        assert!(threshold.get() >= 0.0, "threshold must be non-negative");
        let period = target.period();
        let chain = silicon.inverter_chain();
        let mut presets = [0usize; CPMS_PER_CORE];
        for (i, preset) in presets.iter_mut().enumerate() {
            let budget = period - silicon.cpm_synthetic_delay(i, v, t) - threshold;
            *preset = if budget.get() <= 0.0 {
                0
            } else {
                chain.steps_within(budget)
            };
        }
        CoreCpmSet {
            presets,
            reductions: [0; CPMS_PER_CORE],
        }
    }

    /// The preset inserted delay (in steps) of CPM `unit`.
    #[must_use]
    pub fn preset(&self, unit: CpmUnit) -> usize {
        self.presets[unit.index()]
    }

    /// Mean preset across the four core-domain CPMs (the LLC lies in a
    /// different clock domain and is excluded, as in the paper's Fig. 4b).
    #[must_use]
    pub fn mean_core_preset(&self) -> f64 {
        let sum: usize = CpmUnit::ALL
            .iter()
            .filter(|u| **u != CpmUnit::Cache)
            .map(|u| self.presets[u.index()])
            .sum();
        sum as f64 / (CPMS_PER_CORE - 1) as f64
    }

    /// The current nominal fine-tuning reduction: the largest reduction
    /// across the five CPMs. With the paper's uniform programming (the
    /// only mode [`CoreCpmSet::set_reduction`] offers) every CPM carries
    /// this value.
    #[must_use]
    pub fn reduction(&self) -> usize {
        *self.reductions.iter().max().expect("five CPMs")
    }

    /// The per-unit reduction of CPM `unit`.
    #[must_use]
    pub fn unit_reduction(&self, unit: CpmUnit) -> usize {
        self.reductions[unit.index()]
    }

    /// The largest *uniform* reduction this core supports (bounded by its
    /// smallest preset — a CPM cannot have negative inserted delay).
    #[must_use]
    pub fn max_reduction(&self) -> usize {
        *self.presets.iter().min().expect("five presets")
    }

    /// Programs a new uniform delay reduction on all five CPMs (the
    /// "specialized commands to the service processor" of Sec. III-A; the
    /// paper reduces all CPMs in a core by the same step count to keep the
    /// search space tractable).
    ///
    /// # Errors
    ///
    /// Returns [`CpmConfigError::ReductionTooLarge`] if `steps` exceeds
    /// [`CoreCpmSet::max_reduction`]. On error the previous configuration
    /// is left untouched.
    pub fn set_reduction(&mut self, steps: usize) -> Result<(), CpmConfigError> {
        if steps > self.max_reduction() {
            return Err(CpmConfigError::ReductionTooLarge {
                requested: steps,
                max: self.max_reduction(),
            });
        }
        self.reductions = [steps; CPMS_PER_CORE];
        Ok(())
    }

    /// Programs one CPM's delay reduction independently (the non-uniform
    /// tuning the paper leaves unexplored; see the `ext-percpm` exhibit).
    ///
    /// # Errors
    ///
    /// Returns [`CpmConfigError::ReductionTooLarge`] if `steps` exceeds
    /// this unit's own preset.
    pub fn set_unit_reduction(
        &mut self,
        unit: CpmUnit,
        steps: usize,
    ) -> Result<(), CpmConfigError> {
        let preset = self.presets[unit.index()];
        if steps > preset {
            return Err(CpmConfigError::ReductionTooLarge {
                requested: steps,
                max: preset,
            });
        }
        self.reductions[unit.index()] = steps;
        Ok(())
    }

    /// The effective inserted-delay step count of CPM `unit` after the
    /// current reduction.
    #[must_use]
    pub fn effective_steps(&self, unit: CpmUnit) -> usize {
        self.presets[unit.index()] - self.reductions[unit.index()]
    }

    /// The inserted delay time of CPM `unit` on this core's chain.
    #[must_use]
    pub fn inserted_delay(&self, silicon: &CoreSilicon, unit: CpmUnit) -> Picos {
        silicon
            .inverter_chain()
            .cumulative(self.effective_steps(unit))
    }

    /// Measures one cycle: returns the worst of the five CPM readings for
    /// clock period `period` at conditions `(v, t)`.
    #[must_use]
    pub fn measure(
        &self,
        silicon: &CoreSilicon,
        period: Picos,
        v: Volts,
        t: Celsius,
    ) -> CpmReading {
        let mut worst: Option<CpmReading> = None;
        for unit in CpmUnit::ALL {
            let occupied = self.inserted_delay(silicon, unit)
                + silicon.cpm_synthetic_delay(unit.index(), v, t);
            let reading = CpmReading::quantize(unit, period - occupied);
            worst = Some(match worst {
                Some(w) => w.worst(reading),
                None => reading,
            });
        }
        worst.expect("at least one CPM")
    }

    /// Like [`CoreCpmSet::measure`], but reusing a precomputed real-path
    /// base delay (the simulator computes it once per tick and shares it
    /// between the failure check and all five CPMs).
    #[must_use]
    pub fn measure_from_base(
        &self,
        silicon: &CoreSilicon,
        period: Picos,
        base_delay: Picos,
    ) -> CpmReading {
        let mut worst: Option<CpmReading> = None;
        for unit in CpmUnit::ALL {
            let occupied =
                self.inserted_delay(silicon, unit) + base_delay * silicon.mimic_ratio(unit.index());
            let reading = CpmReading::quantize(unit, period - occupied);
            worst = Some(match worst {
                Some(w) => w.worst(reading),
                None => reading,
            });
        }
        worst.expect("at least one CPM")
    }

    /// The inserted delay times of all five CPMs at the current reduction,
    /// in unit order. A pure function of the (immutable) chain and the
    /// programmed reduction: the simulator recomputes this table only when
    /// a reduction is programmed and feeds it back through
    /// [`CoreCpmSet::measure_from_inserted`], hoisting five O(chain-length)
    /// walks out of every tick.
    #[must_use]
    pub fn inserted_delays(&self, silicon: &CoreSilicon) -> [Picos; CPMS_PER_CORE] {
        let mut table = [Picos::ZERO; CPMS_PER_CORE];
        for unit in CpmUnit::ALL {
            table[unit.index()] = self.inserted_delay(silicon, unit);
        }
        table
    }

    /// Like [`CoreCpmSet::measure_from_base`], but with the per-unit
    /// inserted delays also precomputed (they must come from
    /// [`CoreCpmSet::inserted_delays`] for the current reduction). The
    /// reading is bit-identical to [`CoreCpmSet::measure`]'s.
    #[must_use]
    pub fn measure_from_inserted(
        &self,
        silicon: &CoreSilicon,
        period: Picos,
        base_delay: Picos,
        inserted: &[Picos; CPMS_PER_CORE],
    ) -> CpmReading {
        let mut worst: Option<CpmReading> = None;
        for unit in CpmUnit::ALL {
            let occupied = inserted[unit.index()] + base_delay * silicon.mimic_ratio(unit.index());
            let reading = CpmReading::quantize(unit, period - occupied);
            worst = Some(match worst {
                Some(w) => w.worst(reading),
                None => reading,
            });
        }
        worst.expect("at least one CPM")
    }

    /// Like [`CoreCpmSet::equilibrium_period`], but reusing a precomputed
    /// real-path base delay.
    #[must_use]
    pub fn equilibrium_period_from_base(
        &self,
        silicon: &CoreSilicon,
        base_delay: Picos,
        threshold: Picos,
    ) -> Picos {
        CpmUnit::ALL
            .iter()
            .map(|&unit| {
                self.inserted_delay(silicon, unit)
                    + base_delay * silicon.mimic_ratio(unit.index())
                    + threshold
            })
            .fold(Picos::ZERO, Picos::max)
    }

    /// The clock period at which the worst CPM reports exactly `threshold`
    /// of margin — the period the ATM loop will converge to at conditions
    /// `(v, t)`.
    #[must_use]
    pub fn equilibrium_period(
        &self,
        silicon: &CoreSilicon,
        v: Volts,
        t: Celsius,
        threshold: Picos,
    ) -> Picos {
        CpmUnit::ALL
            .iter()
            .map(|&unit| {
                self.inserted_delay(silicon, unit)
                    + silicon.cpm_synthetic_delay(unit.index(), v, t)
                    + threshold
            })
            .fold(Picos::ZERO, Picos::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_silicon::{SiliconFactory, SiliconParams};
    use atm_units::CoreId;

    const THRESHOLD: Picos = Picos::new_const(10.0);

    fn silicon(core: usize) -> CoreSilicon {
        SiliconFactory::new(SiliconParams::power7_plus(), 42).core(CoreId::new(0, core))
    }

    fn typical() -> (Volts, Celsius) {
        (Volts::new(1.235), Celsius::new(45.0))
    }

    #[test]
    fn calibration_hits_target_within_one_step() {
        let (v, t) = typical();
        for c in 0..8 {
            let si = silicon(c);
            let set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), THRESHOLD);
            let period = set.equilibrium_period(&si, v, t, THRESHOLD);
            let f = period.frequency();
            // Quantization means we land at or above 4600, within one
            // chain step (≤ ~13 ps ≈ 280 MHz at 4.6 GHz).
            assert!(
                f.get() >= 4599.0 && f.get() < 4950.0,
                "core {c} calibrated to {f}"
            );
        }
    }

    #[test]
    fn reduction_monotonically_raises_frequency() {
        let (v, t) = typical();
        let si = silicon(3);
        let mut set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), THRESHOLD);
        let mut prev = set.equilibrium_period(&si, v, t, THRESHOLD);
        for r in 1..=set.max_reduction().min(8) {
            set.set_reduction(r).unwrap();
            let p = set.equilibrium_period(&si, v, t, THRESHOLD);
            assert!(p <= prev, "period must shrink as delay is removed");
            prev = p;
        }
    }

    #[test]
    fn over_reduction_is_an_error() {
        let (v, t) = typical();
        let si = silicon(0);
        let mut set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), THRESHOLD);
        let max = set.max_reduction();
        assert!(set.set_reduction(max).is_ok());
        let err = set.set_reduction(max + 1).unwrap_err();
        assert_eq!(
            err,
            CpmConfigError::ReductionTooLarge {
                requested: max + 1,
                max
            }
        );
        // A failed set leaves the previous value intact.
        assert_eq!(set.reduction(), max);
    }

    #[test]
    fn lower_voltage_reports_less_margin() {
        let (_, t) = typical();
        let si = silicon(1);
        let set = CoreCpmSet::calibrate(&si, Volts::new(1.235), t, MegaHz::new(4600.0), THRESHOLD);
        let period = MegaHz::new(4600.0).period();
        let high = set.measure(&si, period, Volts::new(1.235), t);
        let low = set.measure(&si, period, Volts::new(1.20), t);
        assert!(low.margin() < high.margin());
    }

    #[test]
    fn violation_reported_when_period_too_short() {
        let (v, t) = typical();
        let si = silicon(2);
        let set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), THRESHOLD);
        let tight = set.equilibrium_period(&si, v, t, Picos::ZERO) - Picos::new(1.0);
        assert!(set.measure(&si, tight, v, t).is_violation());
    }

    #[test]
    fn presets_cover_paper_range_across_cores() {
        // Fig. 4b: presets roughly 7–20 steps across the two chips.
        let (v, t) = typical();
        let factory = SiliconFactory::new(SiliconParams::power7_plus(), 42);
        let mut means = Vec::new();
        for id in CoreId::all() {
            let si = factory.core(id);
            let set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), THRESHOLD);
            means.push(set.mean_core_preset());
        }
        let min = means.iter().copied().fold(f64::MAX, f64::min);
        let max = means.iter().copied().fold(f64::MIN, f64::max);
        assert!(min >= 3.0, "fastest-chain preset too small: {min}");
        assert!(max <= 28.0, "slowest-chain preset too large: {max}");
        assert!(max / min >= 1.8, "preset spread too narrow: {min}..{max}");
    }

    #[test]
    fn equilibrium_consistent_with_measure() {
        let (v, t) = typical();
        let si = silicon(5);
        let set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), THRESHOLD);
        let period = set.equilibrium_period(&si, v, t, THRESHOLD);
        let reading = set.measure(&si, period, v, t);
        assert!(!reading.is_violation());
        assert!((reading.margin().get() - THRESHOLD.get()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds chain length")]
    fn absurd_preset_rejected() {
        let _ = CoreCpmSet::from_presets([40, 10, 10, 10, 10]);
    }

    #[test]
    fn per_unit_reduction_bounded_by_own_preset() {
        let mut set = CoreCpmSet::from_presets([10, 12, 8, 9, 11]);
        assert!(set
            .set_unit_reduction(CpmUnit::InstructionSched, 12)
            .is_ok());
        assert_eq!(set.unit_reduction(CpmUnit::InstructionSched), 12);
        assert_eq!(set.reduction(), 12);
        // A unit cannot be reduced past its own preset even when others
        // could.
        let err = set.set_unit_reduction(CpmUnit::FixedPoint, 9).unwrap_err();
        assert_eq!(
            err,
            CpmConfigError::ReductionTooLarge {
                requested: 9,
                max: 8
            }
        );
    }

    #[test]
    fn uniform_set_overwrites_per_unit_tuning() {
        let mut set = CoreCpmSet::from_presets([10, 12, 8, 9, 11]);
        set.set_unit_reduction(CpmUnit::FloatingPoint, 5).unwrap();
        set.set_reduction(2).unwrap();
        for unit in CpmUnit::ALL {
            assert_eq!(set.unit_reduction(unit), 2);
        }
    }

    #[test]
    fn only_the_binding_cpm_moves_the_equilibrium() {
        // Reducing a non-binding CPM's delay does not change the loop's
        // equilibrium; reducing the binding one does. This is why the
        // paper's uniform programming loses nothing when presets are not
        // exhausted: the binding unit gets the same trim either way.
        let (v, t) = typical();
        let si = silicon(4);
        let mut set = CoreCpmSet::calibrate(&si, v, t, MegaHz::new(4600.0), THRESHOLD);
        let base = set.equilibrium_period(&si, v, t, THRESHOLD);
        // Identify the binding unit at the default configuration.
        let binding = CpmUnit::ALL
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let occ = |u: CpmUnit| {
                    (set.inserted_delay(&si, u) + si.cpm_synthetic_delay(u.index(), v, t)).get()
                };
                occ(a).partial_cmp(&occ(b)).unwrap()
            })
            .unwrap();
        // Trim a different unit: no change.
        let other = CpmUnit::ALL
            .iter()
            .copied()
            .find(|u| *u != binding)
            .unwrap();
        set.set_unit_reduction(other, 1).unwrap();
        assert_eq!(set.equilibrium_period(&si, v, t, THRESHOLD), base);
        // Trim the binding unit: equilibrium moves.
        set.set_unit_reduction(binding, 1).unwrap();
        assert!(set.equilibrium_period(&si, v, t, THRESHOLD) < base);
    }
}
