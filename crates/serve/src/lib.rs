//! `atm-serve` — serving traffic on a fine-tuned ATM server.
//!
//! The paper manages a latency-critical application with one-shot
//! measurements; this crate closes the remaining gap to a *server*: a
//! deterministic discrete-event serving simulator that drives the managed
//! stack with open-loop request streams and accounts for what datacenter
//! operators actually buy — tail latency against an SLO.
//!
//! The pieces, in dispatch order:
//!
//! * [`StreamSpec`]/[`ArrivalPattern`] — seeded open-loop request streams
//!   (Poisson or bursty phases), one critical + any number of background;
//! * [`arrival`] — parallel per-stream trace pre-generation whose merged
//!   timeline is independent of worker count;
//! * [`AdmissionConfig`] — backpressure: defer, then shed background
//!   requests as backlog grows or the critical p99 approaches its SLO;
//! * [`LatencyHistogram`] — fixed-bucket (log-linear) latency tracking
//!   for p50/p95/p99 with bounded memory;
//! * [`DegradationPolicy`] — the droop-aware field response: chip
//!   failures and persistent droop alarms trigger CPM rollback, critical
//!   re-placement, and background throttle step-downs;
//! * [`ServeSim`] — the epoch loop tying traffic to the chip-in-the-loop
//!   posture of [`atm_core::AtmManager`];
//! * [`ChipServer`] — the same epoch body as an externally stepped
//!   object, the per-chip seam the `atm-fleet` barrier loop drives;
//! * [`ServeReport`] — the all-integer, `Eq`-comparable account
//!   (determinism is `assert_eq!`-checkable).
//!
//! # Examples
//!
//! ```
//! use atm_chip::{ChipConfig, System};
//! use atm_core::{AtmManager, Governor};
//! use atm_core::charact::CharactConfig;
//! use atm_serve::{ArrivalPattern, ServeConfig, ServeSim, StreamSpec};
//! use atm_telemetry::NullRecorder;
//! use atm_units::Nanos;
//! use atm_workloads::by_name;
//!
//! let sys = System::new(ChipConfig::power7_plus(42));
//! let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
//! let sq = by_name("squeezenet").unwrap();
//! let x264 = by_name("x264").unwrap();
//! let streams = vec![
//!     StreamSpec::critical(sq, ArrivalPattern::Poisson { mean_gap: 200_000_000 }, 150_000_000),
//!     StreamSpec::background(x264, ArrivalPattern::Poisson { mean_gap: 30_000_000 }),
//! ];
//! let cfg = ServeConfig::builder(42)
//!     .epochs(4)
//!     .epoch_ns(200_000_000)
//!     .chip_trial(Nanos::new(1_000.0))
//!     .build()
//!     .unwrap();
//! let report = ServeSim::new(mgr, cfg, streams).unwrap().run(2, &mut NullRecorder);
//! assert!(report.completed > 0);
//! assert!(report.critical().slo_met());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod arrival;
mod chipstep;
mod config;
mod degrade;
mod histogram;
mod report;
mod sim;
mod stream;

pub use admission::{Admission, AdmissionConfig};
pub use chipstep::{
    ChipRequest, ChipServeConfig, ChipServer, ChipServerCheckpoint, ChipSnapshot, ChipSummary,
    EpochOutcome,
};
pub use config::{ServeConfig, ServeConfigBuilder};
pub use degrade::{DegradationPolicy, DegradeAction};
pub use histogram::LatencyHistogram;
pub use report::{ServeReport, StreamStats, Transition};
pub use sim::ServeSim;
pub use stream::{ArrivalPattern, StreamClass, StreamSpec};
