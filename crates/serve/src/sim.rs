//! The deterministic serving simulator.
//!
//! [`ServeSim`] drives the managed ATM stack with open-loop request
//! traffic: the [`AtmManager`] postures the chip (critical stream on the
//! fastest core, backgrounds backfilled and throttled to the QoS power
//! budget), and a discrete-event loop dispatches seeded arrivals onto
//! per-core FIFO queues whose service rates follow the cores' settled
//! frequencies. Each epoch the chip simulation runs briefly to harvest
//! [`ChipEvent`]s; the [`DegradationPolicy`] turns failures and droop
//! alarms into CPM rollbacks, critical re-placement, and background
//! throttling, all recorded in the final [`ServeReport`].
//!
//! Everything is a pure function of the seeds: arrivals are pre-generated
//! per stream (in parallel when asked — the merge is worker-count
//! independent), the event loop is serial in virtual time, and the report
//! carries only integers, so a fixed seed yields a byte-identical
//! [`ServeReport`] on every run.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use atm_adapt::{AdaptContext, Adapter, NullAdapter};
use atm_capping::{CapAction, CapConfig, CapReport, EnergyMeter, EnergyModel, PowerRegulator};
use atm_chip::{ChipEvent, FailureEvent, FailureKind, FaultHook, PStateTable};
use atm_core::{AtmManager, MarginSupervisor, ServePosture, SupervisorAction};
use atm_silicon::DriftModel;
use atm_telemetry::{AdmissionDecision, AdmissionVerdict, Recorder, SimTime, TelemetryEvent};
use atm_units::{AtmError, CoreId, Nanos, ProcId};
use atm_workloads::{ServiceProfile, Workload};

use crate::admission::Admission;
use crate::arrival;
use crate::config::ServeConfig;
use crate::degrade::{DegradationPolicy, DegradeAction};
use crate::histogram::LatencyHistogram;
use crate::report::{ServeReport, StreamStats, Transition};
use crate::stream::{StreamClass, StreamSpec};

/// A request awaiting dispatch (fresh or deferred). Ordered by
/// `(time, stream, seq)` so the pending heap pops deterministically; the
/// service draw rides along unordered.
#[derive(Debug, Clone, Copy)]
struct Pending {
    time: u64,
    stream: usize,
    seq: u32,
    defers: u32,
    orig: u64,
    draw: f64,
}

impl Pending {
    fn key(&self) -> (u64, usize, u32) {
        (self.time, self.stream, self.seq)
    }
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.key().cmp(&self.key())
    }
}

/// Running per-stream accounting.
#[derive(Debug)]
struct StreamState {
    offered: u64,
    completed: u64,
    shed: u64,
    deferred: u64,
    slo_violations: u64,
    max_queue_depth: u64,
    hist: LatencyHistogram,
    epoch_hist: LatencyHistogram,
    epoch_p99: Vec<u64>,
}

impl StreamState {
    fn new() -> Self {
        StreamState {
            offered: 0,
            completed: 0,
            shed: 0,
            deferred: 0,
            slo_violations: 0,
            max_queue_depth: 0,
            hist: LatencyHistogram::new(),
            epoch_hist: LatencyHistogram::new(),
            epoch_p99: Vec::new(),
        }
    }
}

/// The serving simulator. Consumed by [`ServeSim::run`].
pub struct ServeSim {
    mgr: AtmManager,
    cfg: ServeConfig,
    streams: Vec<StreamSpec>,
    policy: DegradationPolicy,
    supervisor: Option<MarginSupervisor>,
    faults: Option<Box<dyn FaultHook>>,
    injected: Vec<(u32, FailureEvent)>,
    adapter: Box<dyn Adapter>,
    drift: Option<DriftModel>,
    capping: Option<CapConfig>,
    energy: Option<EnergyModel>,
}

impl fmt::Debug for ServeSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeSim")
            .field("mgr", &self.mgr)
            .field("cfg", &self.cfg)
            .field("streams", &self.streams)
            .field("policy", &self.policy)
            .field("supervisor", &self.supervisor)
            .field("faults_armed", &self.faults.as_ref().map(|h| h.armed()))
            .field("injected", &self.injected)
            .field("adapter", &self.adapter)
            .field("drift", &self.drift)
            .finish()
    }
}

impl ServeSim {
    /// Builds a simulator over a deployed manager.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] unless `streams` holds exactly
    /// one critical stream and at least one background stream, or if the
    /// config fails [`ServeConfig::check`].
    pub fn new(
        mgr: AtmManager,
        cfg: ServeConfig,
        streams: Vec<StreamSpec>,
    ) -> Result<Self, AtmError> {
        cfg.check()?;
        let criticals = streams
            .iter()
            .filter(|s| s.class == StreamClass::Critical)
            .count();
        if criticals != 1 {
            return Err(AtmError::invalid_config(
                "streams",
                "need exactly one critical stream",
            ));
        }
        if streams.len() == criticals {
            return Err(AtmError::invalid_config(
                "streams",
                "need at least one background stream",
            ));
        }
        Ok(ServeSim {
            mgr,
            cfg,
            streams,
            policy: DegradationPolicy::default(),
            supervisor: None,
            faults: None,
            injected: Vec::new(),
            adapter: Box::new(NullAdapter),
            drift: None,
            capping: None,
            energy: None,
        })
    }

    /// Arms a power cap: each epoch the regulator integrates the chip's
    /// measured power against the budget schedule and throttles (or
    /// releases) through the posture's throttle ladder — background cores
    /// first, the critical core only after the background tier bottoms
    /// out, and never past the slowest p-state. Supervisor actions
    /// outrank the regulator; releases are deferred while over budget.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if `cap` fails
    /// [`CapConfig::check`].
    pub fn set_cap(&mut self, cap: CapConfig) -> Result<(), AtmError> {
        cap.check()?;
        self.capping = Some(cap);
        Ok(())
    }

    /// Replaces the energy model the run integrates with (the default is
    /// [`EnergyModel::standard`] over the config's epoch span).
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if `model` fails
    /// [`EnergyModel::check`].
    pub fn set_energy_model(&mut self, model: EnergyModel) -> Result<(), AtmError> {
        model.check()?;
        self.energy = Some(model);
        Ok(())
    }

    /// Installs an online recharacterization adapter (replacing the
    /// default no-op [`NullAdapter`]). The adapter observes each epoch's
    /// chip harvest, may run micro-probe bursts on queue-idle cores, and
    /// may re-tighten margins through the manager — always below the
    /// supervisor's strike ladder.
    pub fn set_adapter(&mut self, adapter: Box<dyn Adapter>) {
        self.adapter = adapter;
    }

    /// Arms epoch-by-epoch silicon drift (per-core aging plus seasonal
    /// temperature offsets): before each epoch's harvest, every core's
    /// true path delay is re-derived from the pristine silicon at the
    /// model's ppm schedule.
    pub fn set_drift(&mut self, drift: DriftModel) {
        self.drift = Some(drift);
    }

    /// Overrides the degradation policy.
    pub fn set_policy(&mut self, policy: DegradationPolicy) {
        self.policy = policy;
    }

    /// Attaches a margin-safety supervisor. Once attached, the supervisor
    /// owns the failure response — its strike ladder (rollback →
    /// backed-off re-probe → safe mode → quarantine) replaces the plain
    /// policy's per-failure rollback, while the policy keeps handling
    /// droop-alarm throttle step-downs. Quarantined and safe-moded cores
    /// drop out of every subsequent placement, so critical streams are
    /// re-placed automatically.
    pub fn set_supervisor(&mut self, supervisor: MarginSupervisor) {
        self.supervisor = Some(supervisor);
    }

    /// Arms a chip-level fault hook (e.g. a resolved `atm-faults`
    /// campaign plan) for the per-epoch chip harvests: each epoch's
    /// hardware trial runs through
    /// [`System::run_faulted`](atm_chip::System::run_faulted) with this
    /// hook instead of a clean run. The hook's tick clock spans the whole
    /// serving trace, so one plan unfolds across epochs deterministically.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.faults = Some(hook);
    }

    /// Schedules a synthetic timing failure on `core`, delivered with the
    /// chip events of epoch `epoch` — the test hook for exercising the
    /// degradation path on demand.
    pub fn inject_failure(&mut self, epoch: u32, core: CoreId, kind: FailureKind) {
        self.injected.push((
            epoch,
            FailureEvent {
                core,
                kind,
                at: Nanos::ZERO,
            },
        ));
    }

    /// Runs the full serving trace, pre-generating arrivals on up to
    /// `workers` threads, and returns the deterministic report.
    ///
    /// Chip harvests, admission verdicts, latencies, rollbacks and
    /// throttle step-downs record through `rec`, with the recorder clock
    /// tracking the virtual serving timeline; pass
    /// [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the zero-overhead
    /// unrecorded path — the report is identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn run<R: Recorder>(self, workers: usize, rec: &mut R) -> ServeReport {
        // Disassemble the simulator up front: the manager needs exclusive
        // mutable access through the whole trace, so the config and stream
        // specs move into locals and are borrowed from there — no per-run
        // clones of the config or the critical spec.
        let ServeSim {
            mut mgr,
            cfg,
            streams,
            policy,
            mut supervisor,
            mut faults,
            injected,
            mut adapter,
            drift,
            capping,
            energy,
        } = self;
        let proc = ProcId::new(0);
        let baseline = mgr.system().config().pstates.nominal().frequency;
        // The p-state table is still owned by the system while `mgr` is
        // borrowed mutably at every throttle step, so one copy per run.
        let pstates = mgr.system().config().pstates.clone();
        let horizon = u64::from(cfg.epochs) * cfg.epoch_ns;

        let crit_idx = streams
            .iter()
            .position(|s| s.class == StreamClass::Critical)
            .expect("checked in new");
        let critical_spec = &streams[crit_idx];
        let backgrounds: Vec<Workload> = streams
            .iter()
            .filter(|s| s.class == StreamClass::Background)
            .map(|s| s.workload.clone())
            .collect();
        let profiles: Vec<ServiceProfile> = streams
            .iter()
            .map(|s| s.workload.service_profile())
            .collect();
        let crit_slo = critical_spec.slo_ns;

        mgr.system_mut().set_droop_alarm(cfg.droop_alarm);
        let mut posture = mgr
            .serve_posture(&critical_spec.workload, &backgrounds, cfg.qos, rec)
            .expect("streams validated in new");
        // Posturing itself settles and trains predictors; the alarms those
        // runs raise are calibration noise, not serving-time events.
        mgr.system_mut().drain_events();
        if let Some(sup) = supervisor.as_mut() {
            sup.attach(mgr.system());
        }
        let mut throttle_extra: usize = 0;
        let mut meter =
            EnergyMeter::new(energy.unwrap_or_else(|| EnergyModel::standard(cfg.epoch_ns)));
        let mut cap = capping.map(|c| (PowerRegulator::new(c.regulator), c, CapReport::new()));

        let arrivals = arrival::generate_all(&streams, cfg.seed, horizon, workers);
        let mut next_arrival = 0usize;
        let mut pending: BinaryHeap<Pending> = BinaryHeap::new();

        let mut states: Vec<StreamState> = streams.iter().map(|_| StreamState::new()).collect();
        let mut free_at: BTreeMap<CoreId, u64> = BTreeMap::new();
        let mut finishes: BTreeMap<CoreId, Vec<u64>> = BTreeMap::new();
        let mut transitions: Vec<Transition> = Vec::new();
        let mut action_texts: Vec<String> = Vec::new();

        for epoch in 0..cfg.epochs {
            let epoch_start = u64::from(epoch) * cfg.epoch_ns;
            let epoch_end = u64::from(epoch + 1) * cfg.epoch_ns;

            if let Some(d) = drift {
                mgr.system_mut().apply_drift(&d, u64::from(epoch));
            }

            // Harvest chip events at the current posture, plus injections.
            let harvest = match faults.as_deref_mut() {
                Some(mut hook) => mgr.system_mut().run_faulted(cfg.chip_trial, &mut hook, rec),
                None => mgr.system_mut().run(cfg.chip_trial, rec),
            };
            let measured_mw = (harvest.procs[0].mean_power.get() * 1_000.0).round() as u64;
            let mut events = mgr.system_mut().drain_events();
            for (e, f) in &injected {
                if *e == epoch {
                    events.push(ChipEvent::Failure(*f));
                }
            }

            let mut needs_replace = false;
            let mut throttled = false;
            let mut rollback_fired = false;
            let mut epoch_busy_ns: u64 = 0;
            let mut epoch_completed: u64 = 0;

            // The supervisor (when attached) owns the failure ladder; the
            // plain policy keeps the droop-alarm throttle response.
            let mut actions = policy.react(&events, posture.placement.critical_core);
            if let Some(sup) = supervisor.as_mut() {
                actions.retain(|a| matches!(a, DegradeAction::ThrottleDown { .. }));
                let sup_actions = sup.observe_window(mgr.system(), &events);
                let _ = mgr.apply_supervisor_actions(&sup_actions, rec);
                if !sup_actions.is_empty() {
                    needs_replace = true;
                    rollback_fired = true;
                }
                for a in &sup_actions {
                    action_texts.push(match a {
                        SupervisorAction::Rollback { core, steps } => {
                            format!("supervisor rollback {core} by {steps}")
                        }
                        SupervisorAction::Reprobe { core, steps } => {
                            format!("supervisor re-probe {core} by {steps}")
                        }
                        SupervisorAction::SafeMode { core } => {
                            format!("supervisor safe mode {core}")
                        }
                        SupervisorAction::Quarantine { core } => {
                            format!("supervisor quarantine {core}")
                        }
                    });
                }
            }
            for action in &actions {
                match action {
                    DegradeAction::Rollback { core, cause } => {
                        let red = mgr.rollback_core(*core, 1, rec);
                        needs_replace = true;
                        rollback_fired = true;
                        action_texts.push(format!("rollback {core} to reduction {red} ({cause})"));
                    }
                    DegradeAction::ThrottleDown { core } => {
                        throttle_extra += 1;
                        throttled = true;
                        rec.incr("serve.throttle_stepdowns", 1);
                        action_texts.push(format!(
                            "background throttle step-down (droop alarms on {core})"
                        ));
                    }
                }
            }

            if needs_replace {
                posture = mgr
                    .serve_posture(&critical_spec.workload, &backgrounds, cfg.qos, rec)
                    .expect("streams validated in new");
                if throttle_extra > 0 {
                    apply_extra_throttle(&mut mgr, &mut posture, throttle_extra, &pstates, proc);
                }
                mgr.system_mut().drain_events();
            } else if throttled {
                apply_extra_throttle(&mut mgr, &mut posture, throttle_extra, &pstates, proc);
                mgr.system_mut().drain_events();
            } else if epoch > 0 && epoch % cfg.refresh_every == 0 {
                posture.core_freqs = mgr.measure_core_freqs(proc);
                mgr.system_mut().drain_events();
            }

            if adapter.enabled() {
                let serving: Vec<CoreId> = posture.core_freqs.iter().map(|(c, _)| *c).collect();
                let idle: Vec<CoreId> = posture
                    .placement
                    .background_cores
                    .iter()
                    .filter(|c| free_at.get(c).copied().unwrap_or(0) <= epoch_start)
                    .copied()
                    .collect();
                let blocked: std::collections::BTreeSet<CoreId> = serving
                    .iter()
                    .filter(|c| {
                        supervisor.as_ref().is_some_and(|s| s.on_probation(**c))
                            || mgr.safe_mode_cores().contains(c)
                            || mgr.quarantined_cores().contains(c)
                    })
                    .copied()
                    .collect();
                let backlog_ns = free_at
                    .values()
                    .map(|f| f.saturating_sub(epoch_start))
                    .sum::<u64>();
                let changed = adapter.on_epoch(AdaptContext {
                    mgr: &mut mgr,
                    harvest: &harvest,
                    epoch: u64::from(epoch),
                    backlog_ns,
                    serving: &serving,
                    idle: &idle,
                    critical_core: posture.placement.critical_core,
                    blocked: &blocked,
                });
                if changed {
                    posture.core_freqs = mgr.measure_core_freqs(proc);
                    action_texts.push(String::from("adapter re-tighten"));
                }
                mgr.system_mut().drain_events();
            }

            // The power regulator gets the last word on margin modes:
            // integrate this epoch's measured power against the cap in
            // force, commit or suppress the proposal (rollbacks outrank,
            // releases wait until the chip is back under budget), and
            // restate the committed depth on top of whatever throttle
            // plan the droop ladder left current.
            if let Some((regulator, cap_cfg, cap_report)) = cap.as_mut() {
                let cap_mw = cap_cfg.budget.cap_at(epoch);
                let action = regulator.propose(measured_mw, cap_mw, rec);
                let over_budget = measured_mw > cap_mw;
                let (committed, suppressed) = match action {
                    CapAction::Release(_) if rollback_fired || over_budget => {
                        (CapAction::Hold, true)
                    }
                    a => (a, false),
                };
                regulator.commit(committed);
                cap_report.count_action(committed, suppressed);
                let depth = regulator.depth();
                cap_report.push_epoch(cap_mw, measured_mw, depth, regulator.integral_mwe());
                match committed {
                    CapAction::Throttle(n) => {
                        action_texts.push(format!("cap throttle {n} to depth {depth}"));
                    }
                    CapAction::Release(n) => {
                        action_texts.push(format!("cap release {n} to depth {depth}"));
                    }
                    CapAction::Hold => {}
                }
                if depth > 0 || !matches!(committed, CapAction::Hold) {
                    if let Some(base) = posture.placement.plan.clone() {
                        let bg_depth = depth.min(base.setting.rungs_below(&pstates));
                        let crit_depth = depth - bg_depth;
                        let _ = mgr.apply_cap_levels(
                            &base,
                            posture.placement.critical_core,
                            bg_depth,
                            crit_depth,
                            rec,
                        );
                        posture.core_freqs = mgr.measure_core_freqs(proc);
                        mgr.system_mut().drain_events();
                    }
                }
            }
            for text in action_texts.drain(..) {
                transitions.push(Transition {
                    epoch,
                    action: text,
                    critical_core: posture.placement.critical_core,
                    critical_freq_mhz: posture
                        .freq_of(posture.placement.critical_core)
                        .get()
                        .round() as u64,
                });
            }

            let critical_at_risk = crit_slo > 0
                && states[crit_idx].hist.count() >= 20
                && states[crit_idx].hist.quantile(0.99) as f64
                    > cfg.admission.slo_risk * crit_slo as f64;

            // Dispatch this epoch's arrivals and readmissions in
            // (time, stream, seq) order.
            loop {
                let arr_key = arrivals
                    .get(next_arrival)
                    .map(|a| (a.time, a.stream, a.seq));
                let use_pending = match (arr_key, pending.peek().map(Pending::key)) {
                    (Some(a), Some(p)) => p < a,
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                    (None, None) => break,
                };
                // If the earlier of the two is past the epoch, both are.
                let req = if use_pending {
                    if pending.peek().expect("peeked").time >= epoch_end {
                        break;
                    }
                    pending.pop().expect("peeked")
                } else {
                    let a = arrivals[next_arrival];
                    if a.time >= epoch_end {
                        break;
                    }
                    next_arrival += 1;
                    Pending {
                        time: a.time,
                        stream: a.stream,
                        seq: a.seq,
                        defers: 0,
                        orig: a.time,
                        draw: a.draw,
                    }
                };

                let spec = &streams[req.stream];
                let state = &mut states[req.stream];
                if req.defers == 0 {
                    state.offered += 1;
                }
                let now = req.time;
                rec.advance_to(SimTime::from_nanos(now));

                // Target core: critical pinned; background to the live
                // core with the least backlog (ties to the lowest id).
                let core = match spec.class {
                    StreamClass::Critical => posture.placement.critical_core,
                    StreamClass::Background => {
                        let bg_cap = cfg
                            .serving_cores
                            .map_or(usize::MAX, |n| (n as usize).saturating_sub(1));
                        let live = posture
                            .placement
                            .background_cores
                            .iter()
                            .take(bg_cap)
                            .filter(|c| posture.freq_of(**c).get() > 0.0)
                            .min_by_key(|c| (free_at.get(c).copied().unwrap_or(0), c.flat_index()))
                            .copied();
                        match live {
                            Some(c) => c,
                            None => {
                                // Whole background tier gated: nothing can
                                // serve this request.
                                state.shed += 1;
                                rec.incr("serve.shed", 1);
                                continue;
                            }
                        }
                    }
                };
                let backlog = free_at.get(&core).copied().unwrap_or(0).saturating_sub(now);
                let verdict =
                    cfg.admission
                        .decide(spec.class, backlog, req.defers, critical_at_risk);
                if rec.enabled() {
                    rec.record(TelemetryEvent::Admission(AdmissionDecision {
                        t: rec.now(),
                        stream: req.stream as u32,
                        critical: spec.class == StreamClass::Critical,
                        verdict: match verdict {
                            Admission::Accept => AdmissionVerdict::Accept,
                            Admission::Defer => AdmissionVerdict::Defer,
                            Admission::Shed => AdmissionVerdict::Shed,
                        },
                        backlog_ns: backlog,
                    }));
                }
                match verdict {
                    Admission::Shed => {
                        state.shed += 1;
                        rec.incr("serve.shed", 1);
                        continue;
                    }
                    Admission::Defer => {
                        state.deferred += 1;
                        rec.incr("serve.deferred", 1);
                        let mut d = req;
                        d.time = now + cfg.admission.defer_by;
                        d.defers += 1;
                        if d.time >= horizon {
                            state.shed += 1;
                            rec.incr("serve.shed", 1);
                        } else {
                            pending.push(d);
                        }
                        continue;
                    }
                    Admission::Accept => {
                        rec.incr("serve.accepted", 1);
                    }
                }

                let freq = posture.freq_of(core);
                let service = profiles[req.stream]
                    .sample(&spec.workload, freq, baseline, req.draw)
                    .get()
                    .round()
                    .max(1.0) as u64;
                let start = now.max(free_at.get(&core).copied().unwrap_or(0));
                let finish = start + service;
                free_at.insert(core, finish);
                let fin = finishes.entry(core).or_default();
                fin.retain(|&f| f > now);
                fin.push(finish);
                state.max_queue_depth = state.max_queue_depth.max(fin.len() as u64);

                let latency = finish - req.orig;
                if adapter.enabled() && spec.class == StreamClass::Critical {
                    let freq_khz = (freq.get() * 1_000.0).round() as u64;
                    let baseline_khz = (baseline.get() * 1_000.0).round() as u64;
                    adapter.on_service(spec.workload.name(), freq_khz, baseline_khz, service);
                }
                rec.observe("serve.latency_ns", latency);
                state.hist.record(latency);
                state.epoch_hist.record(latency);
                state.completed += 1;
                epoch_busy_ns += service;
                epoch_completed += 1;
                if spec.slo_ns > 0 && latency > spec.slo_ns {
                    state.slo_violations += 1;
                }
            }

            let powered = posture
                .core_freqs
                .iter()
                .filter(|(_, f)| f.get() > 0.0)
                .count() as u32;
            meter.observe_epoch(measured_mw, powered, epoch_busy_ns);
            meter.add_requests(epoch_completed);

            for state in &mut states {
                state.epoch_p99.push(state.epoch_hist.quantile(0.99));
                state.epoch_hist.reset();
            }
        }

        // Anything still deferred past the horizon was never served.
        for p in pending.into_vec() {
            states[p.stream].shed += 1;
            rec.incr("serve.shed", 1);
        }

        let streams: Vec<StreamStats> = streams
            .iter()
            .zip(states)
            .map(|(spec, st)| StreamStats {
                name: spec.name.clone(),
                class: spec.class,
                offered: st.offered,
                completed: st.completed,
                shed: st.shed,
                deferred: st.deferred,
                slo_ns: spec.slo_ns,
                slo_violations: st.slo_violations,
                p50_ns: st.hist.quantile(0.5),
                p95_ns: st.hist.quantile(0.95),
                p99_ns: st.hist.quantile(0.99),
                max_ns: st.hist.max(),
                mean_ns: st.hist.mean(),
                max_queue_depth: st.max_queue_depth,
                epoch_p99_ns: st.epoch_p99,
            })
            .collect();
        ServeReport {
            seed: cfg.seed,
            epochs: cfg.epochs,
            epoch_ns: cfg.epoch_ns,
            completed: streams.iter().map(|s| s.completed).sum(),
            shed: streams.iter().map(|s| s.shed).sum(),
            deferred: streams.iter().map(|s| s.deferred).sum(),
            critical_core: posture.placement.critical_core,
            transitions,
            streams,
            adapt: adapter.report(),
            energy: meter.report(),
            cap: cap.map(|(_, _, report)| report),
        }
    }
}

/// Steps the posture's background throttle `extra` rungs further down
/// the ladder, applies it, and re-measures the settled frequencies.
fn apply_extra_throttle(
    mgr: &mut AtmManager,
    posture: &mut ServePosture,
    extra: usize,
    pstates: &PStateTable,
    proc: ProcId,
) {
    let Some(mut plan) = posture.placement.plan.clone() else {
        return;
    };
    for _ in 0..extra {
        match plan.step_down(pstates) {
            Some(next) => plan = next,
            None => break,
        }
    }
    plan.apply(mgr.system_mut());
    posture.placement.plan = Some(plan);
    posture.core_freqs = mgr.measure_core_freqs(proc);
}
