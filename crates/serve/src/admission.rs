//! Admission control with backpressure.
//!
//! Background requests are the pressure-relief valve: when a background
//! core's backlog grows past `defer_backlog` the request is pushed back
//! (deferred) instead of queued, and past `shed_backlog` — or whenever the
//! critical stream's running p99 is within `slo_risk` of its SLO — it is
//! shed outright. Critical requests are always admitted: the serving layer
//! protects them with placement, throttling, and shedding of others, never
//! by dropping them.

use serde::{Deserialize, Serialize};

use crate::stream::StreamClass;

/// Backpressure thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Background backlog (ns of queued work on the target core) that
    /// defers a new background request.
    pub defer_backlog: u64,
    /// Background backlog that sheds it outright.
    pub shed_backlog: u64,
    /// How far a deferred request is pushed back (ns).
    pub defer_by: u64,
    /// Deferrals allowed per request before it is shed.
    pub max_defers: u32,
    /// Fraction of the critical SLO at which its running p99 trips
    /// system-wide background shedding.
    pub slo_risk: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            defer_backlog: 40_000_000, // 40 ms of queued work
            shed_backlog: 120_000_000, // 120 ms
            defer_by: 25_000_000,      // retry 25 ms later
            max_defers: 3,
            slo_risk: 0.9,
        }
    }
}

/// The verdict for one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Queue it now.
    Accept,
    /// Push it back by [`AdmissionConfig::defer_by`] and retry.
    Defer,
    /// Drop it.
    Shed,
}

impl AdmissionConfig {
    /// Decides one request given the target core's backlog, how often the
    /// request was already deferred, and whether the critical stream's
    /// p99 is currently at risk.
    #[must_use]
    pub fn decide(
        &self,
        class: StreamClass,
        backlog: u64,
        defers: u32,
        critical_at_risk: bool,
    ) -> Admission {
        if class == StreamClass::Critical {
            return Admission::Accept;
        }
        if critical_at_risk || backlog >= self.shed_backlog {
            return Admission::Shed;
        }
        if backlog >= self.defer_backlog {
            if defers >= self.max_defers {
                return Admission::Shed;
            }
            return Admission::Defer;
        }
        Admission::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_is_always_admitted() {
        let cfg = AdmissionConfig::default();
        assert_eq!(
            cfg.decide(StreamClass::Critical, u64::MAX, 0, true),
            Admission::Accept
        );
    }

    #[test]
    fn background_backpressure_ladder() {
        let cfg = AdmissionConfig::default();
        let bg = StreamClass::Background;
        assert_eq!(cfg.decide(bg, 0, 0, false), Admission::Accept);
        assert_eq!(
            cfg.decide(bg, cfg.defer_backlog, 0, false),
            Admission::Defer
        );
        assert_eq!(
            cfg.decide(bg, cfg.defer_backlog, cfg.max_defers, false),
            Admission::Shed
        );
        assert_eq!(cfg.decide(bg, cfg.shed_backlog, 0, false), Admission::Shed);
        // Critical SLO risk sheds even an unloaded background request.
        assert_eq!(cfg.decide(bg, 0, 0, true), Admission::Shed);
    }
}
