//! The serving run's full account, in integers.
//!
//! Every field of [`ServeReport`] is an integer, a string, or a typed id,
//! so the report derives `Eq` and the determinism contract — *same seed ⇒
//! byte-identical report* — is checkable with a plain `assert_eq!`.

use atm_adapt::AdaptReport;
use atm_capping::{CapReport, EnergyReport};
use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::stream::StreamClass;

/// One recorded posture transition of the degradation machinery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Epoch index at which the transition fired.
    pub epoch: u32,
    /// What happened ("rollback core 0/3: failure: system crash",
    /// "throttle step-down", …).
    pub action: String,
    /// The critical core after the transition.
    pub critical_core: CoreId,
    /// The critical core's settled frequency after the transition,
    /// rounded to whole MHz.
    pub critical_freq_mhz: u64,
}

/// Per-stream serving statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Stream name.
    pub name: String,
    /// Critical or background.
    pub class: StreamClass,
    /// Requests that arrived.
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed by admission control (or stranded on gated cores).
    pub shed: u64,
    /// Deferral events (one request may defer several times).
    pub deferred: u64,
    /// The stream's p99 latency SLO (0 = no SLO).
    pub slo_ns: u64,
    /// Completions whose latency exceeded the SLO.
    pub slo_violations: u64,
    /// Median completion latency (ns).
    pub p50_ns: u64,
    /// 95th-percentile latency (ns).
    pub p95_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_ns: u64,
    /// Worst completion latency (ns).
    pub max_ns: u64,
    /// Mean completion latency (ns).
    pub mean_ns: u64,
    /// Deepest queue (in-flight + waiting requests on the stream's core)
    /// observed at any dispatch.
    pub max_queue_depth: u64,
    /// p99 latency of each epoch's completions (0 for idle epochs) — the
    /// recovery trace the degradation tests read.
    pub epoch_p99_ns: Vec<u64>,
}

impl StreamStats {
    /// Whether the stream's overall p99 met its SLO (vacuously true
    /// without one).
    #[must_use]
    pub fn slo_met(&self) -> bool {
        self.slo_ns == 0 || self.p99_ns <= self.slo_ns
    }
}

/// The complete, deterministic account of one serving run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeReport {
    /// The chip/arrival seed the run derives from.
    pub seed: u64,
    /// Number of epochs simulated.
    pub epochs: u32,
    /// Virtual nanoseconds per epoch.
    pub epoch_ns: u64,
    /// Total requests completed.
    pub completed: u64,
    /// Total requests shed.
    pub shed: u64,
    /// Total deferral events.
    pub deferred: u64,
    /// Where the critical stream ended up.
    pub critical_core: CoreId,
    /// Every degradation/posture transition, in order.
    pub transitions: Vec<Transition>,
    /// Per-stream statistics, in stream-spec order.
    pub streams: Vec<StreamStats>,
    /// The online adapter's account, when adaptation ran (absent — and
    /// absent from serialized reports — on plain serving runs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub adapt: Option<AdaptReport>,
    /// Integer picojoule energy account of the run — every serving run
    /// meters energy, so `energy_per_request` sits next to the latency
    /// percentiles on the efficiency frontier.
    #[serde(default)]
    pub energy: EnergyReport,
    /// The power regulator's account (absent — and absent from
    /// serialized reports — unless the run was capped).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cap: Option<CapReport>,
}

impl ServeReport {
    /// Total virtual duration (ns).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        u64::from(self.epochs) * self.epoch_ns
    }

    /// The critical stream's stats (the sim enforces exactly one).
    ///
    /// # Panics
    ///
    /// Panics if the report holds no critical stream.
    #[must_use]
    pub fn critical(&self) -> &StreamStats {
        self.streams
            .iter()
            .find(|s| s.class == StreamClass::Critical)
            .expect("a serving run always has a critical stream")
    }

    /// Overall throughput in completed requests per virtual second.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        self.completed as f64 / (self.duration_ns() as f64 / 1e9)
    }

    /// Energy per completed request, in nanojoules — the frontier metric
    /// the capping experiments sweep against p99 latency.
    #[must_use]
    pub fn energy_per_request_nj(&self) -> u64 {
        self.energy.energy_per_request_nj()
    }
}
