//! Seeded open-loop arrival generation.
//!
//! Every stream's arrival trace is a pure function of `(root seed, stream
//! index)`: each stream gets its own splitmix-derived [`StdRng`] and draws
//! exponential inter-arrival gaps (plus one uniform service-jitter draw
//! per request) completely independently of every other stream. Traces
//! are pre-generated — in parallel across worker threads when asked — and
//! merged into one timeline ordered by `(time, stream, seq)`, so the
//! merged trace is byte-identical no matter how many workers produced it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::{ArrivalPattern, StreamSpec};

/// One request on the open-loop timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival time (virtual ns from trace start).
    pub time: u64,
    /// Index of the owning stream in the sim's stream list.
    pub stream: usize,
    /// Per-stream sequence number.
    pub seq: u32,
    /// Uniform draw in `[0, 1)` for the request's service-time jitter.
    pub draw: f64,
}

/// Derives the per-stream RNG seed from the root seed (splitmix64 of the
/// stream index, xored in — streams stay decorrelated even for adjacent
/// root seeds).
fn stream_seed(root: u64, stream: usize) -> u64 {
    let mut z = (stream as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    root ^ (z ^ (z >> 31))
}

/// Exponential gap with the given mean, floored at 1 ns.
fn exp_gap(rng: &mut StdRng, mean: u64) -> u64 {
    let u: f64 = rng.gen();
    let gap = -(mean as f64) * (1.0_f64 - u).ln();
    (gap.ceil() as u64).max(1)
}

/// Generates one stream's trace over `[0, horizon)` ns.
#[must_use]
pub fn generate(spec: &StreamSpec, root_seed: u64, stream: usize, horizon: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(stream_seed(root_seed, stream));
    let mut out = Vec::new();
    let mut t = 0u64;
    let mut seq = 0u32;
    loop {
        let mean = match spec.pattern {
            ArrivalPattern::Poisson { mean_gap } => mean_gap,
            ArrivalPattern::Bursty {
                mean_gap,
                burst_gap,
                phase,
            } => {
                if (t / phase).is_multiple_of(2) {
                    mean_gap
                } else {
                    burst_gap
                }
            }
        };
        t = t.saturating_add(exp_gap(&mut rng, mean));
        if t >= horizon {
            return out;
        }
        let draw: f64 = rng.gen();
        out.push(Request {
            time: t,
            stream,
            seq,
            draw,
        });
        seq += 1;
    }
}

/// Generates every stream's trace — fanned out over up to `workers`
/// threads — and merges them into one `(time, stream, seq)`-ordered
/// timeline. The result is independent of `workers` because each trace
/// depends only on its own stream's seed.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn generate_all(
    streams: &[StreamSpec],
    root_seed: u64,
    horizon: u64,
    workers: usize,
) -> Vec<Request> {
    assert!(workers > 0, "need at least one worker");
    let workers = workers.min(streams.len()).max(1);
    let mut traces: Vec<Vec<Request>> = Vec::new();
    if workers == 1 {
        traces.extend(
            streams
                .iter()
                .enumerate()
                .map(|(i, s)| generate(s, root_seed, i, horizon)),
        );
    } else {
        let mut slots: Vec<Option<Vec<Request>>> = vec![None; streams.len()];
        std::thread::scope(|scope| {
            let mut pending: Vec<(usize, &StreamSpec, &mut Option<Vec<Request>>)> = streams
                .iter()
                .enumerate()
                .zip(slots.iter_mut())
                .map(|((i, s), slot)| (i, s, slot))
                .collect();
            let mut chunks: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
            for (n, job) in pending.drain(..).enumerate() {
                chunks[n % workers].push(job);
            }
            for chunk in chunks {
                scope.spawn(move || {
                    for (i, spec, slot) in chunk {
                        *slot = Some(generate(spec, root_seed, i, horizon));
                    }
                });
            }
        });
        traces.extend(slots.into_iter().map(|s| s.expect("worker filled slot")));
    }
    let mut merged: Vec<Request> = traces.into_iter().flatten().collect();
    merged.sort_by_key(|r| (r.time, r.stream, r.seq));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_workloads::by_name;

    fn specs() -> Vec<StreamSpec> {
        let sq = by_name("squeezenet").unwrap();
        let x264 = by_name("x264").unwrap();
        vec![
            StreamSpec::critical(
                sq,
                ArrivalPattern::Poisson {
                    mean_gap: 90_000_000,
                },
                0,
            ),
            StreamSpec::background(
                x264,
                ArrivalPattern::Bursty {
                    mean_gap: 30_000_000,
                    burst_gap: 8_000_000,
                    phase: 250_000_000,
                },
            ),
        ]
    }

    #[test]
    fn traces_are_sorted_and_seeded() {
        let a = generate_all(&specs(), 7, 2_000_000_000, 1);
        assert!(!a.is_empty());
        assert!(a
            .windows(2)
            .all(|w| (w[0].time, w[0].stream, w[0].seq) < (w[1].time, w[1].stream, w[1].seq)));
        assert!(a.iter().all(|r| r.time < 2_000_000_000 && r.draw < 1.0));
        let b = generate_all(&specs(), 7, 2_000_000_000, 1);
        assert_eq!(a, b);
        assert_ne!(a, generate_all(&specs(), 8, 2_000_000_000, 1));
    }

    #[test]
    fn worker_count_does_not_change_the_trace() {
        for workers in [2, 3, 8] {
            assert_eq!(
                generate_all(&specs(), 42, 1_000_000_000, 1),
                generate_all(&specs(), 42, 1_000_000_000, workers),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn poisson_rate_is_roughly_the_mean() {
        let spec = StreamSpec::background(
            by_name("gcc").unwrap(),
            ArrivalPattern::Poisson {
                mean_gap: 1_000_000,
            },
        );
        let trace = generate(&spec, 3, 0, 1_000_000_000);
        let n = trace.len() as f64; // expect ~1000
        assert!((800.0..1200.0).contains(&n), "{n} arrivals");
    }

    #[test]
    fn bursts_arrive_faster_than_calm_phases() {
        let spec = StreamSpec::background(
            by_name("x264").unwrap(),
            ArrivalPattern::Bursty {
                mean_gap: 4_000_000,
                burst_gap: 400_000,
                phase: 100_000_000,
            },
        );
        let trace = generate(&spec, 11, 0, 1_000_000_000);
        let (mut calm, mut burst) = (0u64, 0u64);
        for r in &trace {
            if (r.time / 100_000_000).is_multiple_of(2) {
                calm += 1;
            } else {
                burst += 1;
            }
        }
        assert!(burst > calm * 3, "burst {burst} vs calm {calm}");
    }
}
