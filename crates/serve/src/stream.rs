//! Request streams: what arrives, how often, and what it is owed.

use atm_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Whether a stream is the latency-critical tenant or background filler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamClass {
    /// Latency-critical: placed on the fastest core, never shed.
    Critical,
    /// Background: backfills the remaining cores, sheddable under
    /// pressure.
    Background,
}

/// How a stream's requests arrive on the open-loop timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Poisson arrivals with the given mean inter-arrival gap (ns).
    Poisson {
        /// Mean gap between consecutive arrivals, in nanoseconds.
        mean_gap: u64,
    },
    /// Alternating calm/burst phases of equal length: Poisson at
    /// `mean_gap` during calm phases, at `burst_gap` during bursts.
    Bursty {
        /// Mean gap during calm phases (ns).
        mean_gap: u64,
        /// Mean gap during burst phases (ns); smaller means a burst.
        burst_gap: u64,
        /// Length of each phase (ns).
        phase: u64,
    },
}

/// One open-loop request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Display name (defaults to the workload's).
    pub name: String,
    /// The workload one request of this stream executes.
    pub workload: Workload,
    /// Critical or background.
    pub class: StreamClass,
    /// The arrival process.
    pub pattern: ArrivalPattern,
    /// Tail-latency SLO in nanoseconds (p99 target); 0 disables SLO
    /// accounting for the stream.
    pub slo_ns: u64,
}

impl StreamSpec {
    /// A critical stream with a p99 SLO.
    #[must_use]
    pub fn critical(workload: &Workload, pattern: ArrivalPattern, slo_ns: u64) -> Self {
        StreamSpec {
            name: workload.name().to_string(),
            workload: workload.clone(),
            class: StreamClass::Critical,
            pattern,
            slo_ns,
        }
    }

    /// A background stream (no SLO).
    #[must_use]
    pub fn background(workload: &Workload, pattern: ArrivalPattern) -> Self {
        StreamSpec {
            name: workload.name().to_string(),
            workload: workload.clone(),
            class: StreamClass::Background,
            pattern,
            slo_ns: 0,
        }
    }
}
