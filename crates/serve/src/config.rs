//! Serving-simulation configuration.

use atm_core::QosTarget;
use atm_units::{AtmError, MegaHz, Nanos};
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionConfig;

/// Knobs of the serving simulation.
///
/// Two clocks coexist: the **virtual serving timeline** (`epoch_ns`
/// buckets of request traffic, integers, decoupled from chip simulation
/// cost) and the **chip simulation** run for `chip_trial` per epoch to
/// harvest droop alarms and failures at the deployed posture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Root seed for arrival generation (conventionally the chip seed).
    pub seed: u64,
    /// Number of serving epochs.
    pub epochs: u32,
    /// Virtual nanoseconds of traffic per epoch.
    pub epoch_ns: u64,
    /// Chip-simulation time per epoch used to harvest chip events.
    pub chip_trial: Nanos,
    /// Droop-alarm threshold armed on the chip (frequency dip below the
    /// core's rolling mean); `None` disables alarms.
    pub droop_alarm: Option<MegaHz>,
    /// QoS target for the critical stream (drives posture and budget).
    pub qos: QosTarget,
    /// Epochs between periodic service-rate refreshes (settle + re-read
    /// core frequencies) when nothing degraded.
    pub refresh_every: u32,
    /// Caps how many cores the dispatcher uses (the critical core plus
    /// `n − 1` background cores in id order); `None` serves on the whole
    /// socket. Scaling studies sweep this.
    pub serving_cores: Option<u32>,
    /// Backpressure thresholds.
    pub admission: AdmissionConfig,
}

impl ServeConfig {
    /// The standard configuration: 20 epochs × 500 ms of traffic, 2 µs
    /// chip trials, 25 MHz droop alarms, 10% QoS.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        ServeConfig {
            seed,
            epochs: 20,
            epoch_ns: 500_000_000,
            chip_trial: Nanos::new(2_000.0),
            droop_alarm: Some(MegaHz::new(25.0)),
            qos: QosTarget::improvement_pct(10.0),
            refresh_every: 4,
            serving_cores: None,
            admission: AdmissionConfig::default(),
        }
    }

    /// A fast configuration for tests: 10 epochs × 200 ms.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        ServeConfig {
            epochs: 10,
            epoch_ns: 200_000_000,
            chip_trial: Nanos::new(1_000.0),
            ..ServeConfig::standard(seed)
        }
    }

    /// A builder seeded from [`ServeConfig::standard`] — the preferred
    /// way to construct a validated configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use atm_serve::ServeConfig;
    ///
    /// let cfg = ServeConfig::builder(42).epochs(4).build().unwrap();
    /// assert_eq!(cfg.epochs, 4);
    /// assert!(ServeConfig::builder(42).epochs(0).build().is_err());
    /// ```
    #[must_use]
    pub fn builder(seed: u64) -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::standard(seed),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if `epochs`, `epoch_ns` or
    /// `refresh_every` is zero, `chip_trial` is not positive and finite,
    /// or `serving_cores` is `Some(0)`.
    pub fn check(&self) -> Result<(), AtmError> {
        if self.epochs == 0 {
            return Err(AtmError::invalid_config("epochs", "must be at least 1"));
        }
        if self.epoch_ns == 0 {
            return Err(AtmError::invalid_config("epoch_ns", "must be positive"));
        }
        if !self.chip_trial.get().is_finite() || self.chip_trial.get() <= 0.0 {
            return Err(AtmError::invalid_config(
                "chip_trial",
                "must be positive and finite",
            ));
        }
        if self.refresh_every == 0 {
            return Err(AtmError::invalid_config(
                "refresh_every",
                "must be at least 1",
            ));
        }
        if self.serving_cores == Some(0) {
            return Err(AtmError::invalid_config(
                "serving_cores",
                "need at least the critical core",
            ));
        }
        Ok(())
    }
}

/// Builder for [`ServeConfig`], produced by [`ServeConfig::builder`].
/// Every knob defaults to [`ServeConfig::standard`]'s value; [`build`]
/// validates the result.
///
/// [`build`]: ServeConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the number of serving epochs.
    #[must_use]
    pub fn epochs(mut self, epochs: u32) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Sets the virtual nanoseconds of traffic per epoch.
    #[must_use]
    pub fn epoch_ns(mut self, epoch_ns: u64) -> Self {
        self.config.epoch_ns = epoch_ns;
        self
    }

    /// Sets the chip-simulation time per epoch.
    #[must_use]
    pub fn chip_trial(mut self, chip_trial: Nanos) -> Self {
        self.config.chip_trial = chip_trial;
        self
    }

    /// Sets (or disables) the droop-alarm threshold.
    #[must_use]
    pub fn droop_alarm(mut self, droop_alarm: Option<MegaHz>) -> Self {
        self.config.droop_alarm = droop_alarm;
        self
    }

    /// Sets the critical stream's QoS target.
    #[must_use]
    pub fn qos(mut self, qos: QosTarget) -> Self {
        self.config.qos = qos;
        self
    }

    /// Sets the service-rate refresh period, in epochs.
    #[must_use]
    pub fn refresh_every(mut self, refresh_every: u32) -> Self {
        self.config.refresh_every = refresh_every;
        self
    }

    /// Caps the number of serving cores (`None` serves on the whole
    /// socket).
    #[must_use]
    pub fn serving_cores(mut self, serving_cores: Option<u32>) -> Self {
        self.config.serving_cores = serving_cores;
        self
    }

    /// Sets the backpressure thresholds.
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.config.admission = admission;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] under the conditions of
    /// [`ServeConfig::check`].
    pub fn build(self) -> Result<ServeConfig, AtmError> {
        self.config.check()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_standard() {
        let built = ServeConfig::builder(7).build().unwrap();
        assert_eq!(built, ServeConfig::standard(7));
    }

    #[test]
    fn builder_rejects_degenerate_knobs() {
        assert!(ServeConfig::builder(7).epoch_ns(0).build().is_err());
        assert!(ServeConfig::builder(7).refresh_every(0).build().is_err());
        assert!(ServeConfig::builder(7)
            .chip_trial(Nanos::new(0.0))
            .build()
            .is_err());
        assert!(ServeConfig::builder(7)
            .serving_cores(Some(0))
            .build()
            .is_err());
        let err = ServeConfig::builder(7).epochs(0).build().unwrap_err();
        assert!(err.to_string().contains("epochs"));
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = ServeConfig::builder(9)
            .epochs(3)
            .epoch_ns(1_000)
            .chip_trial(Nanos::new(500.0))
            .droop_alarm(None)
            .qos(QosTarget::improvement_pct(5.0))
            .refresh_every(2)
            .serving_cores(Some(4))
            .admission(AdmissionConfig::default())
            .build()
            .unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.epoch_ns, 1_000);
        assert_eq!(cfg.droop_alarm, None);
        assert_eq!(cfg.serving_cores, Some(4));
    }
}
