//! Serving-simulation configuration.

use atm_core::QosTarget;
use atm_units::{MegaHz, Nanos};
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionConfig;

/// Knobs of the serving simulation.
///
/// Two clocks coexist: the **virtual serving timeline** (`epoch_ns`
/// buckets of request traffic, integers, decoupled from chip simulation
/// cost) and the **chip simulation** run for `chip_trial` per epoch to
/// harvest droop alarms and failures at the deployed posture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Root seed for arrival generation (conventionally the chip seed).
    pub seed: u64,
    /// Number of serving epochs.
    pub epochs: u32,
    /// Virtual nanoseconds of traffic per epoch.
    pub epoch_ns: u64,
    /// Chip-simulation time per epoch used to harvest chip events.
    pub chip_trial: Nanos,
    /// Droop-alarm threshold armed on the chip (frequency dip below the
    /// core's rolling mean); `None` disables alarms.
    pub droop_alarm: Option<MegaHz>,
    /// QoS target for the critical stream (drives posture and budget).
    pub qos: QosTarget,
    /// Epochs between periodic service-rate refreshes (settle + re-read
    /// core frequencies) when nothing degraded.
    pub refresh_every: u32,
    /// Caps how many cores the dispatcher uses (the critical core plus
    /// `n − 1` background cores in id order); `None` serves on the whole
    /// socket. Scaling studies sweep this.
    pub serving_cores: Option<u32>,
    /// Backpressure thresholds.
    pub admission: AdmissionConfig,
}

impl ServeConfig {
    /// The standard configuration: 20 epochs × 500 ms of traffic, 2 µs
    /// chip trials, 25 MHz droop alarms, 10% QoS.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        ServeConfig {
            seed,
            epochs: 20,
            epoch_ns: 500_000_000,
            chip_trial: Nanos::new(2_000.0),
            droop_alarm: Some(MegaHz::new(25.0)),
            qos: QosTarget::improvement_pct(10.0),
            refresh_every: 4,
            serving_cores: None,
            admission: AdmissionConfig::default(),
        }
    }

    /// A fast configuration for tests: 10 epochs × 200 ms.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        ServeConfig {
            epochs: 10,
            epoch_ns: 200_000_000,
            chip_trial: Nanos::new(1_000.0),
            ..ServeConfig::standard(seed)
        }
    }
}
