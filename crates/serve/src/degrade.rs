//! Droop-aware degradation policy.
//!
//! The chip publishes [`ChipEvent`]s (timing failures, droop alarms); the
//! policy turns them into management actions on the serving posture:
//!
//! * a **failure** on any core rolls its CPM fine-tuning back one step
//!   (the paper's field response to a characterization miss) and forces a
//!   re-placement, since the core-speed ranking just changed;
//! * **persistent droop alarms** on the critical core (≥ `alarm_trip` in
//!   one epoch) do the same — the core is losing cycles to loop responses
//!   the settled predictor never saw;
//! * persistent alarms on a background core throttle the background tier
//!   one rung down the DVFS ladder instead, trading filler throughput for
//!   rail stability.

use std::collections::BTreeMap;

use atm_chip::ChipEvent;
use atm_units::CoreId;
use serde::{Deserialize, Serialize};

/// One action the policy requests from the serving loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeAction {
    /// Roll `core`'s CPM fine-tuning back one delay step and re-place.
    Rollback {
        /// The offending core.
        core: CoreId,
        /// Why ("failure: …" or "droop alarms").
        cause: String,
    },
    /// Step the background throttle one rung down the ladder.
    ThrottleDown {
        /// The background core whose alarms triggered the step.
        core: CoreId,
    },
}

/// The degradation policy configuration + per-epoch alarm accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Droop alarms on one core within one epoch that trigger action.
    pub alarm_trip: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy { alarm_trip: 3 }
    }
}

impl DegradationPolicy {
    /// Digests one epoch's chip events into an ordered action list
    /// (failures first, then alarm-tripped cores in core order — the
    /// ordering is part of the deterministic contract).
    #[must_use]
    pub fn react(&self, events: &[ChipEvent], critical: CoreId) -> Vec<DegradeAction> {
        let mut actions = Vec::new();
        let mut alarms: BTreeMap<CoreId, usize> = BTreeMap::new();
        for ev in events {
            match ev {
                ChipEvent::Failure(f) => actions.push(DegradeAction::Rollback {
                    core: f.core,
                    cause: format!("failure: {}", f.kind),
                }),
                ChipEvent::Droop(d) => {
                    *alarms.entry(d.core).or_insert(0) += 1;
                }
            }
        }
        for (core, n) in alarms {
            if n < self.alarm_trip {
                continue;
            }
            if core == critical {
                actions.push(DegradeAction::Rollback {
                    core,
                    cause: format!("{n} droop alarms"),
                });
            } else {
                actions.push(DegradeAction::ThrottleDown { core });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::{DroopAlarm, FailureEvent, FailureKind};
    use atm_units::{MegaHz, Nanos};

    fn droop(core: CoreId) -> ChipEvent {
        ChipEvent::Droop(DroopAlarm {
            core,
            dip: MegaHz::new(30.0),
            at: Nanos::new(10.0),
        })
    }

    #[test]
    fn failure_rolls_back_the_offender() {
        let crit = CoreId::new(0, 2);
        let policy = DegradationPolicy::default();
        let ev = ChipEvent::Failure(FailureEvent {
            core: crit,
            kind: FailureKind::SystemCrash,
            at: Nanos::new(5.0),
        });
        let actions = policy.react(&[ev], crit);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            DegradeAction::Rollback { core, .. } if *core == crit
        ));
    }

    #[test]
    fn alarm_bursts_split_by_tenancy() {
        let crit = CoreId::new(0, 0);
        let bg = CoreId::new(0, 5);
        let policy = DegradationPolicy::default();
        let mut events = Vec::new();
        for _ in 0..3 {
            events.push(droop(crit));
            events.push(droop(bg));
        }
        // Two alarms on another core stay under the trip threshold.
        events.push(droop(CoreId::new(0, 7)));
        events.push(droop(CoreId::new(0, 7)));
        let actions = policy.react(&events, crit);
        assert_eq!(
            actions,
            vec![
                DegradeAction::Rollback {
                    core: crit,
                    cause: "3 droop alarms".into()
                },
                DegradeAction::ThrottleDown { core: bg },
            ]
        );
    }
}
