//! Fixed-bucket latency histograms.
//!
//! The tracker needs tail quantiles over request latencies spanning five
//! orders of magnitude (10 µs bookkeeping requests to 100 ms inferences
//! stuck behind a queue) with bounded memory and bit-exact determinism.
//! [`LatencyHistogram`] uses a log-linear bucket layout (64 linear
//! sub-buckets per power of two, the HDR-histogram shape): relative
//! quantile error is bounded by 1/64 ≈ 1.6% at every scale, and every
//! operation is pure integer arithmetic.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power-of-two group.
const SUB: u64 = 64;
/// Total bucket count: values 0..64 map 1:1, then 64 sub-buckets for each
/// exponent 6..=63.
const BUCKETS: usize = (SUB as usize) * 59;

/// A fixed-bucket histogram of nanosecond latencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // ≥ 6
    let sub = (v >> (exp - 6)) - SUB; // 0..64
    ((exp - 5) * SUB + sub) as usize
}

/// The lower bound of bucket `idx` — the deterministic representative
/// value quantiles report.
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let exp = idx / SUB + 5;
    let sub = idx % SUB;
    (SUB + sub) << (exp - 6)
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one latency (in nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v).min(BUCKETS - 1)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded value (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        (self.sum / u128::from(self.total)) as u64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) as the floor of the bucket where
    /// the cumulative count reaches `⌈q·total⌉`; 0 when empty. Within
    /// 1/64 relative error of the true order statistic.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "q out of [0,1]: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max
    }

    /// Folds `other`'s samples into this histogram. Because the buckets
    /// are fixed, merging per-chip histograms and then reading quantiles
    /// is exactly equivalent to having recorded every sample into one
    /// histogram — the fleet-level aggregation is order-independent.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Clears the histogram for reuse (the per-epoch tracker).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1 << 20, u64::MAX >> 1] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            last = b;
            assert!(bucket_floor(b) <= v);
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000); // 1 µs .. 10 ms
        }
        for (q, truth) in [(0.5, 5_000_000.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let est = h.quantile(q) as f64;
            assert!((est - truth).abs() / truth < 0.04, "q{q}: {est} vs {truth}");
        }
        assert_eq!(h.max(), 10_000_000);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for v in 1..=5_000u64 {
            whole.record(v * 37);
            if v.is_multiple_of(2) {
                left.record(v * 37);
            } else {
                right.record(v * 37);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn reset_returns_to_empty() {
        let mut h = LatencyHistogram::new();
        h.record(12345);
        h.reset();
        assert_eq!(h, LatencyHistogram::new());
    }
}
