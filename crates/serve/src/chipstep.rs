//! Per-epoch chip stepping for fleet-scale simulation.
//!
//! [`ServeSim`](crate::ServeSim) owns its whole timeline: it generates
//! arrivals, loops over epochs, and returns one report. A *fleet* of
//! chips cannot work that way — a fleet-level router decides, at every
//! epoch barrier, which chip each request lands on, so the per-chip
//! serving machinery has to be steppable from the outside.
//!
//! [`ChipServer`] is that seam: the managed-chip epoch body of
//! `ServeSim` (chip-event harvest → supervisor ladder → degradation →
//! re-posture → dispatch) refactored into an incremental object. The
//! fleet loop calls [`ChipServer::step_epoch`] once per epoch with the
//! requests routed to this chip, reads a [`ChipSnapshot`] at the barrier
//! to drive placement, and finally folds the [`ChipSummary`] into the
//! fleet report. Every piece of state is integer-valued or
//! deterministic, so a chip stepped by any worker thread produces the
//! same bytes.

use std::collections::BTreeMap;

use atm_adapt::{AdaptContext, AdaptReport, Adapter, NullAdapter};
use atm_capping::{
    CapAction, CapConfig, CapReport, EnergyMeter, EnergyModel, EnergyReport, PowerRegulator,
};
use atm_chip::{FailureKind, FaultHook, PStateTable};
use atm_core::{AtmManager, MarginSupervisor, QosTarget, ServePosture, SupervisorConfig};
use atm_silicon::DriftModel;
use atm_telemetry::NullRecorder;
use atm_units::{AtmError, CoreId, MegaHz, Nanos, ProcId};
use atm_workloads::{ServiceProfile, Workload};

use crate::degrade::{DegradationPolicy, DegradeAction};
use crate::histogram::LatencyHistogram;

/// Per-chip serving knobs — the subset of [`ServeConfig`](crate::ServeConfig)
/// that applies to one chip of a fleet (the fleet owns the timeline, the
/// seeds, and the traffic shape).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipServeConfig {
    /// The latency-critical workload each chip hosts.
    pub critical: Workload,
    /// Background workloads backfilling the remaining cores (round-robin).
    pub backgrounds: Vec<Workload>,
    /// QoS target for the critical stream (drives posture and budget).
    pub qos: QosTarget,
    /// Droop-alarm threshold armed on the chip; `None` disables alarms.
    pub droop_alarm: Option<MegaHz>,
    /// Chip-simulation time per epoch used to harvest chip events.
    pub chip_trial: Nanos,
    /// p99 SLO for critical requests, in nanoseconds (0 = no SLO).
    pub critical_slo_ns: u64,
    /// Epochs between periodic service-rate refreshes when nothing
    /// degraded.
    pub refresh_every: u32,
    /// Supervisor thresholds for this chip's margin-safety ladder.
    pub supervisor: SupervisorConfig,
    /// Optional power cap: budget schedule plus regulator knobs. Under a
    /// fleet budget the per-epoch split pushed in through
    /// [`ChipServer::set_epoch_cap_mw`] overrides the local schedule.
    pub capping: Option<CapConfig>,
    /// Optional integer picojoule energy accounting; when set, the chip's
    /// [`ChipSummary`] carries an [`EnergyReport`].
    pub energy: Option<EnergyModel>,
}

impl ChipServeConfig {
    /// Standard per-chip knobs over the given critical/background pair:
    /// 1 µs harvest trials, 25 MHz droop alarms, 10% QoS, 250 ms SLO.
    #[must_use]
    pub fn standard(critical: Workload, backgrounds: Vec<Workload>) -> Self {
        ChipServeConfig {
            critical,
            backgrounds,
            qos: QosTarget::improvement_pct(10.0),
            droop_alarm: Some(MegaHz::new(25.0)),
            chip_trial: Nanos::new(1_000.0),
            critical_slo_ns: 250_000_000,
            refresh_every: 4,
            supervisor: SupervisorConfig::default(),
            capping: None,
            energy: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if `backgrounds` is empty,
    /// `chip_trial` is not positive and finite, or `refresh_every` is
    /// zero.
    pub fn check(&self) -> Result<(), AtmError> {
        if self.backgrounds.is_empty() {
            return Err(AtmError::invalid_config(
                "backgrounds",
                "need at least one background workload",
            ));
        }
        if !self.chip_trial.get().is_finite() || self.chip_trial.get() <= 0.0 {
            return Err(AtmError::invalid_config(
                "chip_trial",
                "must be positive and finite",
            ));
        }
        if self.refresh_every == 0 {
            return Err(AtmError::invalid_config(
                "refresh_every",
                "must be at least 1",
            ));
        }
        if let Some(capping) = &self.capping {
            capping.check()?;
        }
        if let Some(energy) = &self.energy {
            energy.check()?;
        }
        Ok(())
    }
}

/// One request routed to a chip for an epoch: arrival time on the global
/// fleet timeline, class, and the pre-drawn service jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipRequest {
    /// Arrival time (virtual ns from fleet-trace start).
    pub at: u64,
    /// Whether this is a critical-stream request.
    pub critical: bool,
    /// Uniform draw in `[0, 1)` for the request's service-time jitter.
    pub draw: f64,
}

/// The per-chip state the fleet router reads at each epoch barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipSnapshot {
    /// Whether the chip is still running. A hard-failed chip stays in the
    /// fleet (its account survives for the final report) but must receive
    /// no traffic until the failover machinery resurrects it.
    pub alive: bool,
    /// Settled frequency of the fastest core still eligible for placement
    /// (not quarantined, not safe-moded), in whole MHz. Zero when every
    /// core is excluded.
    pub fastest_healthy_mhz: u64,
    /// Total queued-work backlog across serving cores, in ns past `now`.
    pub backlog_ns: u64,
    /// Cores quarantined by the supervisor (terminal).
    pub quarantined: u32,
    /// Cores held at the static-margin baseline by the supervisor.
    pub safe_mode: u32,
    /// The least healthy core's supervisor health score (0–100).
    pub min_health: u32,
}

/// The chip's final integer account, folded into the fleet report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipSummary {
    /// Requests served to completion.
    pub completed: u64,
    /// Requests stranded on this chip (background tier fully gated).
    pub shed: u64,
    /// Critical completions.
    pub critical_completed: u64,
    /// Critical completions that violated the SLO.
    pub critical_slo_violations: u64,
    /// p99 latency over every completion (ns).
    pub p99_ns: u64,
    /// Supervisor/degradation actions applied over the chip's lifetime.
    pub transitions: u64,
    /// Final quarantined-core count.
    pub quarantined: u32,
    /// Final safe-mode-core count.
    pub safe_mode: u32,
    /// Final fastest healthy core frequency (whole MHz).
    pub fastest_healthy_mhz: u64,
    /// The power regulator's account (absent unless the chip was capped).
    pub cap: Option<CapReport>,
    /// The energy meter's account (absent unless energy accounting ran).
    pub energy: Option<EnergyReport>,
}

/// What one [`ChipServer::step_epoch`] call could not absorb.
///
/// A live chip absorbs every request routed to it (dispatch is a
/// commitment), so `rejected` is empty. A chip that is dead — or died
/// during this epoch's harvest, before anything was dispatched — bounces
/// the whole batch back; the fleet's failover ladder owns their fate.
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use = "rejected requests must be retried or shed, never dropped"]
pub struct EpochOutcome {
    /// Requests the chip could not serve because it is hard-failed.
    pub rejected: Vec<ChipRequest>,
}

/// The per-chip power-capping state: the regulator, its run report, and
/// the fleet's per-epoch cap override (when one is pushed in).
#[derive(Debug, Clone)]
struct CapState {
    cfg: CapConfig,
    regulator: PowerRegulator,
    report: CapReport,
    override_mw: Option<u64>,
}

/// One managed chip, steppable epoch by epoch (see the module docs).
///
/// The `Debug` rendering is exhaustive on purpose: it is the canonical
/// byte-identity witness the checkpoint machinery checksums, so every
/// field — all of them integer-valued, ordered maps, or
/// shortest-roundtrip floats — must appear in it.
#[derive(Debug)]
pub struct ChipServer {
    mgr: AtmManager,
    cfg: ChipServeConfig,
    supervisor: MarginSupervisor,
    policy: DegradationPolicy,
    posture: ServePosture,
    pstates: PStateTable,
    baseline: MegaHz,
    /// `(workload, profile)` served by each postured core.
    core_svc: BTreeMap<CoreId, (Workload, ServiceProfile)>,
    free_at: BTreeMap<CoreId, u64>,
    crit_hist: LatencyHistogram,
    bg_hist: LatencyHistogram,
    completed: u64,
    shed: u64,
    critical_completed: u64,
    critical_slo_violations: u64,
    transitions: u64,
    throttle_extra: usize,
    epoch: u32,
    /// The online recharacterization seam ([`NullAdapter`] = off).
    adapter: Box<dyn Adapter>,
    /// Silicon aging/seasonal drift applied each epoch (`None` = pristine).
    drift: Option<DriftModel>,
    /// The power regulator (`None` = uncapped).
    cap: Option<CapState>,
    /// The energy integrator (`None` = no energy accounting).
    meter: Option<EnergyMeter>,
    /// Chip power measured at this epoch's harvest, integer milliwatts.
    measured_mw: u64,
    /// Request service time dispatched this epoch, ns.
    epoch_busy_ns: u64,
    /// Requests completed this epoch.
    epoch_completed: u64,
    /// The epoch this chip hard-failed (`None` = alive). A dead chip
    /// rejects every routed request and skips its harvest until
    /// resurrected.
    dead_since: Option<u32>,
}

impl Clone for ChipServer {
    fn clone(&self) -> Self {
        ChipServer {
            mgr: self.mgr.clone(),
            cfg: self.cfg.clone(),
            supervisor: self.supervisor.clone(),
            policy: self.policy.clone(),
            posture: self.posture.clone(),
            pstates: self.pstates.clone(),
            baseline: self.baseline,
            core_svc: self.core_svc.clone(),
            free_at: self.free_at.clone(),
            crit_hist: self.crit_hist.clone(),
            bg_hist: self.bg_hist.clone(),
            completed: self.completed,
            shed: self.shed,
            critical_completed: self.critical_completed,
            critical_slo_violations: self.critical_slo_violations,
            transitions: self.transitions,
            throttle_extra: self.throttle_extra,
            epoch: self.epoch,
            adapter: self.adapter.clone_box(),
            drift: self.drift,
            cap: self.cap.clone(),
            meter: self.meter.clone(),
            measured_mw: self.measured_mw,
            epoch_busy_ns: self.epoch_busy_ns,
            epoch_completed: self.epoch_completed,
            dead_since: self.dead_since,
        }
    }
}

/// A sealed deep copy of a [`ChipServer`] taken at an epoch barrier.
///
/// Restoring one and stepping forward is byte-identical to having never
/// left: the copy carries the manager, the supervisor ladder, the queues,
/// the histograms, the regulator integral and the adapter's learned
/// state. [`ChipServer::resurrect_from`] uses the same capsule but keeps
/// the cumulative account (see its docs).
#[derive(Debug, Clone)]
pub struct ChipServerCheckpoint {
    state: ChipServer,
}

impl ChipServerCheckpoint {
    /// Materializes a fresh server from the checkpoint — equivalent to
    /// [`ChipServer::restore`] without needing a server to restore into.
    #[must_use]
    pub fn thaw(&self) -> ChipServer {
        self.state.clone()
    }
}

impl ChipServer {
    /// Postures a deployed manager for incremental serving.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if the config fails
    /// [`ChipServeConfig::check`].
    pub fn new(mut mgr: AtmManager, cfg: ChipServeConfig) -> Result<Self, AtmError> {
        cfg.check()?;
        let baseline = mgr.system().config().pstates.nominal().frequency;
        let pstates = mgr.system().config().pstates.clone();
        mgr.system_mut().set_droop_alarm(cfg.droop_alarm);
        let posture =
            mgr.serve_posture(&cfg.critical, &cfg.backgrounds, cfg.qos, &mut NullRecorder)?;
        // Posturing settles and trains predictors; the alarms those runs
        // raise are calibration noise, not serving-time events.
        mgr.system_mut().drain_events();
        let mut supervisor = MarginSupervisor::new(cfg.supervisor);
        supervisor.attach(mgr.system());
        let core_svc = service_map(&cfg, &posture);
        let capping = cfg.capping.clone();
        let energy = cfg.energy;
        Ok(ChipServer {
            mgr,
            cfg,
            supervisor,
            policy: DegradationPolicy::default(),
            posture,
            pstates,
            baseline,
            core_svc,
            free_at: BTreeMap::new(),
            crit_hist: LatencyHistogram::new(),
            bg_hist: LatencyHistogram::new(),
            completed: 0,
            shed: 0,
            critical_completed: 0,
            critical_slo_violations: 0,
            transitions: 0,
            throttle_extra: 0,
            epoch: 0,
            adapter: Box::new(NullAdapter),
            drift: None,
            cap: capping.map(|c| CapState {
                regulator: PowerRegulator::new(c.regulator),
                cfg: c,
                report: CapReport::new(),
                override_mw: None,
            }),
            meter: energy.map(EnergyMeter::new),
            measured_mw: 0,
            epoch_busy_ns: 0,
            epoch_completed: 0,
            dead_since: None,
        })
    }

    /// Installs an online adapter (replacing the default [`NullAdapter`]).
    pub fn set_adapter(&mut self, adapter: Box<dyn Adapter>) {
        self.adapter = adapter;
    }

    /// Arms epoch-by-epoch silicon drift (aging + seasonal temperature).
    pub fn set_drift(&mut self, drift: DriftModel) {
        self.drift = Some(drift);
    }

    /// The adapter's account, if one is running.
    #[must_use]
    pub fn adapt_report(&self) -> Option<AdaptReport> {
        self.adapter.report()
    }

    /// Overrides the cap in force for subsequent epochs, in milliwatts —
    /// the fleet budget's per-epoch split seam. `None` reverts to the
    /// chip's own schedule. Ignored on an uncapped chip.
    pub fn set_epoch_cap_mw(&mut self, cap_mw: Option<u64>) {
        if let Some(cap) = self.cap.as_mut() {
            cap.override_mw = cap_mw;
        }
    }

    /// The power regulator's account so far, if the chip is capped.
    #[must_use]
    pub fn cap_report(&self) -> Option<&CapReport> {
        self.cap.as_ref().map(|c| &c.report)
    }

    /// The energy meter's account so far, if energy accounting is on.
    #[must_use]
    pub fn energy_report(&self) -> Option<EnergyReport> {
        self.meter.as_ref().map(EnergyMeter::report)
    }

    /// Steps one serving epoch: harvests chip events at the current
    /// posture (through `faults` when armed), closes a supervisor window,
    /// applies the degradation responses, and dispatches `requests` —
    /// which must be sorted by arrival time — onto the per-core queues.
    ///
    /// The caller (the fleet loop) owns the timeline: requests carry
    /// global timestamps and this chip only ever sees the ones routed to
    /// it.
    ///
    /// A dead chip — hard-failed in a previous epoch, or during this
    /// epoch's harvest trial, before anything was dispatched — rejects
    /// the whole batch through the returned [`EpochOutcome`] and performs
    /// no work beyond advancing its epoch counter.
    pub fn step_epoch(
        &mut self,
        requests: &[ChipRequest],
        faults: Option<&mut dyn FaultHook>,
    ) -> EpochOutcome {
        if self.dead_since.is_some() {
            self.epoch += 1;
            return EpochOutcome {
                rejected: requests.to_vec(),
            };
        }
        if let Some(drift) = self.drift {
            self.mgr
                .system_mut()
                .apply_drift(&drift, u64::from(self.epoch));
        }
        // The epoch boundary on the fleet timeline: the first routed
        // arrival. An empty epoch means every queue has drained relative
        // to any later boundary, so the backlog reads zero either way.
        let now = requests.first().map_or(u64::MAX, |r| r.at);
        self.harvest_and_degrade(faults, now);
        if self.dead_since.is_some() {
            // The harvest trial hit a hard chip failure: this epoch's
            // batch was never dispatched, so it bounces intact.
            self.epoch += 1;
            return EpochOutcome {
                rejected: requests.to_vec(),
            };
        }
        for req in requests {
            self.dispatch(req);
        }
        if let Some(meter) = self.meter.as_mut() {
            let powered = self
                .posture
                .core_freqs
                .iter()
                .filter(|(_, f)| f.get() > 0.0)
                .count() as u32;
            meter.observe_epoch(self.measured_mw, powered, self.epoch_busy_ns);
            meter.add_requests(self.epoch_completed);
        }
        self.epoch_busy_ns = 0;
        self.epoch_completed = 0;
        self.epoch += 1;
        EpochOutcome::default()
    }

    /// The epoch-start chip-in-the-loop body: run a short hardware trial,
    /// feed the events to the supervisor ladder and the droop policy, and
    /// re-posture when anything changed.
    fn harvest_and_degrade(&mut self, faults: Option<&mut dyn FaultHook>, now: u64) {
        let harvest = match faults {
            Some(mut hook) => {
                self.mgr
                    .system_mut()
                    .run_faulted(self.cfg.chip_trial, &mut hook, &mut NullRecorder)
            }
            None => self
                .mgr
                .system_mut()
                .run(self.cfg.chip_trial, &mut NullRecorder),
        };
        if harvest
            .failure
            .is_some_and(|f| f.kind == FailureKind::ChipHardFail)
        {
            // Whole-chip outage: freeze the machine where the abort left
            // it (the account survives for the final report) and let the
            // fleet's failover ladder take over.
            self.dead_since = Some(self.epoch);
            self.mgr.system_mut().drain_events();
            return;
        }
        self.measured_mw = (harvest.procs[0].mean_power.get() * 1_000.0).round() as u64;
        let events = self.mgr.system_mut().drain_events();

        let mut needs_replace = false;
        let mut throttled = false;
        let mut actions = self
            .policy
            .react(&events, self.posture.placement.critical_core);
        // The supervisor owns the failure ladder; the plain policy keeps
        // the droop-alarm throttle response.
        actions.retain(|a| matches!(a, DegradeAction::ThrottleDown { .. }));
        let sup_actions = self.supervisor.observe_window(self.mgr.system(), &events);
        let _ = self
            .mgr
            .apply_supervisor_actions(&sup_actions, &mut NullRecorder);
        if !sup_actions.is_empty() {
            needs_replace = true;
            self.transitions += sup_actions.len() as u64;
        }
        for action in &actions {
            if let DegradeAction::ThrottleDown { .. } = action {
                self.throttle_extra += 1;
                throttled = true;
                self.transitions += 1;
            }
        }

        if needs_replace {
            self.posture = self
                .mgr
                .serve_posture(
                    &self.cfg.critical,
                    &self.cfg.backgrounds,
                    self.cfg.qos,
                    &mut NullRecorder,
                )
                .expect("config validated in new");
            if self.throttle_extra > 0 {
                self.apply_extra_throttle();
            }
            self.mgr.system_mut().drain_events();
            self.core_svc = service_map(&self.cfg, &self.posture);
        } else if throttled {
            self.apply_extra_throttle();
            self.mgr.system_mut().drain_events();
        } else if self.epoch > 0 && self.epoch.is_multiple_of(self.cfg.refresh_every) {
            self.posture.core_freqs = self.mgr.measure_core_freqs(ProcId::new(0));
            self.mgr.system_mut().drain_events();
        }

        if self.adapter.enabled() {
            self.run_adapter(&harvest, now);
        }

        self.regulate(!sup_actions.is_empty());
    }

    /// The regulator's epoch hook: integrate measured power against the
    /// cap in force, commit or suppress the proposal, and actuate through
    /// [`AtmManager::apply_cap_levels`] relative to the posture's own
    /// throttle plan (droop escalations and cap depth compose).
    ///
    /// Two suppression rules keep the regulator subordinate:
    /// a release proposed in the same epoch as a supervisor action is
    /// vetoed (rollbacks outrank the regulator, so a rolled-back core is
    /// never re-raised by a cap release), and releases are deferred while
    /// measured power still exceeds the cap.
    fn regulate(&mut self, supervisor_fired: bool) {
        let measured_mw = self.measured_mw;
        let epoch = self.epoch;
        let Some(cap) = self.cap.as_mut() else {
            return;
        };
        let cap_mw = cap
            .override_mw
            .unwrap_or_else(|| cap.cfg.budget.cap_at(epoch));
        let action = cap
            .regulator
            .propose(measured_mw, cap_mw, &mut NullRecorder);
        let over_budget = measured_mw > cap_mw;
        let (committed, suppressed) = match action {
            CapAction::Release(_) if supervisor_fired || over_budget => (CapAction::Hold, true),
            a => (a, false),
        };
        cap.regulator.commit(committed);
        cap.report.count_action(committed, suppressed);
        let depth = cap.regulator.depth();
        cap.report
            .push_epoch(cap_mw, measured_mw, depth, cap.regulator.integral_mwe());
        // Re-apply every epoch the cap binds: re-postures and droop
        // step-downs reset margin modes, so the depth must be restated on
        // top of whatever plan is now current.
        if depth == 0 && matches!(committed, CapAction::Hold) {
            return;
        }
        let Some(base) = self.posture.placement.plan.clone() else {
            return;
        };
        let bg_depth = depth.min(base.setting.rungs_below(&self.pstates));
        let crit_depth = depth - bg_depth;
        let critical = self.posture.placement.critical_core;
        let _ = self
            .mgr
            .apply_cap_levels(&base, critical, bg_depth, crit_depth, &mut NullRecorder);
        self.posture.core_freqs = self.mgr.measure_core_freqs(ProcId::new(0));
        self.mgr.system_mut().drain_events();
    }

    /// Runs one epoch of online recharacterization against the harvest
    /// the degradation ladder just consumed. Re-measures the posture when
    /// the adapter re-tightened anything.
    fn run_adapter(&mut self, harvest: &atm_chip::SystemReport, now: u64) {
        let serving: Vec<CoreId> = self.posture.core_freqs.iter().map(|(c, _)| *c).collect();
        let critical_core = self.posture.placement.critical_core;
        let idle: Vec<CoreId> = self
            .posture
            .placement
            .background_cores
            .iter()
            .filter(|c| self.free_at.get(c).copied().unwrap_or(0) <= now)
            .copied()
            .collect();
        let blocked: std::collections::BTreeSet<CoreId> = serving
            .iter()
            .filter(|c| {
                self.supervisor.on_probation(**c)
                    || self.mgr.safe_mode_cores().contains(c)
                    || self.mgr.quarantined_cores().contains(c)
            })
            .copied()
            .collect();
        let backlog_ns = self
            .free_at
            .values()
            .map(|f| f.saturating_sub(now))
            .sum::<u64>();
        let changed = self.adapter.on_epoch(AdaptContext {
            mgr: &mut self.mgr,
            harvest,
            epoch: u64::from(self.epoch),
            backlog_ns,
            serving: &serving,
            idle: &idle,
            critical_core,
            blocked: &blocked,
        });
        if changed {
            self.posture.core_freqs = self.mgr.measure_core_freqs(ProcId::new(0));
        }
        self.mgr.system_mut().drain_events();
    }

    /// Steps the posture's background throttle further down the ladder
    /// (mirrors the `ServeSim` response to droop-alarm storms).
    fn apply_extra_throttle(&mut self) {
        let Some(mut plan) = self.posture.placement.plan.clone() else {
            return;
        };
        for _ in 0..self.throttle_extra {
            match plan.step_down(&self.pstates) {
                Some(next) => plan = next,
                None => break,
            }
        }
        plan.apply(self.mgr.system_mut());
        self.posture.placement.plan = Some(plan);
        self.posture.core_freqs = self.mgr.measure_core_freqs(ProcId::new(0));
    }

    /// Serves one request on the posture's queues.
    fn dispatch(&mut self, req: &ChipRequest) {
        let core = if req.critical {
            self.posture.placement.critical_core
        } else {
            let live = self
                .posture
                .placement
                .background_cores
                .iter()
                .filter(|c| self.posture.freq_of(**c).get() > 0.0)
                .min_by_key(|c| (self.free_at.get(c).copied().unwrap_or(0), c.flat_index()))
                .copied();
            match live {
                Some(c) => c,
                None => {
                    // Whole background tier gated: nothing can serve it.
                    self.shed += 1;
                    return;
                }
            }
        };
        let freq = self.posture.freq_of(core);
        let (workload, profile) = self
            .core_svc
            .get(&core)
            .unwrap_or_else(|| self.core_svc.first_key_value().expect("postured cores").1);
        let service = profile
            .sample(workload, freq, self.baseline, req.draw)
            .get()
            .round()
            .max(1.0) as u64;
        let start = req.at.max(self.free_at.get(&core).copied().unwrap_or(0));
        let finish = start + service;
        self.free_at.insert(core, finish);
        let latency = finish - req.at;
        self.completed += 1;
        self.epoch_busy_ns += service;
        self.epoch_completed += 1;
        if req.critical {
            self.crit_hist.record(latency);
            self.critical_completed += 1;
            if self.cfg.critical_slo_ns > 0 && latency > self.cfg.critical_slo_ns {
                self.critical_slo_violations += 1;
            }
            if self.adapter.enabled() {
                let freq_khz = (freq.get() * 1_000.0).round() as u64;
                let baseline_khz = (self.baseline.get() * 1_000.0).round() as u64;
                self.adapter
                    .on_service(workload.name(), freq_khz, baseline_khz, service);
            }
        } else {
            self.bg_hist.record(latency);
        }
    }

    /// The barrier-time view the fleet router places traffic with.
    #[must_use]
    pub fn snapshot(&self, now: u64) -> ChipSnapshot {
        let excluded = self.mgr.supervisor_excluded();
        let fastest = self
            .posture
            .core_freqs
            .iter()
            .filter(|(c, _)| !excluded.contains(c))
            .map(|(_, f)| f.get().round() as u64)
            .max()
            .unwrap_or(0);
        let backlog = self
            .free_at
            .values()
            .map(|f| f.saturating_sub(now))
            .sum::<u64>();
        let mut min_health = 100;
        for (core, _) in &self.posture.core_freqs {
            min_health = min_health.min(self.supervisor.health(*core));
        }
        ChipSnapshot {
            alive: self.dead_since.is_none(),
            fastest_healthy_mhz: fastest,
            backlog_ns: backlog,
            quarantined: self.mgr.quarantined_cores().len() as u32,
            safe_mode: self.mgr.safe_mode_cores().len() as u32,
            min_health,
        }
    }

    /// Whether the chip has hard-failed and not been resurrected.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead_since.is_some()
    }

    /// The epoch the chip hard-failed, if it is dead.
    #[must_use]
    pub fn dead_since(&self) -> Option<u32> {
        self.dead_since
    }

    /// The chip's current epoch counter (epochs stepped so far).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Seals a deep copy of the whole serving state. Restoring it and
    /// stepping forward is byte-identical to never having stopped.
    #[must_use]
    pub fn checkpoint(&self) -> ChipServerCheckpoint {
        ChipServerCheckpoint {
            state: self.clone(),
        }
    }

    /// Rewinds the chip to `cp`, exactly — machine, queues, histograms
    /// and counters all return to the sealed instant.
    pub fn restore(&mut self, cp: &ChipServerCheckpoint) {
        *self = cp.state.clone();
    }

    /// Brings a hard-failed chip back from `cp` with failover semantics:
    /// the *machine* rewinds (manager, supervisor ladder, posture,
    /// degradation policy, adapter's learned state, regulator control
    /// state), but the *account* does not — completions, sheds, latency
    /// histograms, the energy meter and the regulator's report keep their
    /// cumulative values so exactly-once accounting survives the
    /// resurrection. Queues come back cold (`free_at` cleared) and the
    /// epoch counter keeps the fleet's current position on the timeline.
    ///
    /// The fleet layer is expected to follow this with a supervisor-style
    /// probation window before trusting the chip with critical traffic.
    pub fn resurrect_from(&mut self, cp: &ChipServerCheckpoint) {
        let machine = cp.state.clone();
        self.mgr = machine.mgr;
        self.cfg = machine.cfg;
        self.supervisor = machine.supervisor;
        self.policy = machine.policy;
        self.posture = machine.posture;
        self.pstates = machine.pstates;
        self.baseline = machine.baseline;
        self.core_svc = machine.core_svc;
        self.adapter = machine.adapter;
        self.drift = machine.drift;
        self.throttle_extra = machine.throttle_extra;
        // The regulator's control state (integral, depth) rewinds with
        // the machine; its report stays cumulative with the account.
        if let (Some(cur), Some(old)) = (self.cap.as_mut(), machine.cap) {
            cur.cfg = old.cfg;
            cur.regulator = old.regulator;
        }
        self.free_at.clear();
        self.measured_mw = 0;
        self.epoch_busy_ns = 0;
        self.epoch_completed = 0;
        self.dead_since = None;
    }

    /// The critical- and background-latency histograms (for fleet-level
    /// merging).
    #[must_use]
    pub fn histograms(&self) -> (&LatencyHistogram, &LatencyHistogram) {
        (&self.crit_hist, &self.bg_hist)
    }

    /// The supervisor watching this chip.
    #[must_use]
    pub fn supervisor(&self) -> &MarginSupervisor {
        &self.supervisor
    }

    /// Closes the chip's account.
    #[must_use]
    pub fn summary(&self) -> ChipSummary {
        let mut all = self.crit_hist.clone();
        all.merge(&self.bg_hist);
        let snap = self.snapshot(u64::MAX);
        ChipSummary {
            completed: self.completed,
            shed: self.shed,
            critical_completed: self.critical_completed,
            critical_slo_violations: self.critical_slo_violations,
            p99_ns: all.quantile(0.99),
            transitions: self.transitions,
            quarantined: snap.quarantined,
            safe_mode: snap.safe_mode,
            fastest_healthy_mhz: snap.fastest_healthy_mhz,
            cap: self.cap.as_ref().map(|c| c.report.clone()),
            energy: self.energy_report(),
        }
    }
}

/// Maps each postured core to the workload (and service profile) it
/// hosts: the critical core to the critical workload, background cores to
/// the round-robin background assignment `serve_posture` made.
fn service_map(
    cfg: &ChipServeConfig,
    posture: &ServePosture,
) -> BTreeMap<CoreId, (Workload, ServiceProfile)> {
    let mut map = BTreeMap::new();
    map.insert(
        posture.placement.critical_core,
        (cfg.critical.clone(), cfg.critical.service_profile()),
    );
    for (i, core) in posture.placement.background_cores.iter().enumerate() {
        let w = cfg.backgrounds[i % cfg.backgrounds.len()].clone();
        let p = w.service_profile();
        map.insert(*core, (w, p));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::{ChipConfig, System};
    use atm_core::charact::CharactConfig;
    use atm_core::Governor;
    use atm_workloads::by_name;

    fn server(seed: u64) -> ChipServer {
        let sys = System::new(ChipConfig::power7_plus(seed));
        let mgr = AtmManager::deploy(
            sys,
            Governor::Default,
            &CharactConfig::builder()
                .trial(Nanos::new(2_000.0))
                .repeats(1)
                .build()
                .unwrap(),
        );
        let cfg = ChipServeConfig::standard(
            by_name("squeezenet").unwrap().clone(),
            vec![by_name("x264").unwrap().clone()],
        );
        ChipServer::new(mgr, cfg).unwrap()
    }

    fn traffic(epoch: u64, epoch_ns: u64) -> Vec<ChipRequest> {
        (0..20)
            .map(|i| ChipRequest {
                at: epoch * epoch_ns + i * (epoch_ns / 20),
                critical: i.is_multiple_of(5),
                draw: f64::from(u32::try_from(i).unwrap()) / 20.0,
            })
            .collect()
    }

    #[test]
    fn stepping_is_deterministic() {
        let run = || {
            let mut srv = server(42);
            for e in 0..3u64 {
                let out = srv.step_epoch(&traffic(e, 1_000_000), None);
                assert!(out.rejected.is_empty(), "live chip absorbed everything");
            }
            (format!("{:?}", srv.summary()), srv.snapshot(3_000_000))
        };
        let (a, snap_a) = run();
        let (b, snap_b) = run();
        assert_eq!(a, b);
        assert_eq!(snap_a, snap_b);
    }

    #[test]
    fn served_requests_land_in_the_account() {
        let mut srv = server(7);
        let out = srv.step_epoch(&traffic(0, 1_000_000), None);
        assert!(out.rejected.is_empty());
        let summary = srv.summary();
        assert_eq!(summary.completed + summary.shed, 20);
        assert!(summary.critical_completed >= 1);
        let snap = srv.snapshot(1_000_000);
        assert!(snap.fastest_healthy_mhz > 4_000, "{snap:?}");
        assert_eq!(snap.quarantined, 0);
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let mut srv = server(42);
        let _ = srv.step_epoch(&traffic(0, 1_000_000), None);
        let cp = srv.checkpoint();
        for e in 1..3u64 {
            let _ = srv.step_epoch(&traffic(e, 1_000_000), None);
        }
        let gold = format!("{srv:#?}");
        srv.restore(&cp);
        for e in 1..3u64 {
            let _ = srv.step_epoch(&traffic(e, 1_000_000), None);
        }
        assert_eq!(format!("{srv:#?}"), gold);
    }

    #[test]
    fn hard_fail_bounces_batches_and_resurrection_keeps_the_account() {
        use atm_chip::FaultAction;

        struct Killer;
        impl FaultHook for Killer {
            fn armed(&self) -> bool {
                true
            }
            fn on_tick(&mut self, _now: Nanos, tick: u64, out: &mut Vec<FaultAction>) {
                if tick == 0 {
                    out.push(FaultAction::ChipHardFail {
                        core: CoreId::new(0, 0),
                    });
                }
            }
        }

        let mut srv = server(42);
        let _ = srv.step_epoch(&traffic(0, 1_000_000), None);
        let cp = srv.checkpoint();
        let completed_before = srv.summary().completed;

        let batch = traffic(1, 1_000_000);
        let mut killer = Killer;
        let out = srv.step_epoch(&batch, Some(&mut killer));
        assert!(srv.is_dead());
        assert_eq!(srv.dead_since(), Some(1));
        assert_eq!(out.rejected, batch, "nothing dispatched on the death epoch");
        assert!(!srv.snapshot(2_000_000).alive);
        // Dead chips keep bouncing until resurrected.
        let out = srv.step_epoch(&batch, None);
        assert_eq!(out.rejected.len(), batch.len());
        assert_eq!(srv.summary().completed, completed_before);

        srv.resurrect_from(&cp);
        assert!(!srv.is_dead());
        assert_eq!(
            srv.summary().completed,
            completed_before,
            "the cumulative account survives resurrection"
        );
        let out = srv.step_epoch(&traffic(3, 1_000_000), None);
        assert!(out.rejected.is_empty());
        assert!(srv.summary().completed > completed_before);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let cfg = ChipServeConfig {
            backgrounds: Vec::new(),
            ..ChipServeConfig::standard(
                by_name("squeezenet").unwrap().clone(),
                vec![by_name("x264").unwrap().clone()],
            )
        };
        assert!(cfg.check().is_err());
        let cfg = ChipServeConfig {
            refresh_every: 0,
            ..ChipServeConfig::standard(
                by_name("squeezenet").unwrap().clone(),
                vec![by_name("x264").unwrap().clone()],
            )
        };
        assert!(cfg.check().is_err());
    }
}
