//! Reproduction harness for every table and figure in the paper's
//! evaluation.
//!
//! Each module regenerates one exhibit: it runs the same experiment the
//! paper ran (against the simulated two-socket server instead of the
//! physical one), returns the data as a typed row structure, and renders
//! the same series the paper plots. The `repro` binary drives them:
//!
//! ```text
//! cargo run -p atm-experiments --bin repro -- all
//! cargo run -p atm-experiments --bin repro -- fig7 table1 --quick
//! ```
//!
//! Absolute numbers come from the calibrated simulation substrate, not the
//! authors' testbed; the claims under reproduction are the *shapes*: who
//! wins, by roughly what factor, and where the crossovers fall. Paper
//! reference values are embedded in each module's documentation and
//! checked loosely in its tests.
//!
//! # Examples
//!
//! ```no_run
//! use atm_experiments::{Context, ExpConfig};
//!
//! let mut ctx = Context::new(ExpConfig::quick(42));
//! let fig7 = atm_experiments::fig07::run(&mut ctx);
//! println!("{fig7}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ext_adapt;
pub mod ext_aggressive;
pub mod ext_calibration;
pub mod ext_capping;
pub mod ext_failure;
pub mod ext_gating;
pub mod ext_predict;
pub mod ext_recovery;
pub mod ext_seeds;
pub mod ext_trace;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig05;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod perfref;
pub mod render;
pub mod table1;
pub mod table2;

mod context;

pub use context::{Context, ExpConfig};

/// Identifiers of every reproducible exhibit, in paper order, plus the
/// `ext-*` extensions (features the paper sketches but defers).
pub const ALL_EXPERIMENTS: [&str; 23] = [
    "fig1",
    "fig2",
    "fig4b",
    "fig5",
    "fig7",
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "fig14",
    "ext-aggressive",
    "ext-gating",
    "ext-trace",
    "ext-failure",
    "ext-calibration",
    "ext-seeds",
    "ext-predict",
    "ext-adapt",
    "ext-capping",
    "ext-recovery",
];

/// Runs one exhibit by name and returns its rendered report.
///
/// # Errors
///
/// Returns the unknown name if `name` is not one of
/// [`ALL_EXPERIMENTS`].
pub fn run_by_name(ctx: &mut Context, name: &str) -> Result<String, String> {
    let report = match name {
        "fig1" => fig01::run(ctx).to_string(),
        "fig2" => fig02::run(ctx).to_string(),
        "fig4b" => fig04::run(ctx).to_string(),
        "fig5" => fig05::run(ctx).to_string(),
        "fig7" => fig07::run(ctx).to_string(),
        "table1" => table1::run(ctx).to_string(),
        "fig8" => fig08::run(ctx).to_string(),
        "fig9" => fig09::run(ctx).to_string(),
        "fig10" => fig10::run(ctx).to_string(),
        "fig11" => fig11::run(ctx).to_string(),
        "fig12" => fig12::run(ctx).to_string(),
        "table2" => table2::run().to_string(),
        "fig14" => fig14::run(ctx).to_string(),
        "ext-adapt" => ext_adapt::run(ctx).to_string(),
        "ext-aggressive" => ext_aggressive::run(ctx).to_string(),
        "ext-calibration" => ext_calibration::run(ctx).to_string(),
        "ext-capping" => ext_capping::run(ctx).to_string(),
        "ext-failure" => ext_failure::run(ctx).to_string(),
        "ext-gating" => ext_gating::run(ctx).to_string(),
        "ext-predict" => ext_predict::run(ctx).to_string(),
        "ext-recovery" => ext_recovery::run(ctx).to_string(),
        "ext-seeds" => ext_seeds::run(ctx).to_string(),
        "ext-trace" => ext_trace::run(ctx).to_string(),
        other => return Err(other.to_owned()),
    };
    Ok(report)
}
