//! Extension: surviving whole-chip failures — checkpointed recovery,
//! bounded-retry failover, and fault-campaign bisection (ROADMAP item on
//! recovery; the paper's Sec. VII reliability discussion stops at
//! per-core rollback).
//!
//! The paper's management scheme degrades gracefully around *core*-level
//! timing emergencies. This exhibit goes one failure domain up: a
//! seeded campaign hard-fails whole chips mid-run, and the fleet either
//! sheds the dead chips' traffic (no failover) or routes it through the
//! bounded retry/backoff ladder and resurrects the chips from their
//! periodic checkpoints (failover armed). Three laws are checked in the
//! rendered report:
//!
//! 1. **Exactly-once accounting** — generated = routed + shed +
//!    retry-shed + unserved, with and without failover;
//! 2. **Resume identity** — a run checkpointed mid-flight and resumed
//!    finishes byte-identical to the uninterrupted run;
//! 3. **Minimal-trigger bisection** — delta-debugging a three-spec
//!    campaign (two benign faults plus the chip killer) isolates exactly
//!    the killer, replaying from checkpoints instead of from epoch 0.

use std::fmt;

use atm_faults::{chip_killer, FaultKind, FaultSpec, FaultTarget, FleetFaultPlan};
use atm_fleet::{FailoverConfig, FleetConfig, FleetReport, FleetSim};
use atm_recovery::{bisect, BisectConfig};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// Fleet epochs per scenario run.
const EPOCHS: u32 = 6;

/// Engine tick the chip-killer spec fires at (epoch 1, so the epoch-0
/// periodic checkpoint exists and resurrection has something to thaw).
const KILL_TICK: u64 = 25;

/// One failover scenario's outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverRow {
    /// Scenario label.
    pub label: String,
    /// Chips that hard-failed during the run.
    pub hard_failed: u32,
    /// Chips resurrected from a periodic checkpoint.
    pub resurrected: u32,
    /// Bounced requests re-routed by the retry ladder.
    pub retried: u64,
    /// Bounced requests permanently shed (budget exhausted or ladder
    /// unarmed).
    pub retry_shed: u64,
    /// Requests served to completion fleet-wide.
    pub completed: u64,
    /// Critical-stream p99 latency, nanoseconds.
    pub critical_p99_ns: u64,
    /// Whether the exactly-once conservation law held.
    pub books_balance: bool,
}

/// The rendered exhibit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtRecovery {
    /// The kill campaign without and with the failover ladder.
    pub rows: Vec<FailoverRow>,
    /// Whether checkpoint/resume reproduced the uninterrupted run byte
    /// for byte.
    pub resume_identity: bool,
    /// Spec indices the bisection isolated (expected: the killer alone).
    pub bisect_minimal: Vec<usize>,
    /// Whether the isolated minimal set is exactly the chip-killer spec.
    pub bisect_exact: bool,
    /// Subset probes the ddmin loop ran.
    pub bisect_probes: u32,
    /// Epochs actually replayed across the probes (from checkpoints).
    pub bisect_epochs_replayed: u64,
    /// Epochs the same probes would have cost replaying from epoch 0.
    pub bisect_epochs_full: u64,
}

fn kill_cfg(seed: u64, failover: Option<FailoverConfig>) -> FleetConfig {
    let mut cfg = FleetConfig::quick(seed)
        .with_epochs(EPOCHS)
        .with_faults(FleetFaultPlan::new(chip_killer(KILL_TICK), 2));
    cfg.failover = failover;
    cfg
}

fn row(label: &str, report: &FleetReport) -> FailoverRow {
    FailoverRow {
        label: label.to_owned(),
        hard_failed: report.routing.hard_failed_chips,
        resurrected: report.routing.resurrected_chips,
        retried: report.routing.retried,
        retry_shed: report.routing.retry_shed,
        completed: report.completed(),
        critical_p99_ns: report.critical.p99_ns,
        books_balance: report.conservation_holds(),
    }
}

/// Runs the kill campaign bare and failover-armed, proves the resume
/// identity, and bisects a three-spec campaign down to the killer.
pub fn run(ctx: &mut Context) -> ExtRecovery {
    let seed = ctx.cfg().seed;

    let bare = FleetSim::new(kill_cfg(seed, None))
        .expect("valid fleet")
        .run(2);
    let armed_cfg = kill_cfg(seed, Some(FailoverConfig::default()));
    let armed = FleetSim::new(armed_cfg.clone())
        .expect("valid fleet")
        .run(2);

    // Resume identity: pause the armed scenario mid-run, checkpoint,
    // resume, and byte-compare against the uninterrupted report.
    let mut run = FleetSim::new(armed_cfg).expect("valid fleet").start(2);
    run.step_epoch(2);
    run.step_epoch(2);
    let mut resumed = run.checkpoint().thaw();
    while !resumed.done() {
        resumed.step_epoch(2);
    }
    let resume_identity = format!("{:#?}", resumed.finish()) == format!("{armed:#?}");

    // Bisection: two benign specs ride along with the killer; with the
    // campaign afflicting every chip the predicate is seed-independent.
    let benign = |start: u64, kind: FaultKind| FaultSpec {
        target: FaultTarget::Seeded,
        kind,
        start,
        period: 0,
        repeats: 1,
        duration: 2,
    };
    let plan = chip_killer(45)
        .with(benign(3, FaultKind::CpmDropout))
        .with(benign(
            10,
            FaultKind::LoadBurst {
                magnitude_mv: 45,
                sharpness_pct: 85,
            },
        ));
    let bisect_cfg = FleetConfig::quick(seed)
        .with_epochs(4)
        .with_faults(FleetFaultPlan::new(plan, 1))
        .with_failover(FailoverConfig::default());
    let outcome = bisect(
        &bisect_cfg,
        |report| report.routing.hard_failed_chips > 0,
        &BisectConfig {
            workers: 2,
            checkpoint_stride: 1,
        },
    )
    .expect("the killer campaign always trips the predicate");
    let bisect_exact =
        outcome.minimal_indices == vec![0] && outcome.minimal[0].kind == FaultKind::ChipHardFail;

    ExtRecovery {
        rows: vec![row("no failover", &bare), row("retry ladder", &armed)],
        resume_identity,
        bisect_minimal: outcome.minimal_indices,
        bisect_exact,
        bisect_probes: outcome.probes,
        bisect_epochs_replayed: outcome.epochs_replayed,
        bisect_epochs_full: outcome.epochs_full,
    }
}

impl fmt::Display for ExtRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — surviving chip failures: failover, checkpoints, bisection"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.hard_failed.to_string(),
                    r.resurrected.to_string(),
                    r.retried.to_string(),
                    r.retry_shed.to_string(),
                    r.completed.to_string(),
                    format!("{:.1}", r.critical_p99_ns as f64 / 1e6),
                    if r.books_balance { "yes" } else { "NO" }.to_owned(),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &[
                "scenario",
                "failed",
                "revived",
                "retried",
                "retry-shed",
                "done",
                "crit p99 (ms)",
                "books",
            ],
            &rows,
        ))?;
        writeln!(
            f,
            "resume identity: {}",
            if self.resume_identity {
                "checkpointed resume byte-identical"
            } else {
                "VIOLATED"
            }
        )?;
        writeln!(
            f,
            "bisection: minimal trigger = specs {:?} ({}), {} probes, \
             {} epochs replayed of {} a fresh-run strategy needs",
            self.bisect_minimal,
            if self.bisect_exact {
                "exactly the chip killer"
            } else {
                "UNEXPECTED"
            },
            self.bisect_probes,
            self.bisect_epochs_replayed,
            self.bisect_epochs_full,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn failover_retries_what_the_bare_fleet_sheds() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        assert_eq!(ext.rows.len(), 2);
        let (bare, armed) = (&ext.rows[0], &ext.rows[1]);
        assert!(bare.books_balance && armed.books_balance);
        assert!(
            bare.hard_failed > 0,
            "the campaign must kill chips: {bare:?}"
        );
        assert_eq!(bare.resurrected, 0, "no ladder, no resurrection");
        assert_eq!(bare.retried, 0, "no ladder, no retries");
        assert!(bare.retry_shed > 0, "a bare outage sheds: {bare:?}");
        assert_eq!(armed.hard_failed, bare.hard_failed);
        assert!(armed.retried > 0, "the ladder must retry: {armed:?}");
        assert!(
            armed.resurrected > 0,
            "six epochs leave room to resurrect: {armed:?}"
        );
        assert!(ext.resume_identity, "checkpointed resume diverged");
        assert!(
            ext.bisect_exact,
            "bisection must isolate the killer: {:?}",
            ext.bisect_minimal
        );
        assert!(
            ext.bisect_epochs_replayed < ext.bisect_epochs_full,
            "checkpoint replay must beat fresh runs: {} vs {}",
            ext.bisect_epochs_replayed,
            ext.bisect_epochs_full
        );
    }

    #[test]
    fn report_renders_every_section() {
        let mut ctx = Context::new(ExpConfig::quick(7));
        let s = run(&mut ctx).to_string();
        for needle in [
            "no failover",
            "retry ladder",
            "resume identity",
            "bisection",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
        assert!(!s.contains("VIOLATED") && !s.contains("UNEXPECTED"), "{s}");
    }
}
