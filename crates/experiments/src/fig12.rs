//! Fig. 12: the two predictors.
//!
//! Paper reference: (a) each core's ATM frequency falls linearly with
//! total chip power — about 2 MHz per watt (Eq. 1); (b) application
//! performance scales linearly with frequency, with a memory-behaviour-
//! dependent coefficient (x264 steep, mcf shallow).

use std::fmt;

use atm_core::predictor::{FreqPredictor, PerfPredictor};
use atm_units::{CoreId, MegaHz};
use atm_workloads::by_name;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One core's frequency-predictor fit (Fig. 12a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqFitRow {
    /// Which core.
    pub core: CoreId,
    /// MHz lost per watt of chip power.
    pub mhz_per_watt: f64,
    /// Intercept `b` of Eq. 1.
    pub intercept: MegaHz,
    /// Fit quality.
    pub r2: f64,
}

/// One application's performance-predictor fit (Fig. 12b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfFitRow {
    /// Application name.
    pub app: String,
    /// Speedup slope per GHz of core frequency.
    pub slope_per_ghz: f64,
    /// Fit quality.
    pub r2: f64,
}

/// The Fig. 12 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12 {
    /// Fig. 12a rows: frequency predictors for four example cores.
    pub freq_fits: Vec<FreqFitRow>,
    /// Fig. 12b rows: performance predictors for contrast applications.
    pub perf_fits: Vec<PerfFitRow>,
}

/// Trains the predictors on a deployed system.
pub fn run(ctx: &mut Context) -> Fig12 {
    let mut sys = ctx.deployed_system();
    let cores = [
        CoreId::new(0, 0),
        CoreId::new(0, 3),
        CoreId::new(1, 2),
        CoreId::new(1, 6),
    ];
    let freq_fits = cores
        .iter()
        .map(|&core| {
            let p = FreqPredictor::train(&mut sys, core);
            FreqFitRow {
                core,
                mhz_per_watt: p.mhz_per_watt(),
                intercept: MegaHz::new(p.fit().intercept),
                r2: p.fit().r2,
            }
        })
        .collect();

    let baseline = MegaHz::new(4200.0);
    let perf_fits = ["x264", "squeezenet", "gcc", "mcf"]
        .iter()
        .map(|name| {
            let p = PerfPredictor::train(by_name(name).expect("catalog"), baseline);
            PerfFitRow {
                app: (*name).to_owned(),
                slope_per_ghz: p.fit().slope * 1000.0,
                r2: p.fit().r2,
            }
        })
        .collect();

    Fig12 {
        freq_fits,
        perf_fits,
    }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 12a — core frequency vs. chip power (Eq. 1 fits)")?;
        let rows: Vec<Vec<String>> = self
            .freq_fits
            .iter()
            .map(|r| {
                vec![
                    r.core.to_string(),
                    format!("{:.2}", r.mhz_per_watt),
                    render::mhz(r.intercept),
                    format!("{:.4}", r.r2),
                ]
            })
            .collect();
        f.write_str(&render::table(&["core", "MHz/W", "intercept", "r²"], &rows))?;
        writeln!(f, "Fig. 12b — app speedup vs. frequency fits")?;
        let rows: Vec<Vec<String>> = self
            .perf_fits
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    format!("{:.3}", r.slope_per_ghz),
                    format!("{:.4}", r.r2),
                ]
            })
            .collect();
        f.write_str(&render::table(&["app", "speedup/GHz", "r²"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn eq1_slope_and_perf_contrast() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        for r in &fig.freq_fits {
            assert!(
                (1.0..3.5).contains(&r.mhz_per_watt),
                "{}: {:.2} MHz/W",
                r.core,
                r.mhz_per_watt
            );
            assert!(r.r2 > 0.97, "{}: r2 {}", r.core, r.r2);
        }
        let slope = |name: &str| {
            fig.perf_fits
                .iter()
                .find(|r| r.app == name)
                .expect("present")
                .slope_per_ghz
        };
        assert!(slope("x264") > 2.0 * slope("mcf"));
        assert!(slope("squeezenet") > slope("gcc"));
    }
}
