//! Table II: critical/background × memory-intensity classification.

use std::fmt;

use atm_workloads::{classification_table, AppClass, Role};
use serde::{Deserialize, Serialize};

use crate::render;

/// The Table II reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// `(name, class)` rows straight from the catalog.
    pub rows: Vec<(String, AppClass)>,
}

/// Renders the classification table.
#[must_use]
pub fn run() -> Table2 {
    Table2 {
        rows: classification_table()
            .into_iter()
            .map(|(n, c)| (n.to_owned(), c))
            .collect(),
    }
}

impl Table2 {
    /// The apps in a given quadrant.
    #[must_use]
    pub fn quadrant(&self, role: Role, mem_intensive: bool) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|(_, c)| c.role == role && c.mem_intensive == mem_intensive)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II — application classification")?;
        let rows = vec![
            vec![
                "intensive".to_owned(),
                self.quadrant(Role::Critical, true).join(", "),
                self.quadrant(Role::Background, true).join(", "),
            ],
            vec![
                "non-intensive".to_owned(),
                self.quadrant(Role::Critical, false).join(", "),
                self.quadrant(Role::Background, false).join(", "),
            ],
        ];
        f.write_str(&render::table(
            &["mem behavior", "critical", "background"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrants_populated_like_paper() {
        let t = run();
        assert_eq!(t.quadrant(Role::Critical, true).len(), 4);
        assert_eq!(t.quadrant(Role::Critical, false).len(), 5);
        assert!(t
            .quadrant(Role::Background, true)
            .contains(&"streamcluster"));
        assert!(t.quadrant(Role::Background, false).contains(&"x264"));
    }
}
