//! Extension: predicting per-⟨app, core⟩ CPM rollback (the future work of
//! Sec. VII-A), and why the paper rejects prediction for deployment.
//!
//! The Fig. 10 matrix looks low-rank: rows are "application stress", and
//! columns are "core vulnerability". This exhibit fits the best rank-1
//! model `rollback(app, core) ≈ stress(app) · vulnerability(core)` by
//! alternating least squares and reports its accuracy. The punchline is
//! the paper's: even a good fit mispredicts some cells by a full step —
//! and *any* misprediction toward the aggressive side is a potential
//! system crash, which is why deployment uses a stress-test guarantee
//! instead of a predictor.

use std::fmt;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// The fitted rank-1 model and its accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtPredict {
    /// Applications in row order with their fitted stress factors.
    pub app_stress: Vec<(String, f64)>,
    /// Fitted per-core vulnerability factors (flat-indexed).
    pub core_vulnerability: [f64; 16],
    /// Root-mean-square error of the model, in steps.
    pub rmse: f64,
    /// Fraction of cells predicted exactly (after rounding to steps).
    pub exact: f64,
    /// Fraction of cells where the model predicts *less* rollback than
    /// reality — the dangerous direction (an aggressive misprediction).
    pub underpredicted: f64,
}

/// Fits the rank-1 model to the cached Fig. 10 matrix.
pub fn run(ctx: &mut Context) -> ExtPredict {
    let realistic = ctx.realistic();
    let mut apps: Vec<String> = realistic.profiles.iter().map(|p| p.app.clone()).collect();
    apps.sort();
    apps.dedup();

    // Matrix of mean rollbacks, app-major.
    let matrix: Vec<[f64; 16]> = apps
        .iter()
        .map(|app| {
            let mut row = [0.0f64; 16];
            for core in CoreId::all() {
                row[core.flat_index()] = realistic
                    .profile(app, core)
                    .map_or(0.0, |p| p.mean_rollback());
            }
            row
        })
        .collect();

    // Alternating least squares for rollback ≈ s_a · v_c.
    let mut stress = vec![1.0f64; apps.len()];
    let mut vuln = [1.0f64; 16];
    for _ in 0..50 {
        for (a, s) in stress.iter_mut().enumerate() {
            let num: f64 = (0..16).map(|c| matrix[a][c] * vuln[c]).sum();
            let den: f64 = vuln.iter().map(|v| v * v).sum();
            *s = if den > 0.0 { num / den } else { 0.0 };
        }
        for c in 0..16 {
            let num: f64 = (0..apps.len()).map(|a| matrix[a][c] * stress[a]).sum();
            let den: f64 = stress.iter().map(|s| s * s).sum();
            vuln[c] = if den > 0.0 { num / den } else { 0.0 };
        }
    }

    let cells = apps.len() * 16;
    let mut sq = 0.0;
    let mut exact = 0;
    let mut under = 0;
    for (a, row) in matrix.iter().enumerate() {
        for (c, &actual) in row.iter().enumerate() {
            let predicted = stress[a] * vuln[c];
            sq += (predicted - actual).powi(2);
            if (predicted.round() - actual.round()).abs() < 0.5 {
                exact += 1;
            }
            if predicted.round() < actual.round() {
                under += 1;
            }
        }
    }

    ExtPredict {
        app_stress: apps.into_iter().zip(stress).collect(),
        core_vulnerability: vuln,
        rmse: (sq / cells as f64).sqrt(),
        exact: exact as f64 / cells as f64,
        underpredicted: under as f64 / cells as f64,
    }
}

impl fmt::Display for ExtPredict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — rank-1 rollback prediction (rollback ≈ stress(app) · vulnerability(core))"
        )?;
        let mut ranked = self.app_stress.clone();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .take(6)
            .map(|(app, s)| vec![app.clone(), format!("{s:.2}")])
            .collect();
        f.write_str(&render::table(&["top stress factors", ""], &rows))?;
        writeln!(
            f,
            "model: RMSE {:.2} steps, {:.0}% cells exact, {:.1}% cells underpredicted",
            self.rmse,
            self.exact * 100.0,
            self.underpredicted * 100.0
        )?;
        writeln!(
            f,
            "any underprediction is a potential crash — hence the paper deploys via\n\
             stress-test guarantees rather than prediction (Sec. VII-A)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn rank1_model_fits_well_but_not_perfectly() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        // The matrix is approximately low-rank: good fit...
        assert!(ext.rmse < 0.6, "RMSE {:.2}", ext.rmse);
        assert!(ext.exact > 0.6, "exact fraction {:.2}", ext.exact);
        // ...but not deployable: some cells still mispredict, and the
        // factors order x264/ferret at the top like Fig. 10.
        let top = &ext
            .app_stress
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert!(top == "x264" || top == "ferret", "top factor {top}");
    }
}
