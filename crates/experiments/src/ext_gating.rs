//! Extension: power-gating idle cores to boost the critical core.
//!
//! Sec. VII-D notes that "power gating idle cores when not enough
//! workloads are available can further free up chip power and boost the
//! performance of target workload". This exhibit quantifies the effect on
//! the simulated chip: gating the seven idle siblings removes their
//! leakage from the shared rail's IR drop and nudges the critical core's
//! ATM frequency up.

use std::fmt;

use atm_chip::{MarginMode, System};
use atm_units::{CoreId, MegaHz, ProcId, Watts};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One sibling-state scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatingRow {
    /// Scenario name.
    pub scenario: String,
    /// Critical core's ATM frequency.
    pub freq: MegaHz,
    /// Socket chip power.
    pub power: Watts,
}

/// The extension exhibit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtGating {
    /// Scenario rows: siblings busy → idle → gated.
    pub rows: Vec<GatingRow>,
}

/// Runs SqueezeNet on the fastest deployed core with siblings in three
/// states.
pub fn run(ctx: &mut Context) -> ExtGating {
    let mut sys = ctx.deployed_system();
    let core = CoreId::new(0, 0);
    let squeezenet = atm_workloads::by_name("squeezenet")
        .expect("catalog")
        .clone();
    let daxpy = atm_workloads::by_name("daxpy").expect("catalog").clone();

    sys.set_mode(core, MarginMode::Atm);
    sys.assign(core, squeezenet);

    let mut rows = Vec::new();
    let scenario = |sys: &mut System, name: &str| {
        let report = sys.settle();
        GatingRow {
            scenario: name.to_owned(),
            freq: report.core(core).mean_freq,
            power: report.procs[0].mean_power,
        }
    };

    // Siblings busy at static margin.
    for sib in ProcId::new(0).cores().filter(|c| *c != core) {
        sys.assign(sib, daxpy.clone());
        sys.set_mode(sib, MarginMode::Static);
    }
    rows.push(scenario(&mut sys, "siblings busy (daxpy @ 4.2 GHz)"));

    // Siblings idle at static margin.
    for sib in ProcId::new(0).cores().filter(|c| *c != core) {
        sys.assign(sib, atm_workloads::Workload::idle());
    }
    rows.push(scenario(&mut sys, "siblings idle"));

    // Siblings power-gated.
    for sib in ProcId::new(0).cores().filter(|c| *c != core) {
        sys.set_mode(sib, MarginMode::Gated);
    }
    rows.push(scenario(&mut sys, "siblings power-gated"));

    ExtGating { rows }
}

impl fmt::Display for ExtGating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — power-gating idle siblings (critical: squeezenet on P0C0)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    render::mhz(r.freq),
                    format!("{}", r.power),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &["siblings", "critical MHz", "chip power"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn gating_monotonically_helps() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        assert_eq!(ext.rows.len(), 3);
        // busy < idle < gated in frequency; reverse in power.
        assert!(ext.rows[1].freq > ext.rows[0].freq);
        assert!(ext.rows[2].freq >= ext.rows[1].freq);
        assert!(ext.rows[1].power < ext.rows[0].power);
        assert!(ext.rows[2].power < ext.rows[1].power);
    }
}
