//! Extension: the "aggressive" governor the paper sketches and defers
//! (Sec. VII-C).
//!
//! Instead of the stress-test (*thread-worst*) limits, the aggressive
//! governor programs each core with the *critical application's own* most
//! aggressive profiled limit — the repetitive-profiling deployment the
//! paper describes for a tier of testing servers. It buys extra frequency
//! for benign applications at the price of correctness risk on untested
//! ones.

use atm_telemetry::NullRecorder;
use std::fmt;

use atm_core::manager::Strategy;
use atm_core::{AtmManager, Governor};
use atm_units::MegaHz;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One critical application's outcome under both governors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorRow {
    /// Critical application.
    pub critical: String,
    /// Managed-max critical frequency under the default governor.
    pub default_freq: MegaHz,
    /// Managed-max speedup under the default governor.
    pub default_speedup: f64,
    /// Managed-max critical frequency under the aggressive governor.
    pub aggressive_freq: MegaHz,
    /// Managed-max speedup under the aggressive governor.
    pub aggressive_speedup: f64,
    /// Whether the aggressive run completed without a timing failure.
    pub aggressive_ok: bool,
}

/// The extension exhibit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtAggressive {
    /// One row per evaluated critical application.
    pub rows: Vec<GovernorRow>,
}

/// Evaluates benign critical applications under both governors.
pub fn run(ctx: &mut Context) -> ExtAggressive {
    let realistic = ctx.realistic().clone();
    let charact = ctx.cfg().charact;
    let measure = ctx.cfg().measure;

    let mut default_mgr = AtmManager::deploy(ctx.fresh_system(), Governor::Default, &charact);
    default_mgr.set_measure_duration(measure);
    let mut aggressive_mgr = AtmManager::deploy(ctx.fresh_system(), Governor::Aggressive, &charact);
    aggressive_mgr.set_realistic_profiles(realistic);
    aggressive_mgr.set_measure_duration(measure);

    // Benign profiled apps (low di/dt stress) gain the most from
    // app-specific limits; the background co-runner is fixed.
    let background = atm_workloads::by_name("blackscholes").expect("catalog");
    let rows = ["gcc", "leela", "mcf", "exchange2"]
        .iter()
        .map(|name| {
            let critical = atm_workloads::by_name(name).expect("catalog");
            let d = default_mgr.evaluate_pair(
                critical,
                background,
                Strategy::ManagedMax,
                &mut NullRecorder,
            );
            let a = aggressive_mgr.evaluate_pair(
                critical,
                background,
                Strategy::ManagedMax,
                &mut NullRecorder,
            );
            GovernorRow {
                critical: (*name).to_owned(),
                default_freq: d.critical_freq,
                default_speedup: d.speedup,
                aggressive_freq: a.critical_freq,
                aggressive_speedup: a.speedup,
                aggressive_ok: a.ok,
            }
        })
        .collect();
    ExtAggressive { rows }
}

impl fmt::Display for ExtAggressive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — aggressive (per-app best-fit) governor vs. default (thread-worst)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.critical.clone(),
                    render::mhz(r.default_freq),
                    render::pct(r.default_speedup - 1.0),
                    render::mhz(r.aggressive_freq),
                    render::pct(r.aggressive_speedup - 1.0),
                    if r.aggressive_ok {
                        "ok".into()
                    } else {
                        "FAILED".into()
                    },
                ]
            })
            .collect();
        f.write_str(&render::table(
            &[
                "critical",
                "default MHz",
                "default",
                "aggressive MHz",
                "aggressive",
                "correctness",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn aggressive_never_slower_than_default_for_benign_apps() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        assert_eq!(ext.rows.len(), 4);
        let mut strictly_faster = 0;
        for r in &ext.rows {
            assert!(
                r.aggressive_freq.get() >= r.default_freq.get() - 15.0,
                "{}: aggressive {} below default {}",
                r.critical,
                r.aggressive_freq,
                r.default_freq
            );
            if r.aggressive_freq.get() > r.default_freq.get() + 15.0 {
                strictly_faster += 1;
            }
        }
        // App-specific limits must buy something for at least one benign
        // app on this silicon.
        assert!(strictly_faster >= 1, "aggressive governor bought nothing");
    }
}
