//! Fig. 1: frequency ranges of the four margin schemes.
//!
//! Paper reference (8-core POWER7+ socket): chip-wide static margin pins
//! every core at 4200 MHz; per-core static setpoints lift the fastest
//! cores to ≈ 4500 MHz; default ATM runs ≈ 4600 MHz idle but sags to
//! ≈ 4400 MHz under high-power load; fine-tuned ATM spans ≈ 4500 MHz
//! (slowest core, loaded) to ≈ 5000 MHz (fastest core, idle).

use std::fmt;

use atm_chip::MarginMode;
use atm_units::{Celsius, MegaHz, ProcId, Volts};
use atm_workloads::by_name;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One margin scheme's frequency range across the socket's cores and the
/// idle↔loaded envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeRange {
    /// Scheme name.
    pub scheme: String,
    /// Worst case: slowest core under the heaviest load.
    pub worst: MegaHz,
    /// Best case: fastest core under idle conditions.
    pub best: MegaHz,
}

/// The Fig. 1 reproduction: four schemes, worst/best frequency each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig01 {
    /// One row per margin scheme, in the paper's bar order.
    pub rows: Vec<SchemeRange>,
}

/// Runs the Fig. 1 experiment on socket 0.
pub fn run(ctx: &mut Context) -> Fig01 {
    let nominal = MegaHz::new(4200.0);
    let daxpy = by_name("daxpy").expect("catalog").clone();
    let proc = ProcId::new(0);

    // Scheme 1: chip-wide static margin.
    let chip_wide = SchemeRange {
        scheme: "chip-wide static margin".into(),
        worst: nominal,
        best: nominal,
    };

    // Scheme 2: per-core static setpoints. The slowest core defines the
    // 4200 MHz contract; a faster core can be clocked up in inverse
    // proportion to its critical-path delay (same worst-case guardband).
    let sys = ctx.fresh_system();
    let v = Volts::new(1.25);
    let t = Celsius::new(45.0);
    // Binning is against the slowest core of the whole product bin (the
    // 4200 MHz contract must hold for every shipped die), so the fastest
    // core's static headroom reflects the full distribution.
    let delays: Vec<f64> = atm_units::CoreId::all()
        .map(|c| sys.core(c).silicon().real_path_delay(v, t).get())
        .collect();
    let slowest = delays.iter().copied().fold(f64::MIN, f64::max);
    let fastest: f64 = proc
        .cores()
        .map(|c| sys.core(c).silicon().real_path_delay(v, t).get())
        .fold(f64::MAX, f64::min);
    let per_core_static = SchemeRange {
        scheme: "per-core static margin".into(),
        worst: nominal,
        best: nominal * (slowest / fastest),
    };

    // Scheme 3: default ATM (preset CPMs), idle vs. 8-thread daxpy.
    let mut sys = ctx.fresh_system();
    for c in proc.cores() {
        sys.set_mode(c, MarginMode::Atm);
    }
    let idle = sys.settle();
    sys.assign_all(&daxpy);
    let loaded = sys.settle();
    let default_atm = SchemeRange {
        scheme: "default ATM".into(),
        worst: range(proc, &loaded).0,
        best: range(proc, &idle).1,
    };

    // Scheme 4: fine-tuned ATM at the stress-test deployment.
    let mut sys = ctx.deployed_system();
    for c in proc.cores() {
        sys.set_mode(c, MarginMode::Atm);
    }
    let idle = sys.settle();
    sys.assign_all(&daxpy);
    let loaded = sys.settle();
    let fine_tuned = SchemeRange {
        scheme: "fine-tuned ATM".into(),
        worst: range(proc, &loaded).0,
        best: range(proc, &idle).1,
    };

    Fig01 {
        rows: vec![chip_wide, per_core_static, default_atm, fine_tuned],
    }
}

fn range(proc: ProcId, report: &atm_chip::SystemReport) -> (MegaHz, MegaHz) {
    let freqs: Vec<MegaHz> = proc.cores().map(|c| report.core(c).mean_freq).collect();
    (
        freqs.iter().copied().fold(MegaHz::new(1e6), MegaHz::min),
        freqs.iter().copied().fold(MegaHz::ZERO, MegaHz::max),
    )
}

impl fmt::Display for Fig01 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 1 — frequency range per margin scheme (socket P0)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![r.scheme.clone(), render::mhz(r.worst), render::mhz(r.best)])
            .collect();
        f.write_str(&render::table(&["scheme", "worst MHz", "best MHz"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn scheme_ordering_matches_paper() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len(), 4);
        let [chip, per_core, default_atm, fine] = &fig.rows[..] else {
            panic!("wrong row count")
        };
        // Chip-wide static: flat 4200.
        assert_eq!(chip.worst, chip.best);
        // Per-core static beats chip-wide at the top (≈4.4–4.5 GHz).
        assert!(per_core.best > chip.best);
        assert!(per_core.best.get() < 4700.0);
        // Default ATM: best idle above per-core static's best.
        assert!(default_atm.best > per_core.best);
        // Fine-tuned: best approaches 5 GHz, clearly above default ATM.
        assert!(fine.best > default_atm.best);
        assert!(fine.best.get() > 4800.0);
        // Fine-tuned worst (loaded) stays at or above default ATM worst.
        assert!(fine.worst >= default_atm.worst);
    }
}
