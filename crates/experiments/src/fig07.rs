//! Fig. 7: idle-limit distributions and frequencies per core.
//!
//! Paper reference: the most aggressive safe CPM delay reduction under
//! system idle distributes over a narrow range (≤ 2 configurations); the
//! lower bound is the core's *idle limit*, usually entailing > 5000 MHz.
//! Limits span 2–11 steps across the sixteen cores (Table I row 1).

use std::fmt;

use atm_units::{CoreId, MegaHz};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One core's idle characterization row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleRow {
    /// Which core.
    pub core: CoreId,
    /// All limit samples across repeats.
    pub samples: Vec<usize>,
    /// The idle limit (distribution lower bound).
    pub limit: usize,
    /// ATM frequency at the idle limit.
    pub freq: MegaHz,
}

/// The Fig. 7 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig07 {
    /// One row per core.
    pub rows: Vec<IdleRow>,
}

/// Collects the cached idle characterization into Fig. 7 rows.
pub fn run(ctx: &mut Context) -> Fig07 {
    let rows = ctx
        .idle()
        .iter()
        .map(|r| IdleRow {
            core: r.core,
            samples: r.distribution.samples().to_vec(),
            limit: r.idle_limit(),
            freq: r.limit_frequency,
        })
        .collect();
    Fig07 { rows }
}

impl fmt::Display for Fig07 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7 — idle-limit distributions and limit frequencies")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.core.to_string(),
                    format!("{:?}", r.samples),
                    r.limit.to_string(),
                    render::mhz(r.freq),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &["core", "samples", "idle limit", "MHz @ limit"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn distributions_tight_and_frequencies_high() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len(), 16);
        for r in &fig.rows {
            let spread = r.samples.iter().max().unwrap() - r.samples.iter().min().unwrap();
            assert!(spread <= 2, "{}: spread {spread}", r.core);
        }
        let over_5ghz = fig.rows.iter().filter(|r| r.freq.get() > 5000.0).count();
        assert!(over_5ghz >= 8, "only {over_5ghz}/16 over 5 GHz");
        let limits: Vec<usize> = fig.rows.iter().map(|r| r.limit).collect();
        assert!(limits.iter().max().unwrap() - limits.iter().min().unwrap() >= 3);
    }
}
