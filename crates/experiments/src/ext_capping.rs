//! Extension: the energy-per-request frontier under a power cap — the
//! moving-envelope scenario the paper's fixed-budget evaluation defers
//! (Sec. VII future work; ROADMAP item on power capping).
//!
//! The paper fine-tunes per-core timing margins for efficiency at a
//! *fixed* power envelope. This exhibit moves the envelope: the same
//! fine-tuned server serves the same critical-plus-background mix under
//! progressively tighter chip-power caps, with the integral
//! [`PowerRegulator`](atm_capping::PowerRegulator) tracking each cap
//! through the throttle ladder (background cores shed first, the
//! critical core last, supervisor actions always outrank it). Each row
//! of the frontier reports what the cap bought — milliwatts — and what
//! it cost: completions, critical tail latency, and energy per request.

use std::fmt;

use atm_capping::{CapConfig, PowerBudget};
use atm_core::{AtmManager, Governor};
use atm_serve::{ArrivalPattern, ServeConfig, ServeReport, ServeSim, StreamSpec};
use atm_telemetry::NullRecorder;
use atm_units::Nanos;
use atm_workloads::by_name;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// p99 budget for the critical stream, nanoseconds.
const SLO_NS: u64 = 250_000_000;

/// Cap levels swept, as percent of the uncapped run's mean chip power.
const CAP_PCTS: [u64; 3] = [85, 70, 55];

/// One point on the cap/efficiency frontier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontierRow {
    /// The steady cap regulated against (0 = uncapped baseline).
    pub cap_mw: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed.
    pub shed: u64,
    /// Critical-stream p99 latency, nanoseconds.
    pub critical_p99_ns: u64,
    /// Critical SLO violations.
    pub slo_violations: u64,
    /// Energy per completed request, nanojoules.
    pub energy_per_request_nj: u64,
    /// Total metered energy, picojoules.
    pub energy_pj: u64,
    /// Mean measured chip power over the run, milliwatts.
    pub mean_power_mw: u64,
    /// Throttle rungs committed over the run.
    pub throttle_steps: u32,
    /// Depth the regulator ended the run at.
    pub final_depth: u32,
    /// Whether the depth trace settled over the last four epochs (no
    /// limit cycle).
    pub converged: bool,
    /// Whether the release-safety law held: no release in an epoch whose
    /// measured power exceeded the cap.
    pub release_law_held: bool,
}

/// The frontier: the uncapped baseline plus one row per cap level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtCapping {
    /// Mean chip power of the uncapped baseline, milliwatts.
    pub baseline_mw: u64,
    /// Frontier rows: baseline first, then tightening caps.
    pub rows: Vec<FrontierRow>,
}

/// Serves the standard mix once under the given budget (pass
/// [`PowerBudget::unlimited`] for a baseline that measures power without
/// ever binding).
fn serve(ctx: &Context, budget: PowerBudget) -> ServeReport {
    let seed = ctx.cfg().seed;
    let streams = vec![
        StreamSpec::critical(
            by_name("squeezenet").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            SLO_NS,
        ),
        StreamSpec::background(
            by_name("x264").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 40_000_000,
            },
        ),
    ];
    let sys = ctx.fresh_system();
    let mgr = AtmManager::deploy(sys, Governor::Default, &ctx.cfg().charact);
    let cfg = ServeConfig::builder(seed)
        .epochs(16)
        .epoch_ns(200_000_000)
        .chip_trial(Nanos::new(1_000.0))
        .build()
        .expect("valid config");
    let mut sim = ServeSim::new(mgr, cfg, streams).expect("valid serving setup");
    sim.set_cap(CapConfig::standard(budget)).expect("valid cap");
    sim.run(2, &mut NullRecorder)
}

fn row(cap_mw: u64, report: &ServeReport) -> FrontierRow {
    let critical = report.critical();
    let cap = report.cap.as_ref();
    FrontierRow {
        cap_mw,
        completed: report.completed,
        shed: report.shed,
        critical_p99_ns: critical.p99_ns,
        slo_violations: critical.slo_violations,
        energy_per_request_nj: report.energy_per_request_nj(),
        energy_pj: report.energy.total_pj,
        mean_power_mw: cap.map_or(0, |c| {
            c.power_mw.iter().sum::<u64>() / c.power_mw.len().max(1) as u64
        }),
        throttle_steps: cap.map_or(0, |c| c.throttle_steps),
        final_depth: cap.map_or(0, |c| c.final_depth),
        converged: cap.is_none_or(|c| c.converged(4)),
        release_law_held: cap.is_none_or(atm_capping::CapReport::never_released_over_budget),
    }
}

/// Sweeps the cap from "never binds" down to 55 % of baseline power.
pub fn run(ctx: &mut Context) -> ExtCapping {
    // The baseline runs under a cap that never binds: its regulator
    // records the measured power trace without ever throttling, and the
    // sweep caps are percentages of that trace's mean.
    let base = serve(ctx, PowerBudget::unlimited());
    let trace = &base.cap.as_ref().expect("capping was on").power_mw;
    let baseline_mw = trace.iter().sum::<u64>() / trace.len().max(1) as u64;
    let mut rows = vec![row(0, &base)];
    for pct in CAP_PCTS {
        let cap_mw = (baseline_mw * pct / 100).max(1);
        let report = serve(ctx, PowerBudget::steady(cap_mw));
        rows.push(row(cap_mw, &report));
    }
    ExtCapping { baseline_mw, rows }
}

impl fmt::Display for ExtCapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — the energy-per-request frontier under a power cap"
        )?;
        writeln!(
            f,
            "uncapped baseline: {:.1} W mean chip power",
            self.baseline_mw as f64 / 1_000.0
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    if r.cap_mw == 0 {
                        "uncapped".to_owned()
                    } else {
                        format!("{:.1}", r.cap_mw as f64 / 1_000.0)
                    },
                    format!("{:.1}", r.mean_power_mw as f64 / 1_000.0),
                    r.completed.to_string(),
                    r.shed.to_string(),
                    format!("{:.1}", r.critical_p99_ns as f64 / 1e6),
                    format!("{:.1}", r.energy_per_request_nj as f64 / 1e6),
                    r.final_depth.to_string(),
                    if r.converged { "yes" } else { "NO" }.to_owned(),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &[
                "cap (W)",
                "power (W)",
                "done",
                "shed",
                "crit p99 (ms)",
                "mJ/request",
                "depth",
                "settled",
            ],
            &rows,
        ))?;
        writeln!(
            f,
            "laws: release-over-budget {}",
            if self.rows.iter().all(|r| r.release_law_held) {
                "never violated"
            } else {
                "VIOLATED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn frontier_trades_energy_for_latency_safely() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        assert_eq!(ext.rows.len(), 1 + CAP_PCTS.len());
        assert!(ext.baseline_mw > 0);
        let base = &ext.rows[0];
        assert!(base.completed > 0);
        assert!(base.energy_per_request_nj > 0);
        assert_eq!(base.final_depth, 0, "an unlimited cap must never bind");
        assert_eq!(base.throttle_steps, 0);
        for r in &ext.rows[1..] {
            assert!(r.release_law_held, "release while over budget at {r:?}");
            assert!(r.completed > 0);
        }
        let deepest = ext.rows.last().expect("rows");
        assert!(
            deepest.throttle_steps > 0,
            "a 45 % cap cut must engage the regulator: {deepest:?}"
        );
        assert!(
            deepest.mean_power_mw < base.mean_power_mw,
            "throttling must reduce mean chip power: {} vs {} mW",
            deepest.mean_power_mw,
            base.mean_power_mw
        );
    }
}
