//! Extension: cycle-level view of the ATM loop absorbing di/dt droops.
//!
//! The paper argues ATM's frequency only suffers when *sustained* effects
//! (IR drop) erode margin, while transient di/dt events are ridden out by
//! the loop's fast response. A per-tick trace makes that visible: a noisy
//! workload (x264) shows frequent short dips below its equilibrium
//! frequency; a smooth one (gcc) barely dips at all — yet both sit at
//! nearly the same mean frequency.

use std::fmt;

use atm_chip::MarginMode;
use atm_units::{CoreId, MegaHz, Nanos};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// Trace statistics for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Workload name.
    pub app: String,
    /// Mean frequency over the traced run.
    pub mean: MegaHz,
    /// Peak-to-trough frequency swing.
    pub swing: MegaHz,
    /// Fraction of samples more than 25 MHz below the peak (dips in
    /// flight).
    pub dip_fraction: f64,
    /// Loop violations absorbed (emergency gates).
    pub violations: u64,
}

/// The extension exhibit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtTrace {
    /// One row per traced workload.
    pub rows: Vec<TraceRow>,
}

/// Traces idle, gcc and x264 on the same fine-tuned core.
pub fn run(ctx: &mut Context) -> ExtTrace {
    let mut sys = ctx.deployed_system();
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);

    let rows = ["idle", "gcc", "x264"]
        .iter()
        .map(|name| {
            let w = if *name == "idle" {
                atm_workloads::Workload::idle()
            } else {
                atm_workloads::by_name(name).expect("catalog").clone()
            };
            sys.assign(core, w);
            let (report, trace) = sys.run_traced(Nanos::new(100_000.0), core, 2);
            let (lo, hi) = trace.freq_range();
            TraceRow {
                app: (*name).to_owned(),
                mean: report.core(core).mean_freq,
                swing: hi - lo,
                dip_fraction: trace.dip_count(MegaHz::new(25.0)) as f64
                    / trace.samples().len() as f64,
                violations: report.core(core).violations,
            }
        })
        .collect();
    ExtTrace { rows }
}

impl fmt::Display for ExtTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — per-tick trace statistics on a fine-tuned core (100 µs)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    render::mhz(r.mean),
                    render::mhz(r.swing),
                    format!("{:.1}%", r.dip_fraction * 100.0),
                    r.violations.to_string(),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &["workload", "mean MHz", "swing MHz", "dip time", "gates"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn noisy_workload_dips_more_but_means_stay_close() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        let row = |name: &str| ext.rows.iter().find(|r| r.app == name).unwrap();
        let idle = row("idle");
        let gcc = row("gcc");
        let x264 = row("x264");
        // di/dt activity ranks the dip behaviour.
        assert!(
            x264.swing > gcc.swing,
            "x264 {} vs gcc {}",
            x264.swing,
            gcc.swing
        );
        assert!(x264.dip_fraction > gcc.dip_fraction);
        assert!(idle.swing <= gcc.swing + MegaHz::new(40.0));
        // The loop rides droops out: means within ~2% of each other after
        // accounting for the power difference.
        let spread = (x264.mean.get() - idle.mean.get()).abs();
        assert!(spread < 120.0, "means diverge by {spread} MHz");
    }
}
