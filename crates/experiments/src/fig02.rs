//! Fig. 2: SqueezeNet inference latency under different margin settings
//! and co-runner schedules.
//!
//! Paper reference: 80 ms under static margin regardless of co-runners;
//! fine-tuned ATM improves latency by 7.5–15% depending on schedule; the
//! best schedule (fastest core, others idle) reaches 68 ms at ≈ 4.9 GHz —
//! twice the gain of the worst schedule (slowest core, high-power
//! co-runners).

use atm_telemetry::NullRecorder;
use std::fmt;

use atm_chip::{MarginMode, System};
use atm_units::{CoreId, MegaHz, ProcId};
use atm_workloads::{by_name, Workload};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// SqueezeNet latency under static margin at 4.2 GHz (paper-reported).
pub const STATIC_LATENCY_MS: f64 = 80.0;

/// One scheduling scenario's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Scenario description.
    pub scenario: String,
    /// Mean frequency of the core running SqueezeNet.
    pub freq: MegaHz,
    /// Inference latency in milliseconds (scaled from the 80 ms baseline
    /// by the measured speedup).
    pub latency_ms: f64,
}

/// The Fig. 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig02 {
    /// One row per margin/schedule scenario.
    pub rows: Vec<LatencyRow>,
}

/// Runs the Fig. 2 experiment.
pub fn run(ctx: &mut Context) -> Fig02 {
    let squeezenet = by_name("squeezenet").expect("catalog").clone();
    let daxpy = by_name("daxpy").expect("catalog").clone();
    let nominal = MegaHz::new(4200.0);
    let measure = ctx.cfg().measure;

    // Rank deployed cores on P0 once.
    let mut sys = ctx.deployed_system();
    let ranked = rank(&mut sys);
    let fastest = ranked.first().copied().expect("eight cores");
    let slowest = ranked.last().copied().expect("eight cores");

    let mut rows = Vec::new();

    // Static margin: fixed 4200 regardless of co-runners.
    rows.push(LatencyRow {
        scenario: "static margin (any schedule)".into(),
        freq: nominal,
        latency_ms: STATIC_LATENCY_MS,
    });

    // Default ATM, SqueezeNet alone.
    let mut sys = ctx.fresh_system();
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    sys.assign(core, squeezenet.clone());
    rows.push(row(
        "default ATM, others idle",
        &mut sys,
        core,
        &squeezenet,
        nominal,
        measure,
    ));

    // Fine-tuned, best schedule: fastest core, others idle.
    let mut sys = ctx.deployed_system();
    sys.set_mode(fastest, MarginMode::Atm);
    sys.assign(fastest, squeezenet.clone());
    rows.push(row(
        "fine-tuned, fastest core, others idle",
        &mut sys,
        fastest,
        &squeezenet,
        nominal,
        measure,
    ));

    // Fine-tuned, worst schedule: slowest core, high-power co-runners.
    let mut sys = ctx.deployed_system();
    for c in ProcId::new(0).cores() {
        sys.set_mode(c, MarginMode::Atm);
        if c != slowest {
            sys.assign(c, daxpy.clone());
        }
    }
    sys.assign(slowest, squeezenet.clone());
    rows.push(row(
        "fine-tuned, slowest core, daxpy co-runners",
        &mut sys,
        slowest,
        &squeezenet,
        nominal,
        measure,
    ));

    Fig02 { rows }
}

fn rank(sys: &mut System) -> Vec<CoreId> {
    for c in ProcId::new(0).cores() {
        sys.set_mode(c, MarginMode::Atm);
    }
    let report = sys.settle();
    let mut cores: Vec<(CoreId, MegaHz)> = ProcId::new(0)
        .cores()
        .map(|c| (c, report.core(c).mean_freq))
        .collect();
    cores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for c in ProcId::new(0).cores() {
        sys.set_mode(c, MarginMode::Static);
    }
    cores.into_iter().map(|(c, _)| c).collect()
}

fn row(
    scenario: &str,
    sys: &mut System,
    core: CoreId,
    app: &Workload,
    nominal: MegaHz,
    measure: atm_units::Nanos,
) -> LatencyRow {
    let report = sys.run(measure, &mut NullRecorder);
    let freq = report.core(core).mean_freq;
    let speedup = app.speedup(freq, nominal);
    LatencyRow {
        scenario: scenario.into(),
        freq,
        latency_ms: STATIC_LATENCY_MS / speedup,
    }
}

impl fmt::Display for Fig02 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 2 — SqueezeNet inference latency vs. margin setting and schedule"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    render::mhz(r.freq),
                    format!("{:.1}", r.latency_ms),
                ]
            })
            .collect();
        f.write_str(&render::table(&["scenario", "MHz", "latency ms"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn best_schedule_doubles_worst_schedule_gain() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len(), 4);
        let static_ms = fig.rows[0].latency_ms;
        let best = &fig.rows[2];
        let worst = &fig.rows[3];
        assert!((static_ms - 80.0).abs() < 1e-9);
        // Both fine-tuned schedules beat static margin.
        assert!(best.latency_ms < static_ms);
        assert!(worst.latency_ms < static_ms);
        // Best clearly beats worst (paper: ~2x the gain).
        let gain_best = static_ms - best.latency_ms;
        let gain_worst = static_ms - worst.latency_ms;
        assert!(
            gain_best > 1.4 * gain_worst,
            "best gain {gain_best:.1} ms vs worst {gain_worst:.1} ms"
        );
        // Paper band: best ≈ 66–72 ms.
        assert!(
            best.latency_ms > 62.0 && best.latency_ms < 75.0,
            "{}",
            best.latency_ms
        );
    }
}
