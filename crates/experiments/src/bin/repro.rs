//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                    # every exhibit, full fidelity
//! repro fig7 table1            # selected exhibits
//! repro fig14 --quick          # reduced-effort smoke run
//! repro all --seed 7           # different minted silicon
//! ```

use std::process::ExitCode;

use atm_experiments::{run_by_name, Context, ExpConfig, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut out_dir: Option<std::path::PathBuf> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let Some(v) = it.next() else {
                    eprintln!("--seed needs a value");
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("invalid seed `{v}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for name in ALL_EXPERIMENTS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--out" => {
                let Some(dir) = it.next() else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            other => names.push(other.to_owned()),
        }
    }

    if names.is_empty() {
        print_help();
        return ExitCode::FAILURE;
    }
    if names.iter().any(|n| n == "all") {
        names = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    }

    let cfg = if quick {
        ExpConfig::quick(seed)
    } else {
        ExpConfig::full(seed)
    };
    eprintln!(
        "repro: seed {seed}, {} fidelity, {} exhibit(s)",
        if quick { "quick" } else { "full" },
        names.len()
    );

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut ctx = Context::new(cfg);
    for name in &names {
        match run_by_name(&mut ctx, name) {
            Ok(report) => {
                println!("{report}");
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{name}.txt"));
                    if let Err(e) = std::fs::write(&path, &report) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(unknown) => {
                eprintln!(
                    "unknown exhibit `{unknown}`; available: {}",
                    ALL_EXPERIMENTS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_help() {
    eprintln!(
        "usage: repro <exhibit|all> [more exhibits] [--quick] [--seed N] [--out DIR] [--list]"
    );
    eprintln!("exhibits: {}", ALL_EXPERIMENTS.join(", "));
}
