//! Extension: calibration provenance.
//!
//! Every physical constant in the substrate is calibrated against a
//! number the paper reports. This exhibit measures each one on the live
//! simulator and prints it next to the paper's target, so drift is
//! immediately visible when parameters change.

use atm_telemetry::NullRecorder;
use std::fmt;

use atm_chip::MarginMode;
use atm_core::predictor::FreqPredictor;
use atm_units::{CoreId, Nanos};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One calibration check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalRow {
    /// What is being checked.
    pub quantity: String,
    /// The paper's reported value / band.
    pub paper: String,
    /// The simulator's measured value.
    pub measured: String,
    /// Whether the measurement falls in the accepted band.
    pub ok: bool,
}

/// The extension exhibit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtCalibration {
    /// All calibration checks.
    pub rows: Vec<CalRow>,
}

/// Measures every headline constant.
pub fn run(ctx: &mut Context) -> ExtCalibration {
    let mut rows = Vec::new();
    let daxpy = atm_workloads::by_name("daxpy").expect("catalog").clone();

    // Default ATM idle frequency band.
    let mut sys = ctx.fresh_system();
    sys.set_mode_all(MarginMode::Atm);
    let idle = sys.settle();
    let freqs: Vec<f64> = idle.cores.iter().map(|c| c.mean_freq.get()).collect();
    let (lo, hi) = minmax(&freqs);
    rows.push(CalRow {
        quantity: "default ATM idle frequency".into(),
        paper: "~4600 MHz, uniform".into(),
        measured: format!("{lo:.0}–{hi:.0} MHz"),
        ok: lo > 4450.0 && hi < 4950.0,
    });

    // Idle chip power.
    let p_idle = idle.procs[0].mean_power.get();
    rows.push(CalRow {
        quantity: "idle chip power".into(),
        paper: "(implied) 50–70 W".into(),
        measured: format!("{p_idle:.0} W"),
        ok: (45.0..75.0).contains(&p_idle),
    });

    // 8-thread daxpy power and temperature.
    sys.assign_all(&daxpy);
    let loaded = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
    let p_daxpy = loaded.procs[0].mean_power.get();
    let t_daxpy = loaded.procs[0].max_temp.get();
    rows.push(CalRow {
        quantity: "daxpy chip power".into(),
        paper: "~160 W".into(),
        measured: format!("{p_daxpy:.0} W"),
        ok: (135.0..185.0).contains(&p_daxpy),
    });
    rows.push(CalRow {
        quantity: "daxpy die temperature".into(),
        paper: "~70 °C (kept under 70)".into(),
        measured: format!("{t_daxpy:.0} °C"),
        ok: (58.0..78.0).contains(&t_daxpy),
    });

    // Idle→loaded frequency swing of a default-ATM core.
    let swing = idle.core(CoreId::new(0, 0)).mean_freq.get()
        - loaded.core(CoreId::new(0, 0)).mean_freq.get();
    rows.push(CalRow {
        quantity: "default ATM idle→daxpy swing".into(),
        paper: "~200 MHz (4.6→4.4 GHz)".into(),
        measured: format!("{swing:.0} MHz"),
        ok: (100.0..320.0).contains(&swing),
    });

    // Eq. 1 slope.
    let mut sys = ctx.deployed_system();
    let pred = FreqPredictor::train(&mut sys, CoreId::new(0, 0));
    rows.push(CalRow {
        quantity: "Eq. 1 frequency-vs-power slope".into(),
        paper: "~2 MHz per watt".into(),
        measured: format!("{:.2} MHz/W", pred.mhz_per_watt()),
        ok: (1.0..3.5).contains(&pred.mhz_per_watt()),
    });

    // Fine-tuned idle limits and frequencies.
    let idle_results = ctx.idle();
    let limits: Vec<f64> = idle_results.iter().map(|r| r.idle_limit() as f64).collect();
    let (llo, lhi) = minmax(&limits);
    let lfreqs: Vec<f64> = idle_results
        .iter()
        .map(|r| r.limit_frequency.get())
        .collect();
    let (flo, fhi) = minmax(&lfreqs);
    rows.push(CalRow {
        quantity: "idle limits (steps)".into(),
        paper: "2–11 steps".into(),
        measured: format!("{llo:.0}–{lhi:.0}"),
        ok: llo >= 1.0 && lhi <= 14.0 && lhi - llo >= 3.0,
    });
    rows.push(CalRow {
        quantity: "idle-limit frequencies".into(),
        paper: "4850–5200 MHz".into(),
        measured: format!("{flo:.0}–{fhi:.0} MHz"),
        ok: flo > 4700.0 && fhi < 5450.0,
    });

    // Stress-deployed differential.
    let stress = ctx.stress();
    rows.push(CalRow {
        quantity: "deployed inter-core differential".into(),
        paper: ">200 MHz".into(),
        measured: format!("{:.0} MHz", stress.speed_differential().get()),
        ok: stress.speed_differential().get() > 150.0,
    });

    // Preset spread.
    let fig4 = crate::fig04::run(ctx);
    rows.push(CalRow {
        quantity: "CPM preset spread".into(),
        paper: "7–20 steps (~3x)".into(),
        measured: format!("{:.1}x", fig4.spread_ratio()),
        ok: fig4.spread_ratio() > 1.8,
    });

    ExtCalibration { rows }
}

fn minmax(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().copied().fold(f64::MAX, f64::min);
    let hi = v.iter().copied().fold(f64::MIN, f64::max);
    (lo, hi)
}

impl fmt::Display for ExtCalibration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — calibration provenance (simulator vs. paper)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.quantity.clone(),
                    r.paper.clone(),
                    r.measured.clone(),
                    if r.ok { "ok".into() } else { "DRIFT".into() },
                ]
            })
            .collect();
        f.write_str(&render::table(
            &["quantity", "paper", "measured", ""],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn all_calibration_checks_pass() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let cal = run(&mut ctx);
        assert!(cal.rows.len() >= 9);
        for r in &cal.rows {
            assert!(
                r.ok,
                "calibration drift: {} measured {}",
                r.quantity, r.measured
            );
        }
    }
}
