//! Extension: robustness of the headline claims across minted silicon.
//!
//! No two POWER7+ chips are identical; the paper's exact step counts and
//! frequencies are properties of its two specimens. This exhibit re-runs
//! the headline pipeline (idle characterization → stress-test deployment
//! → one managed pair) on several freshly minted systems and checks that
//! the claims that matter — exposed variation, fine-tuned gain, managed
//! ordering — hold for each of them.

use atm_telemetry::NullRecorder;
use std::fmt;

use atm_chip::{ChipConfig, System};
use atm_core::manager::Strategy;
use atm_core::stress::stress_test_deploy;
use atm_core::{AtmManager, Governor};
use atm_units::MegaHz;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One seed's headline measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedRow {
    /// The silicon seed.
    pub seed: u64,
    /// Inter-core differential at the stress-test deployment.
    pub differential: MegaHz,
    /// Fastest deployed core's idle ATM frequency.
    pub fastest: MegaHz,
    /// Managed-max speedup for squeezenet : x264.
    pub managed_speedup: f64,
    /// Default-ATM speedup for the same pair.
    pub default_speedup: f64,
}

/// The extension exhibit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtSeeds {
    /// One row per minted system.
    pub rows: Vec<SeedRow>,
}

/// Runs the headline pipeline on three seeds (the context's seed plus two
/// others).
pub fn run(ctx: &mut Context) -> ExtSeeds {
    let base = ctx.cfg().seed;
    let charact = ctx.cfg().charact;
    let critical = atm_workloads::by_name("squeezenet").expect("catalog");
    let background = atm_workloads::by_name("x264").expect("catalog");

    let rows = [base, base.wrapping_add(101), base.wrapping_add(7919)]
        .iter()
        .map(|&seed| {
            let mut sys = System::new(ChipConfig::power7_plus(seed));
            let stress = stress_test_deploy(&mut sys, 0, &charact);
            let fastest = stress
                .idle_frequencies
                .iter()
                .copied()
                .fold(MegaHz::ZERO, MegaHz::max);

            let mut mgr = AtmManager::deploy(
                System::new(ChipConfig::power7_plus(seed)),
                Governor::Default,
                &charact,
            );
            let managed = mgr.evaluate_pair(
                critical,
                background,
                Strategy::ManagedMax,
                &mut NullRecorder,
            );
            let default = mgr.evaluate_pair(
                critical,
                background,
                Strategy::DefaultAtm,
                &mut NullRecorder,
            );
            SeedRow {
                seed,
                differential: stress.speed_differential(),
                fastest,
                managed_speedup: managed.speedup,
                default_speedup: default.speedup,
            }
        })
        .collect();
    ExtSeeds { rows }
}

impl fmt::Display for ExtSeeds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — headline claims across minted silicon (squeezenet:x264)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.seed.to_string(),
                    render::mhz(r.differential),
                    render::mhz(r.fastest),
                    render::pct(r.default_speedup - 1.0),
                    render::pct(r.managed_speedup - 1.0),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &[
                "seed",
                "differential",
                "fastest core",
                "default ATM",
                "managed max",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn claims_hold_for_every_seed() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        assert_eq!(ext.rows.len(), 3);
        for r in &ext.rows {
            assert!(
                r.differential.get() > 100.0,
                "seed {}: differential {}",
                r.seed,
                r.differential
            );
            assert!(
                r.fastest.get() > 4750.0,
                "seed {}: fastest deployed {}",
                r.seed,
                r.fastest
            );
            assert!(
                r.managed_speedup > r.default_speedup,
                "seed {}: managed {:.3} vs default {:.3}",
                r.seed,
                r.managed_speedup,
                r.default_speedup
            );
        }
    }
}
