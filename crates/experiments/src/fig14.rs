//! Fig. 14: critical-application performance under every margin strategy.
//!
//! Paper reference: averaged over the ⟨critical : background⟩ pairs,
//! default unmanaged ATM improves critical performance by **6.1%** over
//! static margin; unmanaged fine-tuned ATM by **10.2%**; a managed system
//! maximizing critical performance by **15.2%**; and the balanced managed
//! system holds a guaranteed **10%** target by throttling co-runners.
//! seq2seq : streamcluster exceeds the target even unthrottled because
//! streamcluster draws so little power.

use atm_telemetry::NullRecorder;
use std::fmt;

use atm_core::manager::Strategy;
use atm_core::{AtmManager, Governor, QosTarget};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// The evaluated ⟨critical : background⟩ pairs (respecting the paper's
/// rule of never co-locating two memory-intensive applications).
pub const PAIRS: [(&str, &str); 9] = [
    ("squeezenet", "lu_cb"),
    ("ferret", "raytrace"),
    ("vgg19", "swaptions"),
    ("fluidanimate", "x264"),
    ("seq2seq", "streamcluster"),
    ("babi", "blackscholes"),
    ("resnet", "swaptions"),
    ("bodytrack", "x264"),
    ("vips", "raytrace"),
];

/// One pair's speedups under the five strategies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairRow {
    /// Critical application.
    pub critical: String,
    /// Background application.
    pub background: String,
    /// Speedup over static margin: default ATM.
    pub default_atm: f64,
    /// Speedup: fine-tuned unmanaged.
    pub unmanaged: f64,
    /// Speedup: managed for maximum critical performance.
    pub managed_max: f64,
    /// Speedup: managed balanced against the 10% QoS target.
    pub balanced: f64,
    /// Whether the balanced run met the 10% target.
    pub qos_met: bool,
}

/// The Fig. 14 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14 {
    /// One row per pair.
    pub rows: Vec<PairRow>,
}

impl Fig14 {
    /// Mean speedups across pairs: `(default, unmanaged, managed-max,
    /// balanced)`.
    #[must_use]
    pub fn means(&self) -> (f64, f64, f64, f64) {
        let n = self.rows.len() as f64;
        (
            self.rows.iter().map(|r| r.default_atm).sum::<f64>() / n,
            self.rows.iter().map(|r| r.unmanaged).sum::<f64>() / n,
            self.rows.iter().map(|r| r.managed_max).sum::<f64>() / n,
            self.rows.iter().map(|r| r.balanced).sum::<f64>() / n,
        )
    }
}

/// Deploys a managed system and evaluates every pair under every
/// strategy.
pub fn run(ctx: &mut Context) -> Fig14 {
    let qos = QosTarget::improvement_pct(10.0);
    // The manager runs the test-time stress-test itself on a fresh system.
    let mut mgr = AtmManager::deploy(ctx.fresh_system(), Governor::Default, &ctx.cfg().charact);
    mgr.set_measure_duration(ctx.cfg().measure);

    let rows = PAIRS
        .iter()
        .map(|(critical, background)| {
            let c = atm_workloads::by_name(critical).expect("catalog");
            let b = atm_workloads::by_name(background).expect("catalog");
            let default_atm = mgr
                .evaluate_pair(c, b, Strategy::DefaultAtm, &mut NullRecorder)
                .speedup;
            let unmanaged = mgr
                .evaluate_pair(c, b, Strategy::FineTunedUnmanaged, &mut NullRecorder)
                .speedup;
            let managed_max = mgr
                .evaluate_pair(c, b, Strategy::ManagedMax, &mut NullRecorder)
                .speedup;
            let balanced_outcome =
                mgr.evaluate_pair(c, b, Strategy::ManagedBalanced(qos), &mut NullRecorder);
            PairRow {
                critical: (*critical).to_owned(),
                background: (*background).to_owned(),
                default_atm,
                unmanaged,
                managed_max,
                balanced: balanced_outcome.speedup,
                qos_met: qos.met_by(balanced_outcome.speedup),
            }
        })
        .collect();
    Fig14 { rows }
}

impl fmt::Display for Fig14 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 14 — critical-app speedup over static margin, per strategy"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}:{}", r.critical, r.background),
                    render::pct(r.default_atm - 1.0),
                    render::pct(r.unmanaged - 1.0),
                    render::pct(r.managed_max - 1.0),
                    render::pct(r.balanced - 1.0),
                    if r.qos_met { "yes".into() } else { "NO".into() },
                ]
            })
            .collect();
        f.write_str(&render::table(
            &[
                "critical:background",
                "default ATM",
                "fine-tuned unmanaged",
                "managed max",
                "balanced",
                "QoS met",
            ],
            &rows,
        ))?;
        let (d, u, m, b) = self.means();
        writeln!(
            f,
            "means: default {} | unmanaged {} | managed-max {} | balanced {}",
            render::pct(d - 1.0),
            render::pct(u - 1.0),
            render::pct(m - 1.0),
            render::pct(b - 1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn strategy_means_ordered_like_paper() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len(), PAIRS.len());
        let (default_atm, unmanaged, managed_max, _balanced) = fig.means();
        // Paper: 6.1% < 10.2% < 15.2%. Check ordering with sane bands.
        assert!(
            default_atm > 1.02 && default_atm < 1.12,
            "default ATM mean {default_atm:.3}"
        );
        assert!(
            unmanaged > default_atm,
            "unmanaged {unmanaged:.3} vs default {default_atm:.3}"
        );
        assert!(
            managed_max > unmanaged,
            "managed {managed_max:.3} vs unmanaged {unmanaged:.3}"
        );
        assert!(managed_max > 1.10, "managed max mean {managed_max:.3}");
        // QoS: a solid majority of balanced runs meet 10%.
        let met = fig.rows.iter().filter(|r| r.qos_met).count();
        assert!(
            met * 10 >= fig.rows.len() * 7,
            "{met}/{} met QoS",
            fig.rows.len()
        );
    }
}
