//! Table I: ATM reconfiguration limits per core under every scenario.
//!
//! Paper reference (its two chips): idle limits 2–11 steps, uBench limits
//! equal or one-to-three steps lower on six cores, thread-normal slightly
//! lower still, thread-worst the most conservative (2–6 steps), all
//! monotone per core.

use std::fmt;

use atm_core::LimitTable;
use serde::{Deserialize, Serialize};

use crate::context::Context;

/// The Table I reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// The four limit rows.
    pub table: LimitTable,
}

/// Assembles Table I from the cached characterization phases.
pub fn run(ctx: &mut Context) -> Table1 {
    let idle = ctx.idle_limits();
    let ubench = ctx.ubench_limits();
    let realistic = ctx.realistic();
    let table = LimitTable {
        idle,
        ubench,
        thread_normal: realistic.thread_normal,
        thread_worst: realistic.thread_worst,
    };
    table.assert_invariants();
    Table1 { table }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — ATM reconfiguration limits (CPM delay-reduction steps)"
        )?;
        self.table.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn table_shape_matches_paper() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let t = run(&mut ctx);
        t.table.assert_invariants();

        // Idle limits show wide inter-core spread.
        let idle_spread = t.table.idle.iter().max().unwrap() - t.table.idle.iter().min().unwrap();
        assert!(idle_spread >= 3, "idle spread {idle_spread}");

        // Thread-worst strictly below idle for most cores (realistic
        // workloads cost margin), but never all the way to zero everywhere.
        let reduced = (0..16)
            .filter(|&i| t.table.thread_worst[i] < t.table.idle[i])
            .count();
        assert!(reduced >= 10, "only {reduced} cores pay for realistic load");
        assert!(t.table.thread_worst.iter().any(|&w| w > 0));
    }
}
