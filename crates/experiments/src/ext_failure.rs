//! Extension: the failure-probability knee behind the tight limit
//! distributions.
//!
//! Sec. III-B expects the distributions of safe configurations to be
//! tight "because timing violations are not entirely random". This
//! exhibit measures P(failure) per trial as a function of CPM delay
//! reduction for one core under x264: below the limit the probability is
//! ~0, one step above it it jumps toward 1 — a knee, not a gentle slope,
//! which is exactly why repeated searches land on the same limit.

use atm_telemetry::NullRecorder;
use std::fmt;

use atm_chip::MarginMode;
use atm_units::{CoreId, Nanos};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// Failure probability at one reduction level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KneeRow {
    /// CPM delay reduction in steps.
    pub reduction: usize,
    /// Fraction of trials that hit a timing failure.
    pub p_fail: f64,
}

/// The extension exhibit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtFailure {
    /// The probed core.
    pub core: CoreId,
    /// P(failure) per reduction step.
    pub rows: Vec<KneeRow>,
    /// Trials per point.
    pub trials: usize,
}

/// Sweeps the reduction across the knee for one mid-pack core.
pub fn run(ctx: &mut Context) -> ExtFailure {
    let core = CoreId::new(0, 3);
    let trials = 10;
    let mut sys = ctx.fresh_system();
    sys.set_mode(core, MarginMode::Atm);
    let x264 = atm_workloads::by_name("x264").expect("catalog").clone();
    sys.assign(core, x264);

    let max = sys.core(core).cpms().max_reduction();
    let rows = (0..=max.min(12))
        .map(|reduction| {
            sys.set_reduction(core, reduction).expect("within preset");
            let failures = (0..trials)
                .filter(|_| {
                    sys.run(Nanos::new(50_000.0), &mut NullRecorder)
                        .failure
                        .is_some()
                })
                .count();
            KneeRow {
                reduction,
                p_fail: failures as f64 / trials as f64,
            }
        })
        .collect();
    sys.set_reduction(core, 0).expect("always valid");
    ExtFailure { core, rows, trials }
}

impl ExtFailure {
    /// Width of the knee: number of reduction steps with a mixed outcome
    /// (0 < P(fail) < 1).
    #[must_use]
    pub fn knee_width(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.p_fail > 0.0 && r.p_fail < 1.0)
            .count()
    }
}

impl fmt::Display for ExtFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — failure-probability knee ({}; x264; {} trials/point)",
            self.core, self.trials
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let bar = "#".repeat((r.p_fail * 20.0).round() as usize);
                vec![r.reduction.to_string(), format!("{:.2}", r.p_fail), bar]
            })
            .collect();
        f.write_str(&render::table(&["steps", "P(fail)", ""], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn knee_is_sharp_and_monotone_ish() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        assert!(ext.rows.len() >= 4);
        // Safe at the preset.
        assert_eq!(ext.rows[0].p_fail, 0.0);
        // Certain failure at the deepest probed reduction.
        assert!(ext.rows.last().unwrap().p_fail > 0.9);
        // The knee spans only a couple of steps (tight distributions).
        assert!(ext.knee_width() <= 3, "knee width {}", ext.knee_width());
    }
}
