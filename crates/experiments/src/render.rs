//! Small plain-text table rendering helpers shared by the exhibits.

use std::fmt::Write as _;

/// Renders a table: a header row and data rows, columns padded to fit.
///
/// # Examples
///
/// ```
/// use atm_experiments::render::table;
///
/// let s = table(
///     &["core", "MHz"],
///     &[vec!["P0C0".into(), "4600".into()], vec!["P0C1".into(), "5120".into()]],
/// );
/// assert!(s.contains("P0C1"));
/// ```
#[must_use]
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Formats a frequency in MHz with no decimals.
#[must_use]
pub fn mhz(f: atm_units::MegaHz) -> String {
    format!("{:.0}", f.get())
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_units::MegaHz;

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatting() {
        assert_eq!(mhz(MegaHz::new(4649.7)), "4650");
        assert_eq!(pct(0.102), "+10.2%");
        assert_eq!(pct(-0.05), "-5.0%");
    }
}
