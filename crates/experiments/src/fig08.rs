//! Fig. 8: uBench rollback distributions for the fragile cores.
//!
//! Paper reference: six of the sixteen cores need their CPM delay rolled
//! back from the idle limit (by one to three steps) before coremark,
//! daxpy and stream all run correctly — the idle limit failed to capture
//! some long paths those cores' CPMs do not mimic.

use std::fmt;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One fragile core's rollback distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollbackRow {
    /// Which core.
    pub core: CoreId,
    /// Its idle limit.
    pub idle_limit: usize,
    /// Its uBench limit.
    pub ubench_limit: usize,
    /// Rollback steps (idle − uBench).
    pub rollback: usize,
}

/// The Fig. 8 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig08 {
    /// Rows for every core that required rollback.
    pub rows: Vec<RollbackRow>,
    /// Number of cores that needed no rollback.
    pub stable_cores: usize,
}

/// Collects the cached uBench characterization into Fig. 8 rows.
pub fn run(ctx: &mut Context) -> Fig08 {
    let mut rows = Vec::new();
    let mut stable = 0;
    for r in ctx.ubench() {
        let rollback = r.rollback();
        if rollback > 0 {
            rows.push(RollbackRow {
                core: r.core,
                idle_limit: r.idle_limit,
                ubench_limit: r.ubench_limit().min(r.idle_limit),
                rollback,
            });
        } else {
            stable += 1;
        }
    }
    Fig08 {
        rows,
        stable_cores: stable,
    }
}

impl fmt::Display for Fig08 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 8 — uBench rollback from the idle limit ({} cores stable, {} fragile)",
            self.stable_cores,
            self.rows.len()
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.core.to_string(),
                    r.idle_limit.to_string(),
                    r.ubench_limit.to_string(),
                    r.rollback.to_string(),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &["core", "idle limit", "uBench limit", "rollback"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn a_minority_of_cores_roll_back_modestly() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len() + fig.stable_cores, 16);
        // Paper: 6 fragile cores; accept a minority band.
        assert!(
            (1..=9).contains(&fig.rows.len()),
            "{} fragile cores",
            fig.rows.len()
        );
        for r in &fig.rows {
            assert!(
                (1..=4).contains(&r.rollback),
                "{}: rollback {}",
                r.core,
                r.rollback
            );
            assert_eq!(r.idle_limit - r.ubench_limit, r.rollback);
        }
    }
}
