//! Fig. 10: mean CPM rollback heat map, application × core.
//!
//! Paper reference: rows (applications) impose consistent stress across
//! cores — x264 and ferret at the top need the most rollback, gcc and
//! leela the least; columns (cores) differ in *robustness*, the cores on
//! the right needing the least rollback for any application.

use std::fmt;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One application's rollback row across the sixteen cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatRow {
    /// Application name.
    pub app: String,
    /// Mean rollback per core, flat-indexed.
    pub rollback: [f64; 16],
}

impl HeatRow {
    /// Mean across cores (the app's overall stress level).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.rollback.iter().sum::<f64>() / 16.0
    }
}

/// The Fig. 10 reproduction: rows sorted by stress, most stressful first
/// (the paper's top-to-bottom ordering).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// Application rows.
    pub rows: Vec<HeatRow>,
}

impl Fig10 {
    /// Per-core mean rollback across apps (column means — core
    /// robustness, lower = more robust).
    #[must_use]
    pub fn core_means(&self) -> [f64; 16] {
        let mut means = [0.0f64; 16];
        for row in &self.rows {
            for (m, r) in means.iter_mut().zip(row.rollback.iter()) {
                *m += r;
            }
        }
        for m in &mut means {
            *m /= self.rows.len() as f64;
        }
        means
    }
}

/// Builds the heat map from the cached realistic characterization.
pub fn run(ctx: &mut Context) -> Fig10 {
    let realistic = ctx.realistic();
    let mut apps: Vec<String> = realistic.profiles.iter().map(|p| p.app.clone()).collect();
    apps.sort();
    apps.dedup();

    let mut rows: Vec<HeatRow> = apps
        .into_iter()
        .map(|app| {
            let mut rollback = [0.0f64; 16];
            for core in CoreId::all() {
                rollback[core.flat_index()] = realistic
                    .profile(&app, core)
                    .map_or(0.0, |p| p.mean_rollback());
            }
            HeatRow { app, rollback }
        })
        .collect();
    rows.sort_by(|a, b| b.mean().partial_cmp(&a.mean()).expect("finite"));
    Fig10 { rows }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 10 — mean CPM rollback from the uBench limit (steps), app × core"
        )?;
        let mut header: Vec<String> = vec!["app".into()];
        header.extend(CoreId::all().map(|c| c.to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.app.clone()];
                cells.extend(r.rollback.iter().map(|v| format!("{v:.1}")));
                cells
            })
            .collect();
        f.write_str(&render::table(&header_refs, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn stress_ranking_and_robust_cores() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert!(fig.rows.len() >= 15, "only {} apps", fig.rows.len());

        // Rows sorted by stress: top row should be x264 or ferret.
        let top = &fig.rows[0].app;
        assert!(top == "x264" || top == "ferret", "top stressor is {top}");
        // gcc and leela in the gentle half.
        let pos = |name: &str| fig.rows.iter().position(|r| r.app == name).unwrap();
        assert!(pos("gcc") > fig.rows.len() / 2, "gcc too stressful");
        assert!(pos("leela") >= fig.rows.len() / 3);

        // Some cores are clearly more robust than others.
        let means = fig.core_means();
        let max = means.iter().copied().fold(f64::MIN, f64::max);
        let min = means.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > min, "no robustness variation");
    }
}
