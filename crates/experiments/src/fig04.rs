//! Fig. 4b: pre-set CPM inserted delays across the two chips.
//!
//! Paper reference: presets range from 7 to 20 steps — nearly a 3× spread,
//! evidence of significant process variation. (The LLC CPM is excluded:
//! it sits in a different clock domain.)

use std::fmt;

use atm_cpm::CpmUnit;
use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// Preset inserted delays of one core's four core-domain CPMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetRow {
    /// Which core.
    pub core: CoreId,
    /// Presets for IFU, ISU, FXU, FPU (steps).
    pub presets: [usize; 4],
}

impl PresetRow {
    /// Mean preset of the four CPMs.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.presets.iter().sum::<usize>() as f64 / 4.0
    }
}

/// The Fig. 4b reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig04 {
    /// One row per core, `(proc, core)` order.
    pub rows: Vec<PresetRow>,
}

impl Fig04 {
    /// The spread ratio max/min over core means.
    #[must_use]
    pub fn spread_ratio(&self) -> f64 {
        let means: Vec<f64> = self.rows.iter().map(PresetRow::mean).collect();
        let max = means.iter().copied().fold(f64::MIN, f64::max);
        let min = means.iter().copied().fold(f64::MAX, f64::min);
        max / min
    }
}

/// Reads the test-time preset inserted delays of every core.
pub fn run(ctx: &mut Context) -> Fig04 {
    let sys = ctx.fresh_system();
    let rows = CoreId::all()
        .map(|core| {
            let cpms = sys.core(core).cpms();
            let mut presets = [0usize; 4];
            for (i, unit) in CpmUnit::ALL
                .iter()
                .filter(|u| **u != CpmUnit::Cache)
                .enumerate()
            {
                presets[i] = cpms.preset(*unit);
            }
            PresetRow { core, presets }
        })
        .collect();
    Fig04 { rows }
}

impl fmt::Display for Fig04 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 4b — pre-set CPM inserted delays (steps, LLC excluded)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.core.to_string(),
                    r.presets[0].to_string(),
                    r.presets[1].to_string(),
                    r.presets[2].to_string(),
                    r.presets[3].to_string(),
                    format!("{:.1}", r.mean()),
                ]
            })
            .collect();
        f.write_str(&render::table(
            &["core", "IFU", "ISU", "FXU", "FPU", "mean"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn presets_spread_like_paper() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len(), 16);
        // Paper: ~3x spread; accept anything clearly non-uniform.
        assert!(fig.spread_ratio() > 1.8, "spread {:.2}", fig.spread_ratio());
        for r in &fig.rows {
            assert!(
                r.mean() >= 3.0 && r.mean() <= 31.0,
                "{}: {:?}",
                r.core,
                r.presets
            );
        }
    }
}
