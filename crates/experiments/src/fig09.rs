//! Fig. 9: x264 vs. gcc CPM rollback.
//!
//! Paper reference: x264 often requires significant rollback from the
//! uBench limit, whereas gcc needs relatively little — despite gcc's much
//! richer instruction mix. An application's rollback reflects its system
//! noise (di/dt) behaviour, not its instruction coverage.

use std::fmt;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// Rollback of the two contrast applications on one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContrastRow {
    /// Which core.
    pub core: CoreId,
    /// x264's mean rollback from the uBench limit.
    pub x264_rollback: f64,
    /// gcc's mean rollback from the uBench limit.
    pub gcc_rollback: f64,
}

/// The Fig. 9 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig09 {
    /// One row per core.
    pub rows: Vec<ContrastRow>,
}

impl Fig09 {
    /// Mean rollback across cores for each app: `(x264, gcc)`.
    #[must_use]
    pub fn means(&self) -> (f64, f64) {
        let n = self.rows.len() as f64;
        (
            self.rows.iter().map(|r| r.x264_rollback).sum::<f64>() / n,
            self.rows.iter().map(|r| r.gcc_rollback).sum::<f64>() / n,
        )
    }
}

/// Extracts the x264/gcc contrast from the cached realistic profiles.
pub fn run(ctx: &mut Context) -> Fig09 {
    let realistic = ctx.realistic();
    let rows = CoreId::all()
        .map(|core| ContrastRow {
            core,
            x264_rollback: realistic
                .profile("x264", core)
                .map_or(0.0, |p| p.mean_rollback()),
            gcc_rollback: realistic
                .profile("gcc", core)
                .map_or(0.0, |p| p.mean_rollback()),
        })
        .collect();
    Fig09 { rows }
}

impl fmt::Display for Fig09 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9 — per-core CPM rollback: x264 vs. gcc (steps)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.core.to_string(),
                    format!("{:.2}", r.x264_rollback),
                    format!("{:.2}", r.gcc_rollback),
                ]
            })
            .collect();
        f.write_str(&render::table(&["core", "x264", "gcc"], &rows))?;
        let (x, g) = self.means();
        writeln!(f, "mean rollback: x264 {x:.2}, gcc {g:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn x264_needs_clearly_more_rollback_than_gcc() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        let (x264, gcc) = fig.means();
        assert!(
            x264 > gcc + 0.4,
            "x264 mean rollback {x264:.2} not above gcc {gcc:.2}"
        );
        assert!(gcc < 1.0, "gcc rollback {gcc:.2} too large");
    }
}
