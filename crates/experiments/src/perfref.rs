//! Golden-reference scenarios for the hot-path determinism contract.
//!
//! Each function here builds a fixed-seed scenario, runs it, and renders
//! the resulting report through `{:#?}`. Rust's `Debug` formatting for
//! `f64` is shortest-roundtrip, so two renderings are equal exactly when
//! every float in the reports is bit-identical — which makes the rendered
//! text a *byte-identity witness* for the whole report.
//!
//! The text produced by [`full_reference`] is checked in as
//! `tests/data/reference_reports.txt`, captured from the tree *before*
//! the tick-loop performance overhaul. `tests/perf_reference.rs` re-runs
//! the scenarios on every build and compares byte-for-byte, proving the
//! optimized hot path emits exactly the bit patterns the original one
//! did.
//!
//! # Examples
//!
//! ```no_run
//! let text = atm_experiments::perfref::full_reference();
//! print!("{text}");
//! ```

use atm_telemetry::NullRecorder;
use std::fmt::Write as _;

use atm_chip::{ChipConfig, MarginMode, System};
use atm_core::charact::CharactConfig;
use atm_core::{AtmManager, Governor, LimitTable};
use atm_faults::{droop_storm, FleetFaultPlan};
use atm_fleet::{FleetConfig, FleetSim};
use atm_serve::{ArrivalPattern, ServeConfig, ServeSim, StreamSpec};
use atm_units::{CoreId, Nanos};
use atm_workloads::{by_name, voltage_virus};

/// Seeds exercised by the `SystemReport` scenarios.
pub const SYSTEM_SEEDS: [u64; 2] = [5, 9];
/// Seed for the stress, characterization, and serving scenarios.
pub const HEAVY_SEED: u64 = 42;

/// All-core x264 under ATM for 50 µs: the steady-state serving regime the
/// stride fast path targets.
#[must_use]
pub fn system_reference(seed: u64) -> String {
    let mut sys = System::new(ChipConfig::power7_plus(seed));
    sys.assign_all(by_name("x264").expect("catalog"));
    sys.set_mode_all(MarginMode::Atm);
    let report = sys.run(Nanos::new(50_000.0), &mut NullRecorder);
    format!("{report:#?}\n")
}

/// Voltage virus on every core with one ATM core for 20 µs: the
/// droop-heavy regime where the stride path must keep falling back to
/// 1-tick stepping.
#[must_use]
pub fn virus_reference(seed: u64) -> String {
    let mut sys = System::new(ChipConfig::power7_plus(seed));
    sys.assign_all(&voltage_virus());
    sys.set_mode(CoreId::new(0, 0), MarginMode::Atm);
    let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
    format!("{report:#?}\n")
}

/// Quick-config Table I characterization: thousands of short shard runs,
/// covering warm starts, reseeds, and reduction sweeps.
#[must_use]
pub fn limit_table_reference(seed: u64) -> String {
    let mut sys = System::new(ChipConfig::power7_plus(seed));
    let x264 = by_name("x264").expect("catalog");
    let table = LimitTable::characterize(
        &mut sys,
        &[x264],
        &CharactConfig::quick(),
        &mut NullRecorder,
    );
    format!("{table:#?}\n")
}

/// The serving-layer recipe from `tests/serving.rs`: deploy, then serve a
/// critical SqueezeNet stream against bursty x264 and Poisson lu_cb
/// background traffic.
#[must_use]
pub fn serve_reference(seed: u64) -> String {
    let sq = by_name("squeezenet").expect("catalog");
    let x264 = by_name("x264").expect("catalog");
    let lu = by_name("lu_cb").expect("catalog");
    let streams = vec![
        StreamSpec::critical(
            sq,
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            250_000_000,
        ),
        StreamSpec::background(
            x264,
            ArrivalPattern::Bursty {
                mean_gap: 20_000_000,
                burst_gap: 5_000_000,
                phase: 100_000_000,
            },
        ),
        StreamSpec::background(
            lu,
            ArrivalPattern::Poisson {
                mean_gap: 15_000_000,
            },
        ),
    ];
    let sys = System::new(ChipConfig::power7_plus(seed));
    let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    let sim = ServeSim::new(mgr, ServeConfig::quick(seed), streams).expect("valid serving setup");
    let report = sim.run(1, &mut NullRecorder);
    format!("{report:#?}\n")
}

/// A quick 8-chip fleet: the sharded epoch-barrier loop end to end, with
/// silicon lots, traffic lanes, and placement all derived from one seed.
#[must_use]
pub fn fleet_reference(seed: u64) -> String {
    let report = FleetSim::new(FleetConfig::quick(seed))
        .expect("valid quick fleet")
        .run(2);
    format!("{report:#?}\n")
}

/// A quick fleet with a 1-in-2 droop-storm campaign armed: fault hooks,
/// supervisor ladders, and routing reacting to injected damage.
#[must_use]
pub fn fleet_faulted_reference(seed: u64) -> String {
    let cfg = FleetConfig::quick(seed).with_faults(FleetFaultPlan::new(droop_storm(), 2));
    let report = FleetSim::new(cfg).expect("valid faulted fleet").run(2);
    format!("{report:#?}\n")
}

/// Renders the fleet scenarios into one labelled document (the exact
/// contents of `tests/data/fleet_reference.txt`).
#[must_use]
pub fn fleet_full_reference() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== FleetReport quick seed={HEAVY_SEED} ===");
    out.push_str(&fleet_reference(HEAVY_SEED));
    let _ = writeln!(out, "=== FleetReport faulted seed=7 ===");
    out.push_str(&fleet_faulted_reference(7));
    out
}

/// Renders every scenario into one labelled document (the checked-in
/// golden file's exact contents).
#[must_use]
pub fn full_reference() -> String {
    let mut out = String::new();
    for seed in SYSTEM_SEEDS {
        let _ = writeln!(out, "=== SystemReport atm-x264 seed={seed} ===");
        out.push_str(&system_reference(seed));
    }
    let _ = writeln!(out, "=== SystemReport virus seed={HEAVY_SEED} ===");
    out.push_str(&virus_reference(HEAVY_SEED));
    let _ = writeln!(out, "=== LimitTable quick seed={HEAVY_SEED} ===");
    out.push_str(&limit_table_reference(HEAVY_SEED));
    let _ = writeln!(out, "=== ServeReport quick seed={HEAVY_SEED} ===");
    out.push_str(&serve_reference(HEAVY_SEED));
    out
}
