//! Shared experiment context: configuration plus cached characterization.

use atm_chip::{ChipConfig, System};
use atm_core::charact::{
    idle_characterization, realistic_characterization_parallel, ubench_characterization,
    CharactConfig, IdleResult, RealisticResult, UbenchResult,
};
use atm_core::stress::{stress_test_deploy, StressTestResult};
use atm_telemetry::NullRecorder;
use atm_units::Nanos;
use atm_workloads::{realistic_set, Workload};

/// Experiment configuration: the seed (which silicon gets minted) and the
/// characterization effort.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Root seed.
    pub seed: u64,
    /// Trial duration / repeat counts for characterization searches.
    pub charact: CharactConfig,
    /// Duration of measured performance runs (Fig. 2/14).
    pub measure: Nanos,
    /// Worker threads for the app × core sweep of Fig. 10.
    pub threads: usize,
}

impl ExpConfig {
    /// Full-fidelity configuration (what EXPERIMENTS.md records).
    #[must_use]
    pub fn full(seed: u64) -> Self {
        ExpConfig {
            seed,
            charact: CharactConfig::standard(),
            measure: Nanos::new(200_000.0),
            threads: num_threads(),
        }
    }

    /// Reduced-effort configuration for tests and smoke runs.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        ExpConfig {
            seed,
            charact: CharactConfig::quick(),
            measure: Nanos::new(50_000.0),
            threads: num_threads(),
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

/// Caches the expensive characterization phases so exhibits can share
/// them: the full idle → uBench → realistic chain and the stress-test
/// deployment are each computed once per context.
#[derive(Debug)]
pub struct Context {
    cfg: ExpConfig,
    charact: Option<CharactCache>,
    stress: Option<StressTestResult>,
}

#[derive(Debug)]
struct CharactCache {
    idle: Vec<IdleResult>,
    ubench: Vec<UbenchResult>,
    realistic: RealisticResult,
}

impl Context {
    /// Creates a context.
    #[must_use]
    pub fn new(cfg: ExpConfig) -> Self {
        Context {
            cfg,
            charact: None,
            stress: None,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn cfg(&self) -> &ExpConfig {
        &self.cfg
    }

    /// A fresh system minted from the context's seed (static idle posture,
    /// no reductions programmed).
    #[must_use]
    pub fn fresh_system(&self) -> System {
        System::new(ChipConfig::power7_plus(self.cfg.seed))
    }

    /// A fresh system with the stress-test map deployed.
    #[must_use]
    pub fn deployed_system(&mut self) -> System {
        let map = self.stress().deployed_map();
        let mut sys = self.fresh_system();
        for core in atm_units::CoreId::all() {
            sys.set_reduction(core, map[core.flat_index()])
                .expect("validated map");
        }
        sys
    }

    /// Idle characterization results (cached).
    pub fn idle(&mut self) -> &[IdleResult] {
        self.ensure_charact();
        &self.charact.as_ref().expect("ensured").idle
    }

    /// uBench characterization results (cached).
    pub fn ubench(&mut self) -> &[UbenchResult] {
        self.ensure_charact();
        &self.charact.as_ref().expect("ensured").ubench
    }

    /// Realistic-workload characterization over the full SPEC+PARSEC set
    /// (cached).
    pub fn realistic(&mut self) -> &RealisticResult {
        self.ensure_charact();
        &self.charact.as_ref().expect("ensured").realistic
    }

    /// Stress-test deployment result (cached).
    pub fn stress(&mut self) -> &StressTestResult {
        if self.stress.is_none() {
            let mut sys = self.fresh_system();
            self.stress = Some(stress_test_deploy(&mut sys, 0, &self.cfg.charact));
        }
        self.stress.as_ref().expect("just computed")
    }

    /// Per-core idle limits as a flat array.
    pub fn idle_limits(&mut self) -> [usize; 16] {
        let mut limits = [0usize; 16];
        for r in self.idle() {
            limits[r.core.flat_index()] = r.idle_limit();
        }
        limits
    }

    /// Per-core uBench limits as a flat array.
    pub fn ubench_limits(&mut self) -> [usize; 16] {
        let mut limits = [0usize; 16];
        for r in self.ubench() {
            limits[r.core.flat_index()] = r.ubench_limit().min(r.idle_limit);
        }
        limits
    }

    fn ensure_charact(&mut self) {
        if self.charact.is_some() {
            return;
        }
        let mut sys = self.fresh_system();
        let idle = idle_characterization(&mut sys, &self.cfg.charact, &mut NullRecorder);
        let mut idle_limits = [0usize; 16];
        for r in &idle {
            idle_limits[r.core.flat_index()] = r.idle_limit();
        }
        let ubench =
            ubench_characterization(&mut sys, &idle_limits, &self.cfg.charact, &mut NullRecorder);
        let mut ubench_limits = [0usize; 16];
        for r in &ubench {
            ubench_limits[r.core.flat_index()] = r.ubench_limit().min(r.idle_limit);
        }

        // The Fig. 10 app × core sweep, fanned out across worker systems.
        let apps: Vec<&'static Workload> = realistic_set();
        let realistic = realistic_characterization_parallel(
            &mut sys,
            &ChipConfig::power7_plus(self.cfg.seed),
            &ubench_limits,
            &apps,
            &self.cfg.charact,
            self.cfg.threads,
        );
        self.charact = Some(CharactCache {
            idle,
            ubench,
            realistic,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_caches_characterization() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let a = ctx.idle_limits();
        let b = ctx.idle_limits();
        assert_eq!(a, b);
        // uBench never above idle.
        let ub = ctx.ubench_limits();
        for i in 0..16 {
            assert!(ub[i] <= a[i]);
        }
    }

    #[test]
    fn deployed_system_has_stress_map() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let map = ctx.stress().deployed_map();
        let sys = ctx.deployed_system();
        for core in atm_units::CoreId::all() {
            assert_eq!(sys.core(core).reduction(), map[core.flat_index()]);
        }
    }
}
