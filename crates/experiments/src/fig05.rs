//! Fig. 5: frequency vs. CPM delay reduction for four example cores.
//!
//! Paper reference: the default delay clocks all cores near 4600 MHz;
//! reducing the inserted delay raises frequency — non-uniformly, because
//! the inverter chain's steps encode different amounts of timing (e.g.
//! P1C6 jumps >200 MHz on its first step, then barely moves on its
//! second). Some cores safely exceed 5 GHz.

use std::fmt;

use atm_core::FineTuner;
use atm_units::{CoreId, MegaHz};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One core's frequency-vs-reduction sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Which core.
    pub core: CoreId,
    /// `(reduction steps, equilibrium frequency)` pairs from 0 to the
    /// core's idle limit.
    pub points: Vec<(usize, MegaHz)>,
}

/// The Fig. 5 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig05 {
    /// Sweeps for four representative cores.
    pub rows: Vec<SweepRow>,
}

/// Sweeps four cores chosen to span the chain-scale range (like the
/// paper's four example cores).
pub fn run(ctx: &mut Context) -> Fig05 {
    let idle_limits = ctx.idle_limits();

    // Pick four diverse cores: widest and narrowest idle limits plus two
    // in between, giving visibly different step granularities.
    let mut by_limit: Vec<CoreId> = CoreId::all().collect();
    by_limit.sort_by_key(|c| idle_limits[c.flat_index()]);
    let picks = [by_limit[0], by_limit[5], by_limit[10], by_limit[15]];

    let mut sys = ctx.fresh_system();
    let rows = picks
        .iter()
        .map(|&core| {
            let limit = idle_limits[core.flat_index()];
            let points = FineTuner::new(&mut sys).frequency_sweep(core, limit);
            SweepRow { core, points }
        })
        .collect();
    Fig05 { rows }
}

impl fmt::Display for Fig05 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 5 — ATM frequency vs. CPM delay reduction (idle)")?;
        for row in &self.rows {
            let cells: Vec<Vec<String>> = row
                .points
                .iter()
                .map(|(r, freq)| vec![r.to_string(), render::mhz(*freq)])
                .collect();
            writeln!(f, "core {}:", row.core)?;
            f.write_str(&render::table(&["steps", "MHz"], &cells))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn sweeps_start_near_4600_and_rise_nonuniformly() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len(), 4);
        let mut saw_5ghz = false;
        let mut step_gains: Vec<f64> = Vec::new();
        for row in &fig.rows {
            let (r0, f0) = row.points[0];
            assert_eq!(r0, 0);
            assert!(
                f0.get() > 4450.0 && f0.get() < 4950.0,
                "{} default at {f0}",
                row.core
            );
            for w in row.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: sweep not monotone", row.core);
                step_gains.push(w[1].1.get() - w[0].1.get());
            }
            if row.points.last().expect("points").1.get() > 5000.0 {
                saw_5ghz = true;
            }
        }
        assert!(saw_5ghz, "no swept core exceeded 5 GHz");
        // Non-linearity: per-step gains differ widely (paper Sec. IV-C).
        let max = step_gains.iter().copied().fold(f64::MIN, f64::max);
        let min = step_gains.iter().copied().fold(f64::MAX, f64::min);
        assert!(max - min > 50.0, "steps suspiciously uniform: {min}..{max}");
    }
}
