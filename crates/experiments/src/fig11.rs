//! Fig. 11: core frequencies after the test-time stress-test, with
//! optional vendor rollback.
//!
//! Paper reference: at their stress-test limits the cores span a > 200 MHz
//! differential (e.g. P0C1 vs. P0C7); rolling every core back by one or
//! two steps keeps the same inter-core variation trend while adding a
//! safety cushion.

use std::fmt;

use atm_chip::System;
use atm_core::charact::CharactConfig;
use atm_core::stress::stress_test_deploy;
use atm_units::{CoreId, MegaHz};
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// One rollback level's per-core frequencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployRow {
    /// Vendor rollback applied on top of the stress-test limits.
    pub rollback: usize,
    /// Idle ATM frequency per core at the deployed configuration.
    pub freqs: [MegaHz; 16],
}

impl DeployRow {
    /// Max − min frequency across cores.
    #[must_use]
    pub fn differential(&self) -> MegaHz {
        let max = self.freqs.iter().copied().fold(MegaHz::ZERO, MegaHz::max);
        let min = self
            .freqs
            .iter()
            .copied()
            .fold(MegaHz::new(1e6), MegaHz::min);
        max - min
    }
}

/// The Fig. 11 reproduction: stress-test limits and one/two-step
/// rollbacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11 {
    /// Rows for rollback 0, 1, 2.
    pub rows: Vec<DeployRow>,
}

/// Runs the deployment procedure at three rollback levels.
pub fn run(ctx: &mut Context) -> Fig11 {
    let stress = ctx.stress().clone();
    let cfg: CharactConfig = ctx.cfg().charact;
    let mut rows = vec![DeployRow {
        rollback: 0,
        freqs: stress.idle_frequencies,
    }];
    for rollback in [1usize, 2] {
        // Re-deploy on a fresh system at the rolled-back configuration and
        // read the idle frequencies (the stress limits themselves are the
        // cached ones; only the deployment differs).
        let mut sys: System = ctx.fresh_system();
        let result = stress_test_deploy(&mut sys, rollback, &cfg);
        rows.push(DeployRow {
            rollback,
            freqs: result.idle_frequencies,
        });
    }
    Fig11 { rows }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 11 — deployed core frequencies after the test-time stress-test"
        )?;
        let mut header: Vec<String> = vec!["rollback".into()];
        header.extend(CoreId::all().map(|c| c.to_string()));
        header.push("diff".into());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.rollback.to_string()];
                cells.extend(r.freqs.iter().map(|f| render::mhz(*f)));
                cells.push(render::mhz(r.differential()));
                cells
            })
            .collect();
        f.write_str(&render::table(&header_refs, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn differential_survives_rollback() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let fig = run(&mut ctx);
        assert_eq!(fig.rows.len(), 3);
        // Paper: >200 MHz differential at the limit.
        assert!(
            fig.rows[0].differential().get() > 150.0,
            "limit differential {}",
            fig.rows[0].differential()
        );
        // Rollback keeps variation exposed but lowers frequencies.
        for w in fig.rows.windows(2) {
            assert!(w[1].differential().get() > 80.0);
            let mean_a: f64 = w[0].freqs.iter().map(|f| f.get()).sum::<f64>() / 16.0;
            let mean_b: f64 = w[1].freqs.iter().map(|f| f.get()).sum::<f64>() / 16.0;
            assert!(mean_b < mean_a, "rollback did not lower mean frequency");
        }
    }
}
