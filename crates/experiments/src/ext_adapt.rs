//! Extension: the drifting-lot recharacterization experiment — the
//! "serve for months" scenario the paper's one-shot pipeline cannot
//! cover (Sec. VII future work; ROADMAP item 2).
//!
//! A conservatively governed server (one CPM step below the validated
//! ceiling) serves a critical inference stream while its silicon ages
//! epoch by epoch. The online adapter refines the Eq. 1 frequency
//! predictor from live harvests and micro-probe bursts, and re-tightens
//! margin once its confidence gate clears. The exhibit reports the
//! per-window RMS predictor error (which must shrink), the re-tighten
//! account, and the critical stream's tail latency through it all.

use atm_telemetry::NullRecorder;
use std::fmt;

use atm_adapt::{AdaptConfig, AdaptWindow, OnlineAdapter};
use atm_core::{AtmManager, Governor};
use atm_serve::{ArrivalPattern, ServeConfig, ServeSim, StreamSpec};
use atm_silicon::DriftModel;
use atm_units::Nanos;
use atm_workloads::by_name;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::render;

/// p99 budget for the critical stream, nanoseconds.
const SLO_NS: u64 = 250_000_000;

/// The drifting-lot account: learning curve, safety, and the re-tighten
/// ledger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtAdapt {
    /// Per-window RMS predictor error, milli-MHz.
    pub windows: Vec<AdaptWindow>,
    /// Whether the error shrank monotonically-on-average.
    pub error_shrinks: bool,
    /// Harvest + probe observations absorbed by the estimator.
    pub observations: u64,
    /// Micro-probe bursts run / deferred under backlog.
    pub probes_run: u64,
    /// Micro-probe bursts deferred under backlog.
    pub probes_deferred: u64,
    /// Re-tighten episodes applied.
    pub retightens: u64,
    /// Critical completions.
    pub completed: u64,
    /// Critical p99 over the whole run, nanoseconds.
    pub critical_p99_ns: u64,
    /// Critical SLO violations (must stay zero).
    pub slo_violations: u64,
}

/// Serves a drifting lot for 24 epochs with the loop closed.
pub fn run(ctx: &mut Context) -> ExtAdapt {
    let seed = ctx.cfg().seed;
    let streams = vec![
        StreamSpec::critical(
            by_name("squeezenet").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            SLO_NS,
        ),
        StreamSpec::background(
            by_name("x264").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 40_000_000,
            },
        ),
    ];
    let sys = ctx.fresh_system();
    let mgr = AtmManager::deploy(sys, Governor::Conservative, &ctx.cfg().charact);
    let cfg = ServeConfig::builder(seed)
        .epochs(24)
        .epoch_ns(200_000_000)
        .chip_trial(Nanos::new(1_000.0))
        .build()
        .expect("valid config");
    let mut sim = ServeSim::new(mgr, cfg, streams).expect("valid serving setup");
    sim.set_drift(DriftModel::standard(seed));
    sim.set_adapter(Box::new(OnlineAdapter::new(AdaptConfig::standard())));
    let report = sim.run(2, &mut NullRecorder);

    let adapt = report.adapt.as_ref().expect("adaptation was on");
    let critical = report.critical();
    ExtAdapt {
        windows: adapt.windows.clone(),
        error_shrinks: adapt.error_shrinks(),
        observations: adapt.observations,
        probes_run: adapt.probes_run,
        probes_deferred: adapt.probes_deferred,
        retightens: adapt.retightens,
        completed: critical.completed,
        critical_p99_ns: critical.p99_ns,
        slo_violations: critical.slo_violations,
    }
}

impl fmt::Display for ExtAdapt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — living guardbands: online recharacterization on a drifting lot"
        )?;
        let rows: Vec<Vec<String>> = self
            .windows
            .iter()
            .map(|w| {
                vec![
                    w.window.to_string(),
                    w.observations.to_string(),
                    format!("{:.1}", w.rms_milli_mhz as f64 / 1_000.0),
                ]
            })
            .collect();
        f.write_str(&render::table(&["window", "obs", "RMS (MHz)"], &rows))?;
        writeln!(
            f,
            "estimator: {} observations, {} probes ({} deferred), error {}",
            self.observations,
            self.probes_run,
            self.probes_deferred,
            if self.error_shrinks {
                "shrinks"
            } else {
                "did NOT shrink"
            }
        )?;
        writeln!(
            f,
            "serving: {} critical completions, p99 {:.1} ms (SLO {:.0} ms), {} violations, {} re-tightens",
            self.completed,
            self.critical_p99_ns as f64 / 1e6,
            SLO_NS as f64 / 1e6,
            self.slo_violations,
            self.retightens
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpConfig;

    #[test]
    fn drifting_lot_learns_and_serves() {
        let mut ctx = Context::new(ExpConfig::quick(42));
        let ext = run(&mut ctx);
        assert!(ext.error_shrinks, "windows: {:?}", ext.windows);
        assert_eq!(ext.slo_violations, 0);
        assert!(ext.observations > 0);
        assert!(ext.completed > 0);
    }
}
