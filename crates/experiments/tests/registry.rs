//! Every registered exhibit must run and render through the registry.

use atm_experiments::{run_by_name, Context, ExpConfig, ALL_EXPERIMENTS};

#[test]
fn every_exhibit_runs_and_renders() {
    let mut ctx = Context::new(ExpConfig::quick(42));
    for name in ALL_EXPERIMENTS {
        let report =
            run_by_name(&mut ctx, name).unwrap_or_else(|e| panic!("exhibit {name} failed: {e}"));
        assert!(!report.trim().is_empty(), "{name} rendered nothing");
        assert!(
            report.lines().count() >= 3,
            "{name} rendered suspiciously little:\n{report}"
        );
    }
}

#[test]
fn unknown_exhibit_is_an_error() {
    let mut ctx = Context::new(ExpConfig::quick(42));
    assert_eq!(run_by_name(&mut ctx, "fig99"), Err("fig99".to_owned()));
}

#[test]
fn registry_names_unique() {
    let mut names = ALL_EXPERIMENTS.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), ALL_EXPERIMENTS.len());
}
