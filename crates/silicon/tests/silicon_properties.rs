//! Property tests for the silicon models.

use atm_silicon::{
    AlphaPowerLaw, InverterChain, ProcessVariation, SeedSplitter, SiliconFactory, SiliconParams,
};
use atm_units::{Celsius, CoreId, Picos, Volts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn alpha_power_law_monotone_and_positive(
        d0 in 100.0f64..300.0,
        v_mv in 900u32..1400,
        t_deg in 20.0f64..90.0,
    ) {
        let m = AlphaPowerLaw::power7_plus(Picos::new(d0));
        let v = Volts::new(f64::from(v_mv) / 1000.0);
        let t = Celsius::new(t_deg);
        let d = m.delay(v, t);
        prop_assert!(d.get() > 0.0);
        let d_lower = m.delay(Volts::new(f64::from(v_mv) / 1000.0 - 0.01), t);
        prop_assert!(d_lower > d);
    }

    #[test]
    fn alpha_power_law_slope_is_negative(
        d0 in 100.0f64..300.0,
        v_mv in 900u32..1400,
    ) {
        let m = AlphaPowerLaw::power7_plus(Picos::new(d0));
        let slope = m.delay_slope_per_volt(Volts::new(f64::from(v_mv) / 1000.0), Celsius::new(45.0));
        prop_assert!(slope < 0.0);
    }

    #[test]
    fn process_variation_bounded_for_any_seed(seed in 0u64..10_000) {
        let pv = ProcessVariation::generate(seed, 0.012, 0.010, 0.008);
        for (_, f) in pv.iter() {
            prop_assert!((0.9..=1.1).contains(&f));
        }
        prop_assert!(pv.spread() >= 0.0 && pv.spread() <= 0.2);
    }

    #[test]
    fn inverter_chain_invariants(seed in 0u64..10_000, scale in 1.0f64..12.0, nl in 0.0f64..0.95) {
        let chain = InverterChain::manufacture(seed, scale, nl);
        prop_assert!(!chain.is_empty());
        // Strictly increasing cumulative, all steps positive.
        for i in 0..chain.len() {
            prop_assert!(chain.step_delay(i).get() > 0.0);
            prop_assert!(chain.cumulative(i + 1) > chain.cumulative(i));
        }
        // steps_within is the inverse of cumulative.
        for i in 0..=chain.len() {
            prop_assert!(chain.steps_within(chain.cumulative(i)) >= i.min(chain.len()));
        }
    }

    #[test]
    fn factory_output_physically_sane(seed in 0u64..2_000, flat in 0usize..16) {
        let factory = SiliconFactory::new(SiliconParams::power7_plus(), seed);
        let core = factory.core(CoreId::from_flat_index(flat));
        let v = Volts::new(1.25);
        let t = Celsius::new(45.0);
        let real = core.real_path_delay(v, t);
        // Real path between 160 and 210 ps at nominal (a ~4.8–6.2 GHz
        // silicon fmax band before margins).
        prop_assert!(real.get() > 160.0 && real.get() < 210.0, "real {real}");
        for i in 0..5 {
            let syn = core.cpm_synthetic_delay(i, v, t);
            prop_assert!(syn < real);
            prop_assert!(syn.get() > 0.5 * real.get());
        }
        prop_assert!(core.coverage_gap(0.0) >= 0.0);
        prop_assert!(core.coverage_gap(1.0) < 0.08, "gap too large");
        prop_assert!(core.robustness() > 0.0 && core.robustness() <= 1.0);
    }

    #[test]
    fn seed_splitter_distinct_domains(seed in 0u64..100_000, idx in 0u64..1000) {
        let s = SeedSplitter::new(seed);
        prop_assert_ne!(s.derive("a", idx), s.derive("b", idx));
        prop_assert_ne!(s.derive("a", idx), s.derive("a", idx + 1));
    }
}

#[test]
fn gap_monotone_in_stress_for_every_core() {
    let factory = SiliconFactory::new(SiliconParams::power7_plus(), 42);
    for silicon in factory.all_cores() {
        let mut prev = -1.0;
        for s in 0..=10 {
            let g = silicon.coverage_gap(f64::from(s) / 10.0);
            assert!(g >= prev, "{}: gap not monotone", silicon.id());
            prev = g;
        }
    }
}
