//! Manufacturing process variation across dies and within a die.

use atm_units::{CoreId, CORES_PER_PROC, NUM_PROCS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::seed::SeedSplitter;

/// Per-core silicon speed factors produced by the lithography model.
///
/// Each core receives a *delay multiplier* around 1.0: a factor below 1.0
/// is a fast core (shorter critical paths), above 1.0 a slow core. The
/// factor combines three classical components:
///
/// * **die-to-die**: each processor die has a systematic offset;
/// * **within-die systematic**: a smooth spatial gradient across the die
///   (cores at one edge are faster than the other);
/// * **within-die random**: per-core random residue.
///
/// # Examples
///
/// ```
/// use atm_silicon::ProcessVariation;
/// use atm_units::CoreId;
///
/// let pv = ProcessVariation::generate(42, 0.012, 0.010, 0.008);
/// let f = pv.delay_factor(CoreId::new(0, 0));
/// assert!(f > 0.9 && f < 1.1);
/// // Deterministic in the seed:
/// let pv2 = ProcessVariation::generate(42, 0.012, 0.010, 0.008);
/// assert_eq!(f, pv2.delay_factor(CoreId::new(0, 0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariation {
    factors: Vec<f64>,
}

impl ProcessVariation {
    /// Generates per-core delay factors from a seed.
    ///
    /// `die_sigma`, `spatial_sigma` and `random_sigma` are the relative
    /// (1-sigma) magnitudes of the three components; typical deep-submicron
    /// values are around 1%.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is negative or ≥ 0.2 (a fifth of nominal speed —
    /// far outside any plausible manufacturing corner).
    #[must_use]
    pub fn generate(seed: u64, die_sigma: f64, spatial_sigma: f64, random_sigma: f64) -> Self {
        for (name, s) in [
            ("die_sigma", die_sigma),
            ("spatial_sigma", spatial_sigma),
            ("random_sigma", random_sigma),
        ] {
            assert!((0.0..0.2).contains(&s), "{name} out of range: {s}");
        }
        let split = SeedSplitter::new(seed);
        let mut factors = Vec::with_capacity(NUM_PROCS * CORES_PER_PROC);
        for p in 0..NUM_PROCS {
            let mut die_rng = StdRng::seed_from_u64(split.derive("die", p as u64));
            let die_offset = gauss(&mut die_rng) * die_sigma;
            // A random linear gradient across the 8 cores of the die.
            let gradient = gauss(&mut die_rng) * spatial_sigma;
            for c in 0..CORES_PER_PROC {
                let mut core_rng =
                    StdRng::seed_from_u64(split.derive("core", (p * CORES_PER_PROC + c) as u64));
                let pos = (c as f64 / (CORES_PER_PROC - 1) as f64) - 0.5;
                let systematic = gradient * pos * 2.0;
                let random = gauss(&mut core_rng) * random_sigma;
                let factor = (1.0 + die_offset + systematic + random).clamp(0.9, 1.1);
                factors.push(factor);
            }
        }
        ProcessVariation { factors }
    }

    /// The delay multiplier for `core` (below 1.0 = fast silicon).
    #[must_use]
    pub fn delay_factor(&self, core: CoreId) -> f64 {
        self.factors[core.flat_index()]
    }

    /// Iterates over `(core, factor)` pairs in `(proc, core)` order.
    pub fn iter(&self) -> impl Iterator<Item = (CoreId, f64)> + '_ {
        CoreId::all().map(move |id| (id, self.delay_factor(id)))
    }

    /// The spread between the slowest and fastest core, as a fraction
    /// (e.g. `0.05` means 5% delay difference).
    #[must_use]
    pub fn spread(&self) -> f64 {
        let max = self.factors.iter().copied().fold(f64::MIN, f64::max);
        let min = self.factors.iter().copied().fold(f64::MAX, f64::min);
        max - min
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(seed: u64) -> ProcessVariation {
        ProcessVariation::generate(seed, 0.012, 0.010, 0.008)
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(pv(7), pv(7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(pv(7), pv(8));
    }

    #[test]
    fn factors_bounded() {
        for seed in 0..50 {
            for (_, f) in pv(seed).iter() {
                assert!((0.9..=1.1).contains(&f));
            }
        }
    }

    #[test]
    fn nonzero_spread_is_typical() {
        // Across many seeds the chip should almost always show measurable
        // inter-core variation; require it for a large majority.
        let spreads: Vec<f64> = (0..50).map(|s| pv(s).spread()).collect();
        let with_spread = spreads.iter().filter(|&&s| s > 0.01).count();
        assert!(
            with_spread > 40,
            "only {with_spread}/50 seeds show >1% spread"
        );
    }

    #[test]
    fn covers_all_sixteen_cores() {
        assert_eq!(pv(1).iter().count(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_sigma_rejected() {
        let _ = ProcessVariation::generate(1, 0.5, 0.01, 0.01);
    }

    #[test]
    fn dies_have_distinct_offsets() {
        // With a die-level component, the per-die means should differ for
        // most seeds.
        let mut distinct = 0;
        for seed in 0..20 {
            let v = pv(seed);
            let mean_p0: f64 = (0..8)
                .map(|c| v.delay_factor(CoreId::new(0, c)))
                .sum::<f64>()
                / 8.0;
            let mean_p1: f64 = (0..8)
                .map(|c| v.delay_factor(CoreId::new(1, c)))
                .sum::<f64>()
                / 8.0;
            if (mean_p0 - mean_p1).abs() > 0.002 {
                distinct += 1;
            }
        }
        assert!(
            distinct >= 12,
            "die offsets indistinguishable: {distinct}/20"
        );
    }
}
