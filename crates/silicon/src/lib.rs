//! Silicon-level models for the `power-atm` stack: manufacturing process
//! variation, voltage/temperature-dependent critical-path delay, and the
//! non-linear inverter chains that the POWER7+ Critical Path Monitors use
//! to encode timing.
//!
//! The paper's phenomena all originate here:
//!
//! * **Inter-core speed variation** (Sec. IV-B) — lithographic imperfection
//!   makes some cores' circuits faster; modeled by [`ProcessVariation`].
//! * **Voltage sensitivity of delay** — the alpha-power law
//!   [`AlphaPowerLaw`] maps supply voltage (after IR drop and droops) to
//!   path delay, which the ATM loop converts to frequency.
//! * **CPM non-linearity** (Sec. IV-C) — the programmable inserted delay is
//!   built from an inverter chain whose per-step delays vary with
//!   manufacturing; modeled by [`InverterChain`].
//!
//! [`SiliconFactory`] ties these together: given a seed it mints a
//! [`CoreSilicon`] description for every core of the two-socket system,
//! deterministic and reproducible.
//!
//! # Examples
//!
//! ```
//! use atm_silicon::{SiliconFactory, SiliconParams};
//! use atm_units::{Celsius, CoreId, Volts};
//!
//! let factory = SiliconFactory::new(SiliconParams::power7_plus(), 42);
//! let core = factory.core(CoreId::new(0, 3));
//! let d = core.real_path_delay(Volts::new(1.25), Celsius::new(45.0));
//! assert!(d.get() > 150.0 && d.get() < 250.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_desc;
mod drift;
mod factory;
mod inverter;
mod path;
mod seed;
mod variation;

pub use core_desc::CoreSilicon;
pub use drift::DriftModel;
pub use factory::{SiliconFactory, SiliconParams};
pub use inverter::{InverterChain, MAX_INSERTED_STEPS};
pub use path::AlphaPowerLaw;
pub use seed::SeedSplitter;
pub use variation::ProcessVariation;
