//! Slow silicon drift: aging and seasonal temperature excursions.
//!
//! Characterization (PR 2) freezes a per-core `LimitTable` against the
//! silicon *as manufactured*; a serving fleet then runs for months while
//! transistors age (NBTI/HCI shift raises threshold voltages, so paths
//! slow down) and ambient seasons move the die's thermal operating point.
//! [`DriftModel`] injects both effects as a deterministic, integer-valued
//! schedule: given a core and an epoch index it returns the total
//! parts-per-million by which the core's nominal path delay has grown.
//!
//! Two terms compose the schedule:
//!
//! * **Aging** — a per-core linear slope in ppm/epoch. Each core draws its
//!   own slope from the model seed (splitmix-scattered around the mean),
//!   so a drifting lot ages *unevenly* — exactly the spread an online
//!   estimator has to re-learn per core.
//! * **Season** — a fleet-wide triangle wave of ambient temperature,
//!   expressed in centidegrees and mapped onto delay through the POWER7+
//!   path temperature coefficient (`5e-5 /°C` ⇒ 50 ppm per degree ⇒
//!   1 ppm per 2 centidegrees). A triangle needs no trigonometry, so the
//!   schedule stays pure integer arithmetic.
//!
//! The model never *speeds a core up*: both terms are non-negative, so a
//! drifted core is always at or below its validated margin — the
//! dangerous direction for a frozen fine-tuning table.

use serde::{Deserialize, Serialize};

use crate::seed::SeedSplitter;

/// Delay ppm per centidegree of ambient offset (50 ppm/°C halved).
const PPM_PER_2_CENTIDEG: u64 = 1;

/// A deterministic aging + seasonal-temperature drift schedule.
///
/// The returned ppm is a pure function of `(seed, core, epoch)`: two
/// models built from the same parameters agree everywhere, which is what
/// keeps drifted fleet runs byte-identical across worker counts.
///
/// # Examples
///
/// ```
/// use atm_silicon::DriftModel;
///
/// let drift = DriftModel::standard(42);
/// // Drift starts at zero and only ever slows a core down.
/// assert_eq!(drift.delay_ppm(0, 0), drift.seasonal_ppm(0));
/// assert!(drift.delay_ppm(0, 50) >= drift.delay_ppm(0, 0));
/// // Deterministic: same parameters, same schedule.
/// assert_eq!(
///     DriftModel::standard(42).delay_ppm(3, 17),
///     drift.delay_ppm(3, 17),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftModel {
    seed: u64,
    /// Mean aging slope, ppm of nominal delay per epoch.
    aging_ppm_per_epoch: u32,
    /// Per-core slope scatter, in percent of the mean (0 = uniform lot).
    scatter_pct: u32,
    /// Peak seasonal ambient offset, centidegrees above nominal.
    seasonal_amp_centideg: u32,
    /// Epochs per full seasonal cycle (0 disables the seasonal term).
    seasonal_period: u32,
}

impl DriftModel {
    /// Builds a drift schedule from explicit parameters.
    #[must_use]
    pub fn new(
        seed: u64,
        aging_ppm_per_epoch: u32,
        scatter_pct: u32,
        seasonal_amp_centideg: u32,
        seasonal_period: u32,
    ) -> Self {
        DriftModel {
            seed,
            aging_ppm_per_epoch,
            scatter_pct,
            seasonal_amp_centideg,
            seasonal_period,
        }
    }

    /// A gentle production-fleet drift: 40 ppm/epoch mean aging with ±50%
    /// per-core scatter and an 8 °C seasonal swing over 8 epochs.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        DriftModel::new(seed, 40, 50, 800, 8)
    }

    /// A stress drift for adaptation tests: an order of magnitude faster
    /// aging than [`DriftModel::standard`], same scatter and season.
    #[must_use]
    pub fn aggressive(seed: u64) -> Self {
        DriftModel::new(seed, 400, 50, 800, 8)
    }

    /// The model's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rebases the schedule on a different seed (same slopes and season).
    /// Fleet runs use this to give every chip its own aging scatter.
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Self {
        DriftModel { seed, ..*self }
    }

    /// The per-core aging slope in ppm/epoch: the mean slope scattered by
    /// a seed-derived factor in `[100 − scatter, 100 + scatter]` percent.
    #[must_use]
    pub fn aging_slope_ppm(&self, core_flat: usize) -> u64 {
        let mean = u64::from(self.aging_ppm_per_epoch);
        if self.scatter_pct == 0 {
            return mean;
        }
        let span = 2 * u64::from(self.scatter_pct) + 1;
        let draw = SeedSplitter::new(self.seed).derive("drift-aging", core_flat as u64) % span;
        // draw ∈ [0, 2·scatter] ⇒ factor ∈ [100 − scatter, 100 + scatter].
        let factor = 100 + draw - u64::from(self.scatter_pct);
        mean * factor / 100
    }

    /// The seasonal delay term at `epoch`, in ppm: a triangle wave over
    /// `seasonal_period` epochs, peaking at the configured amplitude.
    #[must_use]
    pub fn seasonal_ppm(&self, epoch: u64) -> u64 {
        if self.seasonal_period == 0 || self.seasonal_amp_centideg == 0 {
            return 0;
        }
        let period = u64::from(self.seasonal_period);
        let phase = epoch % period;
        let half = period.div_ceil(2);
        // Rise over the first half, fall over the second.
        let level = if phase <= half { phase } else { period - phase };
        let centideg = u64::from(self.seasonal_amp_centideg) * level / half;
        centideg * PPM_PER_2_CENTIDEG / 2
    }

    /// Total delay growth of `core_flat`'s nominal path at `epoch`, in
    /// parts per million (aging plus season; never negative).
    #[must_use]
    pub fn delay_ppm(&self, core_flat: usize, epoch: u64) -> u64 {
        self.aging_slope_ppm(core_flat)
            .saturating_mul(epoch)
            .saturating_add(self.seasonal_ppm(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = DriftModel::standard(1);
        assert_eq!(a.delay_ppm(5, 9), DriftModel::standard(1).delay_ppm(5, 9));
        let b = DriftModel::standard(2);
        let differs = (0..16).any(|c| a.aging_slope_ppm(c) != b.aging_slope_ppm(c));
        assert!(differs, "seed does not reach the aging scatter");
    }

    #[test]
    fn aging_is_monotone_per_core() {
        let d = DriftModel::standard(7);
        for core in 0..16 {
            let mut last = 0;
            for epoch in 0..32 {
                let now = d.aging_slope_ppm(core) * epoch;
                assert!(now >= last);
                last = now;
            }
        }
    }

    #[test]
    fn scatter_spreads_the_lot() {
        let d = DriftModel::standard(42);
        let slopes: Vec<u64> = (0..16).map(|c| d.aging_slope_ppm(c)).collect();
        assert!(slopes.iter().any(|s| *s != slopes[0]), "uniform lot");
        for s in &slopes {
            assert!((20..=60).contains(s), "slope {s} outside ±50% of 40");
        }
    }

    #[test]
    fn season_is_periodic_and_bounded() {
        let d = DriftModel::standard(3);
        for epoch in 0..40 {
            assert_eq!(d.seasonal_ppm(epoch), d.seasonal_ppm(epoch + 8));
            assert!(d.seasonal_ppm(epoch) <= 400, "8 °C caps at 400 ppm");
        }
        assert_eq!(d.seasonal_ppm(0), 0);
        assert_eq!(d.seasonal_ppm(4), 400);
    }

    #[test]
    fn zeroed_terms_vanish() {
        let flat = DriftModel::new(1, 0, 0, 0, 0);
        for epoch in 0..16 {
            assert_eq!(flat.delay_ppm(0, epoch), 0);
        }
        let no_season = DriftModel::new(1, 10, 0, 0, 0);
        assert_eq!(no_season.delay_ppm(2, 5), 50);
    }
}
