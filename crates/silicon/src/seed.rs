//! Deterministic seed derivation.
//!
//! Every stochastic component in the stack (process variation, inverter-step
//! jitter, droop event streams) must be independently seeded yet fully
//! reproducible from a single experiment seed. [`SeedSplitter`] derives
//! well-mixed child seeds from a root seed and a domain label, using the
//! SplitMix64 finalizer.

/// Derives independent child seeds from a root seed.
///
/// # Examples
///
/// ```
/// use atm_silicon::SeedSplitter;
///
/// let root = SeedSplitter::new(42);
/// let a = root.derive("process-variation", 0);
/// let b = root.derive("process-variation", 1);
/// let c = root.derive("inverter-chain", 0);
/// assert_ne!(a, b);
/// assert_ne!(a, c);
/// // Deterministic: same inputs, same seed.
/// assert_eq!(a, SeedSplitter::new(42).derive("process-variation", 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplitter {
    root: u64,
}

impl SeedSplitter {
    /// Creates a splitter over the given root seed.
    #[must_use]
    pub fn new(root: u64) -> Self {
        SeedSplitter { root }
    }

    /// Returns the root seed.
    #[must_use]
    pub fn root(self) -> u64 {
        self.root
    }

    /// Derives a child seed for `(domain, index)`.
    ///
    /// Distinct domains or indices yield (with overwhelming probability)
    /// distinct, decorrelated seeds.
    #[must_use]
    pub fn derive(self, domain: &str, index: u64) -> u64 {
        let mut h = self.root ^ 0x9e37_79b9_7f4a_7c15;
        for &b in domain.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        splitmix64(h ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
    }

    /// Derives a child splitter, for nested namespaces.
    #[must_use]
    pub fn child(self, domain: &str, index: u64) -> SeedSplitter {
        SeedSplitter::new(self.derive(domain, index))
    }
}

/// The SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let s = SeedSplitter::new(7);
        assert_eq!(s.derive("a", 3), SeedSplitter::new(7).derive("a", 3));
    }

    #[test]
    fn domains_decorrelate() {
        let s = SeedSplitter::new(7);
        assert_ne!(s.derive("a", 0), s.derive("b", 0));
        assert_ne!(s.derive("a", 0), s.derive("a", 1));
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(
            SeedSplitter::new(1).derive("x", 0),
            SeedSplitter::new(2).derive("x", 0)
        );
    }

    #[test]
    fn no_collisions_over_small_space() {
        let s = SeedSplitter::new(99);
        let mut seen = HashSet::new();
        for domain in ["pv", "inv", "droop", "gap"] {
            for i in 0..256 {
                assert!(
                    seen.insert(s.derive(domain, i)),
                    "collision at {domain}/{i}"
                );
            }
        }
    }

    #[test]
    fn child_namespaces_nest() {
        let s = SeedSplitter::new(5);
        let c0 = s.child("core", 0);
        let c1 = s.child("core", 1);
        assert_ne!(c0.derive("inv", 0), c1.derive("inv", 0));
    }
}
