//! Seeded factory minting the silicon description of a whole system.

use atm_units::{CoreId, Picos};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::core_desc::{CoreSilicon, CPMS_PER_CORE};
use crate::inverter::InverterChain;
use crate::path::AlphaPowerLaw;
use crate::seed::SeedSplitter;
use crate::variation::ProcessVariation;

/// Tunable parameters of the silicon model, calibrated to the paper's
/// POWER7+ measurements by [`SiliconParams::power7_plus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiliconParams {
    /// Nominal (process-mean) real-critical-path delay at 1.25 V / 45 °C.
    pub d0_nominal: Picos,
    /// Die-to-die process sigma.
    pub die_sigma: f64,
    /// Within-die systematic (spatial) sigma.
    pub spatial_sigma: f64,
    /// Within-die random sigma.
    pub random_sigma: f64,
    /// Mean CPM synthetic-path mimic ratio (fraction of real path delay).
    pub mimic_ratio_mean: f64,
    /// Half-width of per-CPM mimic-ratio variation.
    pub mimic_ratio_jitter: f64,
    /// Range of per-core base coverage gap `[lo, hi]`.
    pub gap_base_range: (f64, f64),
    /// Gap sensitivity of ordinary (robust) cores `[lo, hi]`.
    pub gap_sens_robust_range: (f64, f64),
    /// Gap sensitivity of vulnerable cores `[lo, hi]`.
    pub gap_sens_vulnerable_range: (f64, f64),
    /// Fraction of cores manufactured with vulnerable CPM placement.
    pub vulnerable_fraction: f64,
    /// Log-uniform range of per-core inverter-chain step scale, in ps.
    pub step_scale_range_ps: (f64, f64),
    /// Inverter-chain per-step non-linearity (0 = linear).
    pub chain_nonlinearity: f64,
}

impl SiliconParams {
    /// Parameters calibrated so a seeded two-socket system reproduces the
    /// paper's ranges: idle limits of 2–11 steps at 4850–5200 MHz, preset
    /// inserted delays of roughly 7–20, and six-ish uBench-fragile cores.
    #[must_use]
    pub fn power7_plus() -> Self {
        SiliconParams {
            d0_nominal: Picos::new(183.0),
            die_sigma: 0.010,
            spatial_sigma: 0.010,
            random_sigma: 0.009,
            mimic_ratio_mean: 0.80,
            mimic_ratio_jitter: 0.012,
            gap_base_range: (0.004, 0.016),
            gap_sens_robust_range: (0.000, 0.006),
            gap_sens_vulnerable_range: (0.010, 0.030),
            vulnerable_fraction: 0.375,
            step_scale_range_ps: (2.4, 8.5),
            chain_nonlinearity: 0.55,
        }
    }

    fn validate(&self) {
        assert!(self.d0_nominal.get() > 0.0, "d0_nominal must be positive");
        assert!(
            self.mimic_ratio_mean + self.mimic_ratio_jitter < 1.0
                && self.mimic_ratio_mean - self.mimic_ratio_jitter > 0.0,
            "mimic ratio range must stay within (0,1)"
        );
        assert!(self.gap_base_range.0 <= self.gap_base_range.1);
        assert!(self.gap_sens_robust_range.0 <= self.gap_sens_robust_range.1);
        assert!(self.gap_sens_vulnerable_range.0 <= self.gap_sens_vulnerable_range.1);
        assert!((0.0..=1.0).contains(&self.vulnerable_fraction));
        assert!(
            self.step_scale_range_ps.0 > 0.0
                && self.step_scale_range_ps.0 <= self.step_scale_range_ps.1,
            "step scale range invalid"
        );
    }
}

impl Default for SiliconParams {
    fn default() -> Self {
        SiliconParams::power7_plus()
    }
}

/// Deterministic factory for per-core [`CoreSilicon`] descriptions.
///
/// Two factories with the same parameters and seed mint identical silicon —
/// the foundation of reproducible experiments.
///
/// # Examples
///
/// ```
/// use atm_silicon::{SiliconFactory, SiliconParams};
/// use atm_units::CoreId;
///
/// let f1 = SiliconFactory::new(SiliconParams::power7_plus(), 9);
/// let f2 = SiliconFactory::new(SiliconParams::power7_plus(), 9);
/// assert_eq!(f1.core(CoreId::new(0, 5)), f2.core(CoreId::new(0, 5)));
/// ```
#[derive(Debug, Clone)]
pub struct SiliconFactory {
    params: SiliconParams,
    seed: SeedSplitter,
    variation: ProcessVariation,
}

impl SiliconFactory {
    /// Creates a factory for the given parameters and seed.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are internally inconsistent (see the field
    /// documentation on [`SiliconParams`]).
    #[must_use]
    pub fn new(params: SiliconParams, seed: u64) -> Self {
        params.validate();
        let split = SeedSplitter::new(seed);
        let variation = ProcessVariation::generate(
            split.derive("process-variation", 0),
            params.die_sigma,
            params.spatial_sigma,
            params.random_sigma,
        );
        SiliconFactory {
            params,
            seed: split,
            variation,
        }
    }

    /// The process-variation map this factory drew.
    #[must_use]
    pub fn variation(&self) -> &ProcessVariation {
        &self.variation
    }

    /// The factory's parameters.
    #[must_use]
    pub fn params(&self) -> &SiliconParams {
        &self.params
    }

    /// Mints the silicon description of `core`.
    #[must_use]
    pub fn core(&self, core: CoreId) -> CoreSilicon {
        let p = &self.params;
        let flat = core.flat_index() as u64;
        let mut rng = StdRng::seed_from_u64(self.seed.derive("core-silicon", flat));

        let d0 = p.d0_nominal * self.variation.delay_factor(core);
        let real_path = AlphaPowerLaw::power7_plus(d0);

        let mut mimic = [0.0; CPMS_PER_CORE];
        for m in &mut mimic {
            *m = p.mimic_ratio_mean + rng.gen_range(-p.mimic_ratio_jitter..=p.mimic_ratio_jitter);
        }

        let gap_base = rng.gen_range(p.gap_base_range.0..=p.gap_base_range.1);
        let vulnerable = rng.gen_bool(p.vulnerable_fraction);
        let gap_sensitivity = if vulnerable {
            rng.gen_range(p.gap_sens_vulnerable_range.0..=p.gap_sens_vulnerable_range.1)
        } else {
            rng.gen_range(p.gap_sens_robust_range.0..=p.gap_sens_robust_range.1)
        };

        // Log-uniform step scale: wide multiplicative spread core-to-core.
        let (lo, hi) = p.step_scale_range_ps;
        let scale = lo * (hi / lo).powf(rng.gen_range(0.0..=1.0));
        let chain = InverterChain::manufacture(
            self.seed.derive("inverter-chain", flat),
            scale,
            p.chain_nonlinearity,
        );

        CoreSilicon::new(core, real_path, mimic, gap_base, gap_sensitivity, chain)
    }

    /// Mints every core of the two-socket system, in `(proc, core)` order.
    #[must_use]
    pub fn all_cores(&self) -> Vec<CoreSilicon> {
        CoreId::all().map(|id| self.core(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_units::{Celsius, Volts};

    fn factory(seed: u64) -> SiliconFactory {
        SiliconFactory::new(SiliconParams::power7_plus(), seed)
    }

    #[test]
    fn deterministic() {
        let a = factory(3).all_cores();
        let b = factory(3).all_cores();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_silicon() {
        assert_ne!(factory(3).all_cores(), factory(4).all_cores());
    }

    #[test]
    fn sixteen_cores() {
        assert_eq!(factory(1).all_cores().len(), 16);
    }

    #[test]
    fn cores_exhibit_speed_spread() {
        let cores = factory(42).all_cores();
        let v = Volts::new(1.25);
        let t = Celsius::new(45.0);
        let delays: Vec<f64> = cores
            .iter()
            .map(|c| c.real_path_delay(v, t).get())
            .collect();
        let min = delays.iter().copied().fold(f64::MAX, f64::min);
        let max = delays.iter().copied().fold(f64::MIN, f64::max);
        assert!(max / min > 1.015, "spread too small: {min}..{max}");
        assert!(max / min < 1.12, "spread implausibly large: {min}..{max}");
    }

    #[test]
    fn some_cores_vulnerable_some_robust() {
        // Across the default parameters roughly 3/8 of cores are minted
        // vulnerable; check a seed gives a mixed population.
        let cores = factory(42).all_cores();
        let vulnerable = cores
            .iter()
            .filter(|c| c.coverage_gap(1.0) - c.coverage_gap(0.0) > 0.009)
            .count();
        assert!(vulnerable >= 2, "no vulnerable cores minted");
        assert!(vulnerable <= 12, "nearly all cores vulnerable");
    }

    #[test]
    fn step_scales_span_a_wide_range() {
        let cores = factory(42).all_cores();
        let scales: Vec<f64> = cores
            .iter()
            .map(|c| c.inverter_chain().mean_step().get())
            .collect();
        let min = scales.iter().copied().fold(f64::MAX, f64::min);
        let max = scales.iter().copied().fold(f64::MIN, f64::max);
        assert!(max / min > 1.5, "chain scales too uniform: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "mimic ratio")]
    fn invalid_params_rejected() {
        let mut p = SiliconParams::power7_plus();
        p.mimic_ratio_mean = 0.999;
        p.mimic_ratio_jitter = 0.1;
        let _ = SiliconFactory::new(p, 0);
    }
}
