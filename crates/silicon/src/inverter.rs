//! The programmable inverter chain that encodes CPM inserted delay.

use atm_units::Picos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Maximum number of inserted-delay steps a CPM supports (a 5-bit select).
pub const MAX_INSERTED_STEPS: usize = 31;

/// A manufactured inverter chain with per-step delays.
///
/// The CPM inserted delay selects how many inverters of this chain a signal
/// traverses. By design the chain has linear graduation, but manufacturing
/// makes the per-step delays *non-linear* (Sec. IV-C): one step may encode
/// 1–3 margin units. The chain's overall *scale* also varies core-to-core,
/// which is why P0C4 needs ten steps for the same 500 MHz that P1C7 reaches
/// in two.
///
/// Step delays are strictly positive and the cumulative delay is therefore
/// strictly increasing — an invariant the ATM limit-search relies on.
///
/// # Examples
///
/// ```
/// use atm_silicon::InverterChain;
///
/// let chain = InverterChain::manufacture(7, 3.5, 0.5);
/// assert!(chain.cumulative(10) > chain.cumulative(9));
/// assert_eq!(chain.cumulative(0).get(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InverterChain {
    step_delays: Vec<Picos>,
}

impl InverterChain {
    /// Manufactures a chain from a seed.
    ///
    /// `scale_ps` is the intended per-step delay in picoseconds;
    /// `nonlinearity` in `[0, 1)` controls how far individual steps may
    /// deviate from the scale (0 = perfectly linear chain).
    ///
    /// # Panics
    ///
    /// Panics if `scale_ps` is not positive or `nonlinearity` is outside
    /// `[0, 1)`.
    #[must_use]
    pub fn manufacture(seed: u64, scale_ps: f64, nonlinearity: f64) -> Self {
        assert!(
            scale_ps > 0.0,
            "step scale must be positive, got {scale_ps}"
        );
        assert!(
            (0.0..1.0).contains(&nonlinearity),
            "nonlinearity must be in [0, 1), got {nonlinearity}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let step_delays = (0..MAX_INSERTED_STEPS)
            .map(|_| {
                // Multiplicative jitter in [1-n, 1+1.5n]: skewed upward so a
                // few steps encode much more timing than average (the paper's
                // "one to three units" per step), with a floor keeping every
                // step strictly positive.
                let jitter = rng.gen_range(-nonlinearity..=1.5 * nonlinearity);
                Picos::new((scale_ps * (1.0 + jitter)).max(scale_ps * 0.05))
            })
            .collect();
        InverterChain { step_delays }
    }

    /// Builds a perfectly linear chain (used by ablation benches comparing
    /// linear vs. manufactured chains).
    ///
    /// # Panics
    ///
    /// Panics if `scale_ps` is not positive.
    #[must_use]
    pub fn linear(scale_ps: f64) -> Self {
        assert!(
            scale_ps > 0.0,
            "step scale must be positive, got {scale_ps}"
        );
        InverterChain {
            step_delays: vec![Picos::new(scale_ps); MAX_INSERTED_STEPS],
        }
    }

    /// Number of selectable steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.step_delays.len()
    }

    /// Whether the chain has no steps (never true for manufactured chains).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.step_delays.is_empty()
    }

    /// The delay of step `index` (the time added by selecting one more
    /// inverter past `index` inverters).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn step_delay(&self, index: usize) -> Picos {
        self.step_delays[index]
    }

    /// Total inserted delay when `steps` inverters are selected.
    ///
    /// # Panics
    ///
    /// Panics if `steps > len()`.
    #[must_use]
    pub fn cumulative(&self, steps: usize) -> Picos {
        assert!(
            steps <= self.step_delays.len(),
            "requested {steps} steps from a {}-step chain",
            self.step_delays.len()
        );
        self.step_delays[..steps].iter().copied().sum()
    }

    /// The largest step count whose cumulative delay does not exceed
    /// `budget`, i.e. the chain-quantized version of a target delay.
    #[must_use]
    pub fn steps_within(&self, budget: Picos) -> usize {
        let mut acc = Picos::ZERO;
        for (i, &d) in self.step_delays.iter().enumerate() {
            acc += d;
            if acc > budget {
                return i;
            }
        }
        self.step_delays.len()
    }

    /// Mean per-step delay, the chain's effective scale.
    #[must_use]
    pub fn mean_step(&self) -> Picos {
        self.cumulative(self.len()) / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            InverterChain::manufacture(3, 4.0, 0.5),
            InverterChain::manufacture(3, 4.0, 0.5)
        );
    }

    #[test]
    fn cumulative_strictly_increasing() {
        let chain = InverterChain::manufacture(11, 3.0, 0.8);
        for i in 0..chain.len() {
            assert!(chain.cumulative(i + 1) > chain.cumulative(i));
        }
    }

    #[test]
    fn all_steps_positive() {
        for seed in 0..20 {
            let chain = InverterChain::manufacture(seed, 2.5, 0.9);
            for i in 0..chain.len() {
                assert!(chain.step_delay(i).get() > 0.0);
            }
        }
    }

    #[test]
    fn linear_chain_is_uniform() {
        let chain = InverterChain::linear(3.0);
        assert_eq!(chain.len(), MAX_INSERTED_STEPS);
        assert!((chain.cumulative(10).get() - 30.0).abs() < 1e-12);
        assert_eq!(chain.mean_step(), Picos::new(3.0));
    }

    #[test]
    fn steps_within_budget() {
        let chain = InverterChain::linear(3.0);
        assert_eq!(chain.steps_within(Picos::new(9.5)), 3);
        assert_eq!(chain.steps_within(Picos::new(9.0)), 3);
        assert_eq!(chain.steps_within(Picos::ZERO), 0);
        assert_eq!(chain.steps_within(Picos::new(1e6)), MAX_INSERTED_STEPS);
    }

    #[test]
    fn steps_within_consistent_with_cumulative() {
        let chain = InverterChain::manufacture(5, 3.5, 0.7);
        for i in 0..=chain.len() {
            let budget = chain.cumulative(i);
            let n = chain.steps_within(budget);
            assert!(chain.cumulative(n) <= budget);
            if n < chain.len() {
                assert!(chain.cumulative(n + 1) > budget);
            }
        }
    }

    #[test]
    fn nonlinear_chain_varies() {
        let chain = InverterChain::manufacture(9, 3.0, 0.8);
        let min = (0..chain.len())
            .map(|i| chain.step_delay(i))
            .fold(Picos::new(1e9), Picos::min);
        let max = (0..chain.len())
            .map(|i| chain.step_delay(i))
            .fold(Picos::ZERO, Picos::max);
        assert!(
            max / min > 1.5,
            "chain unexpectedly uniform: {min} .. {max}"
        );
    }

    #[test]
    #[should_panic(expected = "steps")]
    fn cumulative_past_end_panics() {
        let _ = InverterChain::linear(3.0).cumulative(MAX_INSERTED_STEPS + 1);
    }
}
