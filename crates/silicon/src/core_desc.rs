//! Per-core silicon description consumed by the CPM and chip layers.

use atm_units::{Celsius, CoreId, Picos, Volts};
use serde::{Deserialize, Serialize};

use crate::inverter::InverterChain;
use crate::path::AlphaPowerLaw;

/// Number of Critical Path Monitors per core (instruction fetch,
/// instruction scheduling, fixed point, floating point, last-level cache).
pub(crate) const CPMS_PER_CORE: usize = 5;

/// Everything manufacturing fixed about one core's timing behaviour.
///
/// A [`CoreSilicon`] bundles:
///
/// * the core's **real critical path** delay model (process-variation
///   scaled alpha-power law);
/// * the **mimic ratios** of its five CPMs' synthetic paths — a CPM path
///   is designed shorter than the real worst path so that the programmable
///   inserted delay can pad it;
/// * the **coverage gap** parameters: how much real-path delay the CPMs
///   *fail to see*, as a function of how exotic the running workload's
///   timing paths are (this is what forces uBench and realistic-workload
///   rollbacks in Secs. V–VI);
/// * the manufactured **inverter chain** used by this core's CPM inserted
///   delay (shared by the core's CPMs, which are placed close together).
///
/// # Examples
///
/// ```
/// use atm_silicon::{SiliconFactory, SiliconParams};
/// use atm_units::{Celsius, CoreId, Volts};
///
/// let core = SiliconFactory::new(SiliconParams::power7_plus(), 1).core(CoreId::new(1, 2));
/// let v = Volts::new(1.23);
/// let t = Celsius::new(50.0);
/// // The real path is always longer than any CPM synthetic path:
/// for cpm in 0..5 {
///     assert!(core.cpm_synthetic_delay(cpm, v, t) < core.real_path_delay(v, t));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSilicon {
    id: CoreId,
    real_path: AlphaPowerLaw,
    cpm_mimic_ratios: [f64; CPMS_PER_CORE],
    gap_base: f64,
    gap_sensitivity: f64,
    chain: InverterChain,
}

impl CoreSilicon {
    /// Assembles a core description. Intended for
    /// [`SiliconFactory`](crate::SiliconFactory); exposed for tests and
    /// custom substrates.
    ///
    /// # Panics
    ///
    /// Panics if any mimic ratio is outside `(0, 1)` or any gap parameter
    /// is negative.
    #[must_use]
    pub fn new(
        id: CoreId,
        real_path: AlphaPowerLaw,
        cpm_mimic_ratios: [f64; CPMS_PER_CORE],
        gap_base: f64,
        gap_sensitivity: f64,
        chain: InverterChain,
    ) -> Self {
        for (i, r) in cpm_mimic_ratios.iter().enumerate() {
            assert!(
                (0.0..1.0).contains(r) && *r > 0.0,
                "CPM {i} mimic ratio out of (0,1): {r}"
            );
        }
        assert!(gap_base >= 0.0, "gap_base must be non-negative");
        assert!(
            gap_sensitivity >= 0.0,
            "gap_sensitivity must be non-negative"
        );
        CoreSilicon {
            id,
            real_path,
            cpm_mimic_ratios,
            gap_base,
            gap_sensitivity,
            chain,
        }
    }

    /// The core this description belongs to.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The same description with the real critical path replaced — the
    /// hook silicon drift uses to slow a core without re-rolling its
    /// mimic ratios, coverage gap, or inverter chain. Because the CPM
    /// synthetic paths are mimic-ratio fractions of the real path, they
    /// age along with it, exactly as co-located circuits would.
    #[must_use]
    pub fn with_real_path(mut self, real_path: AlphaPowerLaw) -> Self {
        self.real_path = real_path;
        self
    }

    /// The core's real-critical-path delay model.
    #[must_use]
    pub fn real_path(&self) -> &AlphaPowerLaw {
        &self.real_path
    }

    /// Delay of the core's real worst-case path at `(v, t)` under *typical*
    /// path activation. Workload-dependent exotic paths are accounted for
    /// separately via [`CoreSilicon::coverage_gap`].
    #[must_use]
    pub fn real_path_delay(&self, v: Volts, t: Celsius) -> Picos {
        self.real_path.delay(v, t)
    }

    /// Delay of CPM `cpm_index`'s synthetic path at `(v, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `cpm_index >= 5`.
    #[must_use]
    pub fn cpm_synthetic_delay(&self, cpm_index: usize, v: Volts, t: Celsius) -> Picos {
        self.real_path.delay(v, t) * self.cpm_mimic_ratios[cpm_index]
    }

    /// The design ratio of CPM `cpm_index`'s synthetic path delay to the
    /// real critical-path delay (always in `(0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `cpm_index >= 5`.
    #[must_use]
    pub fn mimic_ratio(&self, cpm_index: usize) -> f64 {
        self.cpm_mimic_ratios[cpm_index]
    }

    /// The fractional amount of real-path delay invisible to the CPMs when
    /// a workload with path-coverage stress `path_stress ∈ [0, 1]` runs.
    ///
    /// Zero stress (idle) still leaves the base gap: even background OS
    /// activity occasionally exercises paths the synthetic paths do not
    /// mimic exactly.
    ///
    /// # Panics
    ///
    /// Panics if `path_stress` is outside `[0, 1]`.
    #[must_use]
    pub fn coverage_gap(&self, path_stress: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&path_stress),
            "path stress out of [0,1]: {path_stress}"
        );
        self.gap_base + self.gap_sensitivity * path_stress
    }

    /// The core's manufactured inverter chain.
    #[must_use]
    pub fn inverter_chain(&self) -> &InverterChain {
        &self.chain
    }

    /// Robustness of the core's CPM placement: the inverse of its gap
    /// sensitivity, normalized so that 1.0 means "no workload can widen the
    /// gap". Used by the conservative governor to pick robust cores.
    #[must_use]
    pub fn robustness(&self) -> f64 {
        1.0 / (1.0 + 40.0 * self.gap_sensitivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_units::Picos;

    fn desc() -> CoreSilicon {
        CoreSilicon::new(
            CoreId::new(0, 0),
            AlphaPowerLaw::power7_plus(Picos::new(190.0)),
            [0.80, 0.79, 0.81, 0.80, 0.78],
            0.01,
            0.02,
            InverterChain::linear(3.0),
        )
    }

    #[test]
    fn synthetic_path_shorter_than_real() {
        let d = desc();
        let v = Volts::new(1.25);
        let t = Celsius::new(45.0);
        for i in 0..CPMS_PER_CORE {
            assert!(d.cpm_synthetic_delay(i, v, t) < d.real_path_delay(v, t));
        }
    }

    #[test]
    fn gap_grows_with_stress() {
        let d = desc();
        assert!(d.coverage_gap(1.0) > d.coverage_gap(0.0));
        assert!((d.coverage_gap(0.0) - 0.01).abs() < 1e-12);
        assert!((d.coverage_gap(0.5) - 0.02).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "path stress")]
    fn gap_rejects_out_of_range_stress() {
        let _ = desc().coverage_gap(1.5);
    }

    #[test]
    fn robustness_orders_by_sensitivity() {
        let robust = CoreSilicon::new(
            CoreId::new(0, 1),
            AlphaPowerLaw::power7_plus(Picos::new(190.0)),
            [0.8; 5],
            0.01,
            0.001,
            InverterChain::linear(3.0),
        );
        assert!(robust.robustness() > desc().robustness());
    }

    #[test]
    #[should_panic(expected = "mimic ratio")]
    fn invalid_mimic_ratio_rejected() {
        let _ = CoreSilicon::new(
            CoreId::new(0, 0),
            AlphaPowerLaw::power7_plus(Picos::new(190.0)),
            [1.2, 0.8, 0.8, 0.8, 0.8],
            0.01,
            0.0,
            InverterChain::linear(3.0),
        );
    }
}
