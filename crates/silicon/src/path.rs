//! Voltage- and temperature-dependent path delay: the alpha-power law.

use atm_units::{Celsius, Picos, Volts};
use serde::{Deserialize, Serialize};

/// Alpha-power-law delay model for a timing path.
///
/// Gate delay grows as supply voltage approaches the threshold voltage:
///
/// ```text
/// d(V, T) = d0 · ((Vnom − Vt) / (V − Vt))^α · (1 + kT·(T − Tnom))
/// ```
///
/// `d0` is the path delay at nominal voltage `Vnom` and temperature `Tnom`.
/// `α ≈ 1.3` for the deep-submicron node modeled here; `kT` is the small
/// linear temperature sensitivity (the paper notes speed is only modestly
/// affected by temperature).
///
/// # Examples
///
/// ```
/// use atm_silicon::AlphaPowerLaw;
/// use atm_units::{Celsius, Picos, Volts};
///
/// let path = AlphaPowerLaw::power7_plus(Picos::new(190.0));
/// let nominal = path.delay(Volts::new(1.25), Celsius::new(45.0));
/// let drooped = path.delay(Volts::new(1.20), Celsius::new(45.0));
/// assert!(drooped > nominal, "lower voltage must slow the path");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaPowerLaw {
    d0: Picos,
    vnom: Volts,
    vth: Volts,
    alpha: f64,
    tnom: Celsius,
    temp_coeff_per_deg: f64,
}

impl AlphaPowerLaw {
    /// Creates a delay model.
    ///
    /// # Panics
    ///
    /// Panics if `d0` is not positive, if `vnom <= vth`, or if `alpha` is
    /// not positive.
    #[must_use]
    pub fn new(
        d0: Picos,
        vnom: Volts,
        vth: Volts,
        alpha: f64,
        tnom: Celsius,
        temp_coeff_per_deg: f64,
    ) -> Self {
        assert!(d0.get() > 0.0, "nominal delay must be positive, got {d0}");
        assert!(
            vnom > vth,
            "nominal voltage {vnom} must exceed threshold voltage {vth}"
        );
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        AlphaPowerLaw {
            d0,
            vnom,
            vth,
            alpha,
            tnom,
            temp_coeff_per_deg,
        }
    }

    /// The POWER7+-calibrated model: 1.25 V nominal, 0.55 V threshold,
    /// α = 1.3, 45 °C nominal, +0.005 %/°C temperature sensitivity.
    #[must_use]
    pub fn power7_plus(d0: Picos) -> Self {
        AlphaPowerLaw::new(
            d0,
            Volts::new(1.25),
            Volts::new(0.55),
            1.3,
            Celsius::new(45.0),
            5.0e-5,
        )
    }

    /// The path delay at nominal voltage and temperature.
    #[must_use]
    pub fn d0(&self) -> Picos {
        self.d0
    }

    /// The nominal supply voltage.
    #[must_use]
    pub fn vnom(&self) -> Volts {
        self.vnom
    }

    /// The transistor threshold voltage.
    #[must_use]
    pub fn vth(&self) -> Volts {
        self.vth
    }

    /// The velocity-saturation exponent α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Path delay at supply voltage `v` and die temperature `t`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is at or below the threshold voltage — the circuit
    /// would not switch at all, which the surrounding simulation never
    /// requests (droops are bounded well above threshold).
    #[must_use]
    #[inline]
    pub fn delay(&self, v: Volts, t: Celsius) -> Picos {
        let v_term = self.voltage_term(v);
        let t_term = self.temp_term(t);
        self.d0 * (v_term * t_term)
    }

    /// The dimensionless voltage factor `((Vnom − Vt) / (V − Vt))^α` of
    /// the delay law — exactly the factor [`AlphaPowerLaw::delay`]
    /// multiplies into `d0`. Exposed so callers that bound the delay over
    /// a voltage interval (e.g. the chip layer's stride certificates) can
    /// model this term — convex and decreasing in `v` — separately from
    /// the affine temperature term.
    ///
    /// # Panics
    ///
    /// Panics if `v` is at or below the threshold voltage — the circuit
    /// would not switch at all, which the surrounding simulation never
    /// requests (droops are bounded well above threshold).
    #[must_use]
    #[inline]
    pub fn voltage_term(&self, v: Volts) -> f64 {
        assert!(
            v > self.vth,
            "supply voltage {v} at or below threshold {}",
            self.vth
        );
        ((self.vnom.get() - self.vth.get()) / (v.get() - self.vth.get())).powf(self.alpha)
    }

    /// The dimensionless temperature factor `1 + kT·(T − Tnom)` of the
    /// delay law — exactly the factor [`AlphaPowerLaw::delay`] multiplies
    /// into `d0`. Affine and (for positive `kT`) increasing in `t`, so its
    /// range over a temperature interval is spanned by the endpoints.
    #[must_use]
    #[inline]
    pub fn temp_term(&self, t: Celsius) -> f64 {
        1.0 + self.temp_coeff_per_deg * (t.get() - self.tnom.get())
    }

    /// Returns a copy with a different nominal delay, keeping all other
    /// parameters. Used to apply per-core process-variation factors.
    #[must_use]
    pub fn with_d0(&self, d0: Picos) -> Self {
        let mut m = *self;
        assert!(d0.get() > 0.0, "nominal delay must be positive, got {d0}");
        m.d0 = d0;
        m
    }

    /// The derivative of delay with respect to voltage at `(v, t)`, in
    /// picoseconds per volt (negative: more voltage, less delay).
    ///
    /// Exposed for the analytical frequency predictor, which linearizes the
    /// loop equilibrium around an operating point.
    #[must_use]
    pub fn delay_slope_per_volt(&self, v: Volts, t: Celsius) -> f64 {
        let d = self.delay(v, t);
        -self.alpha * d.get() / (v.get() - self.vth.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AlphaPowerLaw {
        AlphaPowerLaw::power7_plus(Picos::new(190.0))
    }

    #[test]
    fn nominal_conditions_return_d0() {
        let m = model();
        let d = m.delay(Volts::new(1.25), Celsius::new(45.0));
        assert!((d.get() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn delay_monotone_decreasing_in_voltage() {
        let m = model();
        let t = Celsius::new(45.0);
        let mut prev = m.delay(Volts::new(0.9), t);
        for mv in (925..=1400).step_by(25) {
            let d = m.delay(Volts::new(f64::from(mv) / 1000.0), t);
            assert!(d < prev, "delay must decrease with voltage");
            prev = d;
        }
    }

    #[test]
    fn delay_increases_slightly_with_temperature() {
        let m = model();
        let v = Volts::new(1.25);
        let cold = m.delay(v, Celsius::new(45.0));
        let hot = m.delay(v, Celsius::new(70.0));
        assert!(hot > cold);
        // "Modest" effect: under 1% for a 25 degree swing.
        assert!(hot / cold < 1.01);
    }

    #[test]
    fn slope_matches_finite_difference() {
        let m = model();
        let t = Celsius::new(45.0);
        let v = Volts::new(1.22);
        let h = 1e-6;
        let fd = (m.delay(Volts::new(v.get() + h), t).get() - m.delay(v, t).get()) / h;
        let analytic = m.delay_slope_per_volt(v, t);
        assert!((fd - analytic).abs() / analytic.abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "below threshold")]
    fn subthreshold_voltage_panics() {
        let _ = model().delay(Volts::new(0.5), Celsius::new(45.0));
    }

    #[test]
    #[should_panic(expected = "must exceed threshold")]
    fn invalid_construction_rejected() {
        let _ = AlphaPowerLaw::new(
            Picos::new(100.0),
            Volts::new(0.5),
            Volts::new(0.55),
            1.3,
            Celsius::new(45.0),
            0.0,
        );
    }

    #[test]
    fn with_d0_scales_delay_proportionally() {
        let m = model();
        let m2 = m.with_d0(Picos::new(380.0));
        let v = Volts::new(1.2);
        let t = Celsius::new(50.0);
        assert!((m2.delay(v, t).get() / m.delay(v, t).get() - 2.0).abs() < 1e-12);
    }
}
