//! Realistic-workload characterization (Sec. VI, Figs. 9–10).

use atm_chip::System;
use atm_telemetry::{NullRecorder, Recorder};
use atm_units::CoreId;
use atm_workloads::Workload;
use serde::{Deserialize, Serialize};

use super::search::{find_limit, CharactConfig, LimitDistribution};

/// The profile of one ⟨application, core⟩ pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppCoreProfile {
    /// Application name.
    pub app: String,
    /// Which core.
    pub core: CoreId,
    /// The core's uBench limit the search started from.
    pub ubench_limit: usize,
    /// Distribution of safe reductions for this app on this core.
    pub distribution: LimitDistribution,
}

impl AppCoreProfile {
    /// The safe limit for this app on this core (never above the uBench
    /// limit: the methodology only rolls back from it).
    #[must_use]
    pub fn app_limit(&self) -> usize {
        self.distribution.limit().min(self.ubench_limit)
    }

    /// Steps rolled back from the uBench limit (a cell of Fig. 10).
    #[must_use]
    pub fn rollback(&self) -> usize {
        self.ubench_limit - self.app_limit()
    }

    /// Mean rollback across repeats (the paper's *weighted average CPM
    /// rollback*, which distinguishes apps with equal lower bounds but
    /// different distributions).
    #[must_use]
    pub fn mean_rollback(&self) -> f64 {
        let mean_limit = self
            .distribution
            .samples()
            .iter()
            .map(|&s| s.min(self.ubench_limit))
            .sum::<usize>() as f64
            / self.distribution.samples().len() as f64;
        self.ubench_limit as f64 - mean_limit
    }
}

/// Result of the realistic-workload characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealisticResult {
    /// One profile per ⟨app, core⟩ pair, app-major.
    pub profiles: Vec<AppCoreProfile>,
    /// Per-core *thread-worst* limit: the most conservative limit over all
    /// profiled applications (Table I row 4).
    pub thread_worst: [usize; 16],
    /// Per-core *thread-normal* limit: supports most medium and light
    /// applications (the median application limit; Table I row 3).
    pub thread_normal: [usize; 16],
}

impl RealisticResult {
    /// Assembles a result from raw profiles, deriving the thread-worst
    /// (minimum app limit per core) and thread-normal (median app limit
    /// per core) rows. Used to merge partial characterizations computed in
    /// parallel.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or does not cover all sixteen cores.
    #[must_use]
    pub fn from_profiles(profiles: Vec<AppCoreProfile>) -> Self {
        assert!(!profiles.is_empty(), "no profiles given");
        let mut thread_worst = [usize::MAX; 16];
        let mut per_core_limits: Vec<Vec<usize>> = vec![Vec::new(); 16];
        for p in &profiles {
            let i = p.core.flat_index();
            thread_worst[i] = thread_worst[i].min(p.app_limit());
            per_core_limits[i].push(p.app_limit());
        }
        let mut thread_normal = [0usize; 16];
        for (i, limits) in per_core_limits.iter_mut().enumerate() {
            assert!(!limits.is_empty(), "core {i} not covered by any profile");
            limits.sort_unstable();
            thread_normal[i] = limits[limits.len() / 2];
        }
        RealisticResult {
            profiles,
            thread_worst,
            thread_normal,
        }
    }

    /// The profile for `(app, core)`, if that pair was characterized.
    #[must_use]
    pub fn profile(&self, app: &str, core: CoreId) -> Option<&AppCoreProfile> {
        self.profiles
            .iter()
            .find(|p| p.app == app && p.core == core)
    }

    /// Mean rollback of `app` across all cores (a row-mean of Fig. 10,
    /// used to rank application stress).
    #[must_use]
    pub fn app_stress(&self, app: &str) -> f64 {
        let rows: Vec<&AppCoreProfile> = self.profiles.iter().filter(|p| p.app == app).collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|p| p.mean_rollback()).sum::<f64>() / rows.len() as f64
    }

    /// Mean rollback of `core` across all apps — the inverse of the
    /// paper's *robustness*: robust cores need the least rollback.
    #[must_use]
    pub fn core_mean_rollback(&self, core: CoreId) -> f64 {
        let rows: Vec<&AppCoreProfile> = self.profiles.iter().filter(|p| p.core == core).collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|p| p.mean_rollback()).sum::<f64>() / rows.len() as f64
    }
}

/// Profiles every ⟨app, core⟩ pair: starting from each core's uBench
/// limit, finds the CPM rollback each application requires (paper
/// Fig. 10), and derives the *thread-worst* and *thread-normal* limits of
/// Table I.
///
/// Cores are left programmed at their thread-worst limits.
///
/// The per-app limit walks record their trials through `rec`; pass
/// [`&mut NullRecorder`](NullRecorder) for the unrecorded path. (The
/// parallel variant stays unrecorded: its workers own their shards
/// outright.)
///
/// # Panics
///
/// Panics if `apps` is empty.
#[must_use]
pub fn realistic_characterization<R: Recorder>(
    system: &mut System,
    ubench_limits: &[usize; 16],
    apps: &[&Workload],
    cfg: &CharactConfig,
    rec: &mut R,
) -> RealisticResult {
    assert!(!apps.is_empty(), "need at least one application");
    let mut profiles = Vec::with_capacity(apps.len() * 16);
    for app in apps {
        for core in CoreId::all() {
            let ubench_limit = ubench_limits[core.flat_index()];
            let distribution = find_limit(system, core, &[app], ubench_limit, cfg, rec);
            profiles.push(AppCoreProfile {
                app: app.name().to_owned(),
                core,
                ubench_limit,
                distribution,
            });
        }
    }

    let result = RealisticResult::from_profiles(profiles);

    for core in CoreId::all() {
        system
            .set_reduction(core, result.thread_worst[core.flat_index()])
            .expect("thread-worst within preset");
    }

    result
}

/// Like [`realistic_characterization`], but fanning the applications out
/// over `threads` worker systems (each minted from `config`), merging the
/// partial profiles deterministically. The passed `system` is programmed
/// to the merged thread-worst limits at the end, exactly like the
/// sequential variant.
///
/// # Panics
///
/// Panics if `apps` is empty or `threads` is zero.
#[must_use]
pub fn realistic_characterization_parallel(
    system: &mut System,
    config: &atm_chip::ChipConfig,
    ubench_limits: &[usize; 16],
    apps: &[&Workload],
    cfg: &CharactConfig,
    threads: usize,
) -> RealisticResult {
    assert!(!apps.is_empty(), "need at least one application");
    assert!(threads > 0, "need at least one worker");
    let threads = threads.min(apps.len());
    let chunk = apps.len().div_ceil(threads);
    let mut profiles: Vec<AppCoreProfile> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for group in apps.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut worker = System::new(config.clone());
                realistic_characterization(
                    &mut worker,
                    ubench_limits,
                    group,
                    cfg,
                    &mut NullRecorder,
                )
                .profiles
            }));
        }
        for h in handles {
            profiles.extend(h.join().expect("characterization worker panicked"));
        }
    });
    // Deterministic order regardless of thread interleaving.
    profiles.sort_by_key(|p| (p.app.clone(), p.core));
    let result = RealisticResult::from_profiles(profiles);
    for core in CoreId::all() {
        system
            .set_reduction(core, result.thread_worst[core.flat_index()])
            .expect("thread-worst within preset");
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charact::{idle_characterization, ubench_characterization};
    use atm_chip::ChipConfig;
    use atm_workloads::by_name;

    #[test]
    fn parallel_matches_sequential() {
        let config = ChipConfig::default();
        let cfg = CharactConfig::quick();
        let apps = [by_name("leela").unwrap(), by_name("gcc").unwrap()];
        let ubench_limits = [4usize; 16];

        let mut seq_sys = System::new(config.clone());
        let seq = realistic_characterization(
            &mut seq_sys,
            &ubench_limits,
            &apps,
            &cfg,
            &mut NullRecorder,
        );
        let mut par_sys = System::new(config.clone());
        let par = realistic_characterization_parallel(
            &mut par_sys,
            &config,
            &ubench_limits,
            &apps,
            &cfg,
            2,
        );
        // Workers mint identical silicon; only droop-stream phase differs
        // (sequential trials advance one system's streams across apps), so
        // the tight distributions agree within one step per core.
        for core in CoreId::all() {
            let i = core.flat_index();
            assert!(
                seq.thread_worst[i].abs_diff(par.thread_worst[i]) <= 1,
                "{core}: sequential {} vs parallel {}",
                seq.thread_worst[i],
                par.thread_worst[i]
            );
            assert_eq!(par_sys.core(core).reduction(), par.thread_worst[i]);
        }
    }

    #[test]
    fn x264_needs_more_rollback_than_gcc() {
        let mut sys = System::new(ChipConfig::default());
        let cfg = CharactConfig::quick();
        let idle = idle_characterization(&mut sys, &cfg, &mut NullRecorder);
        let mut idle_limits = [0usize; 16];
        for r in &idle {
            idle_limits[r.core.flat_index()] = r.idle_limit();
        }
        let ub = ubench_characterization(&mut sys, &idle_limits, &cfg, &mut NullRecorder);
        let mut ubench_limits = [0usize; 16];
        for r in &ub {
            ubench_limits[r.core.flat_index()] = r.ubench_limit().min(r.idle_limit);
        }

        let apps = [by_name("x264").unwrap(), by_name("gcc").unwrap()];
        let result =
            realistic_characterization(&mut sys, &ubench_limits, &apps, &cfg, &mut NullRecorder);

        // Paper Fig. 9: x264 requires significant rollback, gcc little.
        let x264 = result.app_stress("x264");
        let gcc = result.app_stress("gcc");
        assert!(
            x264 > gcc + 0.4,
            "x264 stress {x264:.2} not clearly above gcc {gcc:.2}"
        );

        // Table I invariant: thread-worst <= thread-normal <= ubench.
        for core in CoreId::all() {
            let i = core.flat_index();
            assert!(result.thread_worst[i] <= result.thread_normal[i]);
            assert!(result.thread_normal[i] <= ubench_limits[i]);
            assert_eq!(sys.core(core).reduction(), result.thread_worst[i]);
        }
    }
}
