//! Micro-benchmark characterization (Sec. V, Fig. 8).

use atm_chip::System;
use atm_telemetry::Recorder;
use atm_units::CoreId;
use atm_workloads::ubench_set;
use serde::{Deserialize, Serialize};

use super::search::{find_limit, CharactConfig, LimitDistribution};

/// Result of the uBench characterization of one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UbenchResult {
    /// Which core.
    pub core: CoreId,
    /// The idle limit the search started from.
    pub idle_limit: usize,
    /// Distribution of safe reductions under coremark + daxpy + stream.
    pub distribution: LimitDistribution,
}

impl UbenchResult {
    /// The core's uBench limit.
    #[must_use]
    pub fn ubench_limit(&self) -> usize {
        self.distribution.limit()
    }

    /// Steps rolled back from the idle limit (Fig. 8's y-axis); zero for
    /// cores whose idle limit already sustains the micro-benchmarks.
    #[must_use]
    pub fn rollback(&self) -> usize {
        self.idle_limit.saturating_sub(self.ubench_limit())
    }
}

/// Runs the uBench characterization: starting from each core's idle limit,
/// rolls the CPM delay back until coremark, daxpy and stream all execute
/// correctly (paper Sec. V-B). `idle_limits` come from
/// [`idle_characterization`](super::idle_characterization).
///
/// Cores are left programmed at their uBench limits.
///
/// The limit walks record their trials through `rec`; pass
/// [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the unrecorded path.
#[must_use]
pub fn ubench_characterization<R: Recorder>(
    system: &mut System,
    idle_limits: &[usize; 16],
    cfg: &CharactConfig,
    rec: &mut R,
) -> Vec<UbenchResult> {
    let set = ubench_set();
    let mut results = Vec::with_capacity(16);
    for core in CoreId::all() {
        let idle_limit = idle_limits[core.flat_index()];
        let distribution = find_limit(system, core, &set, idle_limit, cfg, rec);
        // The uBench limit can never exceed the idle limit: clamp the
        // distribution's use accordingly (a lucky repeat may sample past
        // it, but the paper's methodology only rolls back).
        results.push(UbenchResult {
            core,
            idle_limit,
            distribution,
        });
        let clamped = results.last().unwrap().ubench_limit().min(idle_limit);
        system
            .set_reduction(core, clamped)
            .expect("clamped limit within preset");
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charact::idle_characterization;
    use atm_chip::ChipConfig;
    use atm_telemetry::NullRecorder;

    #[test]
    fn ubench_limits_at_or_below_idle_limits() {
        let mut sys = System::new(ChipConfig::default());
        let cfg = CharactConfig::quick();
        let idle = idle_characterization(&mut sys, &cfg, &mut NullRecorder);
        let mut idle_limits = [0usize; 16];
        for r in &idle {
            idle_limits[r.core.flat_index()] = r.idle_limit();
        }
        let ub = ubench_characterization(&mut sys, &idle_limits, &cfg, &mut NullRecorder);
        assert_eq!(ub.len(), 16);

        let mut rollbacks = 0;
        for r in &ub {
            assert!(
                r.ubench_limit() <= r.idle_limit + 1,
                "{}: uBench {} far above idle {}",
                r.core,
                r.ubench_limit(),
                r.idle_limit
            );
            assert!(
                r.rollback() <= 4,
                "{}: rollback {} too deep",
                r.core,
                r.rollback()
            );
            if r.rollback() > 0 {
                rollbacks += 1;
            }
        }
        // Paper Fig. 8: a handful of cores (6 of 16) need rollback.
        assert!(
            (1..=10).contains(&rollbacks),
            "{rollbacks}/16 cores rolled back — paper saw 6"
        );
    }
}
