//! Idle-system characterization (Sec. IV, Fig. 7).

use atm_chip::{MarginMode, System};
use atm_telemetry::Recorder;
use atm_units::{CoreId, MegaHz};
use atm_workloads::Workload;
use serde::{Deserialize, Serialize};

use super::search::{find_limit, CharactConfig, LimitDistribution};

/// Result of the idle characterization of one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleResult {
    /// Which core.
    pub core: CoreId,
    /// The distribution of safe CPM delay reductions across repeats.
    pub distribution: LimitDistribution,
    /// ATM equilibrium frequency at the idle limit (system otherwise
    /// idle) — the blue marks of Fig. 7.
    pub limit_frequency: MegaHz,
}

impl IdleResult {
    /// The core's idle limit (the distribution's lower bound).
    #[must_use]
    pub fn idle_limit(&self) -> usize {
        self.distribution.limit()
    }
}

/// Runs the idle characterization over every core of the system: with
/// nothing but OS background noise running, finds the most aggressive yet
/// safe CPM delay reduction of each core — the silicon's inherent maximum
/// speed (paper Sec. IV).
///
/// Cores are left programmed at their idle limits.
///
/// The limit walks record their trials through `rec`; pass
/// [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the unrecorded path.
#[must_use]
pub fn idle_characterization<R: Recorder>(
    system: &mut System,
    cfg: &CharactConfig,
    rec: &mut R,
) -> Vec<IdleResult> {
    let idle = Workload::idle();
    let mut results = Vec::with_capacity(16);
    for core in CoreId::all() {
        let distribution = find_limit(system, core, &[&idle], 0, cfg, rec);
        // Frequency at the limit, measured with the whole system idle and
        // only this core in ATM mode (find_limit leaves it that way).
        system.set_mode(core, MarginMode::Atm);
        let report = system.settle();
        let limit_frequency = report.core(core).mean_freq;
        system.set_mode(core, MarginMode::Static);
        results.push(IdleResult {
            core,
            distribution,
            limit_frequency,
        });
    }
    // Restore: all cores ATM at their limits is NOT the idle-charact
    // posture; leave everything static. Reductions stay programmed.
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;
    use atm_telemetry::NullRecorder;

    #[test]
    fn idle_limits_match_paper_shape() {
        let mut sys = System::new(ChipConfig::default());
        let results = idle_characterization(&mut sys, &CharactConfig::quick(), &mut NullRecorder);
        assert_eq!(results.len(), 16);

        let limits: Vec<usize> = results.iter().map(IdleResult::idle_limit).collect();
        let min = *limits.iter().min().unwrap();
        let max = *limits.iter().max().unwrap();
        // Paper Table I row 1: limits spread over roughly 2–11 steps.
        assert!(min >= 1, "weakest idle limit {min}");
        assert!(max <= 16, "strongest idle limit {max}");
        assert!(max - min >= 3, "inter-core limit spread too small");

        // Fig. 7: limit frequencies mostly above 4.8 GHz, none absurd.
        for r in &results {
            let f = r.limit_frequency.get();
            assert!(f > 4600.0, "{} limit frequency {f} too low", r.core);
            assert!(f < 5450.0, "{} limit frequency {f} too high", r.core);
        }
        let over_5ghz = results
            .iter()
            .filter(|r| r.limit_frequency.get() > 5000.0)
            .count();
        assert!(
            over_5ghz >= 6,
            "only {over_5ghz}/16 cores exceed 5 GHz at the idle limit"
        );
    }

    #[test]
    fn cores_left_at_their_limits() {
        let mut sys = System::new(ChipConfig::default());
        let results = idle_characterization(&mut sys, &CharactConfig::quick(), &mut NullRecorder);
        for r in &results {
            assert_eq!(sys.core(r.core).reduction(), r.idle_limit());
        }
    }
}
