//! The ATM limit search: the shared engine of all characterization phases.

use atm_chip::{MarginMode, System};
use atm_telemetry::Recorder;
use atm_units::{AtmError, CoreId, Nanos};
use atm_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Parameters of a characterization campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharactConfig {
    /// Duration of each trial run.
    pub trial: Nanos,
    /// Independent repeats per core (each yields one limit sample; the
    /// samples form the distributions of Figs. 7–9).
    pub repeats: usize,
}

impl CharactConfig {
    /// The default campaign: 100 µs trials, three repeats.
    #[must_use]
    pub fn standard() -> Self {
        CharactConfig {
            trial: Nanos::new(100_000.0),
            repeats: 3,
        }
    }

    /// A fast campaign for unit tests: 20 µs trials, two repeats.
    #[must_use]
    pub fn quick() -> Self {
        CharactConfig {
            trial: Nanos::new(20_000.0),
            repeats: 2,
        }
    }

    /// A builder for custom campaigns, seeded with the standard values.
    ///
    /// # Examples
    ///
    /// ```
    /// use atm_core::CharactConfig;
    /// use atm_units::Nanos;
    ///
    /// let cfg = CharactConfig::builder()
    ///     .trial(Nanos::new(50_000.0))
    ///     .repeats(5)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.repeats, 5);
    /// assert!(CharactConfig::builder().repeats(0).build().is_err());
    /// ```
    #[must_use]
    pub fn builder() -> CharactConfigBuilder {
        CharactConfigBuilder {
            config: CharactConfig::standard(),
        }
    }

    fn validate(&self) {
        self.check().expect("invalid characterization config");
    }

    fn check(&self) -> Result<(), AtmError> {
        if !self.trial.get().is_finite() || self.trial.get() <= 0.0 {
            return Err(AtmError::invalid_config(
                "trial",
                "trial duration must be positive",
            ));
        }
        if self.repeats < 1 {
            return Err(AtmError::invalid_config(
                "repeats",
                "at least one repeat required",
            ));
        }
        Ok(())
    }
}

/// Builder for [`CharactConfig`] with validation at
/// [`CharactConfigBuilder::build`] time. Obtained from
/// [`CharactConfig::builder`]; unset fields keep the standard campaign's
/// values.
#[derive(Debug, Clone)]
pub struct CharactConfigBuilder {
    config: CharactConfig,
}

impl CharactConfigBuilder {
    /// Sets the duration of each trial run.
    #[must_use]
    pub fn trial(mut self, trial: Nanos) -> Self {
        self.config.trial = trial;
        self
    }

    /// Sets the number of independent repeats per core.
    #[must_use]
    pub fn repeats(mut self, repeats: usize) -> Self {
        self.config.repeats = repeats;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] for a non-positive trial
    /// duration or zero repeats.
    pub fn build(self) -> Result<CharactConfig, AtmError> {
        self.config.check()?;
        Ok(self.config)
    }
}

impl Default for CharactConfig {
    fn default() -> Self {
        CharactConfig::standard()
    }
}

/// The distribution of safe-limit samples for one core under one scenario.
///
/// The paper observes these distributions are tight (no more than two
/// configurations); the core's usable *limit* is the distribution's lower
/// bound — the most conservative sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LimitDistribution {
    samples: Vec<usize>,
}

impl LimitDistribution {
    /// Wraps raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn new(samples: Vec<usize>) -> Self {
        assert!(!samples.is_empty(), "a distribution needs samples");
        LimitDistribution { samples }
    }

    /// All samples, in collection order.
    #[must_use]
    pub fn samples(&self) -> &[usize] {
        &self.samples
    }

    /// The usable limit: the most conservative (smallest) sample.
    #[must_use]
    pub fn limit(&self) -> usize {
        *self.samples.iter().min().expect("non-empty")
    }

    /// The most aggressive sample observed.
    #[must_use]
    pub fn max(&self) -> usize {
        *self.samples.iter().max().expect("non-empty")
    }

    /// The spread (max − limit); the paper finds this ≤ 2.
    #[must_use]
    pub fn spread(&self) -> usize {
        self.max() - self.limit()
    }

    /// Mean of the samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<usize>() as f64 / self.samples.len() as f64
    }
}

/// Runs one trial of `workload` on `core` at the given CPM `reduction`
/// with the rest of the system idle at static margin; returns whether the
/// run completed without a timing failure.
///
/// Returns `false` without running if `reduction` exceeds the core's
/// preset.
///
/// The trial runs through [`System::run`] with `rec`, and the
/// `charact.trials` / `charact.trial_failures` counters are bumped;
/// pass [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the zero-overhead
/// unrecorded path.
pub fn passes<R: Recorder>(
    system: &mut System,
    core: CoreId,
    workload: &Workload,
    reduction: usize,
    trial: Nanos,
    rec: &mut R,
) -> bool {
    rec.incr("charact.trials", 1);
    if system.set_reduction(core, reduction).is_err() {
        rec.incr("charact.trial_failures", 1);
        return false;
    }
    system.assign(core, workload.clone());
    let report = system.run(trial, rec);
    if !report.is_ok() {
        rec.incr("charact.trial_failures", 1);
    }
    report.is_ok()
}

/// The limit-walk skeleton shared by every characterization driver.
///
/// For each of `repeats` repeats, walks the CPM delay reduction from
/// `start_hint` (clamped to `max_reduction`): up while every workload in
/// the set still passes, or down until all pass — yielding the most
/// aggressive reduction at which the whole set ran correctly in that
/// repeat. The walk itself never revisits a `(repeat, workload,
/// reduction)` point, so a memoizing `trial` sees exactly one lookup per
/// point it is asked about.
///
/// `trial(repeat, workload_index, reduction)` runs (or replays) one trial
/// and reports whether it passed; `workload_index` ranges over
/// `0..set_len`. [`find_limit`] drives it with live simulator trials; the
/// characterization engine drives it through its sweep-memoization cache.
///
/// # Panics
///
/// Panics if `set_len` or `repeats` is zero.
pub fn find_limit_driven<F>(
    max_reduction: usize,
    start_hint: usize,
    repeats: usize,
    set_len: usize,
    mut trial: F,
) -> LimitDistribution
where
    F: FnMut(usize, usize, usize) -> bool,
{
    assert!(set_len > 0, "workload set cannot be empty");
    assert!(repeats >= 1, "at least one repeat required");

    let mut samples = Vec::with_capacity(repeats);
    for repeat in 0..repeats {
        let mut all_pass = |r: usize| (0..set_len).all(|w| trial(repeat, w, r));
        let mut r = start_hint.min(max_reduction);
        if all_pass(r) {
            while r < max_reduction && all_pass(r + 1) {
                r += 1;
            }
        } else {
            while r > 0 {
                r -= 1;
                if all_pass(r) {
                    break;
                }
            }
        }
        samples.push(r);
    }
    LimitDistribution::new(samples)
}

/// Finds one core's safe-limit distribution for a workload set.
///
/// For each repeat, the search walks the CPM delay reduction from
/// `start_hint`: down while any workload in `set` fails a trial, then up
/// while every workload still passes — yielding the most aggressive
/// reduction at which all of `set` ran correctly in that repeat (the walk
/// skeleton of [`find_limit_driven`]).
///
/// The searched core runs in ATM mode; every other core sits idle at
/// static margin (the paper's single-core characterization setup). The
/// core is left at the distribution's limit with idle assigned.
///
/// Every trial of the walk is recorded through `rec` (see [`passes`]);
/// pass [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the unrecorded path.
///
/// # Panics
///
/// Panics if `set` is empty or `cfg` is invalid.
pub fn find_limit<R: Recorder>(
    system: &mut System,
    core: CoreId,
    set: &[&Workload],
    start_hint: usize,
    cfg: &CharactConfig,
    rec: &mut R,
) -> LimitDistribution {
    assert!(!set.is_empty(), "workload set cannot be empty");
    cfg.validate();

    // Quiesce the system: everything static and idle except the core under
    // test.
    system.idle_all();
    system.set_mode_all(MarginMode::Static);
    system.set_mode(core, MarginMode::Atm);

    let max = system.core(core).cpms().max_reduction();
    let dist = find_limit_driven(max, start_hint, cfg.repeats, set.len(), |_, w, r| {
        passes(system, core, set[w], r, cfg.trial, rec)
    });
    system
        .set_reduction(core, dist.limit())
        .expect("limit within preset");
    system.assign(core, Workload::idle());
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;
    use atm_telemetry::NullRecorder;
    use atm_workloads::by_name;

    fn system() -> System {
        System::new(ChipConfig::default())
    }

    #[test]
    fn distribution_statistics() {
        let d = LimitDistribution::new(vec![9, 10, 9, 10]);
        assert_eq!(d.limit(), 9);
        assert_eq!(d.max(), 10);
        assert_eq!(d.spread(), 1);
        assert!((d.mean() - 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_distribution_rejected() {
        let _ = LimitDistribution::new(vec![]);
    }

    #[test]
    fn driven_walk_finds_threshold_from_below_and_above() {
        let oracle = |_rep: usize, _w: usize, r: usize| r <= 5;
        let up = find_limit_driven(12, 0, 2, 1, oracle);
        assert_eq!(up.samples(), &[5, 5]);
        let down = find_limit_driven(12, 11, 2, 1, oracle);
        assert_eq!(down.samples(), &[5, 5]);
        let clamped = find_limit_driven(4, 99, 1, 1, oracle);
        assert_eq!(clamped.samples(), &[4]);
    }

    #[test]
    fn driven_walk_never_revisits_a_point() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let dist = find_limit_driven(12, 3, 3, 2, |rep, w, r| {
            assert!(
                seen.insert((rep, w, r)),
                "point (repeat {rep}, workload {w}, reduction {r}) revisited"
            );
            r <= 7
        });
        assert_eq!(dist.limit(), 7);
    }

    #[test]
    fn driven_walk_multi_workload_short_circuits() {
        // Workload 1 caps the set at 4; workload 0 would allow 9.
        let dist = find_limit_driven(12, 0, 1, 2, |_, w, r| if w == 0 { r <= 9 } else { r <= 4 });
        assert_eq!(dist.limit(), 4);
    }

    #[test]
    fn default_reduction_always_passes_idle() {
        let mut sys = system();
        let core = CoreId::new(0, 0);
        sys.set_mode(core, MarginMode::Atm);
        assert!(passes(
            &mut sys,
            core,
            &Workload::idle(),
            0,
            Nanos::new(20_000.0),
            &mut NullRecorder
        ));
    }

    #[test]
    fn whole_preset_removal_fails() {
        let mut sys = system();
        let core = CoreId::new(0, 0);
        sys.set_mode(core, MarginMode::Atm);
        let max = sys.core(core).cpms().max_reduction();
        assert!(!passes(
            &mut sys,
            core,
            &Workload::idle(),
            max,
            Nanos::new(50_000.0),
            &mut NullRecorder
        ));
    }

    #[test]
    fn find_limit_is_interior_and_tight() {
        let mut sys = system();
        let core = CoreId::new(0, 2);
        let idle = Workload::idle();
        let dist = find_limit(
            &mut sys,
            core,
            &[&idle],
            0,
            &CharactConfig::quick(),
            &mut NullRecorder,
        );
        let max = sys.core(core).cpms().max_reduction();
        assert!(dist.limit() > 0, "idle limit should allow some reduction");
        assert!(dist.limit() < max, "idle limit cannot be the whole preset");
        assert!(dist.spread() <= 2, "distribution too loose: {dist:?}");
    }

    #[test]
    fn find_limit_leaves_core_at_limit() {
        let mut sys = system();
        let core = CoreId::new(1, 1);
        let idle = Workload::idle();
        let dist = find_limit(
            &mut sys,
            core,
            &[&idle],
            0,
            &CharactConfig::quick(),
            &mut NullRecorder,
        );
        assert_eq!(sys.core(core).reduction(), dist.limit());
        assert_eq!(sys.core(core).workload().name(), "idle");
    }

    #[test]
    fn start_hint_beyond_preset_is_clamped() {
        let mut sys = system();
        let core = CoreId::new(0, 4);
        let idle = Workload::idle();
        let dist = find_limit(
            &mut sys,
            core,
            &[&idle],
            999,
            &CharactConfig::quick(),
            &mut NullRecorder,
        );
        let max = sys.core(core).cpms().max_reduction();
        assert!(dist.limit() <= max);
        assert!(dist.max() <= max);
    }

    #[test]
    fn multi_workload_set_takes_the_worst() {
        // A set's limit can never exceed the limit of its harshest member.
        let mut sys = system();
        let core = CoreId::new(0, 5);
        let cfg = CharactConfig::quick();
        let gcc = by_name("gcc").unwrap();
        let x264 = by_name("x264").unwrap();
        let solo_x264 = find_limit(&mut sys, core, &[x264], 4, &cfg, &mut NullRecorder);
        let pair = find_limit(&mut sys, core, &[gcc, x264], 4, &cfg, &mut NullRecorder);
        assert!(
            pair.limit() <= solo_x264.limit() + 1,
            "pair {} vs x264 {}",
            pair.limit(),
            solo_x264.limit()
        );
    }

    #[test]
    fn noisy_workload_limit_not_above_idle_limit() {
        let mut sys = system();
        let core = CoreId::new(0, 3);
        let idle = Workload::idle();
        let cfg = CharactConfig::quick();
        let idle_dist = find_limit(&mut sys, core, &[&idle], 0, &cfg, &mut NullRecorder);
        let x264 = by_name("x264").unwrap();
        let x264_dist = find_limit(
            &mut sys,
            core,
            &[x264],
            idle_dist.limit(),
            &cfg,
            &mut NullRecorder,
        );
        assert!(
            x264_dist.limit() <= idle_dist.limit(),
            "x264 {} must not exceed idle {}",
            x264_dist.limit(),
            idle_dist.limit()
        );
    }
}
