//! The characterization methodology of Secs. IV–VI (Fig. 6): analyze each
//! core's ATM operating limit under scenarios of increasing complexity —
//! system idle, micro-benchmarks, then realistic workloads.

mod idle;
mod realistic;
mod search;
mod ubench;

pub use idle::{idle_characterization, IdleResult};
pub use realistic::{
    realistic_characterization, realistic_characterization_parallel, AppCoreProfile,
    RealisticResult,
};
pub use search::{
    find_limit, find_limit_driven, passes, CharactConfig, CharactConfigBuilder, LimitDistribution,
};
pub use ubench::{ubench_characterization, UbenchResult};
