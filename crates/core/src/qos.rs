//! QoS targets for critical applications.

use std::fmt;

use atm_units::Nanos;
use serde::{Deserialize, Serialize};

/// A user-specified quality-of-service target for a critical application,
/// expressed as a speedup over the 4.2 GHz static-margin baseline.
///
/// # Examples
///
/// ```
/// use atm_core::QosTarget;
///
/// let qos = QosTarget::improvement_pct(10.0);
/// assert!((qos.speedup() - 1.10).abs() < 1e-12);
/// assert!(qos.met_by(1.12));
/// assert!(!qos.met_by(1.08));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosTarget {
    speedup: f64,
}

impl QosTarget {
    /// A target of `pct` percent improvement over the static baseline
    /// (the paper evaluates a 10% target).
    ///
    /// # Panics
    ///
    /// Panics if `pct` is negative.
    #[must_use]
    pub fn improvement_pct(pct: f64) -> Self {
        assert!(pct >= 0.0, "improvement must be non-negative");
        QosTarget {
            speedup: 1.0 + pct / 100.0,
        }
    }

    /// The required speedup factor (≥ 1).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// Whether an achieved speedup meets the target (with a 0.1% tolerance
    /// for measurement noise).
    #[must_use]
    pub fn met_by(&self, achieved: f64) -> bool {
        achieved >= self.speedup - 1e-3
    }

    /// The per-request latency budget implied by this target: a request
    /// taking `baseline` at the static margin must finish within
    /// `baseline / speedup` on the fine-tuned core. The serving layer uses
    /// this to turn a QoS speedup into a tail-latency SLO.
    #[must_use]
    pub fn latency_budget(&self, baseline: Nanos) -> Nanos {
        Nanos::new(baseline.get() / self.speedup)
    }
}

impl fmt::Display for QosTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "+{:.1}% over static margin",
            (self.speedup - 1.0) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_percent_target() {
        let q = QosTarget::improvement_pct(10.0);
        assert!(q.met_by(1.10));
        assert!(q.met_by(1.0999)); // tolerance
        assert!(!q.met_by(1.05));
    }

    #[test]
    fn zero_target_always_met() {
        assert!(QosTarget::improvement_pct(0.0).met_by(1.0));
    }

    #[test]
    fn exactly_at_target_counts_as_met() {
        // The boundary itself must pass without leaning on the tolerance.
        let q = QosTarget::improvement_pct(10.0);
        assert!(q.met_by(q.speedup()));
    }

    #[test]
    fn zero_target_tolerates_slight_regression_only() {
        let q = QosTarget::improvement_pct(0.0);
        assert!(q.met_by(0.9995)); // inside the 0.1% noise band
        assert!(!q.met_by(0.99)); // a real slowdown is a miss
    }

    #[test]
    fn negative_achievement_never_meets_a_positive_target() {
        let q = QosTarget::improvement_pct(10.0);
        assert!(!q.met_by(0.0));
        assert!(!q.met_by(-1.0));
    }

    #[test]
    fn latency_budget_scales_inverse_to_speedup() {
        let q = QosTarget::improvement_pct(10.0);
        let budget = q.latency_budget(Nanos::new(44_000_000.0));
        assert!((budget.get() - 40_000_000.0).abs() < 1.0);
        // A 0% target leaves the baseline untouched.
        let flat = QosTarget::improvement_pct(0.0);
        assert_eq!(flat.latency_budget(Nanos::new(500.0)), Nanos::new(500.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_target_rejected() {
        let _ = QosTarget::improvement_pct(-5.0);
    }

    #[test]
    fn display() {
        assert_eq!(
            QosTarget::improvement_pct(10.0).to_string(),
            "+10.0% over static margin"
        );
    }
}
