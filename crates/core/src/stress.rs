//! Test-time stress-test deployment (Sec. VII-A, Fig. 11).
//!
//! Rather than predict per-application CPM settings, the paper proposes a
//! test-time procedure: iterate over each core and run worst-case
//! workloads — a di/dt voltage virus, a power stressmark and an ISA test
//! suite — to find each core's limit configuration with a correctness
//! guarantee for any realistic workload. The vendor may optionally roll
//! the stress-test limit back by a step or two for extra safety; either
//! way, the inter-core speed variation remains exposed.

use atm_chip::{MarginMode, System};
use atm_telemetry::NullRecorder;
use atm_units::{CoreId, MegaHz};
use atm_workloads::{isa_suite, power_virus, voltage_virus};
use serde::{Deserialize, Serialize};

use crate::charact::CharactConfig;

/// A deployable fine-tuned configuration: per-core CPM delay reductions
/// found by the stress-test, plus the frequencies they entail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressTestResult {
    /// Per-core stress-test limits (flat-indexed).
    pub limits: [usize; 16],
    /// Optional vendor rollback applied on top of the limits.
    pub rollback: usize,
    /// ATM frequency of each core under an idle system at the deployed
    /// configuration (Fig. 11's y-axis).
    pub idle_frequencies: [MegaHz; 16],
}

impl StressTestResult {
    /// The deployed reduction of `core` (limit minus rollback, floored at
    /// zero).
    #[must_use]
    pub fn deployed(&self, core: CoreId) -> usize {
        self.limits[core.flat_index()].saturating_sub(self.rollback)
    }

    /// The deployed reduction map.
    #[must_use]
    pub fn deployed_map(&self) -> [usize; 16] {
        let mut map = [0usize; 16];
        for core in CoreId::all() {
            map[core.flat_index()] = self.deployed(core);
        }
        map
    }

    /// The inter-core speed differential at the deployed configuration.
    #[must_use]
    pub fn speed_differential(&self) -> MegaHz {
        let max = self
            .idle_frequencies
            .iter()
            .copied()
            .fold(MegaHz::ZERO, MegaHz::max);
        let min = self
            .idle_frequencies
            .iter()
            .copied()
            .fold(MegaHz::new(1.0e6), MegaHz::min);
        max - min
    }
}

/// Runs the test-time stress-test over every core.
///
/// For each core in turn, the whole socket runs the synchronized voltage
/// virus (32 daxpy-class threads plus chip-wide issue throttling — the
/// worst di/dt and power environment), and the core under test must also
/// survive the power virus and the ISA suite at its candidate reduction.
/// The search walks down from the core's maximum until the combination
/// passes `cfg.repeats` consecutive trials.
///
/// Cores are left programmed at `limit − rollback` with everything back to
/// static-margin idle.
#[must_use]
pub fn stress_test_deploy(
    system: &mut System,
    rollback: usize,
    cfg: &CharactConfig,
) -> StressTestResult {
    let virus = voltage_virus();
    let pvirus = power_virus();
    let isa = isa_suite();
    let mut limits = [0usize; 16];

    for core in CoreId::all() {
        // Environment: the whole system runs the synchronized virus at
        // static margin; only the core under test is in ATM mode.
        system.assign_all(&virus);
        system.set_mode_all(MarginMode::Static);
        system.set_mode(core, MarginMode::Atm);

        let max = system.core(core).cpms().max_reduction();
        let mut r = max;
        'search: loop {
            if system.set_reduction(core, r).is_ok() {
                let mut ok = true;
                'trials: for stress in [&virus, &pvirus, &isa] {
                    system.assign(core, (*stress).clone());
                    for _ in 0..cfg.repeats {
                        if !system.run(cfg.trial, &mut NullRecorder).is_ok() {
                            ok = false;
                            break 'trials;
                        }
                    }
                }
                if ok {
                    break 'search;
                }
            }
            if r == 0 {
                break;
            }
            r -= 1;
        }
        limits[core.flat_index()] = r;
        system.set_mode(core, MarginMode::Static);
    }

    // Joint validation: the per-core searches ran with one core in ATM at
    // a time; the shipped configuration must honor the management
    // contract — *every* core's loop active at its limit while worst-case
    // realistic workloads are co-located chip-wide (the paper's "the
    // critical and background workloads all execute correctly under
    // thread-worst", Sec. VII-C). Any core that fails the joint trials is
    // rolled back a step and the validation repeats.
    let worst_app = atm_workloads::by_name("x264")
        .expect("x264 in catalog")
        .clone();
    system.assign_all(&worst_app);
    system.set_mode_all(MarginMode::Atm);
    for core in CoreId::all() {
        system
            .set_reduction(core, limits[core.flat_index()])
            .expect("searched limit within preset");
    }
    // The joint gate certifies more exposure than any single search trial:
    // 2x the repeats at 2x the trial length.
    let joint_trial = cfg.trial * 2.0;
    let joint_repeats = cfg.repeats * 2;
    let mut budget = 16 * 4; // generous bound; convergence is fast
    loop {
        let mut clean = true;
        for _ in 0..joint_repeats {
            let report = system.run(joint_trial, &mut NullRecorder);
            if let Some(failure) = report.failure {
                let i = failure.core.flat_index();
                limits[i] = limits[i].saturating_sub(1);
                system
                    .set_reduction(failure.core, limits[i])
                    .expect("rolled-back limit within preset");
                clean = false;
                break;
            }
        }
        budget -= 1;
        if clean || budget == 0 {
            break;
        }
    }
    system.set_mode_all(MarginMode::Static);

    // Deploy limit − rollback and record idle ATM frequencies (Fig. 11).
    system.idle_all();
    let mut idle_frequencies = [MegaHz::ZERO; 16];
    for core in CoreId::all() {
        let deployed = limits[core.flat_index()].saturating_sub(rollback);
        system
            .set_reduction(core, deployed)
            .expect("deployed reduction within preset");
        system.set_mode(core, MarginMode::Atm);
        let report = system.settle();
        idle_frequencies[core.flat_index()] = report.core(core).mean_freq;
        system.set_mode(core, MarginMode::Static);
    }

    StressTestResult {
        limits,
        rollback,
        idle_frequencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;

    fn result() -> StressTestResult {
        let mut sys = System::new(ChipConfig::default());
        stress_test_deploy(&mut sys, 0, &CharactConfig::quick())
    }

    #[test]
    fn stress_limits_expose_variation() {
        let r = result();
        let min = *r.limits.iter().min().unwrap();
        let max = *r.limits.iter().max().unwrap();
        assert!(max > min, "no inter-core variation exposed");
        assert!(max <= 16, "stress limit {max} implausibly aggressive");
        // Paper Fig. 11: >200 MHz differential between extremes.
        assert!(
            r.speed_differential().get() > 150.0,
            "differential {} too small",
            r.speed_differential()
        );
    }

    #[test]
    fn rollback_subtracts_with_floor() {
        let mut sys = System::new(ChipConfig::default());
        let r = stress_test_deploy(&mut sys, 2, &CharactConfig::quick());
        for core in CoreId::all() {
            assert_eq!(
                r.deployed(core),
                r.limits[core.flat_index()].saturating_sub(2)
            );
            assert_eq!(sys.core(core).reduction(), r.deployed(core));
        }
    }

    #[test]
    fn deployed_map_matches_deployed() {
        let r = result();
        let map = r.deployed_map();
        for core in CoreId::all() {
            assert_eq!(map[core.flat_index()], r.deployed(core));
        }
    }

    #[test]
    fn joint_worst_colocation_validation_holds() {
        // The shipped limits must honor the management contract: every
        // core in ATM at its limit with the worst realistic workload
        // co-located chip-wide.
        let mut sys = System::new(ChipConfig::default());
        let r = stress_test_deploy(&mut sys, 0, &CharactConfig::quick());
        sys.assign_all(&atm_workloads::by_name("x264").unwrap().clone());
        sys.set_mode_all(MarginMode::Atm);
        for core in CoreId::all() {
            sys.set_reduction(core, r.deployed(core)).unwrap();
        }
        // Exposure consistent with what the quick-config gate certified
        // (2·repeats trials of 2·trial length = 160 µs total).
        for _ in 0..3 {
            let report = sys.run(atm_units::Nanos::new(40_000.0), &mut NullRecorder);
            assert!(
                report.is_ok(),
                "deployed config failed the joint co-location run: {:?}",
                report.failure
            );
        }
    }
}
