//! Margin accounting: where every picosecond of the clock period goes.
//!
//! The paper's entire argument is an accounting identity: a cycle is
//! spent on real path delay, a coverage gap the CPMs cannot see, the
//! loop's threshold, and whatever margin is left untapped. Fine-tuning
//! shrinks the untapped term to (almost) zero. [`MarginBreakdown`]
//! computes the identity for one core at given conditions, and is the
//! quickest way to understand *why* a core's limit is what it is.

use std::fmt;

use atm_chip::System;
use atm_units::{Celsius, CoreId, MegaHz, Picos, Volts};
use serde::{Deserialize, Serialize};

/// The decomposition of one core's clock period at its current CPM
/// configuration and the given operating conditions.
///
/// Invariant: `period = real_path + coverage_gap + unseen_margin`, and
/// separately `period = inserted_delay + synthetic_path + threshold`
/// (the loop's view through its binding CPM).
///
/// # Examples
///
/// ```
/// use atm_chip::{ChipConfig, System};
/// use atm_core::analysis::MarginBreakdown;
/// use atm_units::{Celsius, CoreId, Volts};
///
/// let sys = System::new(ChipConfig::default());
/// let b = MarginBreakdown::compute(
///     &sys,
///     CoreId::new(0, 0),
///     Volts::new(1.235),
///     Celsius::new(45.0),
///     0.0,
/// );
/// // At the default (preset) configuration plenty of margin is untapped.
/// assert!(b.unseen_margin.get() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginBreakdown {
    /// The core under analysis.
    pub core: CoreId,
    /// The ATM equilibrium clock period at these conditions.
    pub period: Picos,
    /// The equivalent frequency.
    pub frequency: MegaHz,
    /// Real critical-path delay (typical paths).
    pub real_path: Picos,
    /// Extra real delay the CPMs do not mimic at this workload's
    /// path-coverage stress.
    pub coverage_gap: Picos,
    /// Margin beyond the covered delay that the loop is *not* holding as
    /// threshold — the still-reclaimable waste (negative means the
    /// configuration has already eaten into the gap's protection).
    pub unseen_margin: Picos,
    /// The binding CPM's programmed inserted delay.
    pub inserted_delay: Picos,
    /// The binding CPM's synthetic-path delay.
    pub synthetic_path: Picos,
    /// The loop's threshold time.
    pub threshold: Picos,
}

impl MarginBreakdown {
    /// Computes the breakdown for `core` at supply voltage `v`, die
    /// temperature `t`, and workload path-coverage stress `path_stress`.
    ///
    /// # Panics
    ///
    /// Panics if `path_stress` is outside `[0, 1]`.
    #[must_use]
    pub fn compute(
        system: &System,
        core: CoreId,
        v: Volts,
        t: Celsius,
        path_stress: f64,
    ) -> MarginBreakdown {
        let c = system.core(core);
        let silicon = c.silicon();
        let cpms = c.cpms();
        let threshold = system.config().loop_config.threshold_time();

        let period = cpms.equilibrium_period(silicon, v, t, threshold);
        let real_path = silicon.real_path_delay(v, t);
        let gap_frac = silicon.coverage_gap(path_stress);
        let coverage_gap = real_path * gap_frac;
        let unseen_margin = period - real_path - coverage_gap;

        // The binding CPM: the one whose occupied time sets the period.
        let binding = atm_cpm::CpmUnit::ALL
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let occ = |u: atm_cpm::CpmUnit| {
                    (cpms.inserted_delay(silicon, u) + silicon.cpm_synthetic_delay(u.index(), v, t))
                        .get()
                };
                occ(a).partial_cmp(&occ(b)).expect("finite")
            })
            .expect("five CPMs");

        MarginBreakdown {
            core,
            period,
            frequency: period.frequency(),
            real_path,
            coverage_gap,
            unseen_margin,
            inserted_delay: cpms.inserted_delay(silicon, binding),
            synthetic_path: silicon.cpm_synthetic_delay(binding.index(), v, t),
            threshold,
        }
    }

    /// Checks the accounting identity (both decompositions sum to the
    /// period).
    ///
    /// # Panics
    ///
    /// Panics if either identity is violated beyond floating-point noise.
    pub fn assert_identity(&self) {
        let physical = self.real_path.get() + self.coverage_gap.get() + self.unseen_margin.get();
        assert!(
            (physical - self.period.get()).abs() < 1e-9,
            "physical identity broken: {physical} vs {}",
            self.period
        );
        let loop_view =
            self.inserted_delay.get() + self.synthetic_path.get() + self.threshold.get();
        assert!(
            (loop_view - self.period.get()).abs() < 1e-9,
            "loop-view identity broken: {loop_view} vs {}",
            self.period
        );
    }

    /// The fraction of the period still reclaimable (the paper's target
    /// of fine-tuning).
    #[must_use]
    pub fn untapped_fraction(&self) -> f64 {
        self.unseen_margin.get() / self.period.get()
    }
}

impl fmt::Display for MarginBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} @ {} ({}):", self.core, self.frequency, self.period)?;
        writeln!(f, "  real path      {}", self.real_path)?;
        writeln!(f, "  coverage gap   {}", self.coverage_gap)?;
        writeln!(f, "  unseen margin  {}", self.unseen_margin)?;
        writeln!(
            f,
            "  loop view: inserted {} + synthetic {} + threshold {}",
            self.inserted_delay, self.synthetic_path, self.threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;

    fn conditions() -> (Volts, Celsius) {
        (Volts::new(1.235), Celsius::new(45.0))
    }

    #[test]
    fn identities_hold_for_every_core() {
        let sys = System::new(ChipConfig::default());
        let (v, t) = conditions();
        for core in CoreId::all() {
            let b = MarginBreakdown::compute(&sys, core, v, t, 0.0);
            b.assert_identity();
            assert!(
                b.unseen_margin.get() > 0.0,
                "{core}: no untapped margin at preset"
            );
        }
    }

    #[test]
    fn fine_tuning_shrinks_the_untapped_margin() {
        let mut sys = System::new(ChipConfig::default());
        let (v, t) = conditions();
        let core = CoreId::new(0, 1);
        let before = MarginBreakdown::compute(&sys, core, v, t, 0.0);
        sys.set_reduction(core, 4).unwrap();
        let after = MarginBreakdown::compute(&sys, core, v, t, 0.0);
        assert!(after.unseen_margin < before.unseen_margin);
        assert!(after.frequency > before.frequency);
        // The physical terms do not move — only the split does.
        assert_eq!(after.real_path, before.real_path);
        after.assert_identity();
    }

    #[test]
    fn path_stress_moves_protection_from_margin_to_gap() {
        let sys = System::new(ChipConfig::default());
        let (v, t) = conditions();
        let core = CoreId::new(1, 0);
        let idle = MarginBreakdown::compute(&sys, core, v, t, 0.0);
        let stressed = MarginBreakdown::compute(&sys, core, v, t, 1.0);
        assert!(stressed.coverage_gap > idle.coverage_gap);
        assert!(stressed.unseen_margin < idle.unseen_margin);
        assert_eq!(stressed.period, idle.period);
    }

    #[test]
    fn untapped_fraction_reasonable_at_preset() {
        let sys = System::new(ChipConfig::default());
        let (v, t) = conditions();
        for core in CoreId::all() {
            let b = MarginBreakdown::compute(&sys, core, v, t, 0.0);
            let frac = b.untapped_fraction();
            assert!(
                (0.005..0.15).contains(&frac),
                "{core}: untapped fraction {frac:.3} implausible"
            );
        }
    }
}
