//! The fine-tuned ATM manager (Sec. VII, Figs. 13–14).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use atm_chip::{MarginMode, System};
use atm_telemetry::{Recorder, RollbackEvent, TelemetryEvent};
use atm_units::{AtmError, CoreId, MegaHz, Nanos, ProcId, Watts};
use atm_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::charact::{CharactConfig, RealisticResult};
use crate::finetune::FineTuner;
use crate::governor::Governor;
use crate::predictor::{FreqPredictor, PerfPredictor};
use crate::qos::QosTarget;
use crate::scheduler::{Placement, Scheduler};
use crate::stress::{stress_test_deploy, StressTestResult};
use crate::supervisor::SupervisorAction;
use crate::throttle::{throttle_to_budget, ThrottlePlan, ThrottleSetting};

/// Frequency headroom added to the QoS-required frequency when computing
/// the balanced power budget, covering droop-transient losses.
const QOS_HEADROOM: MegaHz = MegaHz::new_const(60.0);

/// The margin strategies compared in the paper's Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Chip-wide static margin at 4.2 GHz (the customer-predictability
    /// baseline).
    StaticMargin,
    /// Default (preset) ATM, unmanaged: ATM indiscriminately on for every
    /// core, uniform ~4.6 GHz calibration.
    DefaultAtm,
    /// Fine-tuned ATM, unmanaged: thread-worst limits deployed, but the
    /// critical job may land on the slowest core and background jobs run
    /// at full tilt.
    FineTunedUnmanaged,
    /// Managed for maximum critical performance: critical on the fastest
    /// core, background cores dropped to the lowest p-state.
    ManagedMax,
    /// Managed for balance: critical just meets its QoS target; background
    /// throttled the minimal amount that keeps chip power within the
    /// predicted budget.
    ManagedBalanced(QosTarget),
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::StaticMargin => f.write_str("static margin"),
            Strategy::DefaultAtm => f.write_str("default ATM"),
            Strategy::FineTunedUnmanaged => f.write_str("fine-tuned unmanaged"),
            Strategy::ManagedMax => f.write_str("managed (max critical)"),
            Strategy::ManagedBalanced(q) => write!(f, "managed (balanced, {q})"),
        }
    }
}

/// The measured outcome of running a ⟨critical : background⟩ pair under a
/// strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagedOutcome {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Critical application name.
    pub critical: String,
    /// Background application name.
    pub background: String,
    /// Core the critical application ran on.
    pub critical_core: CoreId,
    /// Mean frequency of the critical core over the measured run.
    pub critical_freq: MegaHz,
    /// Critical-application speedup over the 4.2 GHz static baseline.
    pub speedup: f64,
    /// Background throttle setting in effect (None for the baselines where
    /// backgrounds are not explicitly managed).
    pub background_setting: Option<ThrottleSetting>,
    /// Mean chip power of the evaluation socket.
    pub chip_power: Watts,
    /// Whether the measured run completed without failure (always true at
    /// validated configurations).
    pub ok: bool,
}

/// The ATM manager: deploys a fine-tuned configuration via the test-time
/// stress-test, trains the predictors, and schedules
/// ⟨critical : background⟩ pairs under the paper's strategies.
///
/// Evaluation follows the paper: all work is co-located on processor 0,
/// one core runs the critical application, the remaining seven run copies
/// of the background application, and socket 1 idles.
///
/// # Examples
///
/// ```no_run
/// use atm_chip::{ChipConfig, System};
/// use atm_core::{AtmManager, Governor, QosTarget};
/// use atm_core::charact::CharactConfig;
/// use atm_telemetry::NullRecorder;
/// use atm_workloads::by_name;
///
/// let sys = System::new(ChipConfig::default());
/// let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::standard());
/// let outcome = mgr.evaluate_pair(
///     by_name("squeezenet").unwrap(),
///     by_name("x264").unwrap(),
///     atm_core::manager::Strategy::ManagedBalanced(QosTarget::improvement_pct(10.0)),
///     &mut NullRecorder,
/// );
/// assert!(outcome.speedup >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct AtmManager {
    system: System,
    governor: Governor,
    deployed: StressTestResult,
    realistic: Option<RealisticResult>,
    /// Ordered so the manager's `Debug` rendering (the checkpoint layer's
    /// byte-identity witness) is deterministic.
    freq_predictors: BTreeMap<CoreId, FreqPredictor>,
    measure_duration: Nanos,
    /// Extra per-core CPM rollback applied after field failures
    /// ([`AtmManager::rollback_core`]); survives re-posturing because the
    /// governor map is adjusted by these overrides on every application.
    rollback_overrides: BTreeMap<CoreId, usize>,
    /// Cores the supervisor has quarantined: clock-gated, idle, and
    /// excluded from every placement until the manager is redeployed.
    quarantined: BTreeSet<CoreId>,
    /// Cores reverted to the static-margin baseline by the supervisor's
    /// safe mode: reduction pinned at 0, never placed as critical.
    safe_mode: BTreeSet<CoreId>,
}

/// The serving posture produced by [`AtmManager::serve_posture`]: where
/// the critical stream runs, how the background cores are throttled, and
/// the settled per-core frequencies the serving layer converts into
/// request service rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServePosture {
    /// The placement (critical core, background cores, throttle plan).
    pub placement: Placement,
    /// Settled mean frequency of every socket-0 core under this posture.
    pub core_freqs: Vec<(CoreId, MegaHz)>,
    /// The chip power budget the background throttle was fitted to.
    pub budget: Watts,
}

impl ServePosture {
    /// The settled frequency of `core` under this posture (zero if the
    /// core is not part of the posture's socket).
    #[must_use]
    pub fn freq_of(&self, core: CoreId) -> MegaHz {
        self.core_freqs
            .iter()
            .find(|(c, _)| *c == core)
            .map_or(MegaHz::ZERO, |(_, f)| *f)
    }
}

/// A complete captured [`AtmManager`] state (see
/// [`AtmManager::checkpoint`]).
#[derive(Debug, Clone)]
pub struct ManagerCheckpoint {
    state: AtmManager,
}

impl AtmManager {
    /// Deploys a fine-tuned configuration on `system`: runs the test-time
    /// stress-test per core, applies the governor's reduction map, and
    /// takes ownership of the system.
    #[must_use]
    pub fn deploy(mut system: System, governor: Governor, cfg: &CharactConfig) -> Self {
        let deployed = stress_test_deploy(&mut system, governor.extra_rollback(), cfg);
        AtmManager {
            system,
            governor,
            deployed,
            realistic: None,
            freq_predictors: BTreeMap::new(),
            measure_duration: Nanos::new(100_000.0),
            rollback_overrides: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            safe_mode: BTreeSet::new(),
        }
    }

    /// Attaches per-⟨app, core⟩ profiles so the aggressive governor can
    /// use application-specific limits.
    pub fn set_realistic_profiles(&mut self, realistic: RealisticResult) {
        self.realistic = Some(realistic);
    }

    /// The deployed stress-test result.
    #[must_use]
    pub fn deployed(&self) -> &StressTestResult {
        &self.deployed
    }

    /// The governor in effect.
    #[must_use]
    pub fn governor(&self) -> Governor {
        self.governor
    }

    /// The managed system.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the managed system (for experiments that need to
    /// reconfigure between evaluations).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Captures the manager's complete state — the managed system, the
    /// deploy table, realistic profiles, cached predictors, rollback
    /// overrides, and the quarantine/safe-mode sets — as a value.
    /// Restoring with [`AtmManager::restore`] and continuing is
    /// byte-identical to never stopping.
    #[must_use]
    pub fn checkpoint(&self) -> ManagerCheckpoint {
        ManagerCheckpoint {
            state: self.clone(),
        }
    }

    /// Restores the complete state captured by [`AtmManager::checkpoint`],
    /// discarding everything managed since.
    pub fn restore(&mut self, cp: &ManagerCheckpoint) {
        *self = cp.state.clone();
    }

    /// Sets the measured-run duration (default 100 µs).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    pub fn set_measure_duration(&mut self, duration: Nanos) {
        assert!(duration.get() > 0.0, "duration must be positive");
        self.measure_duration = duration;
    }

    /// The per-core frequency predictor, trained on demand and cached.
    pub fn freq_predictor(&mut self, core: CoreId) -> FreqPredictor {
        if let Some(p) = self.freq_predictors.get(&core) {
            return *p;
        }
        let p = FreqPredictor::train(&mut self.system, core);
        self.freq_predictors.insert(core, p);
        p
    }

    /// Runs one ⟨critical : background⟩ pair under `strategy` and measures
    /// the critical application's speedup over the static-margin baseline
    /// (one bar group of Fig. 14).
    ///
    /// The measured run, throttle decision and power-budget gauge record
    /// through `rec`; pass [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the
    /// zero-overhead unrecorded path — the outcome is identical either
    /// way.
    pub fn evaluate_pair<R: Recorder>(
        &mut self,
        critical: &Workload,
        background: &Workload,
        strategy: Strategy,
        rec: &mut R,
    ) -> ManagedOutcome {
        let proc = ProcId::new(0);
        let baseline = self.system.config().pstates.nominal().frequency;

        // Reset posture: socket 1 idles static; socket 0 gets the pair.
        self.system.idle_all();
        self.system.set_mode_all(MarginMode::Static);

        let (critical_core, background_setting) = match strategy {
            Strategy::StaticMargin => {
                let core = CoreId::new(0, 0);
                self.place(core, critical, background, MarginMode::Static);
                (core, None)
            }
            Strategy::DefaultAtm => {
                // Preset configuration: reduction 0 everywhere, ATM on for
                // every core, arbitrary placement (cores are uniform).
                let saved = self.deployed.deployed_map();
                FineTuner::new(&mut self.system)
                    .apply_map(&[0; 16])
                    .expect("zero map always valid");
                let core = CoreId::new(0, 0);
                self.place(core, critical, background, MarginMode::Atm);
                let outcome =
                    self.measure(strategy, critical, background, core, None, baseline, rec);
                FineTuner::new(&mut self.system)
                    .apply_map(&saved)
                    .expect("restoring deployed map");
                return outcome;
            }
            Strategy::FineTunedUnmanaged => {
                self.apply_governor_map(critical);
                // Careless placement: the slowest fine-tuned core.
                let core = Scheduler::new(&mut self.system).slowest_core(proc);
                self.place(core, critical, background, MarginMode::Atm);
                (core, Some(ThrottleSetting::AtmMax))
            }
            Strategy::ManagedMax => {
                self.apply_governor_map(critical);
                let robust = self.governor.robust_cores_only();
                let core = Scheduler::new(&mut self.system).fastest_core(proc, robust);
                let lowest = self.system.config().pstates.lowest().frequency;
                self.place(core, critical, background, MarginMode::Fixed(lowest));
                self.system.set_mode(core, MarginMode::Atm);
                (core, Some(ThrottleSetting::Fixed(lowest)))
            }
            Strategy::ManagedBalanced(qos) => {
                self.apply_governor_map(critical);
                let robust = self.governor.robust_cores_only();
                let core = Scheduler::new(&mut self.system).fastest_core(proc, robust);

                // Predict the frequency the QoS needs and the chip power
                // budget that sustains it (Fig. 13's predictor chain). The
                // headroom covers the average frequency lost to transient
                // droop responses, which the settled predictor cannot see.
                let perf = PerfPredictor::train(critical, baseline);
                let f_req = perf.freq_for(qos.speedup()) + QOS_HEADROOM;
                let freq_pred = self.freq_predictor(core);
                let budget = freq_pred.power_for(f_req);
                rec.gauge("manager.budget_w", budget.get());

                self.place(core, critical, background, MarginMode::Atm);
                self.system.set_mode(core, MarginMode::Atm);
                let bg_cores: Vec<CoreId> = proc.cores().filter(|c| *c != core).collect();
                let plan =
                    throttle_to_budget(&mut self.system, &bg_cores, budget, proc.index(), rec);
                (core, Some(plan.setting))
            }
        };

        self.measure(
            strategy,
            critical,
            background,
            critical_core,
            background_setting,
            baseline,
            rec,
        )
    }

    /// Applies the governor's reduction map for `critical`, adjusted by
    /// any post-failure rollback overrides.
    fn apply_governor_map(&mut self, critical: &Workload) {
        let mut map = self.governor.reduction_map(
            &self.deployed,
            self.realistic.as_ref(),
            Some(critical.name()),
        );
        for (&core, &extra) in &self.rollback_overrides {
            let slot = core.flat_index();
            map[slot] = map[slot].saturating_sub(extra);
        }
        // Safe-moded and quarantined cores stay at the static-margin
        // baseline (reduction 0) no matter what the governor proposes.
        for &core in self.safe_mode.iter().chain(self.quarantined.iter()) {
            map[core.flat_index()] = 0;
        }
        FineTuner::new(&mut self.system)
            .apply_map(&map)
            .expect("governor maps derive from validated limits");
    }

    /// Rolls back `core`'s CPM fine-tuning by `steps` additional delay
    /// steps (floored at the preset configuration) — the field response to
    /// a failure or persistent droop alarms on that core. The override is
    /// remembered: every future governor-map application (including
    /// [`AtmManager::serve_posture`]) keeps the rollback, and the core's
    /// cached frequency predictor is retrained on demand.
    ///
    /// Bumps the `manager.rollbacks` counter and records a
    /// [`atm_telemetry::RollbackEvent`] through `rec`; pass
    /// [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the zero-overhead
    /// unrecorded path. Returns the core's new reduction.
    pub fn rollback_core<R: Recorder>(&mut self, core: CoreId, steps: usize, rec: &mut R) -> usize {
        let entry = self.rollback_overrides.entry(core).or_insert(0);
        *entry += steps;
        let current = self.system.core(core).reduction();
        let new = current.saturating_sub(steps);
        self.system
            .set_reduction(core, new)
            .expect("lowering a reduction is always valid");
        self.freq_predictors.remove(&core);
        rec.incr("manager.rollbacks", 1);
        if rec.enabled() {
            rec.record(TelemetryEvent::Rollback(RollbackEvent {
                t: rec.now(),
                core,
                steps: steps as u32,
                new_reduction: new as u32,
            }));
        }
        new
    }

    /// The cumulative post-failure rollback override on `core`.
    #[must_use]
    pub fn rollback_override(&self, core: CoreId) -> usize {
        self.rollback_overrides.get(&core).copied().unwrap_or(0)
    }

    /// Applies a batch of [`MarginSupervisor`](crate::MarginSupervisor)
    /// decisions to the managed system. Returns `true` when the serving
    /// layer must recompute its placement (a core was quarantined or
    /// dropped to safe mode — either can take the critical core out of
    /// rotation).
    ///
    /// Rollbacks and re-probes record through `rec` and the
    /// `manager.quarantines` / `manager.safe_modes` counters are bumped;
    /// pass [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the zero-overhead
    /// unrecorded path.
    pub fn apply_supervisor_actions<R: Recorder>(
        &mut self,
        actions: &[SupervisorAction],
        rec: &mut R,
    ) -> bool {
        let mut needs_replace = false;
        for action in actions {
            let core = action.core();
            if self.quarantined.contains(&core) {
                continue;
            }
            match *action {
                SupervisorAction::Rollback { steps, .. } => {
                    if !self.safe_mode.contains(&core) {
                        let _ = self.rollback_core(core, steps, rec);
                    }
                }
                SupervisorAction::Reprobe { steps, .. } => {
                    if !self.safe_mode.contains(&core) {
                        let _ = self.reprobe_core(core, steps, rec);
                    }
                }
                SupervisorAction::SafeMode { .. } => {
                    self.safe_mode_core(core);
                    rec.incr("manager.safe_modes", 1);
                    needs_replace = true;
                }
                SupervisorAction::Quarantine { .. } => {
                    self.quarantine_core(core);
                    rec.incr("manager.quarantines", 1);
                    needs_replace = true;
                }
            }
        }
        needs_replace
    }

    /// Cautiously restores fine-tuning after a clean probation: `steps` of
    /// the rollback override come back off, and the core's live reduction
    /// climbs by `steps`, capped at the stress-test-validated deployment.
    /// Re-probes record through `rec` (`manager.reprobes`); pass
    /// [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the unrecorded path.
    ///
    /// Returns the core's new reduction.
    pub fn reprobe_core<R: Recorder>(&mut self, core: CoreId, steps: usize, rec: &mut R) -> usize {
        if let Some(over) = self.rollback_overrides.get_mut(&core) {
            *over = over.saturating_sub(steps);
            if *over == 0 {
                self.rollback_overrides.remove(&core);
            }
        }
        let ceiling = self.deployed.deployed_map()[core.flat_index()];
        let new = (self.system.core(core).reduction() + steps).min(ceiling);
        self.system
            .set_reduction(core, new)
            .expect("re-probe never exceeds the validated deployment");
        self.freq_predictors.remove(&core);
        rec.incr("manager.reprobes", 1);
        new
    }

    /// Re-tightens `core`'s fine-tuning by up to `steps`: the online
    /// adaptation hook. The new reduction is capped at the stress-tested
    /// deployment ceiling *minus the supervisor's live rollback override*,
    /// so adaptation can never undo a strike — a rolled-back core stays
    /// rolled back until its probation clears through the normal re-probe
    /// path. Quarantined and safe-mode cores are left untouched.
    ///
    /// Bumps the `manager.retightens` counter through `rec`; pass
    /// [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the unrecorded path.
    /// Returns the core's reduction after the call.
    pub fn retighten_core<R: Recorder>(
        &mut self,
        core: CoreId,
        steps: usize,
        rec: &mut R,
    ) -> usize {
        if self.quarantined.contains(&core) || self.safe_mode.contains(&core) {
            return self.system.core(core).reduction();
        }
        let ceiling = self.deployed.deployed_map()[core.flat_index()]
            .saturating_sub(self.rollback_override(core));
        let current = self.system.core(core).reduction();
        if ceiling <= current {
            // Nothing left to tighten (or a live rollback owns the gap):
            // re-tightening must never *loosen*, so leave the core alone.
            return current;
        }
        let new = current.saturating_add(steps).min(ceiling);
        self.system
            .set_reduction(core, new)
            .expect("re-tighten never exceeds the validated deployment");
        self.freq_predictors.remove(&core);
        rec.incr("manager.retightens", 1);
        new
    }

    /// Quarantines `core`: clock-gated, idled, reduction pinned at 0, and
    /// excluded from every future placement. Terminal until redeployment.
    pub fn quarantine_core(&mut self, core: CoreId) {
        self.safe_mode.remove(&core);
        self.quarantined.insert(core);
        self.system
            .set_reduction(core, 0)
            .expect("zero reduction is always valid");
        self.system.assign(core, Workload::idle());
        self.system.set_mode(core, MarginMode::Gated);
        self.freq_predictors.remove(&core);
    }

    /// Drops `core` to safe mode: static margin, reduction 0 — exactly the
    /// never-tuned baseline configuration, which is correct by
    /// construction. The core stays powered but is excluded from every
    /// future placement and never re-enters ATM mode under this manager.
    pub fn safe_mode_core(&mut self, core: CoreId) {
        self.safe_mode.insert(core);
        self.system
            .set_reduction(core, 0)
            .expect("zero reduction is always valid");
        self.system.set_mode(core, MarginMode::Static);
        self.freq_predictors.remove(&core);
    }

    /// The cores currently quarantined by supervisor actions.
    #[must_use]
    pub fn quarantined_cores(&self) -> &BTreeSet<CoreId> {
        &self.quarantined
    }

    /// The cores currently held in safe mode by supervisor actions.
    #[must_use]
    pub fn safe_mode_cores(&self) -> &BTreeSet<CoreId> {
        &self.safe_mode
    }

    /// The cores a placement must exclude (quarantined ∪ safe mode), in
    /// core order.
    #[must_use]
    pub fn supervisor_excluded(&self) -> Vec<CoreId> {
        self.quarantined.union(&self.safe_mode).copied().collect()
    }

    /// Computes the serving posture for a critical stream with background
    /// co-runners (the serving layer's placement hook): the governor map
    /// is applied, the critical workload lands on the fastest (optionally
    /// robust-only) core via [`Scheduler::place_critical`], the background
    /// workloads backfill the remaining socket-0 cores round-robin in ATM
    /// mode, and the background cores are throttled to the power budget
    /// the predictor chain derives from `qos` — exactly the
    /// `ManagedBalanced` pipeline, but returning the full posture instead
    /// of running a one-shot measurement.
    ///
    /// The power-budget gauge and throttle decision record through
    /// `rec`; pass [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the
    /// zero-overhead unrecorded path.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`] if `backgrounds` is empty.
    pub fn serve_posture<R: Recorder>(
        &mut self,
        critical: &Workload,
        backgrounds: &[Workload],
        qos: QosTarget,
        rec: &mut R,
    ) -> Result<ServePosture, AtmError> {
        if backgrounds.is_empty() {
            return Err(AtmError::invalid_config(
                "backgrounds",
                "need at least one background workload",
            ));
        }
        let proc = ProcId::new(0);
        let baseline = self.system.config().pstates.nominal().frequency;

        self.system.idle_all();
        self.system.set_mode_all(MarginMode::Static);
        // The posture reset must not wake quarantined cores.
        for &q in &self.quarantined {
            self.system.set_mode(q, MarginMode::Gated);
        }
        self.apply_governor_map(critical);

        let robust = self.governor.robust_cores_only();
        let excluded = self.supervisor_excluded();
        let mut placement =
            Scheduler::new(&mut self.system).place_critical_excluding(proc, robust, &excluded);
        let core = placement.critical_core;

        // Predictor chain (Fig. 13): QoS → required frequency → power
        // budget that sustains it.
        let perf = PerfPredictor::train(critical, baseline);
        let f_req = perf.freq_for(qos.speedup()) + QOS_HEADROOM;
        let freq_pred = self.freq_predictor(core);
        let budget = freq_pred.power_for(f_req);
        rec.gauge("manager.budget_w", budget.get());

        self.system.assign(core, critical.clone());
        self.system.set_mode(core, MarginMode::Atm);
        for (i, &bg_core) in placement.background_cores.iter().enumerate() {
            self.system
                .assign(bg_core, backgrounds[i % backgrounds.len()].clone());
            self.system.set_mode(bg_core, MarginMode::Atm);
        }
        let plan = throttle_to_budget(
            &mut self.system,
            &placement.background_cores,
            budget,
            proc.index(),
            rec,
        );
        placement.plan = Some(plan);

        let report = self.system.settle();
        let core_freqs = proc
            .cores()
            .map(|c| (c, report.core(c).mean_freq))
            .collect();
        Ok(ServePosture {
            placement,
            core_freqs,
            budget,
        })
    }

    /// The power regulator's actuation seam: applies a cap throttle depth
    /// on top of a serving posture, background-before-critical.
    ///
    /// `base` is the posture's own background throttle plan (the
    /// regulator's depth is always relative to it, so droop-policy
    /// escalations and cap throttles compose instead of fighting);
    /// `bg_depth` rungs are taken off the background cores first, and
    /// `crit_depth` pins the critical core that many ladder rungs below
    /// ATM-max — clamped above [`ThrottleSetting::Gated`], a power cap may
    /// slow the critical stream but never kill it.
    ///
    /// Supervisor state always outranks the regulator: quarantined and
    /// safe-mode cores are skipped entirely, and because the seam moves
    /// *margin modes* only, a rolled-back core's reduction (the
    /// `retighten_core` ceiling: deployment minus live rollback override)
    /// is untouched — a cap release can never undo a strike.
    ///
    /// Returns the background setting now in force.
    pub fn apply_cap_levels<R: Recorder>(
        &mut self,
        base: &ThrottlePlan,
        critical: CoreId,
        bg_depth: u32,
        crit_depth: u32,
        rec: &mut R,
    ) -> ThrottleSetting {
        let pstates = self.system.config().pstates.clone();
        let bg_setting = base.setting.stepped(&pstates, bg_depth);
        for &core in &base.cores {
            if self.quarantined.contains(&core) || self.safe_mode.contains(&core) {
                continue;
            }
            self.system.set_mode(core, bg_setting.margin_mode());
        }
        if !self.quarantined.contains(&critical) && !self.safe_mode.contains(&critical) {
            let ladder = ThrottleSetting::ladder(&pstates);
            // Never gate the critical core: clamp at the slowest p-state.
            let idx = (crit_depth as usize).min(ladder.len() - 2);
            self.system.set_mode(critical, ladder[idx].margin_mode());
        }
        if rec.enabled() {
            rec.incr("manager.cap_applications", 1);
            rec.gauge("manager.cap_bg_depth", f64::from(bg_depth));
            rec.gauge("manager.cap_crit_depth", f64::from(crit_depth));
        }
        bg_setting
    }

    /// Re-settles the current schedule and reports each of `proc`'s cores'
    /// steady-state frequency — the serving layer's per-epoch service-rate
    /// refresh.
    pub fn measure_core_freqs(&mut self, proc: ProcId) -> Vec<(CoreId, MegaHz)> {
        let report = self.system.settle();
        proc.cores()
            .map(|c| (c, report.core(c).mean_freq))
            .collect()
    }

    /// Places the pair on socket 0: `critical` on `core` (in ATM mode
    /// unless the whole evaluation is static), `background` replicated on
    /// the seven siblings at `bg_mode`.
    fn place(
        &mut self,
        core: CoreId,
        critical: &Workload,
        background: &Workload,
        bg_mode: MarginMode,
    ) {
        self.system.assign(core, critical.clone());
        let critical_mode = if bg_mode == MarginMode::Static {
            MarginMode::Static
        } else {
            MarginMode::Atm
        };
        self.system.set_mode(core, critical_mode);
        for sib in ProcId::new(0).cores().filter(|c| *c != core) {
            self.system.assign(sib, background.clone());
            self.system.set_mode(sib, bg_mode);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn measure<R: Recorder>(
        &mut self,
        strategy: Strategy,
        critical: &Workload,
        background: &Workload,
        critical_core: CoreId,
        background_setting: Option<ThrottleSetting>,
        baseline: MegaHz,
        rec: &mut R,
    ) -> ManagedOutcome {
        let report = self.system.run(self.measure_duration, rec);
        let critical_freq = report.core(critical_core).mean_freq;
        ManagedOutcome {
            strategy,
            critical: critical.name().to_owned(),
            background: background.name().to_owned(),
            critical_core,
            critical_freq,
            speedup: critical.speedup(critical_freq, baseline),
            background_setting,
            chip_power: report.procs[0].mean_power,
            ok: report.is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;
    use atm_telemetry::NullRecorder;
    use atm_workloads::by_name;

    fn manager() -> AtmManager {
        let sys = System::new(ChipConfig::default());
        AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick())
    }

    #[test]
    fn fig14_ordering_holds_for_squeezenet_x264() {
        let mut mgr = manager();
        let critical = by_name("squeezenet").unwrap();
        let background = by_name("x264").unwrap();

        let s_static = mgr.evaluate_pair(
            critical,
            background,
            Strategy::StaticMargin,
            &mut NullRecorder,
        );
        let s_default = mgr.evaluate_pair(
            critical,
            background,
            Strategy::DefaultAtm,
            &mut NullRecorder,
        );
        let s_unmanaged = mgr.evaluate_pair(
            critical,
            background,
            Strategy::FineTunedUnmanaged,
            &mut NullRecorder,
        );
        let s_max = mgr.evaluate_pair(
            critical,
            background,
            Strategy::ManagedMax,
            &mut NullRecorder,
        );

        assert!((s_static.speedup - 1.0).abs() < 1e-9);
        assert!(
            s_default.speedup > 1.02,
            "default ATM {:.3}",
            s_default.speedup
        );
        assert!(
            s_unmanaged.speedup > s_default.speedup,
            "fine-tuned unmanaged {:.3} vs default {:.3}",
            s_unmanaged.speedup,
            s_default.speedup
        );
        assert!(
            s_max.speedup > s_unmanaged.speedup,
            "managed max {:.3} vs unmanaged {:.3}",
            s_max.speedup,
            s_unmanaged.speedup
        );
        for s in [&s_static, &s_default, &s_unmanaged, &s_max] {
            assert!(s.ok, "{} run failed", s.strategy);
        }
    }

    #[test]
    fn balanced_meets_ten_percent_qos() {
        let mut mgr = manager();
        let critical = by_name("squeezenet").unwrap();
        let background = by_name("lu_cb").unwrap();
        let qos = QosTarget::improvement_pct(10.0);
        let outcome = mgr.evaluate_pair(
            critical,
            background,
            Strategy::ManagedBalanced(qos),
            &mut NullRecorder,
        );
        assert!(
            qos.met_by(outcome.speedup),
            "balanced speedup {:.3} misses {qos}",
            outcome.speedup
        );
        assert!(outcome.ok);
    }

    #[test]
    fn managed_max_uses_fastest_core_and_lowest_pstate() {
        let mut mgr = manager();
        let critical = by_name("seq2seq").unwrap();
        let background = by_name("swaptions").unwrap();
        let outcome = mgr.evaluate_pair(
            critical,
            background,
            Strategy::ManagedMax,
            &mut NullRecorder,
        );
        assert_eq!(
            outcome.background_setting,
            Some(ThrottleSetting::Fixed(MegaHz::new(2100.0)))
        );
        let expected = Scheduler::new(mgr.system_mut()).fastest_core(ProcId::new(0), false);
        assert_eq!(outcome.critical_core, expected);
    }

    #[test]
    fn serve_posture_places_critical_on_fastest_and_fills_plan() {
        let mut mgr = manager();
        let critical = by_name("squeezenet").unwrap();
        let bgs = [
            by_name("x264").unwrap().clone(),
            by_name("lu_cb").unwrap().clone(),
        ];
        let posture = mgr
            .serve_posture(
                critical,
                &bgs,
                QosTarget::improvement_pct(10.0),
                &mut NullRecorder,
            )
            .expect("non-empty backgrounds");

        assert_eq!(posture.placement.background_cores.len(), 7);
        assert!(
            posture.placement.plan.is_some(),
            "throttle plan must be filled"
        );
        assert!(posture.budget.get() > 0.0);
        // Every socket-0 core has a settled frequency; the critical core's
        // meets the QoS-required clock region (ATM above static margin).
        assert_eq!(posture.core_freqs.len(), 8);
        let crit_freq = posture.freq_of(posture.placement.critical_core);
        assert!(crit_freq.get() > 4200.0, "critical at {crit_freq}");
        // The critical core carries the critical workload on the system.
        assert_eq!(
            mgr.system()
                .core(posture.placement.critical_core)
                .workload()
                .name(),
            "squeezenet"
        );
        // Background cores carry the backgrounds round-robin.
        for (i, &c) in posture.placement.background_cores.iter().enumerate() {
            assert_eq!(mgr.system().core(c).workload().name(), bgs[i % 2].name());
        }
    }

    #[test]
    fn rollback_core_persists_across_reposturing() {
        let mut mgr = manager();
        let critical = by_name("squeezenet").unwrap();
        let bgs = [by_name("x264").unwrap().clone()];
        let qos = QosTarget::improvement_pct(5.0);
        let first = mgr
            .serve_posture(critical, &bgs, qos, &mut NullRecorder)
            .expect("non-empty backgrounds");
        let victim = first.placement.critical_core;
        let before = mgr.system().core(victim).reduction();
        if before == 0 {
            // Nothing to roll back on this silicon; the override still
            // registers.
            let _ = mgr.rollback_core(victim, 2, &mut NullRecorder);
            assert_eq!(mgr.rollback_override(victim), 2);
            return;
        }
        let after = mgr.rollback_core(victim, 2, &mut NullRecorder);
        assert_eq!(after, before.saturating_sub(2));
        // Re-posturing re-applies the governor map — the rollback must
        // survive it.
        let _ = mgr
            .serve_posture(critical, &bgs, qos, &mut NullRecorder)
            .expect("non-empty backgrounds");
        assert_eq!(mgr.system().core(victim).reduction(), after);
    }

    #[test]
    fn default_atm_restores_deployed_map() {
        let mut mgr = manager();
        let before: Vec<usize> = CoreId::all()
            .map(|c| mgr.system().core(c).reduction())
            .collect();
        let _ = mgr.evaluate_pair(
            by_name("babi").unwrap(),
            by_name("raytrace").unwrap(),
            Strategy::DefaultAtm,
            &mut NullRecorder,
        );
        let after: Vec<usize> = CoreId::all()
            .map(|c| mgr.system().core(c).reduction())
            .collect();
        assert_eq!(before, after);
    }
}
