//! The fine-tuned ATM manager (Sec. VII, Figs. 13–14).

use std::collections::HashMap;
use std::fmt;

use atm_chip::{MarginMode, System};
use atm_units::{CoreId, MegaHz, Nanos, ProcId, Watts};
use atm_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::charact::{CharactConfig, RealisticResult};
use crate::finetune::FineTuner;
use crate::governor::Governor;
use crate::predictor::{FreqPredictor, PerfPredictor};
use crate::qos::QosTarget;
use crate::scheduler::Scheduler;
use crate::stress::{stress_test_deploy, StressTestResult};
use crate::throttle::{throttle_to_budget, ThrottleSetting};

/// Frequency headroom added to the QoS-required frequency when computing
/// the balanced power budget, covering droop-transient losses.
const QOS_HEADROOM: MegaHz = MegaHz::new_const(60.0);

/// The margin strategies compared in the paper's Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Chip-wide static margin at 4.2 GHz (the customer-predictability
    /// baseline).
    StaticMargin,
    /// Default (preset) ATM, unmanaged: ATM indiscriminately on for every
    /// core, uniform ~4.6 GHz calibration.
    DefaultAtm,
    /// Fine-tuned ATM, unmanaged: thread-worst limits deployed, but the
    /// critical job may land on the slowest core and background jobs run
    /// at full tilt.
    FineTunedUnmanaged,
    /// Managed for maximum critical performance: critical on the fastest
    /// core, background cores dropped to the lowest p-state.
    ManagedMax,
    /// Managed for balance: critical just meets its QoS target; background
    /// throttled the minimal amount that keeps chip power within the
    /// predicted budget.
    ManagedBalanced(QosTarget),
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::StaticMargin => f.write_str("static margin"),
            Strategy::DefaultAtm => f.write_str("default ATM"),
            Strategy::FineTunedUnmanaged => f.write_str("fine-tuned unmanaged"),
            Strategy::ManagedMax => f.write_str("managed (max critical)"),
            Strategy::ManagedBalanced(q) => write!(f, "managed (balanced, {q})"),
        }
    }
}

/// The measured outcome of running a ⟨critical : background⟩ pair under a
/// strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagedOutcome {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Critical application name.
    pub critical: String,
    /// Background application name.
    pub background: String,
    /// Core the critical application ran on.
    pub critical_core: CoreId,
    /// Mean frequency of the critical core over the measured run.
    pub critical_freq: MegaHz,
    /// Critical-application speedup over the 4.2 GHz static baseline.
    pub speedup: f64,
    /// Background throttle setting in effect (None for the baselines where
    /// backgrounds are not explicitly managed).
    pub background_setting: Option<ThrottleSetting>,
    /// Mean chip power of the evaluation socket.
    pub chip_power: Watts,
    /// Whether the measured run completed without failure (always true at
    /// validated configurations).
    pub ok: bool,
}

/// The ATM manager: deploys a fine-tuned configuration via the test-time
/// stress-test, trains the predictors, and schedules
/// ⟨critical : background⟩ pairs under the paper's strategies.
///
/// Evaluation follows the paper: all work is co-located on processor 0,
/// one core runs the critical application, the remaining seven run copies
/// of the background application, and socket 1 idles.
///
/// # Examples
///
/// ```no_run
/// use atm_chip::{ChipConfig, System};
/// use atm_core::{AtmManager, Governor, QosTarget};
/// use atm_core::charact::CharactConfig;
/// use atm_workloads::by_name;
///
/// let sys = System::new(ChipConfig::default());
/// let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::standard());
/// let outcome = mgr.evaluate_pair(
///     by_name("squeezenet").unwrap(),
///     by_name("x264").unwrap(),
///     atm_core::manager::Strategy::ManagedBalanced(QosTarget::improvement_pct(10.0)),
/// );
/// assert!(outcome.speedup >= 1.0);
/// ```
#[derive(Debug)]
pub struct AtmManager {
    system: System,
    governor: Governor,
    deployed: StressTestResult,
    realistic: Option<RealisticResult>,
    freq_predictors: HashMap<CoreId, FreqPredictor>,
    measure_duration: Nanos,
}

impl AtmManager {
    /// Deploys a fine-tuned configuration on `system`: runs the test-time
    /// stress-test per core, applies the governor's reduction map, and
    /// takes ownership of the system.
    #[must_use]
    pub fn deploy(mut system: System, governor: Governor, cfg: &CharactConfig) -> Self {
        let deployed = stress_test_deploy(&mut system, governor.extra_rollback(), cfg);
        AtmManager {
            system,
            governor,
            deployed,
            realistic: None,
            freq_predictors: HashMap::new(),
            measure_duration: Nanos::new(100_000.0),
        }
    }

    /// Attaches per-⟨app, core⟩ profiles so the aggressive governor can
    /// use application-specific limits.
    pub fn set_realistic_profiles(&mut self, realistic: RealisticResult) {
        self.realistic = Some(realistic);
    }

    /// The deployed stress-test result.
    #[must_use]
    pub fn deployed(&self) -> &StressTestResult {
        &self.deployed
    }

    /// The governor in effect.
    #[must_use]
    pub fn governor(&self) -> Governor {
        self.governor
    }

    /// The managed system.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the managed system (for experiments that need to
    /// reconfigure between evaluations).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Sets the measured-run duration (default 100 µs).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    pub fn set_measure_duration(&mut self, duration: Nanos) {
        assert!(duration.get() > 0.0, "duration must be positive");
        self.measure_duration = duration;
    }

    /// The per-core frequency predictor, trained on demand and cached.
    pub fn freq_predictor(&mut self, core: CoreId) -> FreqPredictor {
        if let Some(p) = self.freq_predictors.get(&core) {
            return *p;
        }
        let p = FreqPredictor::train(&mut self.system, core);
        self.freq_predictors.insert(core, p);
        p
    }

    /// Runs one ⟨critical : background⟩ pair under `strategy` and measures
    /// the critical application's speedup over the static-margin baseline
    /// (one bar group of Fig. 14).
    pub fn evaluate_pair(
        &mut self,
        critical: &Workload,
        background: &Workload,
        strategy: Strategy,
    ) -> ManagedOutcome {
        let proc = ProcId::new(0);
        let baseline = self.system.config().pstates.nominal().frequency;

        // Reset posture: socket 1 idles static; socket 0 gets the pair.
        self.system.idle_all();
        self.system.set_mode_all(MarginMode::Static);

        let (critical_core, background_setting) = match strategy {
            Strategy::StaticMargin => {
                let core = CoreId::new(0, 0);
                self.place(core, critical, background, MarginMode::Static);
                (core, None)
            }
            Strategy::DefaultAtm => {
                // Preset configuration: reduction 0 everywhere, ATM on for
                // every core, arbitrary placement (cores are uniform).
                let saved = self.deployed.deployed_map();
                FineTuner::new(&mut self.system)
                    .apply_map(&[0; 16])
                    .expect("zero map always valid");
                let core = CoreId::new(0, 0);
                self.place(core, critical, background, MarginMode::Atm);
                let outcome = self.measure(strategy, critical, background, core, None, baseline);
                FineTuner::new(&mut self.system)
                    .apply_map(&saved)
                    .expect("restoring deployed map");
                return outcome;
            }
            Strategy::FineTunedUnmanaged => {
                self.apply_governor_map(critical);
                // Careless placement: the slowest fine-tuned core.
                let core = Scheduler::new(&mut self.system).slowest_core(proc);
                self.place(core, critical, background, MarginMode::Atm);
                (core, Some(ThrottleSetting::AtmMax))
            }
            Strategy::ManagedMax => {
                self.apply_governor_map(critical);
                let robust = self.governor.robust_cores_only();
                let core = Scheduler::new(&mut self.system).fastest_core(proc, robust);
                let lowest = self.system.config().pstates.lowest().frequency;
                self.place(core, critical, background, MarginMode::Fixed(lowest));
                self.system.set_mode(core, MarginMode::Atm);
                (core, Some(ThrottleSetting::Fixed(lowest)))
            }
            Strategy::ManagedBalanced(qos) => {
                self.apply_governor_map(critical);
                let robust = self.governor.robust_cores_only();
                let core = Scheduler::new(&mut self.system).fastest_core(proc, robust);

                // Predict the frequency the QoS needs and the chip power
                // budget that sustains it (Fig. 13's predictor chain). The
                // headroom covers the average frequency lost to transient
                // droop responses, which the settled predictor cannot see.
                let perf = PerfPredictor::train(critical, baseline);
                let f_req = perf.freq_for(qos.speedup()) + QOS_HEADROOM;
                let freq_pred = self.freq_predictor(core);
                let budget = freq_pred.power_for(f_req);

                self.place(core, critical, background, MarginMode::Atm);
                self.system.set_mode(core, MarginMode::Atm);
                let bg_cores: Vec<CoreId> = proc.cores().filter(|c| *c != core).collect();
                let plan = throttle_to_budget(&mut self.system, &bg_cores, budget, proc.index());
                (core, Some(plan.setting))
            }
        };

        self.measure(
            strategy,
            critical,
            background,
            critical_core,
            background_setting,
            baseline,
        )
    }

    /// Applies the governor's reduction map for `critical`.
    fn apply_governor_map(&mut self, critical: &Workload) {
        let map = self.governor.reduction_map(
            &self.deployed,
            self.realistic.as_ref(),
            Some(critical.name()),
        );
        FineTuner::new(&mut self.system)
            .apply_map(&map)
            .expect("governor maps derive from validated limits");
    }

    /// Places the pair on socket 0: `critical` on `core` (in ATM mode
    /// unless the whole evaluation is static), `background` replicated on
    /// the seven siblings at `bg_mode`.
    fn place(
        &mut self,
        core: CoreId,
        critical: &Workload,
        background: &Workload,
        bg_mode: MarginMode,
    ) {
        self.system.assign(core, critical.clone());
        let critical_mode = if bg_mode == MarginMode::Static {
            MarginMode::Static
        } else {
            MarginMode::Atm
        };
        self.system.set_mode(core, critical_mode);
        for sib in ProcId::new(0).cores().filter(|c| *c != core) {
            self.system.assign(sib, background.clone());
            self.system.set_mode(sib, bg_mode);
        }
    }

    fn measure(
        &mut self,
        strategy: Strategy,
        critical: &Workload,
        background: &Workload,
        critical_core: CoreId,
        background_setting: Option<ThrottleSetting>,
        baseline: MegaHz,
    ) -> ManagedOutcome {
        let report = self.system.run(self.measure_duration);
        let critical_freq = report.core(critical_core).mean_freq;
        ManagedOutcome {
            strategy,
            critical: critical.name().to_owned(),
            background: background.name().to_owned(),
            critical_core,
            critical_freq,
            speedup: critical.speedup(critical_freq, baseline),
            background_setting,
            chip_power: report.procs[0].mean_power,
            ok: report.is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;
    use atm_workloads::by_name;

    fn manager() -> AtmManager {
        let sys = System::new(ChipConfig::default());
        AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick())
    }

    #[test]
    fn fig14_ordering_holds_for_squeezenet_x264() {
        let mut mgr = manager();
        let critical = by_name("squeezenet").unwrap();
        let background = by_name("x264").unwrap();

        let s_static = mgr.evaluate_pair(critical, background, Strategy::StaticMargin);
        let s_default = mgr.evaluate_pair(critical, background, Strategy::DefaultAtm);
        let s_unmanaged = mgr.evaluate_pair(critical, background, Strategy::FineTunedUnmanaged);
        let s_max = mgr.evaluate_pair(critical, background, Strategy::ManagedMax);

        assert!((s_static.speedup - 1.0).abs() < 1e-9);
        assert!(
            s_default.speedup > 1.02,
            "default ATM {:.3}",
            s_default.speedup
        );
        assert!(
            s_unmanaged.speedup > s_default.speedup,
            "fine-tuned unmanaged {:.3} vs default {:.3}",
            s_unmanaged.speedup,
            s_default.speedup
        );
        assert!(
            s_max.speedup > s_unmanaged.speedup,
            "managed max {:.3} vs unmanaged {:.3}",
            s_max.speedup,
            s_unmanaged.speedup
        );
        for s in [&s_static, &s_default, &s_unmanaged, &s_max] {
            assert!(s.ok, "{} run failed", s.strategy);
        }
    }

    #[test]
    fn balanced_meets_ten_percent_qos() {
        let mut mgr = manager();
        let critical = by_name("squeezenet").unwrap();
        let background = by_name("lu_cb").unwrap();
        let qos = QosTarget::improvement_pct(10.0);
        let outcome = mgr.evaluate_pair(critical, background, Strategy::ManagedBalanced(qos));
        assert!(
            qos.met_by(outcome.speedup),
            "balanced speedup {:.3} misses {qos}",
            outcome.speedup
        );
        assert!(outcome.ok);
    }

    #[test]
    fn managed_max_uses_fastest_core_and_lowest_pstate() {
        let mut mgr = manager();
        let critical = by_name("seq2seq").unwrap();
        let background = by_name("swaptions").unwrap();
        let outcome = mgr.evaluate_pair(critical, background, Strategy::ManagedMax);
        assert_eq!(
            outcome.background_setting,
            Some(ThrottleSetting::Fixed(MegaHz::new(2100.0)))
        );
        let expected = Scheduler::new(mgr.system_mut()).fastest_core(ProcId::new(0), false);
        assert_eq!(outcome.critical_core, expected);
    }

    #[test]
    fn default_atm_restores_deployed_map() {
        let mut mgr = manager();
        let before: Vec<usize> = CoreId::all()
            .map(|c| mgr.system().core(c).reduction())
            .collect();
        let _ = mgr.evaluate_pair(
            by_name("babi").unwrap(),
            by_name("raytrace").unwrap(),
            Strategy::DefaultAtm,
        );
        let after: Vec<usize> = CoreId::all()
            .map(|c| mgr.system().core(c).reduction())
            .collect();
        assert_eq!(before, after);
    }
}
